package placemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/wal"
)

// This file is the multi-tenant side of the serving facade: a
// ScenarioSpec document describes one complete monitoring scenario — a
// network plus a deployed placement — and the daemon hosts many of them
// at once, each under its own ID with fully isolated state (see the
// README's Multi-tenancy section).

// Scenario administration errors. AddScenario and RemoveScenario wrap
// these so callers can errors.Is without reaching into internal packages.
var (
	// ErrScenarioExists means the ID is already registered.
	ErrScenarioExists = errors.New("placemon: scenario already exists")
	// ErrScenarioNotFound means no scenario has the ID.
	ErrScenarioNotFound = errors.New("placemon: scenario not found")
	// ErrScenarioLimit means the server is at its MaxScenarios cap.
	ErrScenarioLimit = errors.New("placemon: scenario limit reached")
)

// ScenarioSpec is the JSON scenario document the multi-tenant daemon
// accepts over PUT /v1/scenarios/{id}, persists through its store, and
// rebuilds at boot. It is self-contained: the network comes from either
// a built-in topology name or an inline edge list, and the placement
// document carries the services and hosts to monitor.
type ScenarioSpec struct {
	// Topology names a built-in topology (see TopologyNames). Empty means
	// the network is given inline by Nodes/Edges, or — when those are
	// empty too — named by Placement.Topology.
	Topology string `json:"topology,omitempty"`
	// Nodes and Edges describe a custom network inline: Nodes is the node
	// count and each edge is an undirected [u, v] pair.
	Nodes int      `json:"nodes,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
	// K is the scenario's failure budget for the rolling diagnosis
	// (0 means the server default).
	K int `json:"k,omitempty"`
	// Placement is the deployed placement to monitor, in the same
	// document form SavePlacement writes.
	Placement PlacementFile `json:"placement"`
}

// Network builds the spec's network: Topology if named, else the inline
// Nodes/Edges, else the topology the placement document names.
func (sp ScenarioSpec) Network() (*Network, error) {
	switch {
	case sp.Topology != "":
		return BuildTopology(sp.Topology)
	case sp.Nodes > 0:
		edges := make([]Edge, len(sp.Edges))
		for i, e := range sp.Edges {
			edges[i] = Edge{U: e[0], V: e[1]}
		}
		return NewNetwork(sp.Nodes, edges)
	case sp.Placement.Topology != "":
		return BuildTopology(sp.Placement.Topology)
	default:
		return nil, fmt.Errorf("placemon: scenario spec names no network (topology, nodes/edges, or placement.topology)")
	}
}

// ParseScenarioSpec decodes and structurally validates a scenario
// document: strict JSON, then the same placement invariants LoadPlacement
// enforces. Network-dependent bounds are checked when the scenario is
// built.
func ParseScenarioSpec(raw []byte) (ScenarioSpec, error) {
	var sp ScenarioSpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("placemon: decode scenario spec: %w", err)
	}
	if sp.Nodes < 0 {
		return sp, fmt.Errorf("placemon: scenario spec: negative node count %d", sp.Nodes)
	}
	if sp.K < 0 {
		return sp, fmt.Errorf("placemon: scenario spec: negative failure budget %d", sp.K)
	}
	// Round-trip the placement through its own loader so a scenario spec
	// cannot smuggle in a document SavePlacement/LoadPlacement would
	// reject.
	var buf bytes.Buffer
	if err := SavePlacement(&buf, sp.Placement); err != nil {
		return sp, err
	}
	if _, err := LoadPlacement(&buf); err != nil {
		return sp, err
	}
	return sp, nil
}

// buildScenario is the server.BuildFunc the facade installs: document in,
// isolated monitoring state out. It is pure — the same document always
// builds an equivalent tenant — which is what makes store-backed reload
// at boot sound.
func buildScenario(id string, raw []byte) (*server.TenantConfig, error) {
	sp, err := ParseScenarioSpec(raw)
	if err != nil {
		return nil, err
	}
	nw, err := sp.Network()
	if err != nil {
		return nil, err
	}
	paths, conns, _, err := buildMonitoring(nw, sp.Placement)
	if err != nil {
		return nil, err
	}
	return &server.TenantConfig{
		NumNodes:    nw.NumNodes(),
		K:           sp.K,
		Paths:       paths,
		Connections: conns,
		Place:       nw.placeFunc(),
	}, nil
}

// NewScenarioServer builds a multi-tenant monitoring service with no
// boot-time default scenario: every scenario is created dynamically
// (AddScenario or PUT /v1/scenarios/{id}) or loaded from cfg.ScenarioDir
// at boot. The legacy single-scenario routes answer 404 until a scenario
// named "default" exists.
func NewScenarioServer(cfg ServerConfig) (*Server, error) {
	sc, err := cfg.innerConfig()
	if err != nil {
		return nil, err
	}
	inner, err := server.New(sc)
	if err != nil {
		return nil, fmt.Errorf("placemon: %w", err)
	}
	return &Server{inner: inner}, nil
}

// innerConfig translates the facade knobs shared by NewServer and
// NewScenarioServer, including the multi-tenant and cluster ones; when
// ScenarioDir is set it opens the file-backed scenario store.
func (cfg ServerConfig) innerConfig() (server.Config, error) {
	revise, prewarm := newNetworkReviser()
	sc := server.Config{
		K:                  cfg.K,
		Workers:            cfg.Workers,
		QueueDepth:         cfg.QueueDepth,
		RequestTimeout:     cfg.RequestTimeout,
		DrainTimeout:       cfg.DrainTimeout,
		DedupWindow:        cfg.DedupWindow,
		DiagnosisTimeout:   cfg.DiagnosisTimeout,
		EnablePprof:        cfg.EnablePprof,
		Logger:             cfg.Logger,
		SlowRequest:        cfg.SlowRequest,
		TraceBuffer:        cfg.TraceBuffer,
		BuildScenario:      buildScenario,
		ReviseNetwork:      revise,
		PrewarmPlacer:      prewarm,
		MaxScenarios:       cfg.MaxScenarios,
		TenantSeriesCap:    cfg.TenantSeriesCap,
		MaxJobsPerScenario: cfg.MaxJobsPerScenario,
	}
	if (cfg.NodeID == "") != (cfg.Peers == "") {
		return sc, fmt.Errorf("placemon: NodeID and Peers must be set together (got node ID %q, peers %q)", cfg.NodeID, cfg.Peers)
	}
	if cfg.NodeID != "" {
		members, err := cluster.New(cfg.NodeID, cfg.Peers)
		if err != nil {
			return sc, fmt.Errorf("placemon: %w", err)
		}
		sc.Cluster = &server.ClusterConfig{
			Membership: members,
			Proxy:      cfg.ClusterProxy,
			ForceAdopt: cfg.ForceAdopt,
		}
	}
	if cfg.WALDir != "" && cfg.ScenarioDir != "" {
		return sc, fmt.Errorf("placemon: WALDir and ScenarioDir are mutually exclusive (the WAL subsumes the scenario store)")
	}
	if cfg.WALDir != "" {
		mode, err := wal.ParseSyncMode(cfg.WALSync)
		if err != nil {
			return sc, fmt.Errorf("placemon: %w", err)
		}
		sc.WAL = &server.WALConfig{
			Dir:          cfg.WALDir,
			Sync:         mode,
			SegmentBytes: cfg.WALSegmentBytes,
		}
		return sc, nil
	}
	if cfg.ScenarioDir != "" {
		store, err := registry.NewFileStore(cfg.ScenarioDir)
		if err != nil {
			return sc, fmt.Errorf("placemon: scenario store: %w", err)
		}
		sc.Store = store
	}
	return sc, nil
}

// AddScenario registers and persists a new scenario. The ID must match
// [a-zA-Z0-9._-]{1,64} without a leading dot; errors wrap
// ErrScenarioExists and ErrScenarioLimit.
func (s *Server) AddScenario(id string, spec ScenarioSpec) error {
	raw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("placemon: encode scenario spec: %w", err)
	}
	if err := s.inner.CreateScenario(id, raw); err != nil {
		switch {
		case errors.Is(err, registry.ErrExists):
			return fmt.Errorf("%w: %q", ErrScenarioExists, id)
		case errors.Is(err, registry.ErrFull):
			return fmt.Errorf("%w (adding %q)", ErrScenarioLimit, id)
		}
		return fmt.Errorf("placemon: add scenario %s: %w", id, err)
	}
	return nil
}

// RemoveScenario drains and deletes a scenario: new requests for it are
// rejected at once, in-flight placement jobs get up to the drain timeout
// (bounded further by ctx), and the persisted document is removed so the
// scenario stays gone across restarts. Errors wrap ErrScenarioNotFound.
func (s *Server) RemoveScenario(ctx context.Context, id string) error {
	if err := s.inner.RemoveScenario(ctx, id); err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			return fmt.Errorf("%w: %q", ErrScenarioNotFound, id)
		}
		return fmt.Errorf("placemon: remove scenario %s: %w", id, err)
	}
	return nil
}

// Scenarios returns the hosted scenario IDs, sorted.
func (s *Server) Scenarios() []string { return s.inner.ScenarioIDs() }
