package placemon_test

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	placemon "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite the legacy-route golden files")

// durationField strips the one wall-clock-dependent field from placement
// responses so the remaining bytes can be pinned exactly.
var durationField = regexp.MustCompile(`"duration_seconds":[0-9.eE+-]+`)

// legacyGoldenServer builds the deterministic single-tenant scenario every
// golden request runs against: Abovenet, two services on the first four
// suggested clients, the greedy distinguishability placement at α = 0.6.
func legacyGoldenServer(t testing.TB) (*placemon.Server, *placemon.Network, []placemon.Service, *placemon.Result) {
	t.Helper()
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	clients := nw.SuggestedClients()
	if len(clients) < 4 {
		t.Fatalf("only %d suggested clients", len(clients))
	}
	services := []placemon.Service{
		{Name: "svc-0", Clients: clients[:2]},
		{Name: "svc-1", Clients: clients[2:4]},
	}
	const alpha = 0.6
	res, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     alpha,
		Objective: placemon.ObjectiveDistinguishability,
		Algorithm: placemon.AlgorithmGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := placemon.NewPlacementFile("Abovenet", alpha, services, res.Hosts)
	srv, err := placemon.NewServer(nw, doc, placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return srv, nw, services, res
}

// legacyRequests is the pinned request sequence. Bodies are deterministic:
// observation states come from Network.Observe on the deterministic greedy
// placement, so the exact response bytes are reproducible run to run.
func legacyRequests(t testing.TB, nw *placemon.Network, services []placemon.Service, res *placemon.Result) []struct {
	name, method, path, body string
} {
	t.Helper()
	failNode := res.Hosts[0]
	obs, err := nw.Observe(services, res.Hosts, 0.6, []int{failNode})
	if err != nil {
		t.Fatal(err)
	}
	var down, up []string
	for i, failed := range obs.Failed {
		down = append(down, fmt.Sprintf(`{"connection": %d, "up": %v}`, i, !failed))
		up = append(up, fmt.Sprintf(`{"connection": %d, "up": true}`, i))
	}
	placeBody := fmt.Sprintf(
		`{"services": [{"name": "svc-0", "clients": %s}, {"name": "svc-1", "clients": %s}], "alpha": 0.6, "objective": "distinguishability", "algorithm": "greedy"}`,
		intsJSON(services[0].Clients), intsJSON(services[1].Clients))
	return []struct{ name, method, path, body string }{
		{"healthz_initial", http.MethodGet, "/healthz", ""},
		{"ingest_failure", http.MethodPost, "/v1/observations",
			fmt.Sprintf(`{"batch_id": "golden-batch-1", "time": 1, "reports": [%s]}`, strings.Join(down, ","))},
		{"ingest_failure_replay", http.MethodPost, "/v1/observations",
			fmt.Sprintf(`{"batch_id": "golden-batch-1", "time": 1, "reports": [%s]}`, strings.Join(down, ","))},
		{"diagnosis_outage", http.MethodGet, "/v1/diagnosis", ""},
		{"ingest_recovery", http.MethodPost, "/v1/observations",
			fmt.Sprintf(`{"time": 2, "reports": [%s]}`, strings.Join(up, ","))},
		{"diagnosis_clear", http.MethodGet, "/v1/diagnosis", ""},
		{"healthz_after", http.MethodGet, "/healthz", ""},
		{"placement_greedy", http.MethodPost, "/v1/placements", placeBody},
		{"bad_request_empty_batch", http.MethodPost, "/v1/observations", `{"time": 3, "reports": []}`},
		{"bad_request_out_of_range", http.MethodPost, "/v1/observations",
			`{"time": 3, "reports": [{"connection": 9999, "up": false}]}`},
		{"unknown_path", http.MethodGet, "/v1/nope", ""},
	}
}

func intsJSON(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// TestLegacyRoutesGolden pins the legacy (tenant-less) API byte for byte:
// every response of the deterministic request sequence above must match
// the goldens captured from the seed single-tenant server, so the
// registry-backed "default" tenant cannot drift from the original wire
// contract. Regenerate with `go test -run LegacyRoutesGolden -update .`
// only when a wire change is intended.
func TestLegacyRoutesGolden(t *testing.T) {
	srv, nw, services, res := legacyGoldenServer(t)
	defer srv.Close()
	handler := srv.Handler()

	for _, rq := range legacyRequests(t, nw, services, res) {
		t.Run(rq.name, func(t *testing.T) {
			var body *strings.Reader
			if rq.body != "" {
				body = strings.NewReader(rq.body)
			} else {
				body = strings.NewReader("")
			}
			req := httptest.NewRequest(rq.method, rq.path, body)
			if rq.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)

			got := fmt.Sprintf("STATUS %d\n%s", rec.Code,
				durationField.ReplaceAllString(rec.Body.String(), `"duration_seconds":0`))
			path := filepath.Join("testdata", "legacy", rq.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s %s: response drifted from the seed bytes\n--- got ---\n%s\n--- want ---\n%s",
					rq.method, rq.path, got, want)
			}
		})
	}
}
