// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON summary, so benchmark runs can be archived and
// diffed across commits (the repo's perf trajectory):
//
//	go test -run NONE -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_2026-08-05.json
//
// It reads the benchmark output on stdin and writes one JSON document on
// stdout; context lines (goos/goarch/cpu/pkg) are captured as metadata,
// and every `-benchmem` column plus any custom metric (`value unit`
// pairs) lands in the per-benchmark metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Summary is the output document.
type Summary struct {
	// Date is the run timestamp (RFC 3339).
	Date string `json:"date"`
	// Goos, Goarch, CPU, and Pkg echo the benchmark context lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed result lines in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkFig4/Tiscali-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every unit → value pair on the line, including
	// "B/op" and "allocs/op" under -benchmem and any b.ReportMetric
	// extras (ns/op is repeated here for uniform consumers).
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	sum, err := parse(os.Stdin, time.Now())
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(sum.Benchmarks))
}

// parse consumes `go test -bench` output and builds the summary.
func parse(r io.Reader, now time.Time) (*Summary, error) {
	sum := &Summary{Date: now.Format(time.RFC3339), Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			sum.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				sum.Benchmarks = append(sum.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8  100  12345 ns/op  678 B/op  9 allocs/op
//
// Lines without an iteration count (e.g. a bare "BenchmarkX" progress
// line under -v) report ok=false rather than an error.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("line %q: bad value %q: %v", line, fields[i], err)
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		if unit == "ns/op" {
			b.NsPerOp = v
		}
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}
