// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON summary, so benchmark runs can be archived and
// diffed across commits (the repo's perf trajectory):
//
//	go test -run NONE -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_2026-08-05.json
//
// It reads the benchmark output on stdin and writes one JSON document on
// stdout; context lines (goos/goarch/cpu/pkg) are captured as metadata,
// and every `-benchmem` column plus any custom metric (`value unit`
// pairs) lands in the per-benchmark metrics map.
//
// With -compare, it diffs two archived snapshots instead:
//
//	go run ./cmd/benchjson -compare BENCH_old.json BENCH_new.json
//	go test -run NONE -bench=. . | go run ./cmd/benchjson -compare BENCH_old.json
//
// The baseline comes from the -compare file; the candidate is the second
// positional argument, or stdin parsed as fresh `go test -bench` text
// when no second file is given. For every benchmark present in both
// snapshots it prints ns/op and each shared metric (B/op, allocs/op,
// evaluations/op, ...) side by side with the relative change.
//
// With -fail-over N (percent, compare mode only) the command exits
// non-zero if any shared benchmark's ns/op regressed by more than N%, so
// CI can gate merges on archived baselines:
//
//	go test -run NONE -bench=Registry . | go run ./cmd/benchjson -compare BENCH_seed.json -fail-over 10
//
// -fail-allocs-over N is the same gate for the allocs/op column (both
// snapshots must carry -benchmem data for it to see anything), guarding
// allocation-reduction work against silent backsliding:
//
//	go test -run NONE -bench=Registry -benchmem . | go run ./cmd/benchjson -compare BENCH_streaming.json -fail-allocs-over 10
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Summary is the output document.
type Summary struct {
	// Date is the run timestamp (RFC 3339).
	Date string `json:"date"`
	// Goos, Goarch, CPU, and Pkg echo the benchmark context lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed result lines in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkFig4/Tiscali-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every unit → value pair on the line, including
	// "B/op" and "allocs/op" under -benchmem and any b.ReportMetric
	// extras (ns/op is repeated here for uniform consumers).
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	compare := flag.String("compare", "", "baseline snapshot JSON; diff against a second snapshot file or stdin bench text")
	failOver := flag.Float64("fail-over", 0, "with -compare: exit non-zero if any shared benchmark's ns/op regressed by more than this percentage (0 disables)")
	failAllocsOver := flag.Float64("fail-allocs-over", 0, "with -compare: exit non-zero if any shared benchmark's allocs/op regressed by more than this percentage (0 disables)")
	flag.Parse()
	if err := run(*compare, *failOver, *failAllocsOver, flag.Args(), os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(compare string, failOver, failAllocsOver float64, args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if (failOver != 0 || failAllocsOver != 0) && compare == "" {
		return fmt.Errorf("-fail-over and -fail-allocs-over need -compare")
	}
	if failOver < 0 {
		return fmt.Errorf("-fail-over must be non-negative, got %v", failOver)
	}
	if failAllocsOver < 0 {
		return fmt.Errorf("-fail-allocs-over must be non-negative, got %v", failAllocsOver)
	}
	if compare == "" {
		sum, err := parse(stdin, time.Now())
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "benchjson: %d benchmarks\n", len(sum.Benchmarks))
		return nil
	}
	base, err := readSummary(compare)
	if err != nil {
		return err
	}
	var cand *Summary
	if len(args) > 0 {
		if cand, err = readSummary(args[0]); err != nil {
			return err
		}
	} else if cand, err = parse(stdin, time.Now()); err != nil {
		return err
	}
	shared, regressed, allocRegressed := compareSummaries(stdout, base, cand, failOver, failAllocsOver)
	if shared == 0 {
		return fmt.Errorf("no benchmark names in common between the two snapshots")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %v%% in ns/op: %s",
			len(regressed), failOver, strings.Join(regressed, ", "))
	}
	if len(allocRegressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %v%% in allocs/op: %s",
			len(allocRegressed), failAllocsOver, strings.Join(allocRegressed, ", "))
	}
	return nil
}

// benchArchive is where the repo keeps its BENCH_*.json snapshots; a
// bare snapshot name that does not exist in the working directory is
// looked up there, so `-compare BENCH_<date>.json` keeps working from
// the repo root after the snapshots moved out of it.
var benchArchive = filepath.Join("results", "bench")

// readSummary loads a snapshot previously written by this command.
func readSummary(path string) (*Summary, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) && filepath.Base(path) == path {
		if archived, archErr := os.ReadFile(filepath.Join(benchArchive, path)); archErr == nil {
			raw, err = archived, nil
		}
	}
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compareSummaries prints, for every benchmark name present in both
// snapshots, each shared metric side by side with the relative change
// (negative = the candidate improved). It returns the number of shared
// benchmarks plus — when the corresponding gate is > 0 — the names whose
// ns/op (failOver) or allocs/op (failAllocsOver) regressed past that
// percentage; names unique to one side are listed at the end so a
// renamed benchmark is not mistaken for a regression-free run.
func compareSummaries(w io.Writer, base, cand *Summary, failOver, failAllocsOver float64) (int, []string, []string) {
	old := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[b.Name] = b
	}
	fmt.Fprintf(w, "baseline %s vs candidate %s\n", base.Date, cand.Date)
	shared := 0
	var onlyNew, regressed, allocRegressed []string
	seen := map[string]bool{}
	for _, nb := range cand.Benchmarks {
		seen[nb.Name] = true
		ob, ok := old[nb.Name]
		if !ok {
			onlyNew = append(onlyNew, nb.Name)
			continue
		}
		shared++
		fmt.Fprintln(w, nb.Name)
		for _, unit := range sharedUnits(ob, nb) {
			o, n := ob.Metrics[unit], nb.Metrics[unit]
			fmt.Fprintf(w, "    %-18s %16s -> %-16s %8s\n",
				unit, trimFloat(o), trimFloat(n), relChange(o, n))
		}
		if failOver > 0 && ob.NsPerOp > 0 &&
			100*(nb.NsPerOp-ob.NsPerOp)/ob.NsPerOp > failOver {
			regressed = append(regressed, nb.Name)
		}
		oa, na := ob.Metrics["allocs/op"], nb.Metrics["allocs/op"]
		if failAllocsOver > 0 && oa > 0 && 100*(na-oa)/oa > failAllocsOver {
			allocRegressed = append(allocRegressed, nb.Name)
		}
	}
	var onlyOld []string
	for _, ob := range base.Benchmarks {
		if !seen[ob.Name] {
			onlyOld = append(onlyOld, ob.Name)
		}
	}
	for _, name := range onlyOld {
		fmt.Fprintf(w, "only in baseline:  %s\n", name)
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "only in candidate: %s\n", name)
	}
	return shared, regressed, allocRegressed
}

// sharedUnits returns the metric units both lines report, ns/op first
// and the rest sorted, so diffs are stable across runs.
func sharedUnits(a, b Benchmark) []string {
	units := make([]string, 0, len(b.Metrics))
	for u := range b.Metrics {
		if u == "ns/op" {
			continue
		}
		if _, ok := a.Metrics[u]; ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	return append([]string{"ns/op"}, units...)
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// relChange formats (new-old)/old as a signed percentage.
func relChange(o, n float64) string {
	if o == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
}

// parse consumes `go test -bench` output and builds the summary.
func parse(r io.Reader, now time.Time) (*Summary, error) {
	sum := &Summary{Date: now.Format(time.RFC3339), Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			sum.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			sum.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				sum.Benchmarks = append(sum.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8  100  12345 ns/op  678 B/op  9 allocs/op
//
// Lines without an iteration count (e.g. a bare "BenchmarkX" progress
// line under -v) report ok=false rather than an error.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("line %q: bad value %q: %v", line, fields[i], err)
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		if unit == "ns/op" {
			b.NsPerOp = v
		}
	}
	if _, ok := b.Metrics["ns/op"]; !ok {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}
