package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkTableI/Abovenet-8         	     100	  11093907 ns/op	 4093438 B/op	   39110 allocs/op
BenchmarkRouterConstruction-8      	    5000	    245678 ns/op
BenchmarkOpLoop-8                  	       2	 600123456 ns/op	       51.0 detect-%	12345 B/op	  100 allocs/op
PASS
ok  	repro	42.195s
`

func TestParse(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	sum, err := parse(strings.NewReader(sample), now)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Goos != "linux" || sum.Goarch != "amd64" || sum.Pkg != "repro" {
		t.Fatalf("metadata = %+v", sum)
	}
	if sum.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", sum.CPU)
	}
	if sum.Date != "2026-08-05T12:00:00Z" {
		t.Fatalf("date = %q", sum.Date)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(sum.Benchmarks))
	}

	b := sum.Benchmarks[0]
	if b.Name != "BenchmarkTableI/Abovenet-8" || b.Iterations != 100 {
		t.Fatalf("first = %+v", b)
	}
	if b.NsPerOp != 11093907 || b.Metrics["B/op"] != 4093438 || b.Metrics["allocs/op"] != 39110 {
		t.Fatalf("first metrics = %+v", b.Metrics)
	}

	// No -benchmem columns is fine.
	if got := sum.Benchmarks[1].Metrics; len(got) != 1 || got["ns/op"] != 245678 {
		t.Fatalf("second metrics = %v", got)
	}

	// Custom b.ReportMetric units are preserved.
	if got := sum.Benchmarks[2].Metrics["detect-%"]; got != 51.0 {
		t.Fatalf("custom metric = %v, want 51", got)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkInProgress
Benchmark-not-a-result line here
goos: linux
PASS
`
	sum, err := parse(strings.NewReader(in), time.Unix(0, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(sum.Benchmarks))
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	in := "BenchmarkX-8  10  abc ns/op\n"
	if _, err := parse(strings.NewReader(in), time.Unix(0, 0).UTC()); err == nil {
		t.Fatalf("corrupt value accepted")
	}
}

const lazySample = `goos: linux
pkg: repro
BenchmarkLazyPlacement/AT&T/svc=20/greedy-8  	       5	 122508516 ns/op	     11085 evaluations/op	75429680 B/op	 1006799 allocs/op
BenchmarkLazyPlacement/AT&T/svc=20/lazy-8    	      14	  82256480 ns/op	      5256 evaluations/op	33268456 B/op	  437774 allocs/op
PASS
`

func TestParseEvaluationsMetric(t *testing.T) {
	sum, err := parse(strings.NewReader(lazySample), time.Unix(0, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(sum.Benchmarks))
	}
	if got := sum.Benchmarks[0].Metrics["evaluations/op"]; got != 11085 {
		t.Fatalf("greedy evaluations/op = %v, want 11085", got)
	}
	if got := sum.Benchmarks[1].Metrics["evaluations/op"]; got != 5256 {
		t.Fatalf("lazy evaluations/op = %v, want 5256", got)
	}
}

func TestCompareSummaries(t *testing.T) {
	base := &Summary{
		Date: "2026-08-01T00:00:00Z",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA-8", NsPerOp: 1000, Metrics: map[string]float64{
				"ns/op": 1000, "evaluations/op": 200, "B/op": 512,
			}},
			{Name: "BenchmarkGone-8", NsPerOp: 5, Metrics: map[string]float64{"ns/op": 5}},
		},
	}
	cand := &Summary{
		Date: "2026-08-05T00:00:00Z",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA-8", NsPerOp: 500, Metrics: map[string]float64{
				"ns/op": 500, "evaluations/op": 100, "allocs/op": 9,
			}},
			{Name: "BenchmarkNew-8", NsPerOp: 7, Metrics: map[string]float64{"ns/op": 7}},
		},
	}
	var out strings.Builder
	if shared, _, _ := compareSummaries(&out, base, cand, 0, 0); shared != 1 {
		t.Fatalf("shared = %d, want 1", shared)
	}
	text := out.String()
	for _, want := range []string{
		"BenchmarkA-8",
		"-50.0%", // both ns/op and evaluations/op halved
		"evaluations/op",
		"only in baseline:  BenchmarkGone-8",
		"only in candidate: BenchmarkNew-8",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("compare output missing %q:\n%s", want, text)
		}
	}
	// allocs/op exists only in the candidate, B/op only in the
	// baseline: neither is a shared unit, so neither may be printed.
	for _, reject := range []string{"allocs/op", "B/op"} {
		if strings.Contains(text, reject) {
			t.Errorf("compare output shows unshared unit %q:\n%s", reject, text)
		}
	}
}

func TestRunCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", `{"date":"d1","benchmarks":[{"name":"BenchmarkX-8","ns_per_op":10,"metrics":{"ns/op":10}}]}`)
	new_ := write("new.json", `{"date":"d2","benchmarks":[{"name":"BenchmarkX-8","ns_per_op":20,"metrics":{"ns/op":20}}]}`)

	var out, errOut strings.Builder
	if err := run(old, 0, 0, []string{new_}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "+100.0%") {
		t.Fatalf("file-vs-file compare output:\n%s", out.String())
	}

	// Candidate from stdin bench text.
	out.Reset()
	if err := run(old, 0, 0, nil, strings.NewReader("BenchmarkX-8  3  5 ns/op\nPASS\n"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-50.0%") {
		t.Fatalf("file-vs-stdin compare output:\n%s", out.String())
	}

	// Disjoint snapshots are an error, not a silent all-clear.
	disjoint := write("disjoint.json", `{"date":"d3","benchmarks":[{"name":"BenchmarkY-8","ns_per_op":1,"metrics":{"ns/op":1}}]}`)
	out.Reset()
	if err := run(old, 0, 0, []string{disjoint}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("disjoint snapshots should error")
	}

	// Missing or corrupt baseline files error out.
	if err := run(dir+"/missing.json", 0, 0, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("missing baseline should error")
	}
	corrupt := write("corrupt.json", "{not json")
	if err := run(corrupt, 0, 0, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("corrupt baseline should error")
	}
}

// TestFailOverGate: -fail-over turns an ns/op regression past the
// threshold into a non-zero exit, tolerates regressions under it, and
// never fires on improvements.
func TestFailOverGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json",
		`{"date":"d1","benchmarks":[{"name":"BenchmarkX-8","ns_per_op":100,"metrics":{"ns/op":100}}]}`)

	var out, errOut strings.Builder
	// +50% regression over a 10% gate fails and names the benchmark.
	err := run(base, 10, 0, nil, strings.NewReader("BenchmarkX-8  3  150 ns/op\nPASS\n"), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkX-8") {
		t.Fatalf("regression past the gate returned %v", err)
	}
	// +5% under a 10% gate passes.
	out.Reset()
	if err := run(base, 10, 0, nil, strings.NewReader("BenchmarkX-8  3  105 ns/op\nPASS\n"), &out, &errOut); err != nil {
		t.Fatalf("small regression under the gate failed: %v", err)
	}
	// An improvement passes.
	out.Reset()
	if err := run(base, 10, 0, nil, strings.NewReader("BenchmarkX-8  3  50 ns/op\nPASS\n"), &out, &errOut); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
	// -fail-over without -compare, and negative values, are usage errors.
	if err := run("", 10, 0, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("-fail-over without -compare accepted")
	}
	if err := run(base, -1, 0, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("negative -fail-over accepted")
	}
}

// TestFailAllocsOverGate: -fail-allocs-over gates the allocs/op column
// the way -fail-over gates ns/op — a regression past the threshold
// fails, one under it or an improvement passes, and benchmarks without
// allocation data are ignored rather than tripping the gate.
func TestFailAllocsOverGate(t *testing.T) {
	dir := t.TempDir()
	base := dir + "/base.json"
	if err := os.WriteFile(base, []byte(
		`{"date":"d1","benchmarks":[{"name":"BenchmarkX-8","ns_per_op":100,"metrics":{"ns/op":100,"allocs/op":10}}]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	// 10 -> 15 allocs/op is +50% over a 10% gate: fail, naming the column.
	err := run(base, 0, 10, nil,
		strings.NewReader("BenchmarkX-8  3  100 ns/op  500 B/op  15 allocs/op\nPASS\n"), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "BenchmarkX-8") {
		t.Fatalf("allocs regression past the gate returned %v", err)
	}
	// 10 -> 10 passes; 10 -> 5 (an improvement) passes.
	for _, allocs := range []string{"10", "5"} {
		out.Reset()
		if err := run(base, 0, 10, nil,
			strings.NewReader("BenchmarkX-8  3  100 ns/op  500 B/op  "+allocs+" allocs/op\nPASS\n"), &out, &errOut); err != nil {
			t.Fatalf("allocs/op=%s failed a 10%% gate: %v", allocs, err)
		}
	}
	// A candidate without -benchmem columns shares no allocs data; the
	// gate has nothing to measure and stays quiet.
	out.Reset()
	if err := run(base, 0, 10, nil,
		strings.NewReader("BenchmarkX-8  3  100 ns/op\nPASS\n"), &out, &errOut); err != nil {
		t.Fatalf("candidate without allocs data tripped the gate: %v", err)
	}
	// Usage errors mirror -fail-over.
	if err := run("", 0, 10, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("-fail-allocs-over without -compare accepted")
	}
	if err := run(base, 0, -1, nil, strings.NewReader(""), &out, &errOut); err == nil {
		t.Fatal("negative -fail-allocs-over accepted")
	}
}

// TestReadSummaryArchiveFallback: a bare snapshot name missing from the
// working directory resolves against results/bench/, where the repo
// archives its BENCH_*.json files; explicit paths never fall back.
func TestReadSummaryArchiveFallback(t *testing.T) {
	dir := t.TempDir()
	oldArchive := benchArchive
	benchArchive = dir + "/results/bench"
	t.Cleanup(func() { benchArchive = oldArchive })
	if err := os.MkdirAll(benchArchive, 0o755); err != nil {
		t.Fatal(err)
	}
	body := `{"date":"d1","benchmarks":[{"name":"BenchmarkX-8","ns_per_op":10,"metrics":{"ns/op":10}}]}`
	if err := os.WriteFile(benchArchive+"/BENCH_seed.json", []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	sum, err := readSummary("BENCH_seed.json")
	if err != nil {
		t.Fatalf("archive fallback failed: %v", err)
	}
	if len(sum.Benchmarks) != 1 || sum.Benchmarks[0].Name != "BenchmarkX-8" {
		t.Fatalf("wrong snapshot loaded: %+v", sum)
	}

	// A name in neither place still errors.
	if _, err := readSummary("BENCH_nope.json"); err == nil {
		t.Fatal("missing snapshot did not error")
	}
	// An explicit relative path does not consult the archive.
	if _, err := readSummary("sub/BENCH_seed.json"); err == nil {
		t.Fatal("pathed name fell back to the archive")
	}
}
