package main

import (
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkTableI/Abovenet-8         	     100	  11093907 ns/op	 4093438 B/op	   39110 allocs/op
BenchmarkRouterConstruction-8      	    5000	    245678 ns/op
BenchmarkOpLoop-8                  	       2	 600123456 ns/op	       51.0 detect-%	12345 B/op	  100 allocs/op
PASS
ok  	repro	42.195s
`

func TestParse(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	sum, err := parse(strings.NewReader(sample), now)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Goos != "linux" || sum.Goarch != "amd64" || sum.Pkg != "repro" {
		t.Fatalf("metadata = %+v", sum)
	}
	if sum.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", sum.CPU)
	}
	if sum.Date != "2026-08-05T12:00:00Z" {
		t.Fatalf("date = %q", sum.Date)
	}
	if len(sum.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(sum.Benchmarks))
	}

	b := sum.Benchmarks[0]
	if b.Name != "BenchmarkTableI/Abovenet-8" || b.Iterations != 100 {
		t.Fatalf("first = %+v", b)
	}
	if b.NsPerOp != 11093907 || b.Metrics["B/op"] != 4093438 || b.Metrics["allocs/op"] != 39110 {
		t.Fatalf("first metrics = %+v", b.Metrics)
	}

	// No -benchmem columns is fine.
	if got := sum.Benchmarks[1].Metrics; len(got) != 1 || got["ns/op"] != 245678 {
		t.Fatalf("second metrics = %v", got)
	}

	// Custom b.ReportMetric units are preserved.
	if got := sum.Benchmarks[2].Metrics["detect-%"]; got != 51.0 {
		t.Fatalf("custom metric = %v, want 51", got)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkInProgress
Benchmark-not-a-result line here
goos: linux
PASS
`
	sum, err := parse(strings.NewReader(in), time.Unix(0, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(sum.Benchmarks))
	}
}

func TestParseRejectsCorruptValues(t *testing.T) {
	in := "BenchmarkX-8  10  abc ns/op\n"
	if _, err := parse(strings.NewReader(in), time.Unix(0, 0).UTC()); err == nil {
		t.Fatalf("corrupt value accepted")
	}
}
