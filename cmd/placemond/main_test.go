package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	placemon "repro"
)

// writePlacement computes a small greedy placement on Abovenet and saves
// it the way `placemon place -o` would.
func writePlacement(t *testing.T) string {
	t.Helper()
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		t.Fatal(err)
	}
	clients := nw.SuggestedClients()
	services := []placemon.Service{{Name: "svc", Clients: clients[:2]}}
	res, err := nw.Place(services, placemon.PlaceConfig{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "placement.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc := placemon.NewPlacementFile("Abovenet", 0.6, services, res.Hosts)
	if err := placemon.SavePlacement(f, doc); err != nil {
		t.Fatal(err)
	}
	return path
}

func quietLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func TestFlagValidation(t *testing.T) {
	if _, err := parseFlags(nil); err == nil {
		t.Errorf("missing -placement accepted")
	}
	if _, err := parseFlags([]string{"-placement", "x.json", "-bogus"}); err == nil {
		t.Errorf("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-placement", "x.json", "-log-level", "shout"}); err == nil {
		t.Errorf("bogus -log-level accepted")
	}
}

// TestObservabilityFlags: the tracing/logging knobs parse and default
// sanely.
func TestObservabilityFlags(t *testing.T) {
	o, err := parseFlags([]string{"-placement", "x.json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.logLevel != "info" {
		t.Errorf("default -log-level = %q, want info", o.logLevel)
	}
	if o.slowRequest != time.Second {
		t.Errorf("default -slow-request = %v, want 1s", o.slowRequest)
	}
	if o.traceBuffer != 64 {
		t.Errorf("default -trace-buffer = %d, want 64", o.traceBuffer)
	}
	o, err = parseFlags([]string{"-placement", "x.json",
		"-log-level", "DEBUG", "-slow-request", "250ms", "-trace-buffer", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.logLevel != "DEBUG" || o.slowRequest != 250*time.Millisecond || o.traceBuffer != -1 {
		t.Errorf("parsed observability flags = %q %v %d", o.logLevel, o.slowRequest, o.traceBuffer)
	}
}

func TestBuildServerErrors(t *testing.T) {
	if _, _, _, err := buildServer(&options{placementFile: "/does/not/exist.json"}, quietLogger()); err == nil {
		t.Errorf("missing placement file accepted")
	}
	// A placement that names no topology needs -topology or -graph.
	path := filepath.Join(t.TempDir(), "anon.json")
	doc := placemon.PlacementFile{
		Alpha:    0.5,
		Services: []placemon.ServiceRecord{{Clients: []int{0}}},
		Hosts:    []int{0},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := placemon.SavePlacement(f, doc); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, _, err := buildServer(&options{placementFile: path}, quietLogger()); err == nil {
		t.Errorf("anonymous placement without -topology accepted")
	}
	if _, _, _, err := buildServer(&options{placementFile: path, topology: "NoSuchISP"}, quietLogger()); err == nil {
		t.Errorf("unknown topology accepted")
	}
}

// TestServeLifecycle boots the daemon on a loopback port, checks the API
// answers, and verifies SIGINT-style cancellation drains cleanly.
func TestServeLifecycle(t *testing.T) {
	placement := writePlacement(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run re-listens on the now-free port

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-placement", placement, "-addr", addr}, io.Discard)
	}()

	// Wait for the daemon to come up.
	url := "http://" + addr
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}
	if health["connections"] != float64(2) {
		t.Fatalf("connections = %v, want 2", health["connections"])
	}

	// One observation round-trips through the real TCP stack.
	resp, err = http.Post(url+"/v1/observations", "application/json",
		strings.NewReader(`{"time": 1, "reports": [{"connection": 0, "up": true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon did not drain after cancellation")
	}
}

// TestResilienceFlags: the retry/dedup knobs parse and default sanely.
func TestResilienceFlags(t *testing.T) {
	o, err := parseFlags([]string{"-placement", "x.json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dedupWindow != 1024 {
		t.Errorf("default -dedup-window = %d, want 1024", o.dedupWindow)
	}
	if o.diagnosisTimeout != 2*time.Second {
		t.Errorf("default -diagnosis-timeout = %v, want 2s", o.diagnosisTimeout)
	}

	o, err = parseFlags([]string{"-placement", "x.json",
		"-dedup-window", "-1", "-diagnosis-timeout", "500ms"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dedupWindow != -1 {
		t.Errorf("-dedup-window -1 parsed as %d", o.dedupWindow)
	}
	if o.diagnosisTimeout != 500*time.Millisecond {
		t.Errorf("-diagnosis-timeout 500ms parsed as %v", o.diagnosisTimeout)
	}
	if _, err := parseFlags([]string{"-placement", "x.json", "-dedup-window", "many"}); err == nil {
		t.Errorf("non-numeric -dedup-window accepted")
	}
}

// TestScenarioFlags: -scenario-dir lifts the -placement requirement and
// the multi-tenant knobs parse.
func TestScenarioFlags(t *testing.T) {
	o, err := parseFlags([]string{"-scenario-dir", "/tmp/scenarios"})
	if err != nil {
		t.Fatalf("-scenario-dir without -placement rejected: %v", err)
	}
	if o.scenarioDir != "/tmp/scenarios" || o.maxScenarios != 0 || o.maxScenarioJobs != 0 {
		t.Errorf("scenario flag defaults = %q %d %d", o.scenarioDir, o.maxScenarios, o.maxScenarioJobs)
	}
	o, err = parseFlags([]string{"-placement", "x.json",
		"-scenario-dir", "s", "-max-scenarios", "3", "-max-jobs-per-scenario", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if o.maxScenarios != 3 || o.maxScenarioJobs != 2 {
		t.Errorf("scenario caps parsed as %d %d", o.maxScenarios, o.maxScenarioJobs)
	}
}

// waitHealthz polls the daemon until it answers, returning the last
// healthz body.
func waitHealthz(t *testing.T, url string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			var health map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return health
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScenarioOnlyDaemonLifecycle boots a scenario-only daemon, creates
// a scenario over the wire, restarts the daemon on the same directory,
// and checks the scenario survived.
func TestScenarioOnlyDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // run re-listens on the now-free port
	url := "http://" + addr
	args := []string{"-scenario-dir", dir, "-addr", addr}

	boot := func() (context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx, args, io.Discard) }()
		return cancel, done
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after graceful drain", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("daemon did not drain after cancellation")
		}
	}

	cancel, done := boot()
	if health := waitHealthz(t, url); health["scenarios"] != float64(0) {
		t.Fatalf("fresh scenario-only healthz = %v", health)
	}
	// Legacy routes 404 without a default scenario.
	resp, err := http.Get(url + "/v1/diagnosis")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy diagnosis on scenario-only daemon = %d, want 404", resp.StatusCode)
	}

	spec := `{"nodes": 5, "edges": [[0,1],[1,2],[2,3],[3,4]],
		"placement": {"alpha": 1, "services": [{"clients": [0,4]}], "hosts": [2]}}`
	req, err := http.NewRequest(http.MethodPut, url+"/v1/scenarios/edge", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scenario create over the wire = %d", resp.StatusCode)
	}
	stop(cancel, done)

	// Reboot on the same directory: the scenario is reloaded and serves.
	cancel, done = boot()
	defer stop(cancel, done)
	if health := waitHealthz(t, url); health["scenarios"] != float64(1) {
		t.Fatalf("rebooted healthz = %v, want 1 scenario", health)
	}
	resp, err = http.Post(url+"/v1/scenarios/edge/observations", "application/json",
		strings.NewReader(`{"time": 1, "reports": [{"connection": 0, "up": false}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reloaded scenario ingest = %d", resp.StatusCode)
	}
}
