// Command placemond is the network-facing monitoring service: it hosts
// one or many monitoring scenarios — each a topology plus a deployed
// placement (the JSON document `placemon place -o` writes) — and serves
// the monitoring API over HTTP until SIGINT/SIGTERM, then drains
// gracefully.
//
//	placemond -placement placement.json -addr :8080
//	placemond -scenario-dir /var/lib/placemond/scenarios -addr :8080
//
// With -placement the document becomes the "default" scenario, served on
// the classic single-scenario routes. With -scenario-dir (usable with or
// without -placement) scenarios are created dynamically over
// PUT /v1/scenarios/{id}, persisted as files, and reloaded at the next
// boot. With -wal-dir (mutually exclusive with -scenario-dir) the daemon
// instead persists its full mutable state through a write-ahead log:
// every mutation is durable before its response is acknowledged, boot
// replays snapshot + log tail, and a WAL write failure flips the daemon
// read-only (503 + Placemond-Read-Only) instead of crashing it. Tune
// durability with -wal-sync (always | group | none) and rotation with
// -wal-segment-bytes; inspect a log offline with `placemon fsck`.
//
// With -node-id and -peers the daemon joins a static cluster: scenario
// ownership is decided by a consistent-hash ring over the shared peer
// list, non-owners answer 307 to the owner (or proxy with
// -cluster-proxy), and scenarios move between nodes through the
// WAL-fenced POST /v1/scenarios/{id}/migrate. See ARCHITECTURE.md's
// "Cluster mode" section.
//
// Endpoints: POST /v1/observations, GET /v1/diagnosis,
// POST /v1/placements, GET /healthz, GET /metrics, GET /debug/traces,
// the scenario API under /v1/scenarios, and (with -pprof)
// GET /debug/pprof/*. See internal/server for the wire formats.
//
// Logs are structured (log/slog) and every request line carries the
// request's trace ID; tune verbosity with -log-level and slow-request
// warnings with -slow-request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	placemon "repro"
	"repro/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "placemond:", err)
		os.Exit(1)
	}
}

// options are the parsed command-line flags.
type options struct {
	addr             string
	topology         string
	graphFile        string
	placementFile    string
	k                int
	workers          int
	queue            int
	requestTimeout   time.Duration
	drainTimeout     time.Duration
	dedupWindow      int
	diagnosisTimeout time.Duration
	logLevel         string
	slowRequest      time.Duration
	traceBuffer      int
	pprof            bool
	scenarioDir      string
	maxScenarios     int
	maxScenarioJobs  int
	walDir           string
	walSync          string
	walSegmentBytes  int64
	nodeID           string
	peers            string
	clusterProxy     bool
	forceAdopt       bool
}

func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("placemond", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.topology, "topology", "", "built-in topology name (default: the placement document's)")
	fs.StringVar(&o.graphFile, "graph", "", "edge-list file for a custom network (overrides -topology)")
	fs.StringVar(&o.placementFile, "placement", "", "placement JSON written by `placemon place -o` (required)")
	fs.IntVar(&o.k, "k", 1, "failure budget for the rolling diagnosis")
	fs.IntVar(&o.workers, "workers", 0, "placement worker pool size (0 = half the CPUs)")
	fs.IntVar(&o.queue, "queue", 8, "placement queue depth (full queue answers 429)")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 15*time.Second, "per-request timeout")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "graceful shutdown budget")
	fs.IntVar(&o.dedupWindow, "dedup-window", 1024, "batch IDs remembered for idempotent ingest; retried batches replay their original response (-1 disables)")
	fs.DurationVar(&o.diagnosisTimeout, "diagnosis-timeout", 2*time.Second, "diagnosis recompute deadline; past it the last good diagnosis is served marked stale (-1s disables)")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	fs.DurationVar(&o.slowRequest, "slow-request", time.Second, "latency at which a request logs a warning (-1s disables)")
	fs.IntVar(&o.traceBuffer, "trace-buffer", 64, "request traces retained for GET /debug/traces (-1 disables)")
	fs.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&o.scenarioDir, "scenario-dir", "", "directory persisting dynamically created scenarios across restarts (empty: in-memory only)")
	fs.IntVar(&o.maxScenarios, "max-scenarios", 0, "concurrently hosted scenario cap (0 = default 64)")
	fs.IntVar(&o.maxScenarioJobs, "max-jobs-per-scenario", 0, "one scenario's queued+running placement job cap (0 = the whole pool, -1 disables)")
	fs.StringVar(&o.walDir, "wal-dir", "", "directory for the write-ahead log persisting all daemon state; mutations are durable before they are acknowledged (mutually exclusive with -scenario-dir)")
	fs.StringVar(&o.walSync, "wal-sync", "always", "WAL append durability: always (fsync per mutation), group (group commit), or none (fsync on rotation/shutdown only)")
	fs.Int64Var(&o.walSegmentBytes, "wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 4 MiB)")
	fs.StringVar(&o.nodeID, "node-id", "", "this node's ID in a cluster deployment (requires -peers)")
	fs.StringVar(&o.peers, "peers", "", "static cluster membership as comma-separated id=url entries, identical on every node and including -node-id (requires -node-id)")
	fs.BoolVar(&o.clusterProxy, "cluster-proxy", false, "proxy non-owned scenario requests to the owner instead of answering 307")
	fs.BoolVar(&o.forceAdopt, "force-adopt", false, "boot even when persisted scenarios belong to another cluster node (logs a warning per scenario)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.placementFile == "" && o.scenarioDir == "" && o.walDir == "" {
		return nil, fmt.Errorf("-placement is required (or -scenario-dir / -wal-dir for a scenario-only daemon)")
	}
	if o.walDir != "" && o.scenarioDir != "" {
		return nil, fmt.Errorf("-wal-dir and -scenario-dir are mutually exclusive (the WAL subsumes the scenario store)")
	}
	if (o.nodeID == "") != (o.peers == "") {
		return nil, fmt.Errorf("-node-id and -peers must be used together")
	}
	if o.nodeID == "" && (o.clusterProxy || o.forceAdopt) {
		return nil, fmt.Errorf("-cluster-proxy and -force-adopt require cluster mode (-node-id and -peers)")
	}
	if _, err := trace.ParseLevel(o.logLevel); err != nil {
		return nil, fmt.Errorf("-log-level: %v", err)
	}
	return o, nil
}

// newLogger builds the daemon's structured logger at the level the
// options selected (parseFlags already validated it).
func newLogger(o *options, w io.Writer) *slog.Logger {
	level, _ := trace.ParseLevel(o.logLevel)
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// serverConfig translates the parsed options into the facade's config.
func (o *options) serverConfig(logger *slog.Logger) placemon.ServerConfig {
	return placemon.ServerConfig{
		K:                  o.k,
		Workers:            o.workers,
		QueueDepth:         o.queue,
		RequestTimeout:     o.requestTimeout,
		DrainTimeout:       o.drainTimeout,
		DedupWindow:        o.dedupWindow,
		DiagnosisTimeout:   o.diagnosisTimeout,
		EnablePprof:        o.pprof,
		Logger:             logger,
		SlowRequest:        o.slowRequest,
		TraceBuffer:        o.traceBuffer,
		ScenarioDir:        o.scenarioDir,
		MaxScenarios:       o.maxScenarios,
		MaxJobsPerScenario: o.maxScenarioJobs,
		WALDir:             o.walDir,
		WALSync:            o.walSync,
		WALSegmentBytes:    o.walSegmentBytes,
		NodeID:             o.nodeID,
		Peers:              o.peers,
		ClusterProxy:       o.clusterProxy,
		ForceAdopt:         o.forceAdopt,
	}
}

// buildServer assembles the facade server from the parsed options; split
// from run so tests can exercise it without opening sockets. Without
// -placement it builds a scenario-only daemon: no default scenario, and
// nil network and zero document in the return.
func buildServer(o *options, logger *slog.Logger) (*placemon.Server, *placemon.Network, placemon.PlacementFile, error) {
	var zero placemon.PlacementFile
	if o.placementFile == "" {
		srv, err := placemon.NewScenarioServer(o.serverConfig(logger))
		if err != nil {
			return nil, nil, zero, err
		}
		return srv, nil, zero, nil
	}
	f, err := os.Open(o.placementFile)
	if err != nil {
		return nil, nil, zero, err
	}
	doc, err := placemon.LoadPlacement(f)
	f.Close()
	if err != nil {
		return nil, nil, zero, err
	}

	var nw *placemon.Network
	switch {
	case o.graphFile != "":
		g, err := os.Open(o.graphFile)
		if err != nil {
			return nil, nil, zero, err
		}
		nw, err = placemon.Load(g)
		g.Close()
		if err != nil {
			return nil, nil, zero, err
		}
	case o.topology != "":
		if nw, err = placemon.BuildTopology(o.topology); err != nil {
			return nil, nil, zero, err
		}
	case doc.Topology != "":
		if nw, err = placemon.BuildTopology(doc.Topology); err != nil {
			return nil, nil, zero, err
		}
	default:
		return nil, nil, zero, fmt.Errorf("no network: the placement names no topology, and neither -topology nor -graph was given")
	}

	srv, err := placemon.NewServer(nw, doc, o.serverConfig(logger))
	if err != nil {
		return nil, nil, zero, err
	}
	return srv, nw, doc, nil
}

func run(ctx context.Context, args []string, logOut io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := newLogger(o, logOut)
	srv, nw, doc, err := buildServer(o, logger)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		srv.Close()
		return err
	}
	if nw != nil {
		logger.Info("serving",
			"addr", ln.Addr().String(),
			"nodes", nw.NumNodes(),
			"services", len(doc.Services),
			"connections", len(srv.Connections()),
			"k", o.k,
			"log_level", o.logLevel,
			"slow_request", o.slowRequest)
	} else {
		logger.Info("serving (scenario-only)",
			"addr", ln.Addr().String(),
			"scenario_dir", o.scenarioDir,
			"wal_dir", o.walDir,
			"scenarios", len(srv.Scenarios()),
			"k", o.k,
			"log_level", o.logLevel,
			"slow_request", o.slowRequest)
	}
	err = srv.Serve(ctx, ln)
	logger.Info("drained, exiting")
	return err
}
