package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	placemon "repro"
)

// commonFlags are shared by the placement-driving subcommands.
type commonFlags struct {
	topology string
	services int
	clients  string
	alpha    float64
}

func cmdTopos(args []string) error {
	fs := newFlagSet("topos")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %8s %10s\n", "ISP", "#nodes", "#links", "#clients")
	for _, name := range placemon.TopologyNames() {
		nw, err := placemon.BuildTopology(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %8d %8d %10d\n", name, nw.NumNodes(), nw.NumLinks(), len(nw.SuggestedClients()))
	}
	return nil
}

func cmdCandidates(args []string) error {
	fs := newFlagSet("candidates")
	topo := fs.String("topology", "Abovenet", "built-in topology name")
	clients := fs.String("clients", "", "comma-separated client node IDs (default: first 3 suggested)")
	alpha := fs.Float64("alpha", 0.5, "QoS slack α in [0, 1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nw, err := placemon.BuildTopology(*topo)
	if err != nil {
		return err
	}
	cs, err := clientList(nw, *clients, 3)
	if err != nil {
		return err
	}
	hosts, err := nw.CandidateHosts(cs, *alpha)
	if err != nil {
		return err
	}
	fmt.Printf("topology %s, clients %v, α = %g\n", *topo, cs, *alpha)
	fmt.Printf("candidate hosts (%d): %v\n", len(hosts), hosts)
	return nil
}

func cmdPlace(args []string) error {
	fs := newFlagSet("place")
	cf, addCommon := commonFlagSet(fs)
	objective := fs.String("objective", "distinguishability", "coverage | identifiability | distinguishability")
	algorithm := fs.String("algorithm", "",
		"lazy | lazy-parallel | greedy | greedy+ls | qos | random | bruteforce | branchbound"+
			" (default: lazy for submodular objectives, greedy otherwise; identical placements)")
	seed := fs.Int64("seed", 1, "seed for the random algorithm")
	out := fs.String("o", "", "save the placement as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addCommon()
	nw, services, err := buildWorkload(cf)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     cf.alpha,
		Objective: placemon.ObjectiveKind(*objective),
		Algorithm: placemon.Algorithm(*algorithm),
		Seed:      *seed,
		Progress: func(r placemon.RoundProgress) {
			logger.Debug("placement round",
				"round", r.Round, "service", r.Service, "host", r.Host,
				"gain", r.Gain, "candidates", r.Candidates,
				"evaluations", r.Evaluations, "duration", r.Duration)
		},
	})
	if err != nil {
		return err
	}
	if d := time.Since(start); slowRequest > 0 && d >= slowRequest {
		logger.Warn("slow placement",
			"duration", d.Round(time.Millisecond),
			"threshold", slowRequest, "evaluations", res.Evaluations)
	}
	printResult(nw, services, res)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		doc := placemon.NewPlacementFile(cf.topology, cf.alpha, services, res.Hosts)
		if err := placemon.SavePlacement(f, doc); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("placement saved to %s\n", *out)
	}
	return nil
}

func cmdLocalize(args []string) error {
	fs := newFlagSet("localize")
	cf, addCommon := commonFlagSet(fs)
	failNodes := fs.String("fail", "", "comma-separated node IDs to fail (required)")
	k := fs.Int("k", 1, "failure budget for localization")
	placementFile := fs.String("placement", "", "reuse a placement saved by `place -o` instead of recomputing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addCommon()
	if *failNodes == "" {
		return fmt.Errorf("localize: -fail is required")
	}
	failed, err := parseInts(*failNodes)
	if err != nil {
		return err
	}

	var (
		nw       *placemon.Network
		services []placemon.Service
		res      *placemon.Result
	)
	if *placementFile != "" {
		f, err := os.Open(*placementFile)
		if err != nil {
			return err
		}
		doc, derr := placemon.LoadPlacement(f)
		f.Close()
		if derr != nil {
			return derr
		}
		if doc.Topology != "" {
			cf.topology = doc.Topology
		}
		cf.alpha = doc.Alpha
		nw, err = placemon.BuildTopology(cf.topology)
		if err != nil {
			return err
		}
		if err := doc.Validate(nw); err != nil {
			return err
		}
		services = doc.ToServices()
		res, err = nw.Evaluate(services, doc.Hosts, doc.Alpha)
		if err != nil {
			return err
		}
	} else {
		nw, services, err = buildWorkload(cf)
		if err != nil {
			return err
		}
		res, err = nw.Place(services, placemon.PlaceConfig{Alpha: cf.alpha})
		if err != nil {
			return err
		}
	}
	printResult(nw, services, res)

	obs, err := nw.Observe(services, res.Hosts, cf.alpha, failed)
	if err != nil {
		return err
	}
	down := 0
	for _, f := range obs.Failed {
		if f {
			down++
		}
	}
	fmt.Printf("\ninjected failures: %v → %d/%d connections down\n", failed, down, len(obs.Failed))

	start := time.Now()
	diag, err := nw.Localize(obs, *k)
	if err != nil {
		return err
	}
	if d := time.Since(start); slowRequest > 0 && d >= slowRequest {
		logger.Warn("slow diagnosis",
			"duration", d.Round(time.Millisecond), "threshold", slowRequest, "k", *k)
	}
	fmt.Printf("diagnosis (k = %d):\n", *k)
	fmt.Printf("  candidates:        %v\n", diag.Candidates)
	fmt.Printf("  definitely failed: %v\n", diag.DefinitelyFailed)
	fmt.Printf("  possibly failed:   %v\n", diag.PossiblyFailed)
	fmt.Printf("  greedy explanation: %v\n", diag.GreedyExplanation)
	fmt.Printf("  ambiguity:         %d\n", diag.Ambiguity())
	return nil
}

func commonFlagSet(fs *flag.FlagSet) (*commonFlags, func()) {
	cf := &commonFlags{}
	topo := fs.String("topology", "Abovenet", "built-in topology name")
	services := fs.Int("services", 3, "number of services (clients assigned round-robin)")
	clients := fs.String("clients", "", "client sets: per-service comma lists joined by '/', e.g. 1,2/3,4")
	alpha := fs.Float64("alpha", 0.5, "QoS slack α in [0, 1]")
	return cf, func() {
		cf.topology = *topo
		cf.services = *services
		cf.clients = *clients
		cf.alpha = *alpha
	}
}

func buildWorkload(cf *commonFlags) (*placemon.Network, []placemon.Service, error) {
	nw, err := placemon.BuildTopology(cf.topology)
	if err != nil {
		return nil, nil, err
	}
	var services []placemon.Service
	if cf.clients != "" {
		for i, group := range strings.Split(cf.clients, "/") {
			cs, err := parseInts(group)
			if err != nil {
				return nil, nil, fmt.Errorf("service %d clients: %w", i, err)
			}
			services = append(services, placemon.Service{Name: fmt.Sprintf("s%d", i), Clients: cs})
		}
	} else {
		pool := nw.SuggestedClients()
		if len(pool) == 0 {
			return nil, nil, fmt.Errorf("topology has no suggested clients; use -clients")
		}
		next := 0
		for s := 0; s < cf.services; s++ {
			cs := make([]int, 0, 3)
			seen := map[int]bool{}
			for len(cs) < 3 && len(seen) < len(pool) {
				c := pool[next%len(pool)]
				next++
				if !seen[c] {
					seen[c] = true
					cs = append(cs, c)
				}
			}
			services = append(services, placemon.Service{Name: fmt.Sprintf("s%d", s), Clients: cs})
		}
	}
	return nw, services, nil
}

func printResult(nw *placemon.Network, services []placemon.Service, res *placemon.Result) {
	fmt.Printf("placement (α-feasible, objective value %.1f, %d evaluations):\n", res.Objective, res.Evaluations)
	for s, h := range res.Hosts {
		fmt.Printf("  %-8s clients %v → host %d (%s)\n", services[s].Name, services[s].Clients, h, nw.NodeLabel(h))
	}
	fmt.Printf("metrics: coverage %d/%d, 1-identifiable %d, distinguishable pairs %d, worst d̄ %.2f\n",
		res.Coverage, nw.NumNodes(), res.Identifiable, res.Distinguishable, res.WorstRelativeDistance)
}

func clientList(nw *placemon.Network, spec string, fallback int) ([]int, error) {
	if spec != "" {
		return parseInts(spec)
	}
	pool := nw.SuggestedClients()
	if len(pool) < fallback {
		fallback = len(pool)
	}
	if fallback == 0 {
		return nil, fmt.Errorf("no clients available; use -clients")
	}
	return pool[:fallback], nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list %q", s)
	}
	return out, nil
}
