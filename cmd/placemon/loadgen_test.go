package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture routes stdout into a buffer for the duration of fn.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wr
	outc := make(chan string, 1)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := rd.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				outc <- b.String()
				return
			}
		}
	}()
	runErr := fn()
	os.Stdout = old
	wr.Close()
	out := <-outc
	rd.Close()
	return out, runErr
}

// TestCmdLoadgenPrintScheduleDeterministic: the same -seed prints the
// same schedule byte for byte; a different seed does not.
func TestCmdLoadgenPrintScheduleDeterministic(t *testing.T) {
	args := []string{"loadgen", "-target", "http://127.0.0.1:1", "-rps", "250",
		"-duration", "2s", "-seed", "42", "-print-schedule"}
	first, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("same seed printed different schedules")
	}
	if lines := strings.Count(first, "\n"); lines != 501 { // header + 500 offsets
		t.Fatalf("printed %d lines, want 501", lines)
	}
	args[8] = "43"
	third, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if first == third {
		t.Fatal("different seeds printed identical schedules")
	}
}

// TestCmdLoadgenInProcess runs a short load against the in-process
// daemon: the default SLO passes, a absurdly tight one exits non-zero.
func TestCmdLoadgenInProcess(t *testing.T) {
	silence(t)
	base := []string{"loadgen", "-rps", "50", "-duration", "1s", "-scenarios", "2", "-services", "2"}
	if err := run(base); err != nil {
		t.Fatalf("default SLO run failed: %v", err)
	}

	tight := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(tight, []byte(`{"max_p99_seconds": 0.000001}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(append(base, "-slo", tight))
	if err == nil {
		t.Fatal("impossible SLO did not fail the run")
	}
	if !strings.Contains(err.Error(), "SLO violated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCmdLoadgenBadFlags(t *testing.T) {
	if err := run([]string{"loadgen", "-rps", "-5", "-print-schedule"}); err == nil {
		t.Fatal("negative rps accepted")
	}
	if err := run([]string{"loadgen", "-slo", "/nonexistent/slo.json"}); err == nil {
		t.Fatal("missing SLO file accepted")
	}
	if err := run([]string{"loadgen", "-topology", "nosuch", "-print-schedule", "-target", "http://127.0.0.1:1"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
