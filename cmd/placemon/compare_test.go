package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdCompare(t *testing.T) {
	silence(t)
	if err := run([]string{"compare", "-topology", "Abovenet", "-services", "2",
		"-alpha", "0.5", "-trials", "50", "-ls=false"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare", "-topology", "nope"}); err == nil {
		t.Fatal("unknown topology should error")
	}
	if err := run([]string{"compare", "-trials", "0"}); err == nil {
		t.Fatal("zero trials should error")
	}
}

func TestCmdCompareWithBF(t *testing.T) {
	silence(t)
	if err := run([]string{"compare", "-topology", "Abovenet", "-services", "2",
		"-alpha", "0.5", "-bf", "-trials", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdExportEdgeList(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "abovenet.edges")
	if err := run([]string{"export", "-topology", "Abovenet", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "edge ") {
		t.Fatalf("edge list missing edges:\n%s", content[:200])
	}
	if !strings.Contains(content, "# 22 nodes, 80 edges") {
		t.Fatalf("edge list missing header:\n%s", content[:200])
	}
}

func TestCmdExportDOT(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiscali.dot")
	if err := run([]string{"export", "-topology", "Tiscali", "-format", "dot", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph \"Tiscali\"") {
		t.Fatal("DOT output malformed")
	}
}

func TestCmdExportErrors(t *testing.T) {
	silence(t)
	if err := run([]string{"export", "-topology", "nope"}); err == nil {
		t.Fatal("unknown topology should error")
	}
	if err := run([]string{"export", "-format", "png"}); err == nil {
		t.Fatal("unknown format should error")
	}
	if err := run([]string{"export", "-o", "/nonexistent-dir/x"}); err == nil {
		t.Fatal("unwritable output should error")
	}
}

func TestExportedEdgeListRoundTripsThroughLoad(t *testing.T) {
	// The export format must be loadable by the public facade.
	dir := t.TempDir()
	out := filepath.Join(dir, "att.edges")
	if err := run([]string{"export", "-topology", "AT&T", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nw, err := loadNetwork(f)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 108 || nw.NumLinks() != 141 {
		t.Fatalf("round trip shape = %d/%d", nw.NumNodes(), nw.NumLinks())
	}
}
