package main

import (
	"io"

	placemon "repro"
)

// loadNetwork wraps the facade loader for test use.
func loadNetwork(r io.Reader) (*placemon.Network, error) {
	return placemon.Load(r)
}
