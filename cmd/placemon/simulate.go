package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitset"
	"repro/internal/failmodel"
	"repro/internal/graph"
	"repro/internal/monitord"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

// cmdSimulate runs the full operational loop: build a topology, place
// services, generate a failure/recovery schedule, probe every client-host
// connection periodically through the discrete-event simulator, and feed
// the binary outcomes to the online monitoring daemon, printing its
// detection/diagnosis timeline.
func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	topoName := fs.String("topology", "Abovenet", "built-in topology name")
	numServices := fs.Int("services", 3, "number of services")
	alpha := fs.Float64("alpha", 0.6, "QoS slack α in [0, 1]")
	horizon := fs.Float64("horizon", 200, "virtual time horizon")
	probeEvery := fs.Float64("probe", 10, "probe round period")
	mtbf := fs.Float64("mtbf", 400, "mean time between failures per node")
	mttr := fs.Float64("mttr", 30, "mean time to recovery")
	k := fs.Int("k", 1, "failure budget for diagnosis (also caps concurrent failures)")
	seed := fs.Int64("seed", 1, "failure schedule seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// 1. Topology, routing, services (round-robin clients).
	spec, err := topology.ByName(*topoName)
	if err != nil {
		return err
	}
	topo, err := topology.Build(spec)
	if err != nil {
		return err
	}
	router, err := routing.New(topo.Graph)
	if err != nil {
		return err
	}
	services := make([]placement.Service, *numServices)
	pool := topo.CandidateClients
	next := 0
	for s := range services {
		clients := make([]graph.NodeID, 0, 3)
		seen := map[graph.NodeID]bool{}
		for len(clients) < 3 && len(seen) < len(pool) {
			c := pool[next%len(pool)]
			next++
			if !seen[c] {
				seen[c] = true
				clients = append(clients, c)
			}
		}
		services[s] = placement.Service{Name: fmt.Sprintf("svc-%d", s), Clients: clients}
	}

	// 2. Monitoring-aware placement (GD).
	inst, err := placement.NewInstance(router, services, *alpha)
	if err != nil {
		return err
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		return err
	}
	res, err := placement.Greedy(inst, obj)
	if err != nil {
		return err
	}
	fmt.Printf("placement (GD, α=%g): hosts %v\n", *alpha, res.Placement.Hosts)

	// 3. Failure schedule, capped at the design budget k.
	schedule, err := failmodel.Generate(failmodel.Config{
		NumNodes:      topo.Graph.NumNodes(),
		MTBF:          *mtbf,
		MTTR:          *mttr,
		Horizon:       *horizon,
		MaxConcurrent: *k,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure schedule: %d transitions over horizon %g\n\n", len(schedule), *horizon)

	// 4. Discrete-event simulation: schedule failures/recoveries and
	// periodic probe rounds for every connection.
	sim, err := netsim.New(router, 0.01)
	if err != nil {
		return err
	}
	for _, e := range schedule {
		if e.Down {
			err = sim.FailAt(e.Time, e.Node)
		} else {
			err = sim.RecoverAt(e.Time, e.Node)
		}
		if err != nil {
			return err
		}
	}
	type connKey struct{ client, host graph.NodeID }
	connIndex := map[connKey]int{}
	var connPaths []netsim.Pair
	for s, h := range res.Placement.Hosts {
		for _, c := range services[s].Clients {
			key := connKey{client: c, host: h}
			if _, ok := connIndex[key]; !ok {
				connIndex[key] = len(connPaths)
				connPaths = append(connPaths, netsim.Pair{Client: c, Host: h})
			}
		}
	}
	for t := 0.0; t <= *horizon; t += *probeEvery {
		for _, p := range connPaths {
			if err := sim.RequestAt(t, p.Client, p.Host); err != nil {
				return err
			}
		}
	}
	outcomes, err := sim.Run()
	if err != nil {
		return err
	}

	// 5. Online monitoring daemon over the outcome stream.
	daemon, err := newDaemon(router, connPaths, *k)
	if err != nil {
		return err
	}

	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].End < outcomes[j].End })
	eventCount := 0
	for _, o := range outcomes {
		idx := connIndex[connKey{client: o.Client, host: o.Host}]
		repStart := time.Now()
		events, err := daemon.Report(o.End, idx, o.Success)
		if err != nil {
			return err
		}
		if d := time.Since(repStart); slowRequest > 0 && d >= slowRequest {
			logger.Warn("slow diagnosis",
				"connection", idx, "virtual_time", o.End,
				"duration", d.Round(time.Millisecond), "threshold", slowRequest)
		}
		for _, ev := range events {
			eventCount++
			fmt.Printf("t=%7.2f  %-18s", ev.Time, ev.Kind)
			if ev.Diagnosis != nil {
				fmt.Printf("  candidates %v", ev.Diagnosis.Consistent)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d monitoring events over %d request outcomes\n", eventCount, len(outcomes))
	return nil
}

// newDaemon builds a monitord.Monitor from routed connection pairs.
func newDaemon(router *routing.Router, conns []netsim.Pair, k int) (*monitord.Monitor, error) {
	paths := make([]*bitset.Set, 0, len(conns))
	for _, c := range conns {
		p, err := router.Path(c.Client, c.Host)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return monitord.New(router.NumNodes(), k, paths)
}
