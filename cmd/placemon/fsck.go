package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/wal"
)

// cmdFsck verifies a placemond write-ahead log offline: snapshot
// integrity, every record's CRC, and the full hash chain. The report is
// JSON on stdout. A torn final record — an interrupted append, not
// tampering — is reported (and truncated with -repair) with exit 0;
// corruption of fully present bytes (a flipped bit, a missing segment, a
// broken chain link) exits non-zero with the failing offset.
func cmdFsck(args []string) error {
	fs := newFlagSet("placemon fsck")
	repair := fs.Bool("repair", false, "truncate a torn final record so the next boot recovers silently")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: placemon fsck [-repair] <wal-dir>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("fsck takes exactly one WAL directory")
	}
	dir := fs.Arg(0)

	rep, err := wal.Check(dir, *repair)
	if rep != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(rep); eerr != nil {
			return eerr
		}
	}
	if err != nil {
		return fmt.Errorf("fsck %s: %w", dir, err)
	}
	if rep.Torn && !*repair {
		logger.Warn("torn final record found (interrupted append); re-run with -repair to truncate it",
			"segment", rep.TornSegment, "offset", rep.TornOffset)
	}
	return nil
}
