package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	placemon "repro"
	"repro/internal/loadgen"
)

// cmdLoadgen is the open-loop load harness: it drives a placemond (a
// remote one via -target, or an in-process daemon when -target is empty)
// with synthesized observation traffic and grades the run against an
// SLO. The process exits non-zero when the SLO is violated, so the
// command doubles as a CI gate (`make soak-smoke`).
func cmdLoadgen(args []string) error {
	fs := newFlagSet("loadgen")
	target := fs.String("target", "", "base URL of the placemond to load (default: start an in-process daemon)")
	rps := fs.Float64("rps", 100, "target aggregate request rate")
	duration := fs.Duration("duration", 10*time.Second, "load phase length")
	scenarios := fs.Int("scenarios", 4, "number of isolated scenarios to create and drive")
	clients := fs.Int("clients", 0, "concurrent simulated clients (default 4×scenarios)")
	seed := fs.Int64("seed", 1, "seed for arrival jitter and failure synthesis")
	topo := fs.String("topology", "Abovenet", "built-in topology each scenario monitors")
	services := fs.Int("services", 4, "services placed per scenario")
	alpha := fs.Float64("alpha", 1, "QoS slack α for the scenario placement")
	k := fs.Int("k", 1, "failure budget for synthesis and diagnosis")
	diagEvery := fs.Int("diagnosis-every", 10, "every Nth arrival reads the diagnosis (-1 disables)")
	sloPath := fs.String("slo", "", "slo.json file to grade against (default: built-in SLO)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	printSched := fs.Bool("print-schedule", false, "print the arrival schedule (one offset per line) and exit without firing")
	keep := fs.Bool("keep", false, "leave the created scenarios on the daemon after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	slo := loadgen.DefaultSLO()
	if *sloPath != "" {
		var err error
		if slo, err = loadgen.LoadSLO(*sloPath); err != nil {
			return err
		}
	}

	cfg := loadgen.Config{
		BaseURL:        *target,
		RPS:            *rps,
		Duration:       *duration,
		Scenarios:      *scenarios,
		Clients:        *clients,
		Seed:           *seed,
		DiagnosisEvery: *diagEvery,
		SLO:            slo,
		KeepScenarios:  *keep,
		Workload: loadgen.WorkloadConfig{
			Topology: *topo,
			Services: *services,
			Alpha:    *alpha,
			K:        *k,
		},
	}

	var local *loadgen.LocalDaemon
	if cfg.BaseURL == "" {
		var err error
		local, err = loadgen.StartLocalDaemon(placemon.ServerConfig{
			Logger:      logger,
			SlowRequest: slowRequest,
		})
		if err != nil {
			return err
		}
		defer local.Close()
		cfg.BaseURL = local.URL
		logger.Info("started in-process daemon", "url", local.URL)
	}

	r, err := loadgen.New(cfg)
	if err != nil {
		return err
	}
	if *printSched {
		sched := r.Schedule()
		fmt.Printf("# rps=%g duration=%s seed=%d arrivals=%d fingerprint=%s\n",
			*rps, *duration, *seed, sched.Len(), sched.Fingerprint())
		for _, off := range sched.Offsets {
			fmt.Println(off.Nanoseconds())
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := r.Run(ctx)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.Passed() {
		return fmt.Errorf("SLO violated (%d violation(s))", len(rep.SLOViolations))
	}
	return nil
}
