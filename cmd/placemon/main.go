// Command placemon operates the monitoring-aware service placement
// library from the shell:
//
//	placemon topos                      # list built-in topologies (Table I)
//	placemon candidates [flags]         # QoS-feasible candidate hosts (Section III-A)
//	placemon place [flags]              # place services and report metrics
//	placemon localize [flags]           # place, inject failures, localize
//
// Run `placemon <subcommand> -h` for flags.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "placemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "topos":
		return cmdTopos(args[1:])
	case "candidates":
		return cmdCandidates(args[1:])
	case "place":
		return cmdPlace(args[1:])
	case "localize":
		return cmdLocalize(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: placemon <subcommand> [flags]

subcommands:
  topos        list the built-in topologies and their Table I characteristics
  candidates   show the QoS-feasible candidate hosts for a client set
  place        compute a monitoring-aware placement and its metrics
  localize     place services, inject failures, and localize them
  simulate     run the full loop: place, fail/recover, probe, diagnose online
  compare      run the whole algorithm portfolio and an injection shoot-out
  export       write a built-in topology as an edge list or DOT`)
}

// newFlagSet builds a flag set that prints its own usage on error.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
