// Command placemon operates the monitoring-aware service placement
// library from the shell:
//
//	placemon topos                      # list built-in topologies (Table I)
//	placemon candidates [flags]         # QoS-feasible candidate hosts (Section III-A)
//	placemon place [flags]              # place services and report metrics
//	placemon localize [flags]           # place, inject failures, localize
//
// Global flags precede the subcommand: `placemon -log-level debug place
// ...`. -log-level tunes the structured diagnostics on stderr and
// -slow-request sets the duration above which a placement run or a
// diagnosis recompute logs a warning.
//
// Run `placemon <subcommand> -h` for subcommand flags.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/trace"
)

var (
	// logger carries structured diagnostics (stderr); the global
	// -log-level flag configures it before subcommand dispatch.
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	// slowRequest is the global -slow-request threshold: placement runs
	// and diagnosis recomputes at or above it log a warning (≤ 0
	// disables).
	slowRequest = time.Second
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "placemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := newFlagSet("placemon")
	fs.Usage = usage
	logLevel := fs.String("log-level", "warn", "minimum diagnostics log level: debug, info, warn, or error")
	slow := fs.Duration("slow-request", time.Second, "duration at which a placement run or diagnosis recompute logs a warning (-1s disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := trace.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %v", err)
	}
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slowRequest = *slow

	args = fs.Args()
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "topos":
		return cmdTopos(args[1:])
	case "candidates":
		return cmdCandidates(args[1:])
	case "place":
		return cmdPlace(args[1:])
	case "localize":
		return cmdLocalize(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "fsck":
		return cmdFsck(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: placemon [global flags] <subcommand> [flags]

global flags:
  -log-level     minimum diagnostics log level: debug, info, warn, error (default warn)
  -slow-request  duration at which a placement run or diagnosis recompute
                 logs a warning (default 1s; -1s disables)

subcommands:
  topos        list the built-in topologies and their Table I characteristics
  candidates   show the QoS-feasible candidate hosts for a client set
  place        compute a monitoring-aware placement and its metrics
  localize     place services, inject failures, and localize them
  simulate     run the full loop: place, fail/recover, probe, diagnose online
  compare      run the whole algorithm portfolio and an injection shoot-out
  export       write a built-in topology as an edge list or DOT
  loadgen      drive a placemond with open-loop load and grade it against an SLO
  fsck         verify a placemond write-ahead log offline (chain, CRCs, snapshot)`)
}

// newFlagSet builds a flag set that prints its own usage on error.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
