package main

import (
	"fmt"
	"os"

	"repro/internal/failsim"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

// cmdCompare runs the whole algorithm portfolio (GC, GI, GD, optionally
// GD+LS and BF, QoS, RD) on one workload and prints both the static
// metrics table and an operational failure-injection comparison.
func cmdCompare(args []string) error {
	fs := newFlagSet("compare")
	topoName := fs.String("topology", "Abovenet", "built-in topology name")
	numServices := fs.Int("services", 3, "number of services")
	alpha := fs.Float64("alpha", 0.6, "QoS slack α in [0, 1]")
	withBF := fs.Bool("bf", false, "include the brute-force optimum (small instances only)")
	withLS := fs.Bool("ls", true, "include the GD+local-search entry")
	trials := fs.Int("trials", 300, "failure-injection trials per placement")
	k := fs.Int("k", 1, "failure budget for injection/localization")
	seed := fs.Int64("seed", 1, "seed for RD and the failure workload")
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := buildInstance(*topoName, *numServices, *alpha)
	if err != nil {
		return err
	}
	portfolio, err := placement.RunPortfolio(inst, placement.PortfolioConfig{
		IncludeBF:   *withBF,
		RDSeed:      *seed,
		LocalSearch: *withLS,
	})
	if err != nil {
		return err
	}
	fmt.Printf("portfolio on %s (%d services, α=%g):\n\n%s\n",
		*topoName, *numServices, *alpha, portfolio.Render())

	// Operational comparison: same injected failures against every
	// placement's measurement paths. BF is skipped (its Placement holds
	// only the D1 optimum).
	var names []string
	var pathSets []*monitor.PathSet
	for _, e := range portfolio.Entries {
		if e.Name == "BF" {
			continue
		}
		ps, err := inst.PathSet(e.Placement)
		if err != nil {
			return err
		}
		names = append(names, e.Name)
		pathSets = append(pathSets, ps)
	}
	comparison, err := failsim.Compare(names, pathSets, failsim.Config{
		K:      *k,
		Trials: *trials,
		Seed:   *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure injection (%d trials, up to %d simultaneous failures):\n\n%s\n",
		*trials, *k, comparison.Render())
	fmt.Printf("best localizer: %s\n", comparison.Best())
	return nil
}

// cmdExport writes a built-in topology as an edge list (placemon.Load
// format) or Graphviz DOT.
func cmdExport(args []string) error {
	fs := newFlagSet("export")
	topoName := fs.String("topology", "Abovenet", "built-in topology name")
	format := fs.String("format", "edgelist", "edgelist | dot")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := topology.ByName(*topoName)
	if err != nil {
		return err
	}
	topo, err := topology.Build(spec)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "edgelist":
		return topo.Graph.Write(w)
	case "dot":
		_, err := fmt.Fprint(w, topo.Graph.DOT(spec.Name))
		return err
	default:
		return fmt.Errorf("export: unknown format %q", *format)
	}
}

// buildInstance assembles a placement instance with round-robin clients.
func buildInstance(topoName string, numServices int, alpha float64) (*placement.Instance, error) {
	spec, err := topology.ByName(topoName)
	if err != nil {
		return nil, err
	}
	topo, err := topology.Build(spec)
	if err != nil {
		return nil, err
	}
	router, err := routing.New(topo.Graph)
	if err != nil {
		return nil, err
	}
	pool := topo.CandidateClients
	services := make([]placement.Service, numServices)
	next := 0
	for s := range services {
		clients := make([]graph.NodeID, 0, 3)
		seen := map[graph.NodeID]bool{}
		for len(clients) < 3 && len(seen) < len(pool) {
			c := pool[next%len(pool)]
			next++
			if !seen[c] {
				seen[c] = true
				clients = append(clients, c)
			}
		}
		services[s] = placement.Service{Name: fmt.Sprintf("svc-%d", s), Clients: clients}
	}
	return placement.NewInstance(router, services, alpha)
}
