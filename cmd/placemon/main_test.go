package main

import (
	"os"
	"testing"
)

// silence routes stdout to /dev/null for the duration of a test so CLI
// runs don't clutter test output.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand should error")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand should error")
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTopos(t *testing.T) {
	silence(t)
	if err := run([]string{"topos"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCandidates(t *testing.T) {
	silence(t)
	if err := run([]string{"candidates", "-topology", "Abovenet", "-alpha", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"candidates", "-clients", "0,1,2", "-alpha", "0.3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"candidates", "-topology", "nope"}); err == nil {
		t.Fatal("unknown topology should error")
	}
	if err := run([]string{"candidates", "-clients", "zero"}); err == nil {
		t.Fatal("bad client list should error")
	}
}

func TestCmdPlace(t *testing.T) {
	silence(t)
	for _, algo := range []string{"greedy", "lazy", "lazy-parallel", "qos", "random"} {
		if err := run([]string{"place", "-topology", "Tiscali", "-services", "2",
			"-alpha", "0.5", "-algorithm", algo}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := run([]string{"place", "-clients", "3,6/7,9", "-alpha", "0.8"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"place", "-algorithm", "nope"}); err == nil {
		t.Fatal("bad algorithm should error")
	}
	if err := run([]string{"place", "-objective", "nope"}); err == nil {
		t.Fatal("bad objective should error")
	}
	if err := run([]string{"place", "-clients", "1,2/x"}); err == nil {
		t.Fatal("bad client spec should error")
	}
}

func TestCmdLocalize(t *testing.T) {
	silence(t)
	if err := run([]string{"localize", "-topology", "Abovenet", "-services", "2",
		"-alpha", "0.6", "-fail", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"localize"}); err == nil {
		t.Fatal("missing -fail should error")
	}
	if err := run([]string{"localize", "-fail", "bogus"}); err == nil {
		t.Fatal("bad -fail should error")
	}
	if err := run([]string{"localize", "-fail", "9999"}); err == nil {
		t.Fatal("out-of-range failure node should error")
	}
}

func TestCmdSimulate(t *testing.T) {
	silence(t)
	if err := run([]string{"simulate", "-topology", "Abovenet", "-horizon", "50",
		"-probe", "10", "-mtbf", "100", "-mttr", "10", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"simulate", "-topology", "nope"}); err == nil {
		t.Fatal("unknown topology should error")
	}
	if err := run([]string{"simulate", "-horizon", "-5"}); err == nil {
		t.Fatal("bad horizon should error")
	}
}

func TestParseInts(t *testing.T) {
	if _, err := parseInts(""); err == nil {
		t.Fatal("empty should error")
	}
	got, err := parseInts(" 1, 2 ,3 ")
	if err != nil || len(got) != 3 || got[1] != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPlaceSaveAndLocalizeFromFile(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	file := dir + "/placement.json"
	if err := run([]string{"place", "-topology", "Abovenet", "-services", "2",
		"-alpha", "0.6", "-o", file}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"localize", "-placement", file, "-fail", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"localize", "-placement", dir + "/missing.json", "-fail", "3"}); err == nil {
		t.Fatal("missing placement file should error")
	}
}

func TestPlaceWithBranchBoundAndLS(t *testing.T) {
	silence(t)
	for _, algo := range []string{"branchbound", "greedy+ls"} {
		if err := run([]string{"place", "-topology", "Abovenet", "-services", "2",
			"-alpha", "0.5", "-algorithm", algo}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}
