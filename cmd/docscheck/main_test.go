package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file map under a temp root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, body := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestGodocViolations: missing package comments and undocumented
// exported package-level identifiers are reported; methods, unexported
// names, and documented declarations are not.
func TestGodocViolations(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/x/main.go": "// Command x.\npackage main\nfunc main() {}\n",
		"internal/good/good.go": `// Package good is fine.
package good

// Documented is documented.
func Documented() {}

type hidden struct{}

// T is a type.
type T struct{}

// Method docs are optional.
func (T) Len() int { return 0 }
func (T) Less(i, j int) bool { return false }
`,
		"internal/bad/bad.go": `package bad

func Naked() {}

type Bare struct{}

var Loose int
`,
	})
	problems, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		"package bad has no package comment",
		"exported func Naked has no doc comment",
		"exported type Bare has no doc comment",
		"exported Loose has no doc comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"good", "Len", "Less", "hidden"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive mentioning %q in:\n%s", reject, joined)
		}
	}
}

// TestMarkdownChecks: dead relative links and undeclared flag names in
// the user-facing markdown fail; live links, external URLs, anchors,
// declared flags, go-tool flags, and fenced code blocks pass. Files
// outside the checked list are ignored entirely.
func TestMarkdownChecks(t *testing.T) {
	root := writeTree(t, map[string]string{
		"cmd/d/main.go": `// Command d.
package main

import "flag"

func main() {
	var v string
	flag.StringVar(&v, "wal-dir", "", "usage")
	flag.Int("workers", 0, "usage")
}
`,
		"DESIGN.md": "# Design\nSee [the readme](README.md) and [gone](missing.md).\n" +
			"Run with `-wal-dir /data` and `-workers=4` under `-race`.\n" +
			"But `-no-such-flag` drifted.\n" +
			"```\nfenced -not-checked here\n```\n" +
			"[external](https://example.com) and [anchor](#design) are fine.\n",
		"README.md":   "# R\n",
		"SNIPPETS.md": "[dead](nope.md) `-ancient-flag`\n",
	})
	problems, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{
		`dead relative link "missing.md"`,
		"flag `-no-such-flag` is not declared",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	for _, reject := range []string{"wal-dir", "workers", "race", "not-checked", "SNIPPETS", "ancient", "example.com", "#design"} {
		if strings.Contains(joined, reject) {
			t.Errorf("false positive mentioning %q in:\n%s", reject, joined)
		}
	}
}

// TestRepoIsClean: the lint passes on the repository itself — the same
// invocation `make docs-check` gates CI with.
func TestRepoIsClean(t *testing.T) {
	problems, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Errorf("docscheck problems in the repo:\n%s", strings.Join(problems, "\n"))
	}
}
