// Command docscheck is the repo's documentation lint, run by
// `make docs-check` and CI. It enforces three invariants that keep the
// docs from drifting away from the code:
//
//  1. Godoc coverage — every non-test package has a package comment, and
//     every exported package-level identifier (func, type, const, var)
//     has a doc comment. Methods are exempt: the bulk of undocumented
//     exported methods are small interface implementations (sort.Len,
//     heap.Push, io.Read) whose contract lives on the interface.
//
//  2. Markdown links — every relative link in the user-facing markdown
//     files must resolve to an existing file or directory, so a rename
//     breaks CI instead of the reader.
//
//  3. Flag names — every `-flag`-shaped inline code span in those files
//     must name a flag actually declared by one of the cmd/ binaries
//     (or a well-known go-tool flag), so documentation of renamed or
//     removed daemon flags goes stale loudly.
//
// Historical and vendored-in files (CHANGES.md, ISSUE.md, PAPER.md,
// PAPERS.md, SNIPPETS.md) are exempt from the markdown checks: they
// record what was true at the time of writing.
//
// Usage: docscheck [-root dir]. Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// checkedMarkdown is the user-facing documentation subject to the link
// and flag checks. Files not listed here (and any *.md outside the
// list) are historical records, not living docs.
var checkedMarkdown = []string{
	"README.md",
	"ARCHITECTURE.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
}

// goToolFlags are flags of the go toolchain itself (go test, go build)
// that the docs legitimately mention without any cmd/ binary declaring
// them.
var goToolFlags = map[string]bool{
	"bench": true, "benchmem": true, "benchtime": true, "count": true,
	"cover": true, "coverprofile": true, "cpuprofile": true, "fuzz": true,
	"fuzztime": true, "json": true, "list": true, "memprofile": true,
	"race": true, "run": true, "short": true, "tags": true,
	"timeout": true, "v": true,
}

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()
	problems, err := lint(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// lint runs every check and returns the violations in deterministic
// order.
func lint(root string) ([]string, error) {
	var problems []string
	godoc, err := checkGodoc(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, godoc...)

	flags, err := declaredFlags(root)
	if err != nil {
		return nil, err
	}
	md, err := checkMarkdown(root, flags)
	if err != nil {
		return nil, err
	}
	return append(problems, md...), nil
}

// checkGodoc walks every non-test .go file and reports packages without
// a package comment and exported package-level identifiers without doc
// comments.
func checkGodoc(root string) ([]string, error) {
	var problems []string
	// pkgCommented tracks, per package directory, whether any file
	// carries the package comment (doc.go usually does).
	pkgCommented := map[string]bool{}
	pkgFirstFile := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir := filepath.Dir(path)
		if f.Doc != nil {
			pkgCommented[dir] = true
		} else if _, seen := pkgFirstFile[dir]; !seen {
			pkgFirstFile[dir] = path
		}
		rel := relPath(root, path)
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				// Methods are exempt; see the package comment.
				if decl.Recv == nil && decl.Name.IsExported() && decl.Doc == nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: exported func %s has no doc comment",
							rel, fset.Position(decl.Pos()).Line, decl.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && decl.Doc == nil && sp.Doc == nil {
							problems = append(problems,
								fmt.Sprintf("%s:%d: exported type %s has no doc comment",
									rel, fset.Position(sp.Pos()).Line, sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && decl.Doc == nil && sp.Doc == nil && sp.Comment == nil {
								problems = append(problems,
									fmt.Sprintf("%s:%d: exported %s has no doc comment",
										rel, fset.Position(n.Pos()).Line, n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for dir, first := range pkgFirstFile {
		if !pkgCommented[dir] {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package comment",
					relPath(root, first), filepath.Base(dir)))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// declaredFlags parses every cmd/ binary and collects the flag names it
// registers: the first string-literal argument of any flag-registration
// call (fs.StringVar(&v, "name", ...), flag.Int("name", ...), ...).
func declaredFlags(root string) (map[string]bool, error) {
	flags := map[string]bool{}
	methods := map[string]bool{
		"String": true, "StringVar": true, "Int": true, "IntVar": true,
		"Bool": true, "BoolVar": true, "Duration": true, "DurationVar": true,
		"Int64": true, "Int64Var": true, "Float64": true, "Float64Var": true,
		"Uint": true, "UintVar": true, "Var": true, "Func": true,
	}
	cmdDir := filepath.Join(root, "cmd")
	err := filepath.Walk(cmdDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !methods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					name := strings.Trim(lit.Value, `"`)
					if regexp.MustCompile(`^[a-z][a-z0-9-]*$`).MatchString(name) {
						flags[name] = true
					}
					break // only the first string literal names the flag
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return flags, nil
}

var (
	// codeSpan matches inline markdown code spans; links and flag
	// tokens inside fenced blocks are handled line-by-line too, which
	// is fine: fenced command lines quote flags without backticks.
	codeSpan = regexp.MustCompile("`([^`]+)`")
	// mdLink matches [text](target) links; images ![...](...) share
	// the tail and are checked identically.
	mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)
)

// checkMarkdown verifies relative links resolve and `-flag` code spans
// name declared flags in the user-facing markdown files.
func checkMarkdown(root string, flags map[string]bool) ([]string, error) {
	var problems []string
	for _, name := range checkedMarkdown {
		path := filepath.Join(root, name)
		raw, err := os.ReadFile(path)
		if os.IsNotExist(err) {
			continue // the file genuinely may not exist yet
		}
		if err != nil {
			return nil, err
		}
		inFence := false
		for i, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(target))); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: dead relative link %q", name, i+1, m[1]))
				}
			}
			if inFence {
				continue
			}
			for _, m := range codeSpan.FindAllStringSubmatch(line, -1) {
				span := m[1]
				if !strings.HasPrefix(span, "-") {
					continue
				}
				// First word of the span, sans leading dashes and any
				// =value suffix: `-wal-dir`, `-wal-sync group`,
				// `-benchtime=2000x` all reduce to the flag name.
				word := strings.FieldsFunc(span, func(r rune) bool { return r == ' ' || r == '=' })[0]
				fname := strings.TrimLeft(word, "-")
				if !regexp.MustCompile(`^[a-z][a-z0-9-]*$`).MatchString(fname) {
					continue
				}
				if !flags[fname] && !goToolFlags[fname] {
					problems = append(problems,
						fmt.Sprintf("%s:%d: flag `-%s` is not declared by any cmd/ binary", name, i+1, fname))
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// relPath renders path relative to root for stable, readable output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return path
}
