package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunTableI(t *testing.T) {
	silence(t)
	if err := run([]string{"-only", "TableI"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4(t *testing.T) {
	silence(t)
	if err := run([]string{"-only", "Fig4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig6WithCSV(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	if err := run([]string{"-only", "Fig6", "-out", dir, "-rdseeds", "2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.Contains(content, "topology,algorithm,alpha") {
		t.Fatalf("csv missing header:\n%s", content)
	}
	if !strings.Contains(content, "Tiscali,GD,") {
		t.Fatalf("csv missing GD rows:\n%s", content)
	}
}

func TestRunFig8(t *testing.T) {
	silence(t)
	if err := run([]string{"-only", "Fig8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	silence(t)
	if err := run([]string{"-only", "Fig99"}); err == nil {
		t.Fatal("unknown artifact should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunFig4CSV(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	if err := run([]string{"-only", "Fig4", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4_abovenet.csv", "fig4_tiscali.csv", "fig4_att.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "topology,alpha,min") {
			t.Fatalf("%s header missing", name)
		}
	}
}

func TestRunFig8CSV(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	if err := run([]string{"-only", "Fig8", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig8_att.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "AT&T,GD,") {
		t.Fatal("fig8 csv rows missing")
	}
}
