// Command experiments regenerates every table and figure of the paper's
// evaluation (Table I, Figs. 4-8) from the library, printing aligned text
// tables to stdout and optionally writing CSV files:
//
//	experiments                 # everything, text to stdout
//	experiments -out results    # also write CSV per figure into results/
//	experiments -only Fig5      # a single artifact (TableI, Fig4..Fig8)
//
// With -grid it switches to declarative mode, executing an
// experiments.json grid (placement runs plus loadgen profiles) into a
// timestamped paper_runs/<ts>/{csv,logs,analysis,summary.md} tree and
// validating the regenerated CSVs against the golden figures:
//
//	experiments -grid experiments.json -runs-dir paper_runs -goldens results
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	out := fs.String("out", "", "directory for CSV output (created if needed; empty = stdout only)")
	only := fs.String("only", "", "run a single artifact: TableI, Fig4, Fig5, Fig6, Fig7, Fig8, K2, OpLoop")
	rdSeeds := fs.Int("rdseeds", 5, "random-placement seeds averaged per α")
	seed := fs.Int64("seed", 1, "base seed for randomized series")
	lazy := fs.Bool("lazy", true, "use the lazy-greedy (CELF) engine for the greedy series; identical curves, fewer evaluations")
	grid := fs.String("grid", "", "experiments.json grid spec: run declaratively into -runs-dir instead of the fixed artifact list")
	runsDir := fs.String("runs-dir", "paper_runs", "with -grid: parent directory for the timestamped run tree")
	goldens := fs.String("goldens", "results", "with -grid: directory holding the golden CSVs runs validate against")
	ts := fs.String("ts", "", "with -grid: override the run-tree timestamp (default: current UTC time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *grid != "" {
		return runGrid(*grid, *runsDir, *goldens, *ts)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	r := &runner{out: *out, rdSeeds: *rdSeeds, seed: *seed, lazy: *lazy}

	artifacts := []struct {
		name string
		fn   func() error
	}{
		{"TableI", r.tableI},
		{"Fig4", r.fig4},
		{"Fig5", r.fig5},
		{"Fig6", r.fig6},
		{"Fig7", r.fig7},
		{"Fig8", r.fig8},
		{"K2", r.k2},
		{"OpLoop", r.opLoop},
	}
	want := strings.ToLower(*only)
	ran := false
	for _, a := range artifacts {
		if want != "" && strings.ToLower(a.name) != want {
			continue
		}
		if err := a.fn(); err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown artifact %q", *only)
	}
	return nil
}

type runner struct {
	out     string
	rdSeeds int
	seed    int64
	lazy    bool
}

func (r *runner) tableI() error {
	rows, err := experiments.TableI()
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderTableI(rows))
	return nil
}

func (r *runner) fig4() error {
	for _, w := range experiments.PaperWorkloads() {
		p, err := experiments.Prepare(w)
		if err != nil {
			return err
		}
		rows, err := experiments.Fig4(p, experiments.DefaultAlphas())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig4(w.Topo.Name, rows))
		if r.out != "" {
			if err := r.writeCSV("fig4_"+slug(w.Topo.Name)+".csv", func(f *os.File) error {
				return experiments.WriteFig4CSV(f, w.Topo.Name, rows)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// slug lowercases a topology name for file naming.
func slug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, "&", ""))
}

// writeCSV creates a file in the output directory and hands it to fn.
func (r *runner) writeCSV(name string, fn func(*os.File) error) error {
	f, err := os.Create(filepath.Join(r.out, name))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (r *runner) fig5() error { return r.curves("Fig. 5", "Abovenet", true) }
func (r *runner) fig6() error { return r.curves("Fig. 6", "Tiscali", false) }
func (r *runner) fig7() error { return r.curves("Fig. 7", "AT&T", false) }

func (r *runner) curves(figure, topo string, includeBF bool) error {
	w, err := experiments.WorkloadByName(topo)
	if err != nil {
		return err
	}
	p, err := experiments.Prepare(w)
	if err != nil {
		return err
	}
	curves, err := experiments.MonitoringCurves(p, experiments.CurvesConfig{
		Alphas:    experiments.DefaultAlphas(),
		IncludeBF: includeBF,
		RDSeeds:   r.rdSeeds,
		Seed:      r.seed,
		Lazy:      r.lazy,
	})
	if err != nil {
		return err
	}
	for _, m := range experiments.Measures() {
		fmt.Println(experiments.RenderCurves(figure, topo, curves, m))
	}
	if r.out != "" {
		name := strings.ToLower(strings.ReplaceAll(figure, ". ", "")) + ".csv"
		f, err := os.Create(filepath.Join(r.out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteCurvesCSV(f, topo, curves); err != nil {
			return err
		}
		return f.Close()
	}
	return nil
}

func (r *runner) k2() error {
	w, err := experiments.WorkloadByName("Abovenet")
	if err != nil {
		return err
	}
	p, err := experiments.Prepare(w)
	if err != nil {
		return err
	}
	curves, err := experiments.K2Sweep(p, experiments.K2Config{
		Alphas:  []float64{0, 0.25, 0.5, 0.75, 1},
		RDSeeds: r.rdSeeds,
		Seed:    r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderK2("Abovenet", curves))
	if r.out != "" {
		return r.writeCSV("k2_abovenet.csv", func(f *os.File) error {
			return experiments.WriteK2CSV(f, "Abovenet", curves)
		})
	}
	return nil
}

func (r *runner) opLoop() error {
	w, err := experiments.WorkloadByName("Tiscali")
	if err != nil {
		return err
	}
	p, err := experiments.Prepare(w)
	if err != nil {
		return err
	}
	rows, err := experiments.OpLoopSweep(p, experiments.OpLoopConfig{
		Alpha:        0.6,
		ProbePeriods: []float64{2, 5, 20},
		Horizon:      5000,
		MTBF:         500,
		MTTR:         90,
		Seed:         r.seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderOpLoop("Tiscali", 0.6, rows))
	if r.out != "" {
		return r.writeCSV("oploop_tiscali.csv", func(f *os.File) error {
			return experiments.WriteOpLoopCSV(f, "Tiscali", rows)
		})
	}
	return nil
}

func (r *runner) fig8() error {
	w, err := experiments.WorkloadByName("AT&T")
	if err != nil {
		return err
	}
	p, err := experiments.Prepare(w)
	if err != nil {
		return err
	}
	dists, err := experiments.Fig8(p, experiments.Fig8Config{Alpha: 0.6, Seed: r.seed})
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFig8("AT&T", 0.6, dists))
	if r.out != "" {
		return r.writeCSV("fig8_att.csv", func(f *os.File) error {
			return experiments.WriteFig8CSV(f, "AT&T", dists)
		})
	}
	return nil
}
