package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeGridSpec drops a spec file into a temp dir and returns its path.
func writeGridSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "experiments.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunGridEndToEnd executes a one-run grid with golden validation
// against the repo's archived figures plus a short loadgen profile, and
// checks the produced tree.
func TestRunGridEndToEnd(t *testing.T) {
	silence(t)
	spec := writeGridSpec(t, `{
		"defaults": {"seed": 1, "rdseeds": 5, "lazy": true},
		"placements": [
			{"name": "fig4_abovenet", "kind": "fig4", "topology": "Abovenet", "repeats": 2, "golden": "fig4_abovenet.csv"}
		],
		"loadgen": [
			{"name": "micro", "rps": 50, "duration": "1s", "scenarios": 2, "services": 2, "topology": "Abovenet"}
		]
	}`)
	runs := t.TempDir()
	if err := run([]string{"-grid", spec, "-runs-dir", runs, "-goldens", "../../results", "-ts", "testrun"}); err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(runs, "testrun")
	for _, rel := range []string{
		"csv/fig4_abovenet.csv",
		"logs/fig4_abovenet.log",
		"logs/loadgen_micro.log",
		"analysis/validation.csv",
		"analysis/loadgen_micro.json",
		"summary.md",
	} {
		if _, err := os.Stat(filepath.Join(root, rel)); err != nil {
			t.Errorf("missing artifact %s: %v", rel, err)
		}
	}
	sum, err := os.ReadFile(filepath.Join(root, "summary.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"| fig4_abovenet | fig4 | Abovenet | 2 | fig4_abovenet.csv | ok |", "| micro | 50 | 1s |", "pass |"} {
		if !strings.Contains(string(sum), want) {
			t.Errorf("summary.md missing %q:\n%s", want, sum)
		}
	}
	val, err := os.ReadFile(filepath.Join(root, "analysis", "validation.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(val), `fig4_abovenet,fig4,Abovenet,2,fig4_abovenet.csv,"ok"`) {
		t.Errorf("validation.csv wrong:\n%s", val)
	}
}

// TestRunGridFailsOnDriftedGolden: validation against a deliberately
// wrong golden makes the whole invocation exit non-zero, but the tree is
// still written for inspection.
func TestRunGridFailsOnDriftedGolden(t *testing.T) {
	silence(t)
	goldens := t.TempDir()
	if err := os.WriteFile(filepath.Join(goldens, "bad.csv"), []byte("topology,alpha,min,q1,median,q3,max\nAbovenet,0,999,999,999,999,999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := writeGridSpec(t, `{
		"placements": [
			{"name": "fig4_abovenet", "kind": "fig4", "topology": "Abovenet", "golden": "bad.csv"}
		]
	}`)
	runs := t.TempDir()
	err := run([]string{"-grid", spec, "-runs-dir", runs, "-goldens", goldens, "-ts", "drift"})
	if err == nil {
		t.Fatal("drifted golden did not fail the grid")
	}
	if !strings.Contains(err.Error(), "failed validation") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, serr := os.Stat(filepath.Join(runs, "drift", "summary.md")); serr != nil {
		t.Errorf("summary.md not written on failure: %v", serr)
	}
	val, verr := os.ReadFile(filepath.Join(runs, "drift", "analysis", "validation.csv"))
	if verr != nil {
		t.Fatal(verr)
	}
	if !strings.Contains(string(val), "FAIL") {
		t.Errorf("validation.csv does not record the failure:\n%s", val)
	}
}

// TestRunGridBadSpec: a malformed spec fails before any tree is created.
func TestRunGridBadSpec(t *testing.T) {
	silence(t)
	spec := writeGridSpec(t, `{"placements": [{"name": "x", "kind": "nosuch", "topology": "Abovenet"}]}`)
	runs := t.TempDir()
	if err := run([]string{"-grid", spec, "-runs-dir", runs}); err == nil {
		t.Fatal("bad spec accepted")
	}
	entries, err := os.ReadDir(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("tree created despite bad spec: %v", entries)
	}
}
