package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	placemon "repro"
	"repro/internal/experiments"
	"repro/internal/loadgen"
)

// runGrid executes a declarative experiments.json into a timestamped
// paper_runs/<ts>/ tree:
//
//	paper_runs/<ts>/csv/<run>.csv        regenerated figure data
//	paper_runs/<ts>/logs/<run>.log       rendered text tables / loadgen reports
//	paper_runs/<ts>/analysis/            validation.csv + loadgen_<profile>.json
//	paper_runs/<ts>/summary.md           the human entry point
//
// Every run with a `golden` is validated against the archived figures in
// the goldens directory (results/ by default); loadgen profiles are
// driven against an in-process placemond and graded by their SLO. Any
// validation or SLO failure makes the whole invocation exit non-zero —
// after all runs have executed, so a single drifted figure still leaves
// a complete tree to inspect.
func runGrid(specPath, runsDir, goldens, ts string) error {
	spec, err := experiments.LoadGridSpec(specPath)
	if err != nil {
		return err
	}
	if ts == "" {
		ts = time.Now().UTC().Format("20060102T150405Z")
	}
	root := filepath.Join(runsDir, ts)
	for _, sub := range []string{"csv", "logs", "analysis"} {
		if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
			return err
		}
	}
	fmt.Printf("paper runs → %s (%d placement runs, %d load profiles)\n",
		root, len(spec.Placements), len(spec.Loadgen))

	failures := 0
	var outcomes []experiments.RunOutcome
	for _, run := range spec.Placements {
		start := time.Now()
		csv, text, err := spec.ExecutePlacement(run)
		out := experiments.RunOutcome{
			Name: run.Name, Kind: run.Kind, Topology: run.Topology,
			Repeats: max(run.Repeats, 1), Golden: run.Golden,
		}
		if err != nil {
			out.Status = "FAIL: " + err.Error()
			failures++
			outcomes = append(outcomes, out)
			fmt.Printf("  %-16s FAIL (%v)\n", run.Name, err)
			continue
		}
		if err := os.WriteFile(filepath.Join(root, "logs", run.Name+".log"), []byte(text), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(root, "csv", run.Name+".csv"), csv, 0o644); err != nil {
			return err
		}
		out.Status = "unvalidated"
		if run.Golden != "" {
			want, err := os.ReadFile(filepath.Join(goldens, run.Golden))
			if err == nil {
				err = experiments.ValidateCSV(csv, want)
			}
			if err != nil {
				out.Status = "FAIL: " + err.Error()
				failures++
			} else {
				out.Status = "ok"
			}
		}
		outcomes = append(outcomes, out)
		fmt.Printf("  %-16s %s (%.1fs)\n", run.Name, out.Status, time.Since(start).Seconds())
	}

	loads, loadFailures, err := runLoadProfiles(spec, root)
	if err != nil {
		return err
	}
	failures += loadFailures

	if err := writeValidationCSV(filepath.Join(root, "analysis", "validation.csv"), outcomes); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(root, "summary.md"))
	if err != nil {
		return err
	}
	if err := experiments.WriteSummary(sf, ts, spec.Defaults, outcomes, loads); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Printf("summary → %s\n", filepath.Join(root, "summary.md"))
	if failures > 0 {
		return fmt.Errorf("%d run(s) failed validation", failures)
	}
	return nil
}

// runLoadProfiles drives each declared loadgen profile against its own
// in-process placemond, writing the text report to logs/ and the full
// JSON report to analysis/.
func runLoadProfiles(spec experiments.GridSpec, root string) ([]experiments.LoadgenOutcome, int, error) {
	var outcomes []experiments.LoadgenOutcome
	failures := 0
	for _, lp := range spec.Loadgen {
		out, err := runLoadProfile(lp, root)
		if err != nil {
			return nil, 0, fmt.Errorf("loadgen %s: %w", lp.Name, err)
		}
		if out.Status != "pass" {
			failures++
		}
		outcomes = append(outcomes, out)
		fmt.Printf("  loadgen %-8s %s (p99 %.1fms, errors %.2f%%)\n",
			lp.Name, out.Status, out.P99*1e3, out.ErrorRate*100)
	}
	return outcomes, failures, nil
}

func runLoadProfile(lp experiments.LoadgenProfile, root string) (experiments.LoadgenOutcome, error) {
	out := experiments.LoadgenOutcome{Name: lp.Name, RPS: lp.RPS, Duration: lp.Duration}
	dur, err := time.ParseDuration(lp.Duration)
	if err != nil {
		return out, fmt.Errorf("bad duration %q: %w", lp.Duration, err)
	}
	slo := loadgen.DefaultSLO()
	if len(lp.SLO) > 0 {
		if slo, err = loadgen.ParseSLO(lp.SLO); err != nil {
			return out, err
		}
	}
	d, err := loadgen.StartLocalDaemon(placemon.ServerConfig{})
	if err != nil {
		return out, err
	}
	defer d.Close()

	r, err := loadgen.New(loadgen.Config{
		BaseURL:   d.URL,
		RPS:       lp.RPS,
		Duration:  dur,
		Scenarios: lp.Scenarios,
		Clients:   lp.Clients,
		Seed:      lp.Seed,
		SLO:       slo,
		Workload: loadgen.WorkloadConfig{
			Topology: lp.Topology,
			Services: lp.Services,
			Alpha:    lp.Alpha,
			K:        lp.K,
		},
	})
	if err != nil {
		return out, err
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		return out, err
	}

	lf, err := os.Create(filepath.Join(root, "logs", "loadgen_"+lp.Name+".log"))
	if err != nil {
		return out, err
	}
	rep.WriteText(lf)
	if err := lf.Close(); err != nil {
		return out, err
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return out, err
	}
	if err := os.WriteFile(filepath.Join(root, "analysis", "loadgen_"+lp.Name+".json"), raw, 0o644); err != nil {
		return out, err
	}

	out.Arrivals = rep.Arrivals
	out.P50, out.P99 = rep.Overall.P50, rep.Overall.P99
	out.ErrorRate = rep.ErrorRate()
	if rep.Passed() {
		out.Status = "pass"
	} else {
		out.Status = fmt.Sprintf("FAIL: %d SLO violation(s)", len(rep.SLOViolations))
	}
	return out, nil
}

// writeValidationCSV archives the per-run validation verdicts in a
// machine-readable form next to the loadgen reports.
func writeValidationCSV(path string, outcomes []experiments.RunOutcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "run,kind,topology,repeats,golden,status")
	for _, o := range outcomes {
		fmt.Fprintf(f, "%s,%s,%s,%d,%s,%q\n", o.Name, o.Kind, o.Topology, o.Repeats, o.Golden, o.Status)
	}
	return f.Close()
}
