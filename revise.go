package placemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/placement"
	"repro/internal/registry"
	"repro/internal/server"
)

// NetworkChange is the body of PUT /v1/scenarios/{id}/network and the
// argument of Server.ReplaceScenarioNetwork: a replacement network in
// the same form ScenarioSpec carries one — a built-in topology name, or
// an inline node count plus undirected edge list. The scenario keeps its
// ID, services, QoS slack, failure budget, dedup window, and audit
// ledger; services are re-placed on the new network by the warm-start
// engine and monitoring restarts against the new paths.
type NetworkChange struct {
	// Topology names a built-in topology (see TopologyNames); empty means
	// the network is given inline by Nodes/Edges.
	Topology string `json:"topology,omitempty"`
	// Nodes and Edges describe the replacement network inline.
	Nodes int      `json:"nodes,omitempty"`
	Edges [][2]int `json:"edges,omitempty"`
}

// reviserCacheCap bounds the per-scenario warm-placer cache. Evicting
// everything past the cap is crude but safe: a warm miss only costs the
// cold initial sweep, never correctness.
const reviserCacheCap = 64

// newNetworkReviser returns the server.ReviseFunc the facade installs —
// stored scenario document plus NetworkChange body in, fully revised
// document out — together with a prewarm function that charges the same
// per-scenario gain cache from a scenario document alone. Re-placement
// runs the warm-start engine with that cache, so successive revisions of
// a large scenario only re-evaluate candidates whose measurement paths
// actually changed; the result is still bit-identical to a cold greedy
// run on the new network. The prewarm hook is how a cluster node that
// just adopted a migrated scenario gets the same warm revisions the
// source node had: the serving layer calls it in the background after an
// adopt, and a failure only costs the cold first revision.
func newNetworkReviser() (server.ReviseFunc, func(id string, spec []byte)) {
	var mu sync.Mutex
	warm := map[string]*placement.WarmPlacer{}
	placerFor := func(id string) *placement.WarmPlacer {
		mu.Lock()
		defer mu.Unlock()
		if w, ok := warm[id]; ok {
			return w
		}
		if len(warm) >= reviserCacheCap {
			warm = map[string]*placement.WarmPlacer{}
		}
		w := placement.NewWarmPlacer()
		warm[id] = w
		return w
	}
	prewarm := func(id string, spec []byte) {
		sp, err := ParseScenarioSpec(spec)
		if err != nil {
			return
		}
		nw, err := sp.Network()
		if err != nil {
			return
		}
		inst, obj, err := nw.prepare(sp.Placement.ToServices(),
			PlaceConfig{Alpha: sp.Placement.Alpha})
		if err != nil {
			return
		}
		_, _, _ = placerFor(id).Place(context.Background(), inst, obj, 0, nil)
	}
	revise := func(id string, spec, change []byte) ([]byte, error) {
		sp, err := ParseScenarioSpec(spec)
		if err != nil {
			return nil, err
		}
		var ch NetworkChange
		dec := json.NewDecoder(bytes.NewReader(change))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ch); err != nil {
			return nil, fmt.Errorf("placemon: decode network change: %w", err)
		}
		if ch.Topology == "" && ch.Nodes <= 0 {
			return nil, fmt.Errorf("placemon: network change names no network (topology or nodes/edges)")
		}
		revised := sp
		revised.Topology, revised.Nodes, revised.Edges = ch.Topology, ch.Nodes, ch.Edges
		revised.Placement.Topology = ch.Topology
		nw, err := revised.Network()
		if err != nil {
			return nil, err
		}
		inst, obj, err := nw.prepare(revised.Placement.ToServices(),
			PlaceConfig{Alpha: revised.Placement.Alpha})
		if err != nil {
			return nil, err
		}
		res, _, err := placerFor(id).Place(context.Background(), inst, obj, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("placemon: re-place scenario %s: %w", id, err)
		}
		revised.Placement.Hosts = append([]int(nil), res.Placement.Hosts...)
		out, err := json.Marshal(revised)
		if err != nil {
			return nil, fmt.Errorf("placemon: encode revised scenario spec: %w", err)
		}
		return out, nil
	}
	return revise, prewarm
}

// ReplaceScenarioNetwork revises a hosted scenario's network in place:
// the new network is built, the scenario's services are re-placed on it
// (warm-started from the previous revision's marginal gains), and
// monitoring restarts against the new paths while the scenario keeps its
// identity, dedup window, and audit ledger. Errors wrap
// ErrScenarioNotFound; revision and build failures surface as-is.
func (s *Server) ReplaceScenarioNetwork(id string, change NetworkChange) error {
	raw, err := json.Marshal(change)
	if err != nil {
		return fmt.Errorf("placemon: encode network change: %w", err)
	}
	if err := s.inner.ReplaceScenarioNetwork(id, raw); err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			return fmt.Errorf("%w: %q", ErrScenarioNotFound, id)
		}
		return fmt.Errorf("placemon: replace scenario %s network: %w", id, err)
	}
	return nil
}
