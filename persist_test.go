package placemon

import (
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadPlacementRoundTrip(t *testing.T) {
	doc := NewPlacementFile("Abovenet", 0.5,
		[]Service{{Name: "svc", Clients: []int{1, 2}}, {Clients: []int{3}}},
		[]int{4, 5})
	var buf strings.Builder
	if err := SavePlacement(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, doc) {
		t.Fatalf("round trip changed document:\n%+v\n%+v", got, doc)
	}
	services := got.ToServices()
	if len(services) != 2 || services[0].Name != "svc" || !reflect.DeepEqual(services[1].Clients, []int{3}) {
		t.Fatalf("ToServices = %+v", services)
	}
}

func TestSavePlacementValidation(t *testing.T) {
	var buf strings.Builder
	bad := PlacementFile{Services: []ServiceRecord{{Clients: []int{1}}}, Hosts: nil}
	if err := SavePlacement(&buf, bad); err == nil {
		t.Fatal("length mismatch should error")
	}
	bad = PlacementFile{Services: []ServiceRecord{{}}, Hosts: []int{1}}
	if err := SavePlacement(&buf, bad); err == nil {
		t.Fatal("clientless service should error")
	}
}

func TestLoadPlacementValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{"hosts":[1],"services":[]}`,
		`{"hosts":[1],"services":[{"clients":[]}]}`,
		`{"hosts":[1],"services":[{"clients":[1]}],"surprise":true}`,
	}
	for _, c := range cases {
		if _, err := LoadPlacement(strings.NewReader(c)); err == nil {
			t.Fatalf("LoadPlacement(%q) should fail", c)
		}
	}
}

func TestPlacementFileEndToEnd(t *testing.T) {
	// Save a real placement, reload it, and re-evaluate to identical
	// metrics.
	nw := fig1Network(t)
	services := fig1Services(3)
	res, err := nw.Place(services, PlaceConfig{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	doc := NewPlacementFile("", 0.5, services, res.Hosts)
	var buf strings.Builder
	if err := SavePlacement(&buf, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlacement(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	again, err := nw.Evaluate(loaded.ToServices(), loaded.Hosts, loaded.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if again.Identifiable != res.Identifiable || again.Distinguishable != res.Distinguishable {
		t.Fatalf("reloaded metrics differ: %+v vs %+v", again, res)
	}
}
