package placemon

import (
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadPlacementRoundTrip(t *testing.T) {
	doc := NewPlacementFile("Abovenet", 0.5,
		[]Service{{Name: "svc", Clients: []int{1, 2}}, {Clients: []int{3}}},
		[]int{4, 5})
	var buf strings.Builder
	if err := SavePlacement(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, doc) {
		t.Fatalf("round trip changed document:\n%+v\n%+v", got, doc)
	}
	services := got.ToServices()
	if len(services) != 2 || services[0].Name != "svc" || !reflect.DeepEqual(services[1].Clients, []int{3}) {
		t.Fatalf("ToServices = %+v", services)
	}
}

func TestSavePlacementValidation(t *testing.T) {
	var buf strings.Builder
	bad := PlacementFile{Services: []ServiceRecord{{Clients: []int{1}}}, Hosts: nil}
	if err := SavePlacement(&buf, bad); err == nil {
		t.Fatal("length mismatch should error")
	}
	bad = PlacementFile{Services: []ServiceRecord{{}}, Hosts: []int{1}}
	if err := SavePlacement(&buf, bad); err == nil {
		t.Fatal("clientless service should error")
	}
}

func TestLoadPlacementValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{"hosts":[1],"services":[]}`,
		`{"hosts":[1],"services":[{"clients":[]}]}`,
		`{"hosts":[1],"services":[{"clients":[1]}],"surprise":true}`,
		// Structural invariants a hand-edited file can break: slack
		// outside [0, 1], a host below the -1 "unplaced" sentinel, and a
		// negative client ID.
		`{"alpha":-0.1,"hosts":[1],"services":[{"clients":[1]}]}`,
		`{"alpha":1.5,"hosts":[1],"services":[{"clients":[1]}]}`,
		`{"alpha":0.5,"hosts":[-2],"services":[{"clients":[1]}]}`,
		`{"alpha":0.5,"hosts":[1],"services":[{"clients":[-3]}]}`,
	}
	for _, c := range cases {
		if _, err := LoadPlacement(strings.NewReader(c)); err == nil {
			t.Fatalf("LoadPlacement(%q) should fail", c)
		}
	}
	// An unplaced service (host -1) remains valid.
	ok := `{"alpha":0.5,"hosts":[-1],"services":[{"clients":[1]}]}`
	if _, err := LoadPlacement(strings.NewReader(ok)); err != nil {
		t.Fatalf("LoadPlacement(%q) = %v, want ok", ok, err)
	}
}

func TestPlacementFileValidate(t *testing.T) {
	nw := fig1Network(t)
	n := nw.NumNodes()
	good := PlacementFile{
		Alpha:    0.5,
		Services: []ServiceRecord{{Clients: []int{0, 1}}},
		Hosts:    []int{n - 1},
	}
	if err := good.Validate(nw); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	unplaced := good
	unplaced.Hosts = []int{-1}
	if err := unplaced.Validate(nw); err != nil {
		t.Fatalf("unplaced host rejected: %v", err)
	}

	badHost := good
	badHost.Hosts = []int{n}
	if err := badHost.Validate(nw); err == nil {
		t.Fatal("host beyond the network should error")
	}
	badClient := good
	badClient.Services = []ServiceRecord{{Clients: []int{n + 3}}}
	if err := badClient.Validate(nw); err == nil {
		t.Fatal("client beyond the network should error")
	}
	if err := good.Validate(nil); err == nil {
		t.Fatal("nil network should error")
	}
}

func TestNewServerRejectsOutOfNetworkPlacement(t *testing.T) {
	// The serving path runs Validate too, so a document from a larger
	// topology cannot reach path construction with foreign node IDs.
	nw := fig1Network(t)
	doc := PlacementFile{
		Alpha:    0.5,
		Services: []ServiceRecord{{Clients: []int{0}}},
		Hosts:    []int{nw.NumNodes() + 10},
	}
	if _, err := NewServer(nw, doc, ServerConfig{}); err == nil {
		t.Fatal("NewServer should reject a host outside the network")
	}
}

func TestPlacementFileEndToEnd(t *testing.T) {
	// Save a real placement, reload it, and re-evaluate to identical
	// metrics.
	nw := fig1Network(t)
	services := fig1Services(3)
	res, err := nw.Place(services, PlaceConfig{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	doc := NewPlacementFile("", 0.5, services, res.Hosts)
	var buf strings.Builder
	if err := SavePlacement(&buf, doc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlacement(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	again, err := nw.Evaluate(loaded.ToServices(), loaded.Hosts, loaded.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if again.Identifiable != res.Identifiable || again.Distinguishable != res.Distinguishable {
		t.Fatalf("reloaded metrics differ: %+v vs %+v", again, res)
	}
}
