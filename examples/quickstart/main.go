// Quickstart: build a network, place services with the monitoring-aware
// greedy, and compare the result with the QoS-only baseline — the paper's
// Fig. 1 story in ~60 lines.
package main

import (
	"fmt"
	"log"

	placemon "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's Fig. 1 topology: a core router r (node 0), four
	// aggregation nodes a..d (1..4), and four client access points e..h
	// (5..8), one per aggregation node.
	nw, err := placemon.NewNetwork(9, []placemon.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 5}, {U: 2, V: 6}, {U: 3, V: 7}, {U: 4, V: 8},
	})
	if err != nil {
		return err
	}

	// Five services, all consumed by the four access points.
	services := make([]placemon.Service, 5)
	for i := range services {
		services[i] = placemon.Service{
			Name:    fmt.Sprintf("svc-%d", i),
			Clients: []int{5, 6, 7, 8},
		}
	}

	// Allow hosts whose worst-case client distance is at most halfway
	// between the best and worst possible (α = 0.5): r plus a..d.
	const alpha = 0.5

	qos, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     alpha,
		Algorithm: placemon.AlgorithmQoS,
	})
	if err != nil {
		return err
	}
	monitoringAware, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     alpha,
		Objective: placemon.ObjectiveDistinguishability, // the paper's best all-rounder
	})
	if err != nil {
		return err
	}

	fmt.Println("placement            hosts           covered  identifiable  distinguishable pairs")
	show := func(name string, r *placemon.Result) {
		fmt.Printf("%-20s %-15v %7d %13d %22d\n",
			name, r.Hosts, r.Coverage, r.Identifiable, r.Distinguishable)
	}
	show("best-QoS", qos)
	show("monitoring-aware", monitoringAware)

	fmt.Println()
	fmt.Println("Both placements satisfy the same QoS bound, but the monitoring-aware one")
	fmt.Println("lets every node failure be pinpointed from client-server connection states.")
	return nil
}
