// Tradeoff: sweep the QoS slack α from 0 (only latency-optimal hosts) to
// 1 (any host) on the AT&T-scale topology and print the monitoring-QoS
// tradeoff curve — the question the paper's evaluation answers: how much
// observability does each unit of QoS slack buy?
package main

import (
	"fmt"
	"log"

	placemon "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw, err := placemon.BuildTopology("AT&T")
	if err != nil {
		return err
	}
	pool := nw.SuggestedClients()
	services := make([]placemon.Service, 7)
	next := 0
	for s := range services {
		clients := make([]int, 3)
		for i := range clients {
			clients[i] = pool[next%len(pool)]
			next++
		}
		services[s] = placemon.Service{Name: fmt.Sprintf("svc-%d", s), Clients: clients}
	}

	alphas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	gd, err := nw.Sweep(services, placemon.SweepConfig{Alphas: alphas})
	if err != nil {
		return err
	}
	qos, err := nw.Sweep(services, placemon.SweepConfig{
		Alphas:    alphas,
		Algorithm: placemon.AlgorithmQoS,
	})
	if err != nil {
		return err
	}

	fmt.Println("monitoring-QoS tradeoff on AT&T (7 services, GD objective)")
	fmt.Printf("%6s %28s %28s\n", "", "monitoring-aware (GD)", "best-QoS baseline")
	fmt.Printf("%6s %8s %9s %9s %8s %9s %9s\n",
		"α", "covered", "identif.", "disting.", "covered", "identif.", "disting.")
	for i := range alphas {
		fmt.Printf("%6.1f %8d %9d %9d %8d %9d %9d\n",
			alphas[i],
			gd[i].Coverage, gd[i].Identifiable, gd[i].Distinguishable,
			qos[i].Coverage, qos[i].Identifiable, qos[i].Distinguishable)
	}
	fmt.Println()
	fmt.Println("The QoS baseline never benefits from slack; the monitoring-aware placement")
	fmt.Println("converts every extra candidate host into measurement-path diversity.")
	return nil
}
