// Daemon: run the online monitoring service over a stochastic
// failure/recovery workload — through the real HTTP serving layer.
//
// Services are placed with the monitoring-aware greedy via the facade;
// the placement becomes a PlacementFile (the placemond wire format) and
// boots a placemon.Server. The discrete-event simulator probes every
// client-server connection periodically while nodes fail and recover on
// an exponential schedule, and every resulting binary observation is
// POSTed through the HTTP handler path (httptest transport). The same
// observations also drive an in-process monitord instance, proving the
// network path and the library path emit the identical event timeline.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"

	placemon "repro"
	"repro/internal/bitset"
	"repro/internal/failmodel"
	"repro/internal/monitord"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Place 3 services with the distinguishability greedy at α = 0.6,
	// entirely through the public facade.
	nw, err := placemon.BuildTopology("Tiscali")
	if err != nil {
		return err
	}
	pool := nw.SuggestedClients()
	services := make([]placemon.Service, 3)
	for s := range services {
		services[s] = placemon.Service{
			Name:    fmt.Sprintf("svc-%d", s),
			Clients: pool[3*s : 3*s+3],
		}
	}
	const alpha = 0.6
	placed, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:     alpha,
		Objective: placemon.ObjectiveDistinguishability,
		Algorithm: placemon.AlgorithmGreedy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("GD placement: hosts %v\n", placed.Hosts)

	// The placement document is the daemon's boot artifact; serve it.
	doc := placemon.NewPlacementFile("Tiscali", alpha, services, placed.Hosts)
	srv, err := placemon.NewServer(nw, doc, placemon.ServerConfig{})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	conns := srv.Connections()
	fmt.Printf("placemond serving %d monitored connections at %s\n", len(conns), ts.URL)

	// One failure at a time (the k = 1 design point), exponential
	// sojourns. The simulator needs the internal router; the generators
	// are deterministic, so this is the same graph the facade routed.
	topo := topology.MustBuild(topology.Tiscali)
	router, err := routing.New(topo.Graph)
	if err != nil {
		return err
	}
	const horizon = 400.0
	schedule, err := failmodel.Generate(failmodel.Config{
		NumNodes:      topo.Graph.NumNodes(),
		MTBF:          600,
		MTTR:          40,
		Horizon:       horizon,
		MaxConcurrent: 1,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure schedule: %d transitions\n\n", len(schedule))

	sim, err := netsim.New(router, 0.01)
	if err != nil {
		return err
	}
	for _, e := range schedule {
		if e.Down {
			err = sim.FailAt(e.Time, e.Node)
		} else {
			err = sim.RecoverAt(e.Time, e.Node)
		}
		if err != nil {
			return err
		}
	}

	// Probe every monitored connection every 5 time units. Distinct
	// connections may share a (client, host) pair; probe each pair once
	// and fan the outcome out to all its connection indices.
	type pair struct{ c, h int }
	byPair := map[pair][]int{}
	var paths []*bitset.Set
	for i, cn := range conns {
		byPair[pair{cn.Client, cn.Host}] = append(byPair[pair{cn.Client, cn.Host}], i)
		p, err := router.Path(cn.Client, cn.Host)
		if err != nil {
			return err
		}
		paths = append(paths, p)
	}
	for t := 0.0; t <= horizon; t += 5 {
		for p := range byPair {
			if err := sim.RequestAt(t, p.c, p.h); err != nil {
				return err
			}
		}
	}
	outcomes, err := sim.Run()
	if err != nil {
		return err
	}
	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].End < outcomes[j].End })

	// Reference daemon: the same observations, in process.
	core, err := monitord.New(topo.Graph.NumNodes(), 1, paths)
	if err != nil {
		return err
	}

	fmt.Println("monitoring timeline (via HTTP):")
	outages, pinpointed, httpEvents, inprocEvents := 0, 0, 0, 0
	for _, o := range outcomes {
		indices := byPair[pair{o.Client, o.Host}]

		// Library path.
		var reference []monitord.Event
		for _, idx := range indices {
			evs, err := core.Report(o.End, idx, o.Success)
			if err != nil {
				return err
			}
			reference = append(reference, evs...)
		}
		inprocEvents += len(reference)

		// Network path: the same reports through POST /v1/observations.
		events, err := postObservation(ts.URL, o.End, indices, o.Success)
		if err != nil {
			return err
		}
		httpEvents += len(events)
		if len(events) != len(reference) {
			return fmt.Errorf("t=%.2f: HTTP path emitted %d events, library path %d",
				o.End, len(events), len(reference))
		}

		for i, ev := range events {
			if ev.Kind != reference[i].Kind.String() {
				return fmt.Errorf("t=%.2f: HTTP event %q != library event %q",
					o.End, ev.Kind, reference[i].Kind)
			}
			fmt.Printf("  t=%7.2f  %-18s", ev.Time, ev.Kind)
			if ev.Diagnosis != nil {
				fmt.Printf("  suspects %v", ev.Diagnosis.Candidates)
				if len(ev.Diagnosis.Candidates) == 1 {
					fmt.Printf("  ← pinpointed")
					pinpointed++
				}
			}
			if ev.Kind == "outage-started" {
				outages++
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d outages observed; %d diagnoses pinpointed a single node\n", outages, pinpointed)
	fmt.Printf("in-process and HTTP event streams agree: %d events each\n", inprocEvents)

	// The daemon's own metrics tell the same story.
	if err := printEventMetrics(ts.URL); err != nil {
		return err
	}

	fmt.Println("(ground truth below for comparison)")
	for _, e := range schedule {
		verb := "fails"
		if !e.Down {
			verb = "recovers"
		}
		fmt.Printf("  t=%7.2f  node %d %s\n", e.Time, e.Node, verb)
	}
	return nil
}

// httpEvent mirrors the server's event JSON.
type httpEvent struct {
	Time      float64 `json:"time"`
	Kind      string  `json:"kind"`
	Diagnosis *struct {
		Candidates [][]int `json:"candidates"`
	} `json:"diagnosis"`
}

// postObservation reports one probe outcome for every connection index it
// covers and returns the events the daemon emitted.
func postObservation(base string, t float64, indices []int, up bool) ([]httpEvent, error) {
	var reports []map[string]any
	for _, idx := range indices {
		reports = append(reports, map[string]any{"connection": idx, "up": up})
	}
	body, err := json.Marshal(map[string]any{"time": t, "reports": reports})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/observations", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("ingest: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Events []httpEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

// printEventMetrics scrapes /metrics and prints the daemon's event and
// ingest counters.
func printEventMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("\ndaemon metrics (/metrics excerpt):")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "placemond_events_total") ||
			strings.HasPrefix(line, "placemond_observations_ingested_total") {
			fmt.Println(" ", line)
		}
	}
	return nil
}
