// Daemon: run the online monitoring daemon over a stochastic
// failure/recovery workload. Services are placed with the
// monitoring-aware greedy; the discrete-event simulator probes every
// client-server connection periodically while nodes fail and recover on
// an exponential schedule; the daemon turns the resulting binary
// connection states into a live diagnosis timeline.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/bitset"
	"repro/internal/failmodel"
	"repro/internal/graph"
	"repro/internal/monitord"
	"repro/internal/netsim"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := topology.MustBuild(topology.Tiscali)
	router, err := routing.New(topo.Graph)
	if err != nil {
		return err
	}

	// Place 3 services with the distinguishability greedy at α = 0.6.
	services := make([]placement.Service, 3)
	pool := topo.CandidateClients
	for s := range services {
		services[s] = placement.Service{
			Name:    fmt.Sprintf("svc-%d", s),
			Clients: []graph.NodeID{pool[3*s], pool[3*s+1], pool[3*s+2]},
		}
	}
	inst, err := placement.NewInstance(router, services, 0.6)
	if err != nil {
		return err
	}
	obj, err := placement.NewDistinguishability(1)
	if err != nil {
		return err
	}
	placed, err := placement.Greedy(inst, obj)
	if err != nil {
		return err
	}
	fmt.Printf("GD placement: hosts %v\n", placed.Placement.Hosts)

	// One failure at a time (the k = 1 design point), exponential sojourns.
	const horizon = 400.0
	schedule, err := failmodel.Generate(failmodel.Config{
		NumNodes:      topo.Graph.NumNodes(),
		MTBF:          600,
		MTTR:          40,
		Horizon:       horizon,
		MaxConcurrent: 1,
		Seed:          7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("failure schedule: %d transitions\n\n", len(schedule))

	// Probe each connection every 5 time units through the event
	// simulator.
	sim, err := netsim.New(router, 0.01)
	if err != nil {
		return err
	}
	for _, e := range schedule {
		if e.Down {
			err = sim.FailAt(e.Time, e.Node)
		} else {
			err = sim.RecoverAt(e.Time, e.Node)
		}
		if err != nil {
			return err
		}
	}
	type key struct{ c, h graph.NodeID }
	index := map[key]int{}
	var paths []*bitset.Set
	var pairs []key
	for s, h := range placed.Placement.Hosts {
		for _, c := range services[s].Clients {
			k := key{c: c, h: h}
			if _, ok := index[k]; ok {
				continue
			}
			p, err := router.Path(c, h)
			if err != nil {
				return err
			}
			index[k] = len(paths)
			paths = append(paths, p)
			pairs = append(pairs, k)
		}
	}
	for t := 0.0; t <= horizon; t += 5 {
		for _, k := range pairs {
			if err := sim.RequestAt(t, k.c, k.h); err != nil {
				return err
			}
		}
	}
	outcomes, err := sim.Run()
	if err != nil {
		return err
	}

	daemon, err := monitord.New(topo.Graph.NumNodes(), 1, paths)
	if err != nil {
		return err
	}
	sort.SliceStable(outcomes, func(i, j int) bool { return outcomes[i].End < outcomes[j].End })

	fmt.Println("monitoring timeline:")
	outages, pinpointed := 0, 0
	for _, o := range outcomes {
		events, err := daemon.Report(o.End, index[key{c: o.Client, h: o.Host}], o.Success)
		if err != nil {
			return err
		}
		for _, ev := range events {
			fmt.Printf("  t=%7.2f  %-18s", ev.Time, ev.Kind)
			if ev.Diagnosis != nil {
				fmt.Printf("  suspects %v", ev.Diagnosis.Consistent)
				if ev.Diagnosis.Unique() {
					fmt.Printf("  ← pinpointed")
					pinpointed++
				}
			}
			if ev.Kind == monitord.EventOutageStarted {
				outages++
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d outages observed; %d diagnoses pinpointed a single node\n", outages, pinpointed)
	fmt.Println("(ground truth below for comparison)")
	for _, e := range schedule {
		verb := "fails"
		if !e.Down {
			verb = "recovers"
		}
		fmt.Printf("  t=%7.2f  node %d %s\n", e.Time, e.Node, verb)
	}
	return nil
}
