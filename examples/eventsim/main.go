// Eventsim: drive the discrete-event network simulator — the substrate
// that generates the paper's "end-to-end observations" from actual
// request/response traffic — through a failure-and-recovery scenario, and
// localize the outage from the connection states alone.
//
// Unlike the other examples this one exercises the internal simulation
// substrate directly (it lives in the same module), showing how the
// library's layers compose: routing → event simulation → observations →
// tomography.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/tomography"
	"repro/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	topo := topology.MustBuild(topology.Abovenet)
	router, err := routing.New(topo.Graph)
	if err != nil {
		return err
	}

	// A service hosted on a well-connected core node, probed by four
	// access-point clients every 10 time units.
	host := graph.NodeID(0)
	clients := topo.CandidateClients[:4]

	sim, err := netsim.New(router, 1 /* per-hop delay */)
	if err != nil {
		return err
	}

	// Pick a transit node on the longest client path and schedule an
	// outage window [15, 35).
	victimPath := router.PathNodes(clients[0], host)
	for _, c := range clients[1:] {
		if p := router.PathNodes(c, host); len(p) > len(victimPath) {
			victimPath = p
		}
	}
	victim := victimPath[len(victimPath)/2]
	if err := sim.FailAt(15, victim); err != nil {
		return err
	}
	if err := sim.RecoverAt(35, victim); err != nil {
		return err
	}

	for _, t := range []float64{0, 10, 20, 30, 40} {
		if err := sim.ProbeAllAt(t, clients, host); err != nil {
			return err
		}
	}
	outcomes, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Printf("victim: node %d on the path %v\n\n", victim, victimPath)
	fmt.Println("request log (virtual time):")
	for _, o := range outcomes {
		status := "ok"
		if !o.Success {
			status = fmt.Sprintf("FAILED at node %d", o.FailedAt)
		}
		fmt.Printf("  t=%5.1f  client %3d → host %d: %s\n", o.Start, o.Client, o.Host, status)
	}

	// Fold the probe round at t=20 (mid-outage) into an observation and
	// localize.
	var midOutage []netsim.Outcome
	for _, o := range outcomes {
		if o.Start == 20 {
			midOutage = append(midOutage, o)
		}
	}
	obs, err := netsim.BuildObservation(router, netsim.ConnectionStates(midOutage))
	if err != nil {
		return err
	}
	diag, err := tomography.Localize(obs, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nlocalization from the t=20 probe round (k = 1):\n")
	fmt.Printf("  candidate failure sets: %v\n", diag.Consistent)
	fmt.Printf("  proven healthy nodes:   %d of %d\n", len(diag.Healthy), topo.Graph.NumNodes())
	found := false
	for _, f := range diag.Consistent {
		for _, v := range f {
			if v == victim {
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("diagnosis missed the victim — simulator/tomography disagree")
	}
	fmt.Println("  the true victim is among the candidates ✓")
	return nil
}
