// Localization: place services on a real-scale ISP topology, break a
// node, and watch Boolean tomography narrow down the failure from nothing
// but binary client-server connection states — comparing how far the
// QoS-only and the monitoring-aware placements let the operator see.
package main

import (
	"fmt"
	"log"

	placemon "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw, err := placemon.BuildTopology("Tiscali")
	if err != nil {
		return err
	}

	// Three services, three access-point clients each (round-robin over
	// the topology's dangling nodes), as in the paper's evaluation.
	pool := nw.SuggestedClients()
	services := make([]placemon.Service, 3)
	for s := range services {
		services[s] = placemon.Service{
			Name:    fmt.Sprintf("svc-%d", s),
			Clients: []int{pool[(3*s)%len(pool)], pool[(3*s+1)%len(pool)], pool[(3*s+2)%len(pool)]},
		}
	}
	const alpha = 0.6

	placements := map[string]*placemon.Result{}
	for name, algo := range map[string]placemon.Algorithm{
		"best-QoS":         placemon.AlgorithmQoS,
		"monitoring-aware": placemon.AlgorithmGreedy,
	} {
		res, err := nw.Place(services, placemon.PlaceConfig{
			Alpha:     alpha,
			Algorithm: algo,
			Objective: placemon.ObjectiveDistinguishability,
		})
		if err != nil {
			return err
		}
		placements[name] = res
	}

	// Break the host of service 0 under the monitoring-aware placement —
	// a node both placements can observe.
	broken := placements["monitoring-aware"].Hosts[0]
	fmt.Printf("ground truth: node %d (%s) fails\n\n", broken, nw.NodeLabel(broken))

	for _, name := range []string{"best-QoS", "monitoring-aware"} {
		res := placements[name]
		obs, err := nw.Observe(services, res.Hosts, alpha, []int{broken})
		if err != nil {
			return err
		}
		down := 0
		for _, f := range obs.Failed {
			if f {
				down++
			}
		}
		diag, err := nw.Localize(obs, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%s placement (hosts %v):\n", name, res.Hosts)
		fmt.Printf("  connections down:   %d / %d\n", down, len(obs.Failed))
		fmt.Printf("  failure detected:   %v\n", obs.AnyFailure())
		fmt.Printf("  candidate culprits: %v (ambiguity %d)\n", diag.Candidates, diag.Ambiguity())
		fmt.Printf("  definitely failed:  %v\n", diag.DefinitelyFailed)
		fmt.Println()
	}

	fmt.Println("The monitoring-aware placement pays the same QoS budget but leaves the")
	fmt.Println("operator with a much shorter suspect list when something breaks.")
	return nil
}
