// NFV capacity: place virtual network functions with heterogeneous
// resource demands onto capacity-limited hosts (the paper's Section VII-A
// extension). The capacitated greedy keeps the monitoring objective while
// respecting Σ r_s ≤ R_h per host, with a 1/(p+1) guarantee.
package main

import (
	"fmt"
	"log"

	placemon "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw, err := placemon.BuildTopology("Abovenet")
	if err != nil {
		return err
	}

	// Six VNFs: firewalls are heavy (2 units), the rest light (1 unit).
	pool := nw.SuggestedClients()
	names := []string{"firewall-a", "lb-a", "ids-a", "firewall-b", "lb-b", "ids-b"}
	demand := []float64{2, 1, 1, 2, 1, 1}
	services := make([]placemon.Service, len(names))
	for i, name := range names {
		services[i] = placemon.Service{
			Name:    name,
			Clients: []int{pool[(2*i)%len(pool)], pool[(2*i+1)%len(pool)]},
		}
	}

	// Every node offers 2 resource units: a node can host one firewall OR
	// two light functions.
	capacity := map[int]float64{}
	for v := 0; v < nw.NumNodes(); v++ {
		capacity[v] = 2
	}

	uncapped, err := nw.Place(services, placemon.PlaceConfig{Alpha: 0.6})
	if err != nil {
		return err
	}
	capped, err := nw.Place(services, placemon.PlaceConfig{
		Alpha:    0.6,
		Capacity: &placemon.Capacity{Demand: demand, HostCapacity: capacity},
	})
	if err != nil {
		return err
	}

	fmt.Println("VNF placements (α = 0.6, distinguishability objective):")
	fmt.Printf("%-12s %10s %10s\n", "VNF", "uncapped", "capped")
	for s, name := range names {
		fmt.Printf("%-12s %10d %10d\n", name, uncapped.Hosts[s], capped.Hosts[s])
	}
	fmt.Println()
	fmt.Printf("uncapped: identifiable %d, distinguishable %d\n",
		uncapped.Identifiable, uncapped.Distinguishable)
	fmt.Printf("capped:   identifiable %d, distinguishable %d\n",
		capped.Identifiable, capped.Distinguishable)

	// Verify the load per host.
	load := map[int]float64{}
	for s, h := range capped.Hosts {
		load[h] += demand[s]
	}
	fmt.Println("\nper-host load under the capped placement:")
	for h, l := range load {
		fmt.Printf("  node %-3d: %.0f / %.0f\n", h, l, capacity[h])
		if l > capacity[h] {
			return fmt.Errorf("capacity violated at node %d", h)
		}
	}
	fmt.Println("\nAll capacity constraints hold; the monitoring objective degrades only")
	fmt.Println("as much as the packing forces it to.")
	return nil
}
