package combinat

import (
	"reflect"
	"testing"
)

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			want := int64(0)
			Combinations(n, k, func(s []int) bool {
				r, err := Rank(n, s)
				if err != nil {
					t.Fatalf("Rank(%d, %v): %v", n, s, err)
				}
				if r != want {
					t.Fatalf("Rank(%d, %v) = %d, want %d (enumeration order)", n, s, r, want)
				}
				back, err := Unrank(n, k, r)
				if err != nil {
					t.Fatalf("Unrank(%d, %d, %d): %v", n, k, r, err)
				}
				if !reflect.DeepEqual(back, append([]int{}, s...)) {
					t.Fatalf("Unrank(%d, %d, %d) = %v, want %v", n, k, r, back, s)
				}
				want++
				return true
			})
			if want != Binomial(n, k) {
				t.Fatalf("enumerated %d subsets, want C(%d,%d) = %d", want, n, k, Binomial(n, k))
			}
		}
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := Rank(3, []int{0, 0}); err == nil {
		t.Fatal("non-ascending subset should error")
	}
	if _, err := Rank(3, []int{2, 1}); err == nil {
		t.Fatal("descending subset should error")
	}
	if _, err := Rank(3, []int{0, 5}); err == nil {
		t.Fatal("out-of-range element should error")
	}
	if _, err := Rank(2, []int{0, 1, 2}); err == nil {
		t.Fatal("oversized subset should error")
	}
}

func TestUnrankErrors(t *testing.T) {
	if _, err := Unrank(3, 4, 0); err == nil {
		t.Fatal("k > n should error")
	}
	if _, err := Unrank(3, -1, 0); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := Unrank(3, 2, -1); err == nil {
		t.Fatal("negative rank should error")
	}
	if _, err := Unrank(3, 2, 3); err == nil {
		t.Fatal("rank ≥ C(n,k) should error")
	}
}

func TestRankEmptySubset(t *testing.T) {
	r, err := Rank(5, nil)
	if err != nil || r != 0 {
		t.Fatalf("Rank(∅) = %d, %v", r, err)
	}
	s, err := Unrank(5, 0, 0)
	if err != nil || len(s) != 0 {
		t.Fatalf("Unrank(0-subset) = %v, %v", s, err)
	}
}
