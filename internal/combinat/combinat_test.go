package combinat

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBinomialBasics(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{10, -1, 0},
		{3, 4, 0},
		{100, 2, 4950},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k % 40)
		return Binomial(nn, kk) == Binomial(nn, nn-kk) || kk > nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPascal(t *testing.T) {
	// C(n, k) = C(n-1, k-1) + C(n-1, k)
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at n=%d k=%d", n, k)
			}
		}
	}
}

func TestPairs(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {10, 45},
	}
	for _, c := range cases {
		if got := Pairs(c.n); got != c.want {
			t.Errorf("Pairs(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNumFailureSets(t *testing.T) {
	// n=4, k=1: {} plus 4 singletons = 5.
	if got := NumFailureSets(4, 1); got != 5 {
		t.Fatalf("NumFailureSets(4,1) = %d, want 5", got)
	}
	// n=4, k=2: 1 + 4 + 6 = 11.
	if got := NumFailureSets(4, 2); got != 11 {
		t.Fatalf("NumFailureSets(4,2) = %d, want 11", got)
	}
	// k >= n: all 2^n subsets.
	if got := NumFailureSets(5, 5); got != 32 {
		t.Fatalf("NumFailureSets(5,5) = %d, want 32", got)
	}
	if got := NumFailureSets(5, 10); got != 32 {
		t.Fatalf("NumFailureSets(5,10) = %d, want 32", got)
	}
}

func TestCombinationsEnumeration(t *testing.T) {
	var got [][]int
	Combinations(4, 2, func(s []int) bool {
		cp := make([]int, len(s))
		copy(cp, s)
		got = append(got, cp)
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Combinations(4,2) = %v, want %v", got, want)
	}
}

func TestCombinationsZeroK(t *testing.T) {
	calls := 0
	Combinations(5, 0, func(s []int) bool {
		if len(s) != 0 {
			t.Fatalf("expected empty subset, got %v", s)
		}
		calls++
		return true
	})
	if calls != 1 {
		t.Fatalf("k=0 should enumerate exactly the empty set, got %d calls", calls)
	}
}

func TestCombinationsInvalidK(t *testing.T) {
	calls := 0
	Combinations(3, 5, func([]int) bool { calls++; return true })
	Combinations(3, -1, func([]int) bool { calls++; return true })
	if calls != 0 {
		t.Fatalf("invalid k should enumerate nothing, got %d calls", calls)
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	calls := 0
	Combinations(10, 3, func([]int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop: calls = %d, want 5", calls)
	}
}

func TestCombinationsCountMatchesBinomial(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			count := int64(0)
			Combinations(n, k, func([]int) bool { count++; return true })
			if count != Binomial(n, k) {
				t.Fatalf("Combinations(%d,%d) count = %d, want %d", n, k, count, Binomial(n, k))
			}
		}
	}
}

func TestSubsetsUpTo(t *testing.T) {
	var sizes []int
	SubsetsUpTo(4, 2, func(s []int) bool {
		sizes = append(sizes, len(s))
		return true
	})
	// 1 empty + 4 singletons + 6 pairs = 11, in size order.
	if len(sizes) != 11 {
		t.Fatalf("count = %d, want 11", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("subsets should come in non-decreasing size order")
		}
	}
}

func TestSubsetsUpToEarlyStop(t *testing.T) {
	calls := 0
	SubsetsUpTo(10, 3, func([]int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop across sizes: calls = %d, want 3", calls)
	}
}

func TestSubsetsUpToCount(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n+2; k++ {
			count := int64(0)
			SubsetsUpTo(n, k, func([]int) bool { count++; return true })
			if count != CombinationCount(n, k) {
				t.Fatalf("SubsetsUpTo(%d,%d) = %d, want %d", n, k, count, CombinationCount(n, k))
			}
		}
	}
}
