package combinat

import "fmt"

// Rank and Unrank implement the combinatorial number system: a bijection
// between k-subsets of [0, n) and [0, C(n, k)). They give failure sets
// stable integer identities — handy for compact logging, sampling without
// materialization, and cross-run comparison of hypothesis sets.

// Rank returns the position of the ascending k-subset in the
// lexicographic enumeration Combinations produces.
func Rank(n int, subset []int) (int64, error) {
	k := len(subset)
	if k > n {
		return 0, fmt.Errorf("combinat: subset larger than universe")
	}
	prev := -1
	for _, v := range subset {
		if v <= prev {
			return 0, fmt.Errorf("combinat: subset must be strictly ascending")
		}
		if v < 0 || v >= n {
			return 0, fmt.Errorf("combinat: element %d outside [0, %d)", v, n)
		}
		prev = v
	}
	// Lexicographic rank: for each position i, count the combinations
	// that start with a smaller element than subset[i] given the prefix.
	var rank int64
	from := 0
	for i, v := range subset {
		for c := from; c < v; c++ {
			rank += Binomial(n-c-1, k-i-1)
		}
		from = v + 1
	}
	return rank, nil
}

// Unrank returns the k-subset of [0, n) with the given lexicographic
// rank; it inverts Rank.
func Unrank(n, k int, rank int64) ([]int, error) {
	if k < 0 || k > n {
		return nil, fmt.Errorf("combinat: k = %d outside [0, %d]", k, n)
	}
	total := Binomial(n, k)
	if rank < 0 || rank >= total {
		return nil, fmt.Errorf("combinat: rank %d outside [0, %d)", rank, total)
	}
	subset := make([]int, 0, k)
	from := 0
	for i := 0; i < k; i++ {
		for c := from; ; c++ {
			count := Binomial(n-c-1, k-i-1)
			if rank < count {
				subset = append(subset, c)
				from = c + 1
				break
			}
			rank -= count
		}
	}
	return subset, nil
}
