// Package combinat provides the combinatorial enumeration primitives used
// by the monitoring metrics: binomial coefficients, k-subset enumeration,
// and counts of failure-set collections F_k = {F ⊆ N : |F| ≤ k}.
package combinat

import (
	"fmt"
	"math"
)

// Binomial returns C(n, k). It returns 0 for k < 0 or k > n, and panics on
// overflow of int64 arithmetic (which cannot occur for the network sizes
// this repository handles, but guards against misuse).
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var res int64 = 1
	for i := 0; i < k; i++ {
		num := int64(n - i)
		if res > math.MaxInt64/num {
			panic(fmt.Sprintf("combinat: C(%d,%d) overflows int64", n, k))
		}
		res = res * num / int64(i+1)
	}
	return res
}

// Pairs returns C(n, 2) as an int64, the number of unordered pairs from n
// items.
func Pairs(n int64) int64 {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// NumFailureSets returns |F_k| = Σ_{i=0..k} C(n, i): the number of failure
// sets with at most k failed nodes out of n, including the empty set.
func NumFailureSets(n, k int) int64 {
	var total int64
	for i := 0; i <= k && i <= n; i++ {
		total += Binomial(n, i)
	}
	return total
}

// Combinations calls fn once for every k-subset of [0, n), with the subset
// passed in ascending order. The slice is reused between calls; fn must
// copy it if it retains it. Enumeration stops early if fn returns false.
// Combinations with k == 0 calls fn once with an empty slice.
func Combinations(n, k int, fn func(subset []int) bool) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// SubsetsUpTo calls fn once for every subset of [0, n) with at most k
// elements, in order of increasing size (the empty set first). The slice is
// reused between calls. Enumeration stops early if fn returns false.
func SubsetsUpTo(n, k int, fn func(subset []int) bool) {
	stopped := false
	for size := 0; size <= k && size <= n && !stopped; size++ {
		Combinations(n, size, func(subset []int) bool {
			if !fn(subset) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// CombinationCount returns the number of subsets SubsetsUpTo(n, k, ...)
// enumerates; exposed to let callers preallocate.
func CombinationCount(n, k int) int64 {
	return NumFailureSets(n, k)
}
