// Package trace is placemond's request-tracing layer: per-request spans
// with named stages, trace-ID propagation over HTTP and contexts, and a
// bounded in-memory ring of finished traces served at /debug/traces.
//
// The paper's thesis (Section I) is that a system should be observable
// end-to-end from the measurements it already produces; this package
// applies the same discipline to our own serving stack. Every request
// through placemond carries one trace ID — minted by the client (the
// same crypto-random generator as its idempotency keys) or
// adopted/minted by the server middleware — and accumulates named
// stages (dedup lookup, ingest, queue wait, placement rounds,
// diagnosis) with wall-clock durations, so a slow answer can be
// attributed to the hop that spent the time. Placement jobs expose the
// Section V greedy as one stage per engine round; ingest exposes the
// Section III-B diagnosis update as its own stage.
//
// The hot-path primitives are allocation-conscious by design: spans
// carry a small inline stage array, stage labels are rendered into
// stack buffers (StageTimer.EndCount), and trace IDs come from a
// batched crypto/rand pool — the ingest benchmarks in EXPERIMENTS.md
// hold the layer to that budget.
//
// The package is stdlib-only (crypto/rand, log/slog, sync) and every
// Span method is safe on a nil receiver, so instrumented code can record
// unconditionally whether or not a span is in flight.
package trace
