package trace

import (
	"log/slog"
	"strings"
	"sync"
)

// Ring is a bounded in-memory buffer of the last N finished traces,
// newest first on read — the backing store of GET /debug/traces. Safe
// for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Record
	next int
	full bool
}

// NewRing creates a ring remembering the last capacity traces; capacity
// must be positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Add stores one finished trace, evicting the oldest when full.
func (r *Ring) Add(rec Record) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of stored traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Snapshot returns the stored traces, newest first.
func (r *Ring) Snapshot() []Record {
	return r.SnapshotFunc(0, nil)
}

// SnapshotFunc returns up to limit stored traces, newest first, keeping
// only records for which keep returns true. limit ≤ 0 means no limit and
// a nil keep admits everything, so SnapshotFunc(0, nil) == Snapshot().
// The filter runs under the ring lock and must not block.
func (r *Ring) SnapshotFunc(limit int, keep func(*Record) bool) []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	want := n
	if limit > 0 && limit < want {
		want = limit
	}
	out := make([]Record, 0, want)
	for i := 1; i <= n; i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		rec := &r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if keep == nil || keep(rec) {
			out = append(out, *rec)
		}
	}
	return out
}

// ParseLevel maps the -log-level flag vocabulary (debug, info, warn,
// error; case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(strings.TrimSpace(s))); err != nil {
		return 0, err
	}
	return lvl, nil
}
