package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 24 {
			t.Fatalf("NewID() = %q, want 24 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestSpanStages(t *testing.T) {
	sp := NewSpan("abc")
	if sp.ID() != "abc" {
		t.Fatalf("ID = %q", sp.ID())
	}
	st := sp.StartStage("ingest")
	time.Sleep(time.Millisecond)
	st.EndDetail("batch=%d", 7)
	sp.AddStage("round 0", 2*time.Millisecond, "gain=3")
	sp.Annotate("rounds", 1)

	stages := sp.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %+v, want 2", stages)
	}
	if stages[0].Name != "ingest" || stages[0].Detail != "batch=7" {
		t.Fatalf("stage 0 = %+v", stages[0])
	}
	if stages[0].DurationSeconds <= 0 {
		t.Fatalf("stage 0 duration = %v, want > 0", stages[0].DurationSeconds)
	}
	if stages[1].Name != "round 0" || stages[1].DurationSeconds < 0.002 {
		t.Fatalf("stage 1 = %+v", stages[1])
	}

	rec := sp.Finish("POST", "/v1/observations", 200, 3*time.Millisecond)
	if rec.TraceID != "abc" || rec.Status != 200 || len(rec.Stages) != 2 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Attrs["rounds"] != 1 {
		t.Fatalf("attrs = %+v", rec.Attrs)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	if sp.ID() != "" {
		t.Fatal("nil span has an ID")
	}
	sp.StartStage("x").End()
	sp.AddStage("y", time.Millisecond, "")
	sp.Annotate("k", "v")
	sp.OnStage(func(Stage) {})
	if got := sp.Stages(); got != nil {
		t.Fatalf("nil span stages = %v", got)
	}
	rec := sp.Finish("GET", "/healthz", 200, 0)
	if rec.TraceID != "" || rec.Path != "/healthz" {
		t.Fatalf("nil span record = %+v", rec)
	}
}

func TestSpanOnStageHook(t *testing.T) {
	sp := NewSpan("")
	var got []string
	sp.OnStage(func(st Stage) { got = append(got, st.Name) })
	sp.AddStage("a", time.Millisecond, "")
	sp.StartStage("b").End()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook saw %v", got)
	}
}

func TestSpanConcurrent(t *testing.T) {
	sp := NewSpan("")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp.AddStage(fmt.Sprintf("w%d", i), time.Microsecond, "")
				sp.Annotate(fmt.Sprintf("k%d", i), j)
			}
		}(i)
	}
	wg.Wait()
	if got := len(sp.Stages()); got != 400 {
		t.Fatalf("stages = %d, want 400", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a span")
	}
	if IDFromContext(context.Background()) != "" {
		t.Fatal("empty context has an ID")
	}
	sp := NewSpan("xyz")
	ctx := NewContext(context.Background(), sp)
	if FromContext(ctx) != sp || IDFromContext(ctx) != "xyz" {
		t.Fatal("span did not round-trip through the context")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Record{TraceID: fmt.Sprintf("t%d", i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	snap := r.Snapshot()
	want := []string{"t4", "t3", "t2"}
	for i, w := range want {
		if snap[i].TraceID != w {
			t.Fatalf("snapshot = %+v, want newest-first %v", snap, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Add(Record{TraceID: "a"})
	r.Add(Record{TraceID: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].TraceID != "b" || snap[1].TraceID != "a" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add(Record{TraceID: "x"})
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"INFO":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("shout"); err == nil {
		t.Fatal("bogus level accepted")
	}
}

func TestSpanTenant(t *testing.T) {
	sp := NewSpan("")
	if sp.Tenant() != "" {
		t.Fatalf("fresh span tenant = %q", sp.Tenant())
	}
	sp.SetTenant("net-1")
	if sp.Tenant() != "net-1" {
		t.Fatalf("tenant = %q, want net-1", sp.Tenant())
	}
	rec := sp.Finish("GET", "/v1/scenarios/net-1/diagnosis", 200, time.Millisecond)
	if rec.Tenant != "net-1" {
		t.Fatalf("record tenant = %q, want net-1", rec.Tenant)
	}

	// Nil-safety, like every other Span method.
	var nilSpan *Span
	nilSpan.SetTenant("x")
	if nilSpan.Tenant() != "" {
		t.Fatal("nil span reported a tenant")
	}
	if rec := nilSpan.Finish("GET", "/", 200, 0); rec.Tenant != "" {
		t.Fatalf("nil span record tenant = %q", rec.Tenant)
	}

	// Tenant-less records must not serialize the field (legacy
	// /debug/traces output stays unchanged for legacy requests).
	raw, err := json.Marshal(NewSpan("").Finish("GET", "/healthz", 200, 0))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "tenant") {
		t.Fatalf("empty tenant serialized: %s", raw)
	}
}
