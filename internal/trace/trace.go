package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Header is the HTTP header carrying the trace ID end to end: the client
// stamps it on requests, the server middleware adopts (or mints) the ID
// and echoes it on the response.
const Header = "Placemond-Trace-Id"

// idBatch refills the ID entropy pool 4 KiB at a time, so minting an ID
// costs one mutex and a copy instead of a crypto/rand read per call.
var idBatch struct {
	mu  sync.Mutex
	buf [4096]byte
	off int // == len(buf) when empty
}

func init() { idBatch.off = len(idBatch.buf) }

// NewID mints a 96-bit random trace ID — the same construction as the
// client's idempotency keys, so IDs are unique without coordination.
// Entropy is drawn from a batched crypto/rand pool.
func NewID() string {
	var b [12]byte
	idBatch.mu.Lock()
	if idBatch.off+len(b) > len(idBatch.buf) {
		if _, err := rand.Read(idBatch.buf[:]); err != nil {
			idBatch.mu.Unlock()
			// crypto/rand failing is effectively fatal elsewhere; a
			// time-derived ID keeps tracing alive with unique-enough values.
			return fmt.Sprintf("t-%d", time.Now().UnixNano())
		}
		idBatch.off = 0
	}
	copy(b[:], idBatch.buf[idBatch.off:])
	idBatch.off += len(b)
	idBatch.mu.Unlock()
	// Encode into a stack buffer so the only allocation is the returned
	// string (hex.EncodeToString would allocate the byte slice too).
	var dst [2 * len(b)]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

// Stage is one named, timed segment of a request: offset is relative to
// the span's start, so stages reconstruct the request timeline.
type Stage struct {
	Name            string  `json:"name"`
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Detail optionally annotates the stage (e.g. the winning candidate
	// of a placement round).
	Detail string `json:"detail,omitempty"`
}

// Span records the stages of one request. Create with NewSpan; all
// methods are safe for concurrent use and no-ops on a nil receiver, so
// handlers and worker goroutines can record without nil checks.
type Span struct {
	id    string
	start time.Time

	mu      sync.Mutex
	tenant  string
	stages  []Stage
	attrs   map[string]any
	onStage func(Stage) // called after each stage lands, outside mu

	// stageArr backs the first few stages so typical requests (two to
	// four stages) never grow the slice on the heap.
	stageArr [4]Stage
}

// NewSpan starts a span; an empty id mints a fresh one.
func NewSpan(id string) *Span {
	if id == "" {
		id = NewID()
	}
	s := &Span{id: id, start: time.Now()}
	s.stages = s.stageArr[:0]
	return s
}

// ID returns the trace ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Start returns the span's start time (zero on a nil span).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// OnStage installs a hook called with every stage as it finishes (the
// server uses it to feed per-stage histograms). At most one hook; called
// without the span lock held.
func (s *Span) OnStage(fn func(Stage)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onStage = fn
	s.mu.Unlock()
}

// SetTenant tags the span with the scenario (tenant) that served the
// request; the ring record and /debug/traces surface it, so one trace
// stream stays attributable in a multi-tenant daemon. Requests on the
// legacy tenant-less routes leave it empty.
func (s *Span) SetTenant(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenant = tenant
	s.mu.Unlock()
}

// Tenant returns the scenario tag set by SetTenant ("" when unset or on
// a nil span).
func (s *Span) Tenant() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenant
}

// StageTimer measures one in-flight stage; obtain with StartStage and
// finish with End or EndDetail.
type StageTimer struct {
	span  *Span
	name  string
	begin time.Time
}

// StartStage begins a named stage ending when the returned timer's End
// (or EndDetail) runs.
func (s *Span) StartStage(name string) *StageTimer {
	if s == nil {
		return &StageTimer{}
	}
	return &StageTimer{span: s, name: name, begin: time.Now()}
}

// End finishes the stage with no detail.
func (t *StageTimer) End() { t.EndDetail("") }

// EndDetail finishes the stage with a formatted annotation.
func (t *StageTimer) EndDetail(format string, args ...any) {
	if t == nil || t.span == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	t.span.addStage(t.name, t.begin, time.Since(t.begin), detail)
}

// EndCount finishes the stage with a "<label>=<n>" annotation. It is the
// allocation-free alternative to EndDetail("label=%d", n) for hot paths:
// no variadic boxing, no fmt state, just the final detail string.
func (t *StageTimer) EndCount(label string, n int) {
	if t == nil || t.span == nil {
		return
	}
	var buf [32]byte
	b := append(buf[:0], label...)
	b = append(b, '=')
	b = strconv.AppendInt(b, int64(n), 10)
	t.span.addStage(t.name, t.begin, time.Since(t.begin), string(b))
}

// AddStage records an already-measured stage of the given duration that
// ended now — the form engine progress hooks use, since the engine
// measures its own rounds.
func (s *Span) AddStage(name string, d time.Duration, detail string) {
	if s == nil {
		return
	}
	s.addStage(name, time.Now().Add(-d), d, detail)
}

func (s *Span) addStage(name string, begin time.Time, d time.Duration, detail string) {
	if d < 0 {
		d = 0
	}
	offset := begin.Sub(s.start)
	if offset < 0 {
		offset = 0
	}
	st := Stage{
		Name:            name,
		OffsetSeconds:   offset.Seconds(),
		DurationSeconds: d.Seconds(),
		Detail:          detail,
	}
	s.mu.Lock()
	s.stages = append(s.stages, st)
	hook := s.onStage
	s.mu.Unlock()
	if hook != nil {
		hook(st)
	}
}

// Annotate attaches a key/value attribute to the span (rendered in the
// ring entry's "attrs" object).
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Stages returns a copy of the stages recorded so far.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Stage(nil), s.stages...)
}

// Record is one finished trace as stored in the ring and served at
// /debug/traces.
type Record struct {
	TraceID string `json:"trace_id"`
	// Tenant is the scenario the request was served for; empty for
	// requests on the legacy tenant-less routes and non-scenario
	// endpoints.
	Tenant string `json:"tenant,omitempty"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	Start           time.Time      `json:"start"`
	DurationSeconds float64        `json:"duration_seconds"`
	Stages          []Stage        `json:"stages,omitempty"`
	Attrs           map[string]any `json:"attrs,omitempty"`
}

// Finish snapshots the span into a Record; the span remains usable (a
// nil span yields a Record with only the passed fields).
func (s *Span) Finish(method, path string, status int, d time.Duration) Record {
	rec := Record{
		Method:          method,
		Path:            path,
		Status:          status,
		DurationSeconds: d.Seconds(),
	}
	if s == nil {
		return rec
	}
	rec.TraceID = s.id
	rec.Start = s.start
	s.mu.Lock()
	rec.Tenant = s.tenant
	rec.Stages = append([]Stage(nil), s.stages...)
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			rec.Attrs[k] = v
		}
	}
	s.mu.Unlock()
	return rec
}

// --- context plumbing ---

type ctxKey struct{}

// NewContext returns ctx carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil — safe to use
// unconditionally, since all Span methods accept a nil receiver.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// IDFromContext returns the trace ID carried by ctx, or "".
func IDFromContext(ctx context.Context) string {
	return FromContext(ctx).ID()
}
