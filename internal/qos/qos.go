// Package qos implements the QoS-constrained candidate host computation of
// the paper's Section III-A. The QoS measure is latency proxied by routing
// hop count: d(C, h) is the worst-case distance from host h to the clients
// C, and the relative distance
//
//	d̄(C, h) = (d(C, h) − d_min(C)) / (d_max(C) − d_min(C))         (eq. 3)
//
// normalizes the degradation against the best and worst possible hosts.
// The candidate set H(α) = {h : d̄(C, h) ≤ α} is nonempty for any α ≥ 0.
package qos

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Profile holds the per-host worst-case distances for one client set,
// along with the extremes d_min and d_max over all possible hosts.
type Profile struct {
	// Dist[h] = d(C, h): worst-case distance from host h to any client.
	Dist []float64
	// DMin and DMax are min_h Dist[h] and max_h Dist[h].
	DMin, DMax float64
}

// NewProfile computes the distance profile for a client set over every
// possible host in the routed graph. It returns an error when a client is
// unreachable from some host (the graph should be connected) or when no
// clients are given.
//
// The sweep is client-rooted: Dist[h] = max_c d(c, h) is accumulated
// from one shortest-path tree per client, so the cost is O(|C|)
// Dijkstras instead of O(N) — on a lazy router this is what lets
// candidate computation scale to 10k–100k-node topologies. Distances on
// an undirected graph are symmetric, so the values match the host-rooted
// formulation (on unit-weight graphs exactly; on arbitrary float weights
// up to summation order, which the CandidateHosts boundary tolerance
// absorbs).
func NewProfile(r *routing.Router, clients []graph.NodeID) (*Profile, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("qos: no clients")
	}
	n := r.NumNodes()
	p := &Profile{Dist: make([]float64, n)}
	for i, c := range clients {
		d := r.DistancesFrom(c)
		if i == 0 {
			copy(p.Dist, d)
			continue
		}
		for h := 0; h < n; h++ {
			switch {
			case p.Dist[h] < 0 || d[h] < 0:
				p.Dist[h] = -1 // some client cannot reach h
			case d[h] > p.Dist[h]:
				p.Dist[h] = d[h]
			}
		}
	}
	for h := 0; h < n; h++ {
		if p.Dist[h] < 0 {
			return nil, fmt.Errorf("qos: host %d cannot reach every client", h)
		}
	}
	p.DMin, p.DMax = p.Dist[0], p.Dist[0]
	for _, d := range p.Dist[1:] {
		if d < p.DMin {
			p.DMin = d
		}
		if d > p.DMax {
			p.DMax = d
		}
	}
	return p, nil
}

// RelativeDistance returns d̄(C, h) per eq. (3), in [0, 1]. When every
// host is equidistant (d_max = d_min) the degradation is defined as 0.
func (p *Profile) RelativeDistance(h graph.NodeID) float64 {
	if p.DMax == p.DMin {
		return 0
	}
	return (p.Dist[h] - p.DMin) / (p.DMax - p.DMin)
}

// CandidateHosts returns H(α) = {h : d̄(C, h) ≤ α} in ascending node
// order. For α ≥ 0 the set contains at least the d_min-achieving hosts;
// negative α is clamped to 0 so the result is never empty.
func (p *Profile) CandidateHosts(alpha float64) []graph.NodeID {
	if alpha < 0 {
		alpha = 0
	}
	var hosts []graph.NodeID
	for h := range p.Dist {
		// Tolerate floating rounding at the boundary.
		if p.RelativeDistance(h) <= alpha+1e-12 {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// BestHost returns the host minimizing the worst-case client distance,
// breaking ties toward the smallest node ID. This is the paper's "best
// QoS" placement for a single service (Section VI baseline).
func (p *Profile) BestHost() graph.NodeID {
	best := 0
	for h := 1; h < len(p.Dist); h++ {
		if p.Dist[h] < p.Dist[best] {
			best = h
		}
	}
	return best
}

// Candidates computes candidate host sets for many client sets at once,
// matching the two-step procedure of Section III-A (per-host distances,
// then per-service thresholds). The returned slice is indexed like
// clientSets.
func Candidates(r *routing.Router, clientSets [][]graph.NodeID, alpha float64) ([][]graph.NodeID, error) {
	out := make([][]graph.NodeID, len(clientSets))
	for i, clients := range clientSets {
		p, err := NewProfile(r, clients)
		if err != nil {
			return nil, fmt.Errorf("qos: service %d: %w", i, err)
		}
		out[i] = p.CandidateHosts(alpha)
	}
	return out, nil
}
