package qos

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func lineRouter(t *testing.T, n int) *routing.Router {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewProfileNoClients(t *testing.T) {
	r := lineRouter(t, 3)
	if _, err := NewProfile(r, nil); err == nil {
		t.Fatal("no clients should error")
	}
}

func TestNewProfileDisconnected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProfile(r, []graph.NodeID{0}); err == nil {
		t.Fatal("unreachable host should error")
	}
}

func TestProfileLine(t *testing.T) {
	// Line 0-1-2-3-4, clients {0, 4}: d(C,h) = max(h, 4-h):
	// h=0→4, h=1→3, h=2→2, h=3→3, h=4→4. dmin=2, dmax=4.
	r := lineRouter(t, 5)
	p, err := NewProfile(r, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 2, 3, 4}
	if !reflect.DeepEqual(p.Dist, want) {
		t.Fatalf("Dist = %v, want %v", p.Dist, want)
	}
	if p.DMin != 2 || p.DMax != 4 {
		t.Fatalf("DMin/DMax = %v/%v", p.DMin, p.DMax)
	}
	if got := p.RelativeDistance(2); got != 0 {
		t.Fatalf("d̄(2) = %v, want 0", got)
	}
	if got := p.RelativeDistance(1); got != 0.5 {
		t.Fatalf("d̄(1) = %v, want 0.5", got)
	}
	if got := p.RelativeDistance(0); got != 1 {
		t.Fatalf("d̄(0) = %v, want 1", got)
	}
}

func TestCandidateHostsGrowWithAlpha(t *testing.T) {
	r := lineRouter(t, 5)
	p, err := NewProfile(r, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CandidateHosts(0); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Fatalf("H(0) = %v", got)
	}
	if got := p.CandidateHosts(0.5); !reflect.DeepEqual(got, []graph.NodeID{1, 2, 3}) {
		t.Fatalf("H(0.5) = %v", got)
	}
	if got := p.CandidateHosts(1); len(got) != 5 {
		t.Fatalf("H(1) = %v, want all nodes", got)
	}
	// Negative α clamps to 0 and stays nonempty.
	if got := p.CandidateHosts(-1); !reflect.DeepEqual(got, []graph.NodeID{2}) {
		t.Fatalf("H(-1) = %v", got)
	}
}

func TestCandidateHostsMonotoneInAlpha(t *testing.T) {
	topo := topology.MustBuild(topology.Tiscali)
	r, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	clients := topo.CandidateClients[:3]
	p, err := NewProfile(r, clients)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		cur := len(p.CandidateHosts(alpha))
		if cur < prev {
			t.Fatalf("candidate count decreased at α=%v: %d < %d", alpha, cur, prev)
		}
		prev = cur
	}
	if prev != topo.Graph.NumNodes() {
		t.Fatalf("H(1) should contain all %d nodes, got %d", topo.Graph.NumNodes(), prev)
	}
}

func TestRelativeDistanceDegenerate(t *testing.T) {
	// Single-node graph: every host equidistant → d̄ ≡ 0.
	g := graph.New(1)
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfile(r, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RelativeDistance(0); got != 0 {
		t.Fatalf("d̄ = %v, want 0", got)
	}
	if got := p.CandidateHosts(0); len(got) != 1 {
		t.Fatalf("H(0) = %v", got)
	}
}

func TestBestHost(t *testing.T) {
	r := lineRouter(t, 5)
	p, err := NewProfile(r, []graph.NodeID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.BestHost(); got != 2 {
		t.Fatalf("BestHost = %d, want 2", got)
	}
	// Tie case: clients {0}: every h has d = h, best is 0.
	p2, err := NewProfile(r, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.BestHost(); got != 0 {
		t.Fatalf("BestHost = %d, want 0", got)
	}
}

func TestCandidatesBatch(t *testing.T) {
	r := lineRouter(t, 5)
	sets, err := Candidates(r, [][]graph.NodeID{{0, 4}, {0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets[0], []graph.NodeID{2}) {
		t.Fatalf("H_0 = %v", sets[0])
	}
	if !reflect.DeepEqual(sets[1], []graph.NodeID{0}) {
		t.Fatalf("H_1 = %v", sets[1])
	}
	if _, err := Candidates(r, [][]graph.NodeID{nil}, 0); err == nil {
		t.Fatal("empty client set should error")
	}
}
