package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// TestGreedyLazyMatchesGreedy is the bit-for-bit identity property: across
// seeded random topologies and all three objectives, the CELF engine must
// return the same hosts, value, and placement order as plain Greedy — and
// for submodular objectives it must get there with no more evaluations.
func TestGreedyLazyMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	objectives := func() []Objective {
		return []Objective{
			NewCoverage(),
			mustObj(NewIdentifiability(1)),
			mustObj(NewDistinguishability(1)),
		}
	}
	for trial := 0; trial < 6; trial++ {
		g, err := topology.RandomConnected(12, 20, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(r, []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
			{Name: "c", Clients: []graph.NodeID{4, 5}},
		}, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range objectives() {
			exact, err := Greedy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := GreedyLazy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(lazy.Placement.Hosts, exact.Placement.Hosts) {
				t.Fatalf("trial %d %s: hosts %v != greedy %v",
					trial, obj.Name(), lazy.Placement.Hosts, exact.Placement.Hosts)
			}
			if lazy.Value != exact.Value {
				t.Fatalf("trial %d %s: value %v != %v", trial, obj.Name(), lazy.Value, exact.Value)
			}
			if !reflect.DeepEqual(lazy.Order, exact.Order) {
				t.Fatalf("trial %d %s: order %v != %v", trial, obj.Name(), lazy.Order, exact.Order)
			}
			if IsSubmodular(obj) && lazy.Evaluations > exact.Evaluations {
				t.Fatalf("trial %d %s: lazy used %d evaluations, greedy only %d",
					trial, obj.Name(), lazy.Evaluations, exact.Evaluations)
			}
		}
	}
}

// TestGreedyLazyParallelMatchesGreedy checks the batched engine across
// worker counts. Its evaluation count may exceed the sequential lazy
// engine's (a batch can refresh entries that turn out unnecessary) but
// never the full per-round sweep of Greedy.
func TestGreedyLazyParallelMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(731))
	for trial := 0; trial < 4; trial++ {
		g, err := topology.RandomConnected(14, 24, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(r, []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
			{Name: "c", Clients: []graph.NodeID{4, 5}},
			{Name: "d", Clients: []graph.NodeID{6, 7}},
		}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []Objective{NewCoverage(), mustObj(NewDistinguishability(1))} {
			exact, err := Greedy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3, 16} {
				lazy, err := GreedyLazyParallel(inst, obj, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lazy.Placement.Hosts, exact.Placement.Hosts) {
					t.Fatalf("trial %d %s workers=%d: hosts %v != greedy %v",
						trial, obj.Name(), workers, lazy.Placement.Hosts, exact.Placement.Hosts)
				}
				if lazy.Value != exact.Value || !reflect.DeepEqual(lazy.Order, exact.Order) {
					t.Fatalf("trial %d %s workers=%d: value/order diverge", trial, obj.Name(), workers)
				}
				if lazy.Evaluations > exact.Evaluations {
					t.Fatalf("trial %d %s workers=%d: lazy used %d evaluations, greedy %d",
						trial, obj.Name(), workers, lazy.Evaluations, exact.Evaluations)
				}
			}
		}
	}
}

// TestGreedyLazyIdentifiabilityFallsBack pins the regression the paper's
// Propositions 15 and 16 demand: identifiability is not submodular, so the
// lazy entry points must route it through the exact greedy — the Result
// must match Greedy's exactly, including the evaluation count (the lazy
// heap would use strictly fewer on this instance).
func TestGreedyLazyIdentifiabilityFallsBack(t *testing.T) {
	inst := fig1Instance(t, 3, 0.7)
	for _, obj := range []Objective{
		mustObj(NewIdentifiability(1)),
		NewIdentifiabilityOfInterest(inst.NumNodes(), []int{0, 1, 2, 3}),
	} {
		exact, err := Greedy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := GreedyLazy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lazy, exact) {
			t.Fatalf("%s: GreedyLazy did not fall back to exact greedy: %+v vs %+v",
				obj.Name(), lazy, exact)
		}
		par, err := GreedyLazyParallel(inst, obj, 3)
		if err != nil {
			t.Fatal(err)
		}
		seqPar, err := GreedyParallel(inst, obj, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seqPar) {
			t.Fatalf("%s: GreedyLazyParallel did not fall back to GreedyParallel", obj.Name())
		}
	}
}

// TestGreedyLazySavesEvaluations demonstrates the CELF win on real
// workloads: strictly fewer evaluations already at the paper's 7 AT&T
// services, and at the 20-service scale the benchmarks record, at least
// 2× fewer — the evaluation savings grow with the service count because
// the initial sweep is paid once instead of once per round.
func TestGreedyLazySavesEvaluations(t *testing.T) {
	topo := topology.MustBuild(topology.ATT)
	r, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	buildServices := func(count int) []Service {
		services := make([]Service, count)
		pool := topo.CandidateClients
		next := 0
		for s := range services {
			clients := make([]graph.NodeID, 0, 3)
			seen := map[graph.NodeID]bool{}
			for len(clients) < 3 {
				c := pool[next%len(pool)]
				next++
				if !seen[c] {
					seen[c] = true
					clients = append(clients, c)
				}
			}
			services[s] = Service{Name: "svc", Clients: clients}
		}
		return services
	}
	obj := mustObj(NewDistinguishability(1))
	for _, tc := range []struct {
		services int
		factor   int // required: factor × lazy ≤ greedy
	}{
		{services: 7, factor: 1},
		{services: 20, factor: 2},
	} {
		inst, err := NewInstance(r, buildServices(tc.services), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Greedy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := GreedyLazy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lazy.Placement.Hosts, exact.Placement.Hosts) || lazy.Value != exact.Value {
			t.Fatalf("%d services: lazy %v (%v) != greedy %v (%v)", tc.services,
				lazy.Placement.Hosts, lazy.Value, exact.Placement.Hosts, exact.Value)
		}
		if lazy.Evaluations >= exact.Evaluations {
			t.Fatalf("%d services: lazy used %d evaluations, greedy %d",
				tc.services, lazy.Evaluations, exact.Evaluations)
		}
		if tc.factor*lazy.Evaluations > exact.Evaluations {
			t.Fatalf("%d services: expected ≥%d× fewer evaluations, got lazy %d vs greedy %d",
				tc.services, tc.factor, lazy.Evaluations, exact.Evaluations)
		}
	}
}

// TestGreedyLazyK2Distinguishability exercises the enumeration evaluator
// (k ≥ 2) through the lazy path on a small instance.
func TestGreedyLazyK2Distinguishability(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	obj := mustObj(NewDistinguishability(2))
	exact, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := GreedyLazy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lazy.Placement.Hosts, exact.Placement.Hosts) || lazy.Value != exact.Value {
		t.Fatalf("k=2: lazy %v (%v) != greedy %v (%v)",
			lazy.Placement.Hosts, lazy.Value, exact.Placement.Hosts, exact.Value)
	}
}

func TestGreedyLazyValidation(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if _, err := GreedyLazy(inst, nil); err == nil {
		t.Fatal("nil objective should error")
	}
	if _, err := GreedyLazyParallel(inst, nil, 2); err == nil {
		t.Fatal("nil objective should error")
	}
}

// TestDedupPaths unit-tests the path-signature dedup: repeated node sets
// collapse to the first occurrence, and fully distinct inputs are
// returned as the same slice (no copy).
func TestDedupPaths(t *testing.T) {
	mk := func(idx ...int) *bitset.Sparse { return bitset.SparseFromNodes(8, idx) }
	a, b, c := mk(0, 1), mk(2, 3), mk(0, 1) // c duplicates a's node set
	got := dedupPaths([]*bitset.Sparse{a, b, c, b})
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("dedupPaths kept %d paths, want [a b]", len(got))
	}
	distinct := []*bitset.Sparse{a, b, mk(4)}
	if out := dedupPaths(distinct); len(out) != 3 || &out[0] != &distinct[0] {
		t.Fatal("dedupPaths should alias a fully distinct input slice")
	}
}

// TestEvalPathsAliasesServicePaths pins the invariant the dedup relies
// on today: the routing layer rejects duplicate clients at construction,
// so every precomputed path of an element is distinct and EvalPaths
// returns exactly the stored SparsePaths slice (ServicePaths now
// materializes dense copies on demand, so the aliasing is checked
// against the sparse accessor). The dedup machinery is the guard that
// keeps evaluation counts honest should coincident paths ever become
// constructible.
func TestEvalPathsAliasesServicePaths(t *testing.T) {
	g, err := topology.RandomConnected(10, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstance(r, []Service{
		{Name: "dup", Clients: []graph.NodeID{0, 1, 0}},
	}, 0.8); err == nil {
		t.Fatal("duplicate clients should be rejected at instance construction")
	}
	inst, err := NewInstance(r, []Service{
		{Name: "a", Clients: []graph.NodeID{0, 1, 2}},
		{Name: "b", Clients: []graph.NodeID{3, 4}},
	}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < inst.NumServices(); s++ {
		for _, h := range inst.Candidates(s) {
			sp, err := inst.SparsePaths(s, h)
			if err != nil {
				t.Fatal(err)
			}
			ep, err := inst.EvalPaths(s, h)
			if err != nil {
				t.Fatal(err)
			}
			if len(sp) != len(ep) {
				t.Fatalf("service %d host %d: EvalPaths dropped paths from a distinct set", s, h)
			}
			if &sp[0] != &ep[0] {
				t.Fatalf("service %d host %d: EvalPaths should alias SparsePaths when distinct", s, h)
			}
			// ServicePaths materializes dense copies of the same node sets.
			dense, err := inst.ServicePaths(s, h)
			if err != nil {
				t.Fatal(err)
			}
			for i := range dense {
				if !sp[i].Dense().Equal(dense[i]) {
					t.Fatalf("service %d host %d path %d: dense materialization mismatch", s, h, i)
				}
			}
		}
	}
}
