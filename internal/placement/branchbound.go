package placement

import (
	"fmt"
)

// BranchAndBound computes the exact optimum placement like BruteForce but
// prunes the search tree with an admissible upper bound derived from
// submodularity: with services placed in index order, the best completion
// of a partial placement is at most
//
//	f(current) + Σ_{unplaced s} max_{h ∈ H_s} [f(current ∪ P(C_s, h)) − f(current)],
//
// because by diminishing returns each service's marginal gain can only
// shrink as other services are added. The bound is admissible only for
// monotone submodular objectives (coverage, distinguishability — Lemmas
// 13 and 17); BranchAndBound rejects non-submodular objectives, for which
// pruning could cut off the true optimum.
//
// The search is seeded with the greedy solution, so the incumbent starts
// within a factor 2 of optimal and pruning bites immediately. nodeBudget
// caps the number of explored tree nodes (0 = DefaultBranchBudget);
// exceeding it returns an error rather than a silently suboptimal answer.
func BranchAndBound(inst *Instance, obj Objective, nodeBudget int64) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if !obj.submodular() {
		return nil, fmt.Errorf("placement: branch and bound requires a submodular objective, %s is not", obj.Name())
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultBranchBudget
	}

	// Incumbent: the greedy solution (1/2-approximate ⇒ a strong seed).
	greedy, err := Greedy(inst, obj)
	if err != nil {
		return nil, err
	}
	best := greedy.Value
	bestPlacement := greedy.Placement.Clone()

	res := &Result{}
	nodes := int64(0)

	var dfs func(s int, eval evaluator, current Placement) error
	dfs = func(s int, eval evaluator, current Placement) error {
		nodes++
		if nodes > nodeBudget {
			return fmt.Errorf("placement: branch and bound exceeded node budget %d", nodeBudget)
		}
		if s == inst.NumServices() {
			if v := eval.Value(); v > best {
				best = v
				bestPlacement = current.Clone()
			}
			return nil
		}

		// Admissible bound: current value plus each remaining service's
		// best standalone marginal gain.
		base := eval.Value()
		bound := base
		// Candidate gains for service s, reused for branching order.
		type hostGain struct {
			host int
			gain float64
		}
		var sGains []hostGain
		for rem := s; rem < inst.NumServices(); rem++ {
			bestGain := 0.0
			for _, h := range inst.candidates[rem] {
				paths, err := inst.EvalPaths(rem, h)
				if err != nil {
					return err
				}
				trial := eval.Clone()
				trial.Add(paths)
				res.Evaluations++
				gain := trial.Value() - base
				if rem == s {
					sGains = append(sGains, hostGain{host: h, gain: gain})
				}
				if gain > bestGain {
					bestGain = gain
				}
			}
			bound += bestGain
		}
		if bound <= best {
			return nil // no completion can beat the incumbent
		}

		// Branch on service s, best-gain candidates first so good
		// incumbents arrive early. Stable by host ID for determinism.
		for i := 1; i < len(sGains); i++ {
			for j := i; j > 0 && (sGains[j].gain > sGains[j-1].gain ||
				(sGains[j].gain == sGains[j-1].gain && sGains[j].host < sGains[j-1].host)); j-- {
				sGains[j], sGains[j-1] = sGains[j-1], sGains[j]
			}
		}
		for _, hg := range sGains {
			paths, err := inst.EvalPaths(s, hg.host)
			if err != nil {
				return err
			}
			child := eval.Clone()
			child.Add(paths)
			current.Hosts[s] = hg.host
			if err := dfs(s+1, child, current); err != nil {
				return err
			}
			current.Hosts[s] = Unplaced
		}
		return nil
	}

	if err := dfs(0, obj.newEvaluator(inst.NumNodes()), NewPlacement(inst.NumServices())); err != nil {
		return nil, err
	}
	res.Placement = bestPlacement
	res.Value = best
	return res, nil
}

// DefaultBranchBudget caps the branch-and-bound tree size.
const DefaultBranchBudget = 2_000_000
