// Package placement implements the paper's primary contribution:
// monitoring-aware service placement (Sections II-C, V, VI, VII). An
// Instance couples a routed network with a set of services, their clients,
// and the QoS-derived candidate host sets; the algorithms in this package
// select one host per service to maximize a monitoring objective:
//
//   - Greedy — Algorithm 2, the 1/2-approximate greedy over the partition
//     matroid (GC, GI, GD depending on the objective);
//   - GreedyLazy / GreedyLazyParallel — the same algorithm with CELF lazy
//     evaluation for submodular objectives: identical placements, far
//     fewer objective evaluations;
//   - GreedyParallel — Algorithm 2 with each round's evaluations fanned
//     out across goroutines;
//   - LocalSearch / GreedyWithLocalSearch — swap-based refinement;
//   - QoS — the best-QoS baseline (minimize worst client distance);
//   - Random — the random-within-candidates baseline (RD);
//   - BruteForce / BranchAndBound — the exact optimum (BF) for small
//     instances, without and with submodular bound pruning;
//   - GreedyCapacitated — the Section VII-A extension with node capacity
//     constraints, a 1/(p+1)-approximation by Theorem 21.
package placement

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/qos"
	"repro/internal/routing"
)

// Service describes one service to place: a name and the client locations
// C_s interested in it.
type Service struct {
	Name    string
	Clients []graph.NodeID
}

// Unplaced marks a service without an assigned host in a Placement.
const Unplaced = -1

// Placement assigns one host per service; Hosts[s] is the node hosting
// service s, or Unplaced.
type Placement struct {
	Hosts []graph.NodeID
}

// NewPlacement returns an all-unplaced assignment for numServices.
func NewPlacement(numServices int) Placement {
	hosts := make([]graph.NodeID, numServices)
	for i := range hosts {
		hosts[i] = Unplaced
	}
	return Placement{Hosts: hosts}
}

// Complete reports whether every service has a host.
func (p Placement) Complete() bool {
	for _, h := range p.Hosts {
		if h == Unplaced {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (p Placement) Clone() Placement {
	return Placement{Hosts: append([]graph.NodeID(nil), p.Hosts...)}
}

// element is one ground-set member of the Section V-A1 partition matroid:
// service s placed on candidate host h, carrying its measurement paths
// P(C_s, h). Paths are held sparse — sorted node indices, memory
// proportional to hop count — because the instance keeps every
// candidate pair's paths alive at once and the dense form is O(N) per
// path, prohibitive at 10k–100k nodes.
type element struct {
	service int
	host    graph.NodeID
	// paths holds one path per client, index-aligned with
	// Service.Clients — the per-connection view the serving and
	// localization layers rely on.
	paths []*bitset.Sparse
	// evalPaths is paths with duplicate node sets removed. Every
	// objective evaluator is idempotent in repeated paths — coverage
	// unions, partition refinement, and signature-based enumeration all
	// ignore duplicates — so the algorithms evaluate this smaller slice.
	// Today the routing layer rejects duplicate clients at construction,
	// making every per-element path distinct and evalPaths an alias of
	// paths; the dedup is the guard that keeps evaluation counts honest
	// should coincident paths ever become constructible.
	evalPaths []*bitset.Sparse
}

// dedupPaths returns paths with duplicate node sets removed, keeping the
// first occurrence. The input slice is returned unchanged (not copied)
// when every path is distinct.
func dedupPaths(paths []*bitset.Sparse) []*bitset.Sparse {
	seen := make(map[string]struct{}, len(paths))
	out := paths
	deduped := false
	for i, p := range paths {
		k := p.Key()
		if _, dup := seen[k]; dup {
			if !deduped {
				out = append([]*bitset.Sparse(nil), paths[:i]...)
				deduped = true
			}
			continue
		}
		seen[k] = struct{}{}
		if deduped {
			out = append(out, p)
		}
	}
	return out
}

// Instance is a fully prepared placement problem: the routed graph, the
// services, the candidate host sets H_s for the configured QoS slack α,
// and the precomputed measurement paths for every feasible (service, host)
// pair.
type Instance struct {
	router     *routing.Router
	services   []Service
	alpha      float64
	candidates [][]graph.NodeID
	profiles   []*qos.Profile
	elements   []element
	// elemIndex[s] maps candidate position → ground element index.
	elemIndex [][]int
}

// NewInstance validates the inputs, computes H_s per Section III-A, and
// precomputes P(C_s, h) for every candidate pair.
func NewInstance(r *routing.Router, services []Service, alpha float64) (*Instance, error) {
	if r == nil {
		return nil, fmt.Errorf("placement: nil router")
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("placement: no services")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("placement: alpha %g outside [0, 1]", alpha)
	}
	inst := &Instance{
		router:     r,
		services:   append([]Service(nil), services...),
		alpha:      alpha,
		candidates: make([][]graph.NodeID, len(services)),
		profiles:   make([]*qos.Profile, len(services)),
		elemIndex:  make([][]int, len(services)),
	}
	for s, svc := range services {
		if len(svc.Clients) == 0 {
			return nil, fmt.Errorf("placement: service %d (%s) has no clients", s, svc.Name)
		}
		profile, err := qos.NewProfile(r, svc.Clients)
		if err != nil {
			return nil, fmt.Errorf("placement: service %d (%s): %w", s, svc.Name, err)
		}
		inst.profiles[s] = profile
		hosts := profile.CandidateHosts(alpha)
		if len(hosts) == 0 {
			return nil, fmt.Errorf("placement: service %d (%s): empty candidate set", s, svc.Name)
		}
		inst.candidates[s] = hosts
		inst.elemIndex[s] = make([]int, len(hosts))
		for i, h := range hosts {
			paths, err := r.SparsePathSet(svc.Clients, h)
			if err != nil {
				return nil, fmt.Errorf("placement: service %d (%s) host %d: %w", s, svc.Name, h, err)
			}
			inst.elemIndex[s][i] = len(inst.elements)
			inst.elements = append(inst.elements, element{
				service:   s,
				host:      h,
				paths:     paths,
				evalPaths: dedupPaths(paths),
			})
		}
	}
	return inst, nil
}

// NumNodes returns |N| of the underlying graph.
func (inst *Instance) NumNodes() int { return inst.router.NumNodes() }

// NumServices returns |S|.
func (inst *Instance) NumServices() int { return len(inst.services) }

// Alpha returns the QoS slack the instance was built with.
func (inst *Instance) Alpha() float64 { return inst.alpha }

// Service returns the s-th service definition.
func (inst *Instance) Service(s int) Service { return inst.services[s] }

// Router returns the underlying router.
func (inst *Instance) Router() *routing.Router { return inst.router }

// Candidates returns H_s for service s (shared slice; do not mutate).
func (inst *Instance) Candidates(s int) []graph.NodeID { return inst.candidates[s] }

// Profile returns the QoS distance profile for service s.
func (inst *Instance) Profile(s int) *qos.Profile { return inst.profiles[s] }

// ServicePaths returns P(C_s, h), for a candidate host h of service s,
// as dense node sets materialized from the instance's sparse storage.
// It returns an error if h is not a candidate.
//
// The result is index-aligned with the service's Clients slice — entry i
// is the routed path of Clients[i] — and may therefore contain duplicate
// paths when a client is listed twice. Observation ingest and
// localization depend on this alignment; objective evaluation should use
// EvalPaths instead, which serves the stored sparse form without the
// O(clients × N) materialization cost.
func (inst *Instance) ServicePaths(s int, h graph.NodeID) ([]*bitset.Set, error) {
	for i, cand := range inst.candidates[s] {
		if cand == h {
			sparse := inst.elements[inst.elemIndex[s][i]].paths
			dense := make([]*bitset.Set, len(sparse))
			for j, p := range sparse {
				dense[j] = p.Dense()
			}
			return dense, nil
		}
	}
	return nil, fmt.Errorf("placement: host %d not a candidate for service %d", h, s)
}

// SparsePaths returns P(C_s, h) in the stored sparse representation,
// index-aligned with the service's Clients slice like ServicePaths but
// without materializing dense sets. The slices and sets are shared;
// treat them as read-only.
func (inst *Instance) SparsePaths(s int, h graph.NodeID) ([]*bitset.Sparse, error) {
	for i, cand := range inst.candidates[s] {
		if cand == h {
			return inst.elements[inst.elemIndex[s][i]].paths, nil
		}
	}
	return nil, fmt.Errorf("placement: host %d not a candidate for service %d", h, s)
}

// EvalPaths returns P(C_s, h) with duplicate paths removed — the form the
// objective evaluators consume (identical objective values, fewer
// refinements). Unlike ServicePaths the result is NOT index-aligned with
// the service's clients.
func (inst *Instance) EvalPaths(s int, h graph.NodeID) ([]*bitset.Sparse, error) {
	for i, cand := range inst.candidates[s] {
		if cand == h {
			return inst.elements[inst.elemIndex[s][i]].evalPaths, nil
		}
	}
	return nil, fmt.Errorf("placement: host %d not a candidate for service %d", h, s)
}

// PathSet materializes the overall measurement path set ∪_s P(C_s, h_s)
// for a placement. Unplaced services contribute nothing. It returns an
// error if a placed host is outside its candidate set.
func (inst *Instance) PathSet(pl Placement) (*monitor.PathSet, error) {
	if len(pl.Hosts) != len(inst.services) {
		return nil, fmt.Errorf("placement: placement has %d hosts, want %d", len(pl.Hosts), len(inst.services))
	}
	ps := monitor.NewPathSet(inst.NumNodes())
	for s, h := range pl.Hosts {
		if h == Unplaced {
			continue
		}
		paths, err := inst.ServicePaths(s, h)
		if err != nil {
			return nil, err
		}
		if err := ps.AddAll(paths); err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// Metrics summarizes the three Section II-B measures of a placement at
// k = 1, the paper's evaluation setting.
type Metrics struct {
	Coverage int   // |C(P)|
	S1       int   // |S_1(P)|
	D1       int64 // |D_1(P)|
}

// Evaluate computes the k = 1 metrics of a placement.
func (inst *Instance) Evaluate(pl Placement) (Metrics, error) {
	ps, err := inst.PathSet(pl)
	if err != nil {
		return Metrics{}, err
	}
	pt := monitor.NewPartitionFromPaths(ps)
	return Metrics{Coverage: pt.Coverage(), S1: pt.S1(), D1: pt.D1()}, nil
}

// WorstRelativeDistance returns max_s d̄(C_s, h_s): the worst QoS
// degradation across services, the placement's position on the
// monitoring-QoS tradeoff curve. Unplaced services are skipped.
func (inst *Instance) WorstRelativeDistance(pl Placement) float64 {
	worst := 0.0
	for s, h := range pl.Hosts {
		if h == Unplaced {
			continue
		}
		if d := inst.profiles[s].RelativeDistance(h); d > worst {
			worst = d
		}
	}
	return worst
}
