package placement

import (
	"fmt"
)

// LocalSearch improves a complete placement by single-service moves: at
// each step it scans every (service, alternative candidate host) pair and
// applies the move with the largest objective improvement, stopping at a
// local optimum or after maxMoves moves (0 = no cap beyond the natural
// |S|·max|H_s| bound per step; the search always terminates because the
// objective strictly increases and is bounded).
//
// This is the classic interchange heuristic from facility location. It is
// most useful as a polish pass after Greedy: greedy's early, globally
// committed picks can sometimes be improved once the full path set is
// known. The result never has a lower objective value than the input.
func LocalSearch(inst *Instance, obj Objective, start Placement, maxMoves int) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if len(start.Hosts) != inst.NumServices() {
		return nil, fmt.Errorf("placement: placement has %d hosts, want %d", len(start.Hosts), inst.NumServices())
	}
	if !start.Complete() {
		return nil, fmt.Errorf("placement: local search requires a complete placement")
	}
	current := start.Clone()
	currentVal, err := EvaluateWith(inst, obj, current)
	if err != nil {
		return nil, err
	}

	res := &Result{Placement: current, Value: currentVal}
	moves := 0
	for maxMoves <= 0 || moves < maxMoves {
		bestS, bestH := -1, -1
		bestVal := currentVal
		for s := 0; s < inst.NumServices(); s++ {
			original := current.Hosts[s]
			for _, h := range inst.candidates[s] {
				if h == original {
					continue
				}
				current.Hosts[s] = h
				v, err := EvaluateWith(inst, obj, current)
				if err != nil {
					current.Hosts[s] = original
					return nil, err
				}
				res.Evaluations++
				if v > bestVal {
					bestS, bestH, bestVal = s, h, v
				}
			}
			current.Hosts[s] = original
		}
		if bestS < 0 {
			break // local optimum
		}
		current.Hosts[bestS] = bestH
		currentVal = bestVal
		moves++
	}
	res.Placement = current
	res.Value = currentVal
	return res, nil
}

// GreedyWithLocalSearch runs Algorithm 2 and then polishes the result
// with LocalSearch — the GD+LS ablation of DESIGN.md. The returned
// Evaluations count covers both phases.
func GreedyWithLocalSearch(inst *Instance, obj Objective, maxMoves int) (*Result, error) {
	greedy, err := Greedy(inst, obj)
	if err != nil {
		return nil, err
	}
	polished, err := LocalSearch(inst, obj, greedy.Placement, maxMoves)
	if err != nil {
		return nil, err
	}
	polished.Order = greedy.Order
	polished.Evaluations += greedy.Evaluations
	return polished, nil
}
