package placement

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// The placement stack is distance-agnostic: weighted-latency networks
// flow through routing → QoS candidates → greedy unchanged. This test
// pins that end-to-end path.
func TestPlacementOnWeightedTopology(t *testing.T) {
	topo, err := topology.BuildWeighted(topology.Abovenet, 1, 10, 17)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	services := []Service{
		{Name: "a", Clients: topo.CandidateClients[:3]},
		{Name: "b", Clients: topo.CandidateClients[3:6]},
	}
	inst, err := NewInstance(r, services, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	obj := mustObj(NewDistinguishability(1))
	res, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Complete() {
		t.Fatal("weighted placement incomplete")
	}
	if inst.WorstRelativeDistance(res.Placement) > 0.5+1e-9 {
		t.Fatalf("QoS constraint violated on weighted graph: %v",
			inst.WorstRelativeDistance(res.Placement))
	}
	// Candidate sets must reflect weighted distances: a zero-slack
	// instance is at least as constrained as a relaxed one.
	strict, err := NewInstance(r, services, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if len(strict.Candidates(s)) > len(inst.Candidates(s)) {
			t.Fatal("strict candidate set larger than relaxed one")
		}
	}
	// Weighted and unweighted builds of the same spec generally route
	// differently; make sure at least the distances differ.
	unweighted := topology.MustBuild(topology.Abovenet)
	ru, err := routing.New(unweighted.Graph)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for v := 1; v < topo.Graph.NumNodes(); v++ {
		if r.Distance(0, v) != ru.Distance(0, v) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("weighted distances should differ from hop counts")
	}
}
