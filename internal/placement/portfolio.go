package placement

import (
	"fmt"
	"math/rand"
	"strings"
)

// Portfolio runs the full algorithm suite of the paper's evaluation on one
// instance and reports each algorithm's placement with all three k = 1
// measures — the programmatic form of one α-column of Figs. 5-7.
type Portfolio struct {
	// Entries come in canonical order: GC, GI, GD, GD+LS, QoS, RD, and BF
	// when requested.
	Entries []PortfolioEntry
}

// PortfolioEntry is one algorithm's outcome.
type PortfolioEntry struct {
	Name      string
	Placement Placement
	Metrics   Metrics
	// WorstRelDistance is the placement's QoS degradation.
	WorstRelDistance float64
}

// PortfolioConfig tunes RunPortfolio.
type PortfolioConfig struct {
	// IncludeBF adds the brute-force optimum for each measure (expensive;
	// bounded by BFBudget, 0 = package default). The BF entry's Metrics
	// hold per-measure optima and its Placement is the D1-optimal one.
	IncludeBF bool
	BFBudget  int64
	// RDSeed drives the random placement (a single draw; average over
	// seeds yourself if needed).
	RDSeed int64
	// LocalSearch adds a GD+LS entry (greedy polished by interchange).
	LocalSearch bool
}

// RunPortfolio executes every algorithm on the instance.
func RunPortfolio(inst *Instance, cfg PortfolioConfig) (*Portfolio, error) {
	coverage := NewCoverage()
	ident, err := NewIdentifiability(1)
	if err != nil {
		return nil, err
	}
	dist, err := NewDistinguishability(1)
	if err != nil {
		return nil, err
	}

	p := &Portfolio{}
	add := func(name string, pl Placement) error {
		m, err := inst.Evaluate(pl)
		if err != nil {
			return fmt.Errorf("placement: portfolio %s: %w", name, err)
		}
		p.Entries = append(p.Entries, PortfolioEntry{
			Name:             name,
			Placement:        pl,
			Metrics:          m,
			WorstRelDistance: inst.WorstRelativeDistance(pl),
		})
		return nil
	}

	for _, run := range []struct {
		name string
		obj  Objective
	}{
		{"GC", coverage},
		{"GI", ident},
		{"GD", dist},
	} {
		res, err := Greedy(inst, run.obj)
		if err != nil {
			return nil, err
		}
		if err := add(run.name, res.Placement); err != nil {
			return nil, err
		}
	}

	if cfg.LocalSearch {
		res, err := GreedyWithLocalSearch(inst, dist, 0)
		if err != nil {
			return nil, err
		}
		if err := add("GD+LS", res.Placement); err != nil {
			return nil, err
		}
	}

	qres, err := QoS(inst, dist)
	if err != nil {
		return nil, err
	}
	if err := add("QoS", qres.Placement); err != nil {
		return nil, err
	}

	rres, err := Random(inst, dist, rand.New(rand.NewSource(cfg.RDSeed)))
	if err != nil {
		return nil, err
	}
	if err := add("RD", rres.Placement); err != nil {
		return nil, err
	}

	if cfg.IncludeBF {
		bfD, err := BruteForce(inst, dist, cfg.BFBudget)
		if err != nil {
			return nil, err
		}
		bfC, err := BruteForce(inst, coverage, cfg.BFBudget)
		if err != nil {
			return nil, err
		}
		bfI, err := BruteForce(inst, ident, cfg.BFBudget)
		if err != nil {
			return nil, err
		}
		mD, err := inst.Evaluate(bfD.Placement)
		if err != nil {
			return nil, err
		}
		p.Entries = append(p.Entries, PortfolioEntry{
			Name:      "BF",
			Placement: bfD.Placement,
			Metrics: Metrics{
				Coverage: int(bfC.Value),
				S1:       int(bfI.Value),
				D1:       mD.D1,
			},
			WorstRelDistance: inst.WorstRelativeDistance(bfD.Placement),
		})
	}
	return p, nil
}

// Lookup returns the entry with the given name, or nil.
func (p *Portfolio) Lookup(name string) *PortfolioEntry {
	for i := range p.Entries {
		if p.Entries[i].Name == name {
			return &p.Entries[i]
		}
	}
	return nil
}

// Render produces an aligned text table.
func (p *Portfolio) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-24s %9s %9s %9s %8s\n",
		"algo", "hosts", "covered", "identif.", "disting.", "worst-d̄")
	for _, e := range p.Entries {
		fmt.Fprintf(&b, "%-8s %-24s %9d %9d %9d %8.2f\n",
			e.Name, fmt.Sprint(e.Placement.Hosts),
			e.Metrics.Coverage, e.Metrics.S1, e.Metrics.D1, e.WorstRelDistance)
	}
	return b.String()
}
