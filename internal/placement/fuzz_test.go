package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// FuzzGreedyLazyEquivalence generates a seeded random connected topology
// plus a service population from the fuzz input and asserts the CELF
// engine is indistinguishable from plain greedy: equal objective value for
// every objective, and equal hosts/order wherever the lazy heap is
// actually in play (submodular objectives; identifiability falls back to
// the exact algorithm by construction).
func FuzzGreedyLazyEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(7))
	f.Add(int64(137), uint8(1), uint8(0))
	f.Add(int64(-9), uint8(5), uint8(10))
	f.Add(int64(2016), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, svcCount, alphaStep uint8) {
		n := 8 + int(uint64(seed)%9) // 8..16 nodes
		maxEdges := n * (n - 1) / 2
		m := (n - 1) + int(uint64(seed)>>7%uint64(maxEdges-(n-1)+1))
		g, err := topology.RandomConnected(n, m, seed)
		if err != nil {
			t.Skip() // degenerate parameters, not a property violation
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		numServices := 1 + int(svcCount%5)
		services := make([]Service, numServices)
		for s := range services {
			clients := make([]graph.NodeID, 1+rng.Intn(3))
			for i := range clients {
				clients[i] = rng.Intn(n)
			}
			services[s] = Service{Name: "fz", Clients: clients}
		}
		alpha := float64(alphaStep%11) / 10
		inst, err := NewInstance(r, services, alpha)
		if err != nil {
			t.Skip() // e.g. empty candidate set at small alpha
		}
		for _, obj := range []Objective{
			NewCoverage(),
			mustObj(NewIdentifiability(1)),
			mustObj(NewDistinguishability(1)),
		} {
			exact, err := Greedy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			lazy, err := GreedyLazy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			if lazy.Value != exact.Value {
				t.Fatalf("%s: lazy value %v != greedy %v (seed=%d services=%d alpha=%g)",
					obj.Name(), lazy.Value, exact.Value, seed, numServices, alpha)
			}
			if !reflect.DeepEqual(lazy.Placement.Hosts, exact.Placement.Hosts) ||
				!reflect.DeepEqual(lazy.Order, exact.Order) {
				t.Fatalf("%s: lazy placement diverges from greedy (seed=%d services=%d alpha=%g): %v vs %v",
					obj.Name(), seed, numServices, alpha, lazy.Placement.Hosts, exact.Placement.Hosts)
			}
			if IsSubmodular(obj) && lazy.Evaluations > exact.Evaluations {
				t.Fatalf("%s: lazy used more evaluations (%d) than greedy (%d)",
					obj.Name(), lazy.Evaluations, exact.Evaluations)
			}
		}
	})
}
