package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/matroid"
	"repro/internal/routing"
	"repro/internal/topology"
)

// mustObj unwraps an (Objective, error) constructor result, panicking on
// error; constructors only fail on invalid k, which tests pass correctly.
func mustObj(obj Objective, err error) Objective {
	if err != nil {
		panic(err)
	}
	return obj
}

func TestGreedyNilObjective(t *testing.T) {
	inst := fig1Instance(t, 1, 0.5)
	if _, err := Greedy(inst, nil); err == nil {
		t.Fatal("nil objective should error")
	}
}

func TestGreedyPlacesAllServices(t *testing.T) {
	inst := fig1Instance(t, 5, 0.5)
	res, err := Greedy(inst, mustObj(NewDistinguishability(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Complete() {
		t.Fatalf("placement incomplete: %v", res.Placement.Hosts)
	}
	if len(res.Order) != 5 {
		t.Fatalf("Order = %v", res.Order)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations counted")
	}
}

func TestGreedyDistinguishabilityFig1(t *testing.T) {
	// With 5 services and hosts {r,a,b,c,d} available, GD must reach full
	// identifiability: spreading services across a..d yields unique
	// signatures for all 9 nodes (the paper's Fig. 1 discussion).
	inst := fig1Instance(t, 5, 0.5)
	res, err := Greedy(inst, mustObj(NewDistinguishability(1)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := inst.Evaluate(res.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if m.S1 != 9 {
		t.Fatalf("GD S1 = %d, want 9 (placement %v)", m.S1, res.Placement.Hosts)
	}
	if m.D1 != 45 { // C(10, 2): all hypothesis pairs distinguishable
		t.Fatalf("GD D1 = %d, want 45", m.D1)
	}

	// QoS stacks everything on r and identifies only r.
	qosRes, err := QoS(inst, mustObj(NewDistinguishability(1)))
	if err != nil {
		t.Fatal(err)
	}
	qm, err := inst.Evaluate(qosRes.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if qm.S1 != 1 {
		t.Fatalf("QoS S1 = %d, want 1", qm.S1)
	}
	if qm.D1 >= m.D1 {
		t.Fatalf("QoS D1 %d should trail GD D1 %d", qm.D1, m.D1)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	a, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Placement.Hosts, b.Placement.Hosts) || a.Value != b.Value {
		t.Fatal("greedy must be deterministic")
	}
}

func TestQoSPicksBestHosts(t *testing.T) {
	inst := fig1Instance(t, 2, 1)
	res, err := QoS(inst, NewCoverage())
	if err != nil {
		t.Fatal(err)
	}
	for s, h := range res.Placement.Hosts {
		if want := inst.Profile(s).BestHost(); h != want {
			t.Fatalf("service %d on %d, want %d", s, h, want)
		}
	}
}

func TestRandomStaysInCandidates(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	rng := rand.New(rand.NewSource(9))
	res, err := Random(inst, NewCoverage(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for s, h := range res.Placement.Hosts {
		ok := false
		for _, c := range inst.Candidates(s) {
			if c == h {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("service %d placed on non-candidate %d", s, h)
		}
	}
	if _, err := Random(inst, NewCoverage(), nil); err == nil {
		t.Fatal("nil rng should error")
	}
	if _, err := Random(inst, nil, rng); err == nil {
		t.Fatal("nil objective should error")
	}
}

func TestRandomSeededReproducible(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	a, err := Random(inst, NewCoverage(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(inst, NewCoverage(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Placement.Hosts, b.Placement.Hosts) {
		t.Fatal("same seed should reproduce the placement")
	}
}

func TestBruteForceBudget(t *testing.T) {
	inst := fig1Instance(t, 3, 1) // 9^3 = 729 placements
	if _, err := BruteForce(inst, NewCoverage(), 10); err == nil {
		t.Fatal("budget overflow should error")
	}
	res, err := BruteForce(inst, NewCoverage(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 729 {
		t.Fatalf("Evaluations = %d, want 729", res.Evaluations)
	}
	if _, err := BruteForce(inst, nil, 0); err == nil {
		t.Fatal("nil objective should error")
	}
}

func TestBruteForceDominatesGreedy(t *testing.T) {
	objectives := []Objective{
		NewCoverage(),
		mustObj(NewIdentifiability(1)),
		mustObj(NewDistinguishability(1)),
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g, err := topology.RandomConnected(8, 12, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		services := []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
		}
		inst, err := NewInstance(r, services, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range objectives {
			bf, err := BruteForce(inst, obj, 0)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := Greedy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			if gr.Value > bf.Value {
				t.Fatalf("trial %d %s: greedy %v beats brute force %v", trial, obj.Name(), gr.Value, bf.Value)
			}
			// Theorem 11 guarantee for the submodular objectives.
			if obj.Name() != "identifiability-1" && gr.Value < bf.Value/2 {
				t.Fatalf("trial %d %s: greedy %v below half of optimum %v", trial, obj.Name(), gr.Value, bf.Value)
			}
		}
	}
}

func TestEvaluateWith(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	pl := NewPlacement(2)
	pl.Hosts[0], pl.Hosts[1] = 1, 2
	v, err := EvaluateWith(inst, NewCoverage(), pl)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("coverage = %v", v)
	}
	if _, err := EvaluateWith(inst, nil, pl); err == nil {
		t.Fatal("nil objective should error")
	}
	if _, err := EvaluateWith(inst, NewCoverage(), NewPlacement(1)); err == nil {
		t.Fatal("wrong-length placement should error")
	}
}

// Theorem 19: with σ* non-identifiable nodes under the max-|S_1|
// placement and σ0 under the max-|D_1| placement, σ0 ≤ min((σ*+1)σ*, N).
func TestTheorem19Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		g, err := topology.RandomConnected(7, 10, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		services := []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
		}
		inst, err := NewInstance(r, services, 1)
		if err != nil {
			t.Fatal(err)
		}
		n := inst.NumNodes()

		maxD, err := BruteForce(inst, mustObj(NewDistinguishability(1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		maxS, err := BruteForce(inst, mustObj(NewIdentifiability(1)), 0)
		if err != nil {
			t.Fatal(err)
		}
		mD, err := inst.Evaluate(maxD.Placement)
		if err != nil {
			t.Fatal(err)
		}
		sigma0 := n - mD.S1
		sigmaStar := n - int(maxS.Value)
		bound := (sigmaStar + 1) * sigmaStar
		if bound > n {
			bound = n
		}
		if sigma0 > bound {
			t.Fatalf("trial %d: σ0 = %d exceeds Theorem 19 bound %d (σ* = %d)",
				trial, sigma0, bound, sigmaStar)
		}
	}
}

// Lemma 13 / Lemma 17: the element-level objectives are monotone
// submodular; Proposition 15: identifiability is monotone but generally
// not submodular (the violation needs particular instances, so here we
// only require monotonicity).
func TestObjectivePropertiesOnElements(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	size, _ := inst.Elements()
	for _, tc := range []struct {
		obj        Objective
		submodular bool
	}{
		{NewCoverage(), true},
		{mustObj(NewDistinguishability(1)), true},
		{mustObj(NewIdentifiability(1)), false},
	} {
		f := inst.ObjectiveOnElements(tc.obj)
		if v := matroid.CheckMonotone(f, size, 150, 3); v != nil {
			t.Fatalf("%s: %v", tc.obj.Name(), v)
		}
		if tc.submodular {
			if v := matroid.CheckSubmodular(f, size, 150, 3); v != nil {
				t.Fatalf("%s: %v", tc.obj.Name(), v)
			}
		}
	}
}
