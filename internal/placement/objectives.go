package placement

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/monitor"
)

// Objective selects the set function f(P) maximized by the placement
// algorithms. The three paper objectives are Coverage (MCSP),
// Identifiability (MISP), and Distinguishability (MDSP), each optionally
// restricted to a set of nodes of interest (Section VII-B). Objectives are
// sealed to this package because evaluation is tightly coupled to the
// incremental refinement structures.
type Objective interface {
	// Name returns a short identifier ("coverage", "identifiability-1", …).
	Name() string
	// K returns the failure budget the objective is defined for (0 for
	// coverage, which is budget-free).
	K() int
	// newEvaluator returns a fresh evaluator over numNodes nodes.
	newEvaluator(numNodes int) evaluator
	// submodular reports whether the objective is monotone submodular
	// (Lemmas 13 and 17), which algorithms like BranchAndBound rely on
	// for admissible pruning bounds.
	submodular() bool
}

// evaluator incrementally tracks the objective value of a growing path
// set. Add is destructive; use Clone to branch for hypothetical
// evaluations (line 4 of Algorithm 2). A clone is fully independent of
// its origin, so an algorithm may adopt a trial evaluator as its new
// running state — Greedy and GreedyLazy keep the winning trial of each
// round instead of re-adding the chosen paths. Paths arrive in the
// sparse representation the instance stores; evaluators whose internal
// structure is dense convert at the boundary.
type evaluator interface {
	Add(paths []*bitset.Sparse)
	Clone() evaluator
	Value() float64
}

// IsSubmodular reports whether obj is monotone submodular: true for
// coverage and distinguishability at every k (Lemmas 13 and 17), false
// for identifiability (Propositions 15 and 16). Submodular objectives
// admit the lazy-greedy engine and branch-and-bound pruning; callers such
// as the placemon facade use this to pick a default algorithm.
func IsSubmodular(obj Objective) bool { return obj != nil && obj.submodular() }

// ---- Coverage (MCSP) -------------------------------------------------

type coverageObjective struct {
	interest *bitset.Set // nil = all nodes
}

// NewCoverage returns the |C(P)| objective of Section II-B1.
func NewCoverage() Objective { return coverageObjective{} }

// NewCoverageOfInterest returns |C(P) ∩ N_I| (Section VII-B). The interest
// list indexes nodes of the instance graph.
func NewCoverageOfInterest(numNodes int, interest []int) Objective {
	return coverageObjective{interest: bitset.FromIndices(numNodes, interest...)}
}

func (o coverageObjective) Name() string {
	if o.interest != nil {
		return "coverage-interest"
	}
	return "coverage"
}

func (o coverageObjective) K() int { return 0 }

func (o coverageObjective) submodular() bool { return true }

func (o coverageObjective) newEvaluator(numNodes int) evaluator {
	return &coverageEval{covered: bitset.New(numNodes), interest: o.interest}
}

type coverageEval struct {
	covered  *bitset.Set
	interest *bitset.Set
}

func (e *coverageEval) Add(paths []*bitset.Sparse) {
	for _, p := range paths {
		p.UnionInto(e.covered)
	}
}

func (e *coverageEval) Clone() evaluator {
	return &coverageEval{covered: e.covered.Clone(), interest: e.interest}
}

func (e *coverageEval) Value() float64 {
	if e.interest != nil {
		return float64(e.covered.IntersectionCount(e.interest))
	}
	return float64(e.covered.Count())
}

// ---- Identifiability (MISP) and Distinguishability (MDSP), k = 1 ------

type partitionObjective struct {
	name         string
	value        func(pt *monitor.Partition, interest *bitset.Set) float64
	interest     *bitset.Set
	isSubmodular bool
}

func (o partitionObjective) Name() string { return o.name }

func (o partitionObjective) K() int { return 1 }

func (o partitionObjective) submodular() bool { return o.isSubmodular }

func (o partitionObjective) newEvaluator(numNodes int) evaluator {
	return &partitionEval{
		pt:       monitor.NewPartition(numNodes),
		value:    o.value,
		interest: o.interest,
	}
}

type partitionEval struct {
	pt       *monitor.Partition
	value    func(pt *monitor.Partition, interest *bitset.Set) float64
	interest *bitset.Set
}

func (e *partitionEval) Add(paths []*bitset.Sparse) { e.pt.RefineSparse(paths) }

func (e *partitionEval) Clone() evaluator {
	return &partitionEval{pt: e.pt.Clone(), value: e.value, interest: e.interest}
}

func (e *partitionEval) Value() float64 { return e.value(e.pt, e.interest) }

// NewIdentifiability returns the |S_k(P)| objective. k = 1 uses the
// incremental equivalence-class structure (Section V-D1); k > 1 falls back
// to exact enumeration and is exponential in k — suitable only for small
// networks.
func NewIdentifiability(k int) (Objective, error) {
	switch {
	case k < 1:
		return nil, fmt.Errorf("placement: identifiability requires k ≥ 1, got %d", k)
	case k == 1:
		return partitionObjective{
			name:         "identifiability-1",
			isSubmodular: false,
			value: func(pt *monitor.Partition, interest *bitset.Set) float64 {
				return float64(pt.S1())
			},
		}, nil
	default:
		return enumerationObjective{name: fmt.Sprintf("identifiability-%d", k), k: k, kind: kindIdentifiability}, nil
	}
}

// NewDistinguishability returns the |D_k(P)| objective, the paper's
// best-overall placement driver. k = 1 uses incremental refinement; k > 1
// enumerates F_k exactly.
func NewDistinguishability(k int) (Objective, error) {
	switch {
	case k < 1:
		return nil, fmt.Errorf("placement: distinguishability requires k ≥ 1, got %d", k)
	case k == 1:
		return partitionObjective{
			name:         "distinguishability-1",
			isSubmodular: true,
			value: func(pt *monitor.Partition, interest *bitset.Set) float64 {
				return float64(pt.D1())
			},
		}, nil
	default:
		return enumerationObjective{name: fmt.Sprintf("distinguishability-%d", k), k: k, kind: kindDistinguishability}, nil
	}
}

// NewIdentifiabilityOfInterest returns |S_1(P) ∩ N_I| (Section VII-B).
func NewIdentifiabilityOfInterest(numNodes int, interest []int) Objective {
	set := bitset.FromIndices(numNodes, interest...)
	return partitionObjective{
		name:         "identifiability-1-interest",
		interest:     set,
		isSubmodular: false,
		value: func(pt *monitor.Partition, interest *bitset.Set) float64 {
			count := 0
			for _, g := range pt.Groups() {
				// 1-identifiable = alone in its class and covered (an
				// uncovered singleton still collides with v0).
				if len(g) == 1 && interest.Contains(g[0]) && pt.Covered(g[0]) {
					count++
				}
			}
			return float64(count)
		},
	}
}

// NewDistinguishabilityOfInterest returns the Section VII-B interest-aware
// distinguishability at k = 1: the number of distinguishable hypothesis
// pairs {F, F'} with F a single-node failure of an interest node.
func NewDistinguishabilityOfInterest(numNodes int, interest []int) Objective {
	set := bitset.FromIndices(numNodes, interest...)
	return partitionObjective{
		name:         "distinguishability-1-interest",
		interest:     set,
		isSubmodular: true,
		value: func(pt *monitor.Partition, interest *bitset.Set) float64 {
			return float64(interestD1(pt, interest))
		},
	}
}

// interestD1 counts unordered hypothesis pairs with at least one member in
// the interest set that are distinguishable. Hypotheses are the |N|+1
// single-failure cases (v0 excluded from interest).
func interestD1(pt *monitor.Partition, interest *bitset.Set) int64 {
	n := int64(pt.NumNodes())
	i := int64(interest.Count())
	// Total pairs with ≥1 interesting member among n+1 hypotheses.
	totalPairs := pairs(n+1) - pairs(n+1-i)
	// Indistinguishable such pairs, class by class. v0 joins the class of
	// uncovered nodes (it shares their empty signature) but is itself never
	// a node of interest.
	var indist int64
	for _, g := range pt.Groups() {
		size := int64(len(g))
		var ing int64
		for _, v := range g {
			if interest.Contains(v) {
				ing++
			}
		}
		if !pt.Covered(g[0]) {
			size++
		}
		indist += pairs(size) - pairs(size-ing)
	}
	return totalPairs - indist
}

func pairs(n int64) int64 {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

// ---- General k ≥ 2 by enumeration --------------------------------------

type enumerationKind int

const (
	kindIdentifiability enumerationKind = iota + 1
	kindDistinguishability
)

type enumerationObjective struct {
	name string
	k    int
	kind enumerationKind
}

func (o enumerationObjective) Name() string { return o.name }

func (o enumerationObjective) K() int { return o.k }

// submodular: |D_k| is monotone submodular for every k (Lemma 17);
// |S_k| is not (Proposition 15).
func (o enumerationObjective) submodular() bool { return o.kind == kindDistinguishability }

func (o enumerationObjective) newEvaluator(numNodes int) evaluator {
	return &enumerationEval{ps: monitor.NewPathSet(numNodes), k: o.k, kind: o.kind}
}

type enumerationEval struct {
	ps   *monitor.PathSet
	k    int
	kind enumerationKind
}

func (e *enumerationEval) Add(paths []*bitset.Sparse) {
	// Enumeration only ever runs at k ≥ 2 on small networks (it is
	// exponential in k), so materializing dense sets here is cheap and
	// keeps monitor.PathSet's dense signature machinery untouched.
	dense := make([]*bitset.Set, len(paths))
	for i, p := range paths {
		dense[i] = p.Dense()
	}
	if err := e.ps.AddAll(dense); err != nil {
		// Paths come from the instance's precomputed elements, which are
		// validated at construction; failure here is a programming error.
		panic(fmt.Sprintf("placement: %v", err))
	}
}

func (e *enumerationEval) Clone() evaluator {
	return &enumerationEval{ps: e.ps.Clone(), k: e.k, kind: e.kind}
}

func (e *enumerationEval) Value() float64 {
	switch e.kind {
	case kindIdentifiability:
		return float64(monitor.IdentifiabilityK(e.ps, e.k))
	default:
		return float64(monitor.DistinguishabilityK(e.ps, e.k))
	}
}
