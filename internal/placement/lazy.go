package placement

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file implements the CELF ("cost-effective lazy forward") variant of
// Algorithm 2. For a monotone submodular objective the marginal gain of a
// candidate can only shrink as the placement grows (diminishing returns,
// Lemmas 13 and 17), so a gain cached in an earlier round is a valid upper
// bound on the current gain. The engine keeps every (service, host)
// candidate in a max-heap keyed by its cached gain and re-evaluates only
// the top entry when its cache is stale; most candidates are never looked
// at again after the initial sweep, which is where the evaluation savings
// in BENCH_*.json come from. The placement produced is bit-for-bit
// identical to Greedy's, including the deterministic tie-break.

// lazyEntry is one heap slot: a ground element (service, host) with the
// cached marginal gain and the round it was computed in. eval retains the
// trial evaluator of a per-round recomputation so that, when the entry
// wins the round, its state is adopted as the new base instead of
// re-adding the chosen paths.
type lazyEntry struct {
	elem  int
	gain  float64
	round int
	eval  evaluator
}

// lazyHeap orders entries by gain descending, then ground-element index
// ascending. Element indices are assigned in (service, candidate-position)
// scan order, so the secondary key reproduces Greedy's first-maximum
// tie-break (smaller service index, then smaller host ID) exactly.
type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }

func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].elem < h[j].elem
}

func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *lazyHeap) Push(x any) { *h = append(*h, x.(lazyEntry)) }

func (h *lazyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = lazyEntry{} // release the retained evaluator, if any
	*h = old[:n-1]
	return e
}

// GreedyLazy runs Algorithm 2 with CELF-style lazy evaluation: identical
// output to Greedy — same hosts, same order, same value under the
// deterministic tie-break — with far fewer objective evaluations, because
// cached marginal gains are upper bounds under submodularity and only the
// heap top is ever re-evaluated.
//
// The trick is sound only for monotone submodular objectives (coverage
// and distinguishability, Lemmas 13 and 17). Identifiability is not
// submodular (Propositions 15 and 16), so it is routed to the exact
// Greedy automatically; the returned Result is then exactly Greedy's.
func GreedyLazy(inst *Instance, obj Objective) (*Result, error) {
	return GreedyLazyWithProgress(inst, obj, nil)
}

// GreedyLazyWithProgress is GreedyLazy with a per-round progress hook;
// the hook only observes the computation (round winner, gain, candidate
// pops, evaluations, duration) and never changes it. Non-submodular
// objectives route to GreedyWithProgress, so the hook fires either way.
func GreedyLazyWithProgress(inst *Instance, obj Objective, progress ProgressFunc) (*Result, error) {
	return GreedyLazyCtx(context.Background(), inst, obj, progress)
}

// GreedyLazyCtx is GreedyLazyWithProgress bounded by ctx: cancellation
// is observed once per round, at the same hook sites the progress
// callback uses, so a drained or abandoned job stops burning CPU within
// one round. The returned error wraps ctx.Err(). A background context
// reproduces GreedyLazy exactly.
func GreedyLazyCtx(ctx context.Context, inst *Instance, obj Objective, progress ProgressFunc) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if !obj.submodular() {
		return GreedyCtx(ctx, inst, obj, progress)
	}
	return greedyLazy(ctx, inst, obj, 1, progress)
}

// GreedyLazyParallel is GreedyLazy with the evaluations fanned out across
// worker goroutines: the initial sweep is chunked like GreedyParallel,
// and within a round consecutive stale heap tops are re-evaluated as one
// parallel batch instead of one at a time. The placement is identical to
// Greedy and GreedyLazy; only Result.Evaluations may be slightly higher
// than GreedyLazy's (a batch can refresh entries the sequential engine
// would not have reached), never higher than Greedy's ground-set sweep.
//
// Non-submodular objectives fall back to GreedyParallel. workers ≤ 0
// selects GOMAXPROCS.
func GreedyLazyParallel(inst *Instance, obj Objective, workers int) (*Result, error) {
	return GreedyLazyParallelWithProgress(inst, obj, workers, nil)
}

// GreedyLazyParallelWithProgress is GreedyLazyParallel with a per-round
// progress hook (see GreedyLazyWithProgress). The hook runs on the
// coordinating goroutine, never inside the evaluation fan-out.
func GreedyLazyParallelWithProgress(inst *Instance, obj Objective, workers int, progress ProgressFunc) (*Result, error) {
	return GreedyLazyParallelCtx(context.Background(), inst, obj, workers, progress)
}

// GreedyLazyParallelCtx is GreedyLazyParallelWithProgress bounded by ctx
// (see GreedyLazyCtx); the cancellation check runs on the coordinating
// goroutine between rounds, never inside the evaluation fan-out.
func GreedyLazyParallelCtx(ctx context.Context, inst *Instance, obj Objective, workers int, progress ProgressFunc) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !obj.submodular() {
		return GreedyParallelCtx(ctx, inst, obj, workers)
	}
	return greedyLazy(ctx, inst, obj, workers, progress)
}

// greedyLazy is the shared CELF engine; workers == 1 is the sequential
// variant.
func greedyLazy(ctx context.Context, inst *Instance, obj Objective, workers int, progress ProgressFunc) (*Result, error) {
	return greedyLazySeeded(ctx, inst, obj, workers, progress, nil, 0)
}

// greedyLazySeeded is the CELF engine with an optional warm start. A nil
// seeds reproduces the cold engine exactly: every ground element is
// evaluated once against the empty placement (plain greedy's first
// round) before selection begins. A non-nil seeds must hold one entry
// per ground element carrying its exact round-0 marginal gain
// (f({e}) − f(∅)), stamped round 0; the engine then skips the initial
// sweep and counts only preEvals evaluations toward round 0 — the
// number of seed gains the caller had to compute fresh rather than
// serve from a cache. Because a correct seed set is value-identical to
// what the cold sweep would produce, the selection sequence — and thus
// the placement, order, and value — is bit-for-bit the cold engine's.
func greedyLazySeeded(ctx context.Context, inst *Instance, obj Objective, workers int, progress ProgressFunc, seeds []lazyEntry, preEvals int) (*Result, error) {
	res := &Result{Placement: NewPlacement(inst.NumServices())}
	base := obj.newEvaluator(inst.NumNodes())
	baseVal := base.Value()
	placed := make([]bool, inst.NumServices())

	// refresh recomputes the current-round marginal gain of each entry,
	// fanning out across workers when the batch is large enough. Each
	// recomputation is one objective evaluation, counted exactly as in
	// Greedy. retain keeps the trial evaluator on the entry for adoption;
	// the initial sweep drops it so at most O(recomputations) evaluator
	// clones are ever live, not O(ground set).
	refresh := func(ents []lazyEntry, round int, retain bool) {
		one := func(e *lazyEntry) {
			trial := base.Clone()
			trial.Add(inst.elements[e.elem].evalPaths)
			e.gain = trial.Value() - baseVal
			e.round = round
			if retain {
				e.eval = trial
			}
		}
		if workers <= 1 || len(ents) == 1 {
			for i := range ents {
				one(&ents[i])
			}
		} else {
			var wg sync.WaitGroup
			chunk := (len(ents) + workers - 1) / workers
			for lo := 0; lo < len(ents); lo += chunk {
				hi := lo + chunk
				if hi > len(ents) {
					hi = len(ents)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						one(&ents[i])
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		res.Evaluations += len(ents)
	}

	var h lazyHeap
	if seeds == nil {
		// Initial sweep: every ground element evaluated once against the
		// empty placement — exactly the first round of plain greedy.
		h = make(lazyHeap, len(inst.elements))
		for e := range inst.elements {
			h[e] = lazyEntry{elem: e}
		}
		refresh(h, 0, false)
	} else {
		if len(seeds) != len(inst.elements) {
			return nil, fmt.Errorf("placement: %d warm-start seeds for %d ground elements", len(seeds), len(inst.elements))
		}
		h = lazyHeap(seeds)
		res.Evaluations += preEvals
	}
	heap.Init(&h)

	var batch []lazyEntry
	for iter := 0; iter < inst.NumServices(); iter++ {
		if ctx.Err() != nil {
			return nil, errCanceled(ctx, iter)
		}
		roundStart := time.Now()
		evalsBefore := res.Evaluations
		if iter == 0 {
			// The initial ground-set sweep is plain greedy's first round;
			// attribute its evaluations to round 0.
			evalsBefore = 0
		}
		pops := 0
		chosen, found := lazyEntry{}, false
		for h.Len() > 0 || len(batch) > 0 {
			if h.Len() == 0 {
				// The heap drained into the pending batch (the remaining
				// entries were all retired): flush and keep going.
				refresh(batch, iter, true)
				for _, e := range batch {
					heap.Push(&h, e)
				}
				batch = batch[:0]
				continue
			}
			top := heap.Pop(&h).(lazyEntry)
			pops++
			if placed[inst.elements[top.elem].service] {
				continue // service already placed; retire the entry
			}
			if top.round == iter && len(batch) == 0 {
				// A fresh gain is exact, and every entry below carries a
				// cached upper bound ≤ this gain, so no remaining element
				// can beat it: select. Equal-gain elements with a smaller
				// index would have been popped (and refreshed) first, so
				// the tie-break matches Greedy.
				chosen, found = top, true
				break
			}
			if top.round != iter {
				top.eval = nil
				batch = append(batch, top)
				// Sequentially the batch flushes after every entry; in
				// parallel mode consecutive stale tops share one fan-out.
				if len(batch) < workers && h.Len() > 0 {
					continue
				}
			} else {
				// Fresh, but entries batched before it had cached gains
				// above its: refresh them before deciding the round.
				heap.Push(&h, top)
			}
			refresh(batch, iter, true)
			for _, e := range batch {
				heap.Push(&h, e)
			}
			batch = batch[:0]
		}
		if !found {
			return nil, fmt.Errorf("placement: no feasible placement at iteration %d", iter)
		}
		el := &inst.elements[chosen.elem]
		if chosen.eval != nil {
			// The winning trial already holds base ∪ P(C_s, h): adopt it
			// instead of re-refining the old base with the chosen paths.
			base = chosen.eval
		} else {
			base.Add(el.evalPaths)
		}
		prevVal := baseVal
		baseVal = base.Value()
		placed[el.service] = true
		res.Placement.Hosts[el.service] = el.host
		res.Order = append(res.Order, el.service)
		progress.emit(Round{
			Index:       iter,
			Service:     el.service,
			Host:        el.host,
			Gain:        baseVal - prevVal,
			Candidates:  pops,
			Evaluations: res.Evaluations - evalsBefore,
			Duration:    time.Since(roundStart),
		})
	}
	res.Value = baseVal
	return res, nil
}
