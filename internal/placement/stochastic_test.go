package placement

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// paperInstances builds a placement instance per paper topology, with
// services drawn from the candidate client pools exactly like the
// evaluation harness does.
func paperInstances(t *testing.T, alpha float64) map[string]*Instance {
	t.Helper()
	out := map[string]*Instance{}
	for _, spec := range topology.Specs() {
		topo, err := topology.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(topo.Graph)
		if err != nil {
			t.Fatal(err)
		}
		cc := topo.CandidateClients
		svcs := []Service{
			{Name: "a", Clients: cc[:len(cc)/2]},
			{Name: "b", Clients: cc[len(cc)/2:]},
			{Name: "c", Clients: []graph.NodeID{cc[0], cc[len(cc)-1]}},
		}
		inst, err := NewInstance(r, svcs, alpha)
		if err != nil {
			t.Fatal(err)
		}
		out[spec.Name] = inst
	}
	return out
}

// TestGreedyStochasticFullSampleMatchesLazy pins the degenerate case:
// when eps is small enough that the sample covers every remaining
// candidate, the stochastic engine must reproduce GreedyLazy bit for
// bit — same hosts, same order, same value, same evaluation count.
func TestGreedyStochasticFullSampleMatchesLazy(t *testing.T) {
	for name, inst := range paperInstances(t, 0.6) {
		for _, obj := range []Objective{NewCoverage(), mustDist1(t)} {
			lazy, err := GreedyLazy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			// eps = 1e-9 → sample size (n/k)·ln(1e9) ≫ n: full coverage.
			st, err := GreedyStochastic(inst, obj, 1e-9, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st.Placement.Hosts, lazy.Placement.Hosts) ||
				!reflect.DeepEqual(st.Order, lazy.Order) || st.Value != lazy.Value {
				t.Fatalf("%s/%s: full-sample stochastic %v (%v) != lazy %v (%v)",
					name, obj.Name(), st.Placement.Hosts, st.Value, lazy.Placement.Hosts, lazy.Value)
			}
			if st.Evaluations != lazy.Evaluations {
				t.Fatalf("%s/%s: full-sample evaluations %d != lazy %d",
					name, obj.Name(), st.Evaluations, lazy.Evaluations)
			}
		}
	}
}

func mustDist1(t *testing.T) Objective {
	t.Helper()
	obj, err := NewDistinguishability(1)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestGreedyStochasticValueBound checks the (1 − 1/e − ε) guarantee in
// its empirical form on the three paper topologies: averaged over
// seeds, the sampled value must be at least (1 − 1/e − ε) of exact
// greedy's (the guarantee is vs the optimum, which greedy lower-bounds,
// so this is the stricter check); and no single seed may fall below
// half of exact greedy.
func TestGreedyStochasticValueBound(t *testing.T) {
	const eps = 0.1
	bound := 1 - 1/math.E - eps
	for name, inst := range paperInstances(t, 0.6) {
		obj := NewCoverage()
		exact, err := Greedy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		sum, worst := 0.0, math.Inf(1)
		const seeds = 20
		for seed := int64(0); seed < seeds; seed++ {
			st, err := GreedyStochastic(inst, obj, eps, seed)
			if err != nil {
				t.Fatal(err)
			}
			ratio := st.Value / exact.Value
			sum += ratio
			if ratio < worst {
				worst = ratio
			}
			// The sampling savings are measured against the exact greedy's
			// full per-round sweeps (n·k evaluations), not against CELF.
			if st.Evaluations > exact.Evaluations {
				t.Fatalf("%s seed %d: stochastic used more evaluations (%d) than exact greedy (%d)",
					name, seed, st.Evaluations, exact.Evaluations)
			}
		}
		if mean := sum / seeds; mean < bound {
			t.Fatalf("%s: mean value ratio %.3f below guarantee %.3f", name, mean, bound)
		}
		if worst < 0.5 {
			t.Fatalf("%s: worst value ratio %.3f below 0.5", name, worst)
		}
	}
}

// TestGreedyStochasticDeterministic pins seed-reproducibility: the same
// (instance, eps, seed) must give the same placement and evaluation
// count every run.
func TestGreedyStochasticDeterministic(t *testing.T) {
	inst := paperInstances(t, 0.6)["Tiscali"]
	obj := NewCoverage()
	a, err := GreedyStochastic(inst, obj, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyStochastic(inst, obj, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Placement.Hosts, b.Placement.Hosts) || a.Evaluations != b.Evaluations {
		t.Fatal("same seed produced different runs")
	}
	c, err := GreedyStochastic(inst, obj, 0.2, 43)
	if err != nil {
		t.Fatal(err)
	}
	// A different seed is allowed to agree on the placement (small
	// instance) but the run must still be valid and complete.
	if !c.Placement.Complete() {
		t.Fatal("seed 43 left services unplaced")
	}
}

// TestGreedyStochasticValidation covers the error surface: bad eps, nil
// objective, and the non-submodular fallback to exact Greedy.
func TestGreedyStochasticValidation(t *testing.T) {
	inst := paperInstances(t, 0.6)["Abovenet"]
	if _, err := GreedyStochastic(inst, nil, 0.1, 1); err == nil {
		t.Fatal("nil objective should error")
	}
	for _, eps := range []float64{0, 1, -0.5, 2, math.NaN()} {
		if _, err := GreedyStochastic(inst, NewCoverage(), eps, 1); err == nil {
			t.Fatalf("eps=%v should error", eps)
		}
	}
	ident, err := NewIdentifiability(1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := GreedyStochastic(inst, ident, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Greedy(inst, ident)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Placement.Hosts, exact.Placement.Hosts) {
		t.Fatal("non-submodular objective should route to exact Greedy")
	}
}

// TestGreedyStochasticCancel verifies the context is observed between
// rounds.
func TestGreedyStochasticCancel(t *testing.T) {
	inst := paperInstances(t, 0.6)["AT&T"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GreedyStochasticCtx(ctx, inst, NewCoverage(), 0.1, 1, nil); err == nil {
		t.Fatal("canceled context should error")
	}
}

// TestStochasticSampleSize pins the ⌈(n/k)·ln(1/ε)⌉ formula and its
// floor.
func TestStochasticSampleSize(t *testing.T) {
	if got := StochasticSampleSize(1000, 10, 0.1); got != int(math.Ceil(100*math.Log(10))) {
		t.Fatalf("sample size = %d", got)
	}
	if got := StochasticSampleSize(5, 10, 0.9); got < 1 {
		t.Fatalf("sample size fell below 1: %d", got)
	}
	if got := StochasticSampleSize(0, 0, 0.1); got != 1 {
		t.Fatalf("degenerate inputs should clamp to 1, got %d", got)
	}
}
