package placement

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestBranchAndBoundValidation(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if _, err := BranchAndBound(inst, nil, 0); err == nil {
		t.Fatal("nil objective should error")
	}
	ident := mustObj(NewIdentifiability(1))
	if _, err := BranchAndBound(inst, ident, 0); err == nil {
		t.Fatal("non-submodular objective should be rejected")
	}
	if _, err := BranchAndBound(inst, NewCoverage(), 1); err == nil {
		t.Fatal("tiny node budget should error")
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	objectives := []Objective{
		NewCoverage(),
		mustObj(NewDistinguishability(1)),
	}
	for trial := 0; trial < 8; trial++ {
		g, err := topology.RandomConnected(9, 14, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(r, []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
			{Name: "c", Clients: []graph.NodeID{4, 5}},
		}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range objectives {
			bf, err := BruteForce(inst, obj, 0)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := BranchAndBound(inst, obj, 0)
			if err != nil {
				t.Fatal(err)
			}
			if bb.Value != bf.Value {
				t.Fatalf("trial %d %s: B&B %v != BF %v", trial, obj.Name(), bb.Value, bf.Value)
			}
			// The returned placement must actually achieve the value.
			v, err := EvaluateWith(inst, obj, bb.Placement)
			if err != nil {
				t.Fatal(err)
			}
			if v != bb.Value {
				t.Fatalf("trial %d %s: reported %v but placement evaluates to %v",
					trial, obj.Name(), bb.Value, v)
			}
		}
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	// On the Fig. 1 instance with 3 services × 5 candidates, plain BF
	// explores 125 leaves; B&B should evaluate strictly fewer leaf-
	// equivalent nodes thanks to the greedy incumbent plus bound.
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	bf, err := BruteForce(inst, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(inst, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Value != bf.Value {
		t.Fatalf("B&B %v != BF %v", bb.Value, bf.Value)
	}
	// Not a strict guarantee in general, but on this instance the bound
	// prunes most of the tree; keep it as a regression canary.
	if bb.Evaluations >= bf.Evaluations*5 {
		t.Fatalf("B&B evaluations %d suspiciously high vs BF %d", bb.Evaluations, bf.Evaluations)
	}
}

func TestBranchAndBoundNeverBelowGreedy(t *testing.T) {
	inst := fig1Instance(t, 3, 1)
	obj := NewCoverage()
	gr, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(inst, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Value < gr.Value {
		t.Fatalf("B&B %v below its greedy seed %v", bb.Value, gr.Value)
	}
	if !bb.Placement.Complete() {
		t.Fatal("B&B placement incomplete")
	}
}
