package placement

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// fig1Instance builds the paper's Fig. 1 example: numServices services,
// all with clients {e,f,g,h} (node IDs 5..8), over the 9-node topology
// with root r=0 and candidate hosts a..d = 1..4 at α = 0.5.
func fig1Instance(t testing.TB, numServices int, alpha float64) *Instance {
	t.Helper()
	g, clients, _ := topology.Fig1Example()
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]Service, numServices)
	for i := range services {
		services[i] = Service{Name: "svc", Clients: clients}
	}
	inst, err := NewInstance(r, services, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func lineInstance(t testing.TB, n int, clientSets [][]graph.NodeID, alpha float64) *Instance {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]Service, len(clientSets))
	for i, cs := range clientSets {
		services[i] = Service{Name: "svc", Clients: cs}
	}
	inst, err := NewInstance(r, services, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceErrors(t *testing.T) {
	g, clients, _ := topology.Fig1Example()
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInstance(nil, []Service{{Clients: clients}}, 0); err == nil {
		t.Fatal("nil router should error")
	}
	if _, err := NewInstance(r, nil, 0); err == nil {
		t.Fatal("no services should error")
	}
	if _, err := NewInstance(r, []Service{{Clients: nil}}, 0); err == nil {
		t.Fatal("clientless service should error")
	}
	if _, err := NewInstance(r, []Service{{Clients: clients}}, -0.1); err == nil {
		t.Fatal("negative alpha should error")
	}
	if _, err := NewInstance(r, []Service{{Clients: clients}}, 1.1); err == nil {
		t.Fatal("alpha > 1 should error")
	}
}

func TestFig1CandidateSets(t *testing.T) {
	// d(C, r) = 2, d(C, a..d) = 3, d(C, clients) = 4 ⇒ d̄: r=0, hosts=0.5,
	// clients=1.
	inst := fig1Instance(t, 1, 0)
	if got := inst.Candidates(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("H(0) = %v, want [r]", got)
	}
	inst = fig1Instance(t, 1, 0.5)
	if got := inst.Candidates(0); len(got) != 5 {
		t.Fatalf("H(0.5) = %v, want r,a,b,c,d", got)
	}
	inst = fig1Instance(t, 1, 1)
	if got := inst.Candidates(0); len(got) != 9 {
		t.Fatalf("H(1) = %v, want all nodes", got)
	}
}

func TestServicePaths(t *testing.T) {
	inst := fig1Instance(t, 1, 0.5)
	paths, err := inst.ServicePaths(0, 0) // host = r
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("|P(C, r)| = %d, want 4", len(paths))
	}
	// p(e, r) = {e, a, r} = {5, 1, 0}.
	found := false
	for _, p := range paths {
		if p.Contains(5) && p.Contains(1) && p.Contains(0) && p.Count() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("missing path {e, a, r}")
	}
	if _, err := inst.ServicePaths(0, 8); err == nil {
		t.Fatal("non-candidate host should error")
	}
}

func TestPathSetAndEvaluate(t *testing.T) {
	inst := fig1Instance(t, 1, 0.5)
	pl := NewPlacement(1)
	pl.Hosts[0] = 0 // r
	ps, err := inst.PathSet(pl)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 4 {
		t.Fatalf("|P| = %d, want 4", ps.Len())
	}
	m, err := inst.Evaluate(pl)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 1 discussion: all 9 nodes covered but only r
	// identifiable.
	if m.Coverage != 9 {
		t.Fatalf("Coverage = %d, want 9", m.Coverage)
	}
	if m.S1 != 1 {
		t.Fatalf("S1 = %d, want 1", m.S1)
	}
}

func TestPathSetErrors(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if _, err := inst.PathSet(Placement{Hosts: []graph.NodeID{0}}); err == nil {
		t.Fatal("wrong-length placement should error")
	}
	bad := NewPlacement(2)
	bad.Hosts[0] = 8 // not a candidate at α = 0.5
	if _, err := inst.PathSet(bad); err == nil {
		t.Fatal("non-candidate host should error")
	}
	// Unplaced services are fine.
	partial := NewPlacement(2)
	partial.Hosts[0] = 0
	ps, err := inst.PathSet(partial)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 4 {
		t.Fatalf("|P| = %d, want 4", ps.Len())
	}
}

func TestPlacementHelpers(t *testing.T) {
	pl := NewPlacement(2)
	if pl.Complete() {
		t.Fatal("fresh placement should be incomplete")
	}
	pl.Hosts[0], pl.Hosts[1] = 1, 2
	if !pl.Complete() {
		t.Fatal("filled placement should be complete")
	}
	c := pl.Clone()
	c.Hosts[0] = 9
	if pl.Hosts[0] != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestWorstRelativeDistance(t *testing.T) {
	inst := fig1Instance(t, 2, 1)
	pl := NewPlacement(2)
	pl.Hosts[0] = 0 // r: d̄ = 0
	pl.Hosts[1] = 5 // a client: d̄ = 1
	if got := inst.WorstRelativeDistance(pl); got != 1 {
		t.Fatalf("WorstRelativeDistance = %v, want 1", got)
	}
	pl.Hosts[1] = Unplaced
	if got := inst.WorstRelativeDistance(pl); got != 0 {
		t.Fatalf("WorstRelativeDistance = %v, want 0", got)
	}
}

func TestInstanceAccessors(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if inst.NumServices() != 2 || inst.NumNodes() != 9 {
		t.Fatal("accessor mismatch")
	}
	if inst.Alpha() != 0.5 {
		t.Fatal("alpha mismatch")
	}
	if !strings.Contains(inst.Service(0).Name, "svc") {
		t.Fatal("service accessor broken")
	}
	if inst.Profile(0) == nil || inst.Router() == nil {
		t.Fatal("profile/router accessor broken")
	}
}
