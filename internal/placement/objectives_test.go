package placement

import (
	"testing"
)

func TestObjectiveNames(t *testing.T) {
	cases := []struct {
		obj  Objective
		name string
		k    int
	}{
		{NewCoverage(), "coverage", 0},
		{NewCoverageOfInterest(9, []int{1, 2}), "coverage-interest", 0},
		{mustObj(NewIdentifiability(1)), "identifiability-1", 1},
		{mustObj(NewIdentifiability(2)), "identifiability-2", 2},
		{mustObj(NewDistinguishability(1)), "distinguishability-1", 1},
		{mustObj(NewDistinguishability(3)), "distinguishability-3", 3},
		{NewIdentifiabilityOfInterest(9, []int{1}), "identifiability-1-interest", 1},
		{NewDistinguishabilityOfInterest(9, []int{1}), "distinguishability-1-interest", 1},
	}
	for _, c := range cases {
		if c.obj.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.obj.Name(), c.name)
		}
		if c.obj.K() != c.k {
			t.Errorf("%s: K = %d, want %d", c.name, c.obj.K(), c.k)
		}
	}
}

func TestObjectiveValidation(t *testing.T) {
	if _, err := NewIdentifiability(0); err == nil {
		t.Fatal("k=0 identifiability should error")
	}
	if _, err := NewDistinguishability(0); err == nil {
		t.Fatal("k=0 distinguishability should error")
	}
}

func TestInterestObjectivesReduceToFull(t *testing.T) {
	// With N_I = all nodes the interest variants must equal the plain
	// objectives on every placement.
	inst := fig1Instance(t, 2, 0.5)
	n := inst.NumNodes()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}

	pl := NewPlacement(2)
	pl.Hosts[0], pl.Hosts[1] = 0, 1

	pairsOfObjectives := []struct {
		full, interest Objective
	}{
		{NewCoverage(), NewCoverageOfInterest(n, all)},
		{mustObj(NewIdentifiability(1)), NewIdentifiabilityOfInterest(n, all)},
		{mustObj(NewDistinguishability(1)), NewDistinguishabilityOfInterest(n, all)},
	}
	for _, pair := range pairsOfObjectives {
		vFull, err := EvaluateWith(inst, pair.full, pl)
		if err != nil {
			t.Fatal(err)
		}
		vInt, err := EvaluateWith(inst, pair.interest, pl)
		if err != nil {
			t.Fatal(err)
		}
		if vFull != vInt {
			t.Errorf("%s: full %v != interest-on-all %v", pair.full.Name(), vFull, vInt)
		}
	}
}

func TestCoverageOfInterestCountsOnlyInterest(t *testing.T) {
	inst := fig1Instance(t, 1, 0.5)
	pl := NewPlacement(1)
	pl.Hosts[0] = 0 // r: covers all 9 nodes
	obj := NewCoverageOfInterest(inst.NumNodes(), []int{0, 1})
	v, err := EvaluateWith(inst, obj, pl)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("interest coverage = %v, want 2", v)
	}
}

func TestInterestD1EmptyInterest(t *testing.T) {
	inst := fig1Instance(t, 1, 0.5)
	pl := NewPlacement(1)
	pl.Hosts[0] = 0
	obj := NewDistinguishabilityOfInterest(inst.NumNodes(), nil)
	v, err := EvaluateWith(inst, obj, pl)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("empty-interest D1 = %v, want 0", v)
	}
}

func TestInterestIdentifiabilityManual(t *testing.T) {
	// QoS placement on Fig. 1 identifies only r (node 0). Interest {0}
	// should give 1; interest {1} should give 0.
	inst := fig1Instance(t, 1, 0.5)
	pl := NewPlacement(1)
	pl.Hosts[0] = 0
	v, err := EvaluateWith(inst, NewIdentifiabilityOfInterest(inst.NumNodes(), []int{0}), pl)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("interest {r}: %v, want 1", v)
	}
	v, err = EvaluateWith(inst, NewIdentifiabilityOfInterest(inst.NumNodes(), []int{1}), pl)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("interest {a}: %v, want 0", v)
	}
}

func TestGeneralKObjectivesOnSmallInstance(t *testing.T) {
	// k = 2 objectives work end-to-end on a small line instance and are
	// consistent with k = 1 ordering: D_2 ≥ D_1 (more pairs exist) and the
	// greedy still completes.
	inst := lineInstance(t, 6, [][]int{{0, 5}}, 1)
	d2 := mustObj(NewDistinguishability(2))
	res2, err := Greedy(inst, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Placement.Complete() {
		t.Fatal("k=2 greedy incomplete")
	}
	i2 := mustObj(NewIdentifiability(2))
	resI, err := Greedy(inst, i2)
	if err != nil {
		t.Fatal(err)
	}
	if !resI.Placement.Complete() {
		t.Fatal("k=2 identifiability greedy incomplete")
	}
	// S_2 ≤ S_1 for the same placement.
	v2, err := EvaluateWith(inst, i2, resI.Placement)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := EvaluateWith(inst, mustObj(NewIdentifiability(1)), resI.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if v2 > v1 {
		t.Fatalf("S_2 = %v > S_1 = %v", v2, v1)
	}
}
