package placement

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file implements the "lazier than lazy greedy" stochastic variant
// of Algorithm 2 (Mirzasoleiman et al., AAAI 2015, adapted to the
// partition-matroid ground set): instead of considering every remaining
// (service, host) candidate each round, the engine draws a uniform
// random sample of s = ⌈(n/k)·ln(1/ε)⌉ candidates and picks the best of
// the sample. For a monotone submodular objective the result is a
// (1 − 1/e − ε)-approximation in expectation, while the per-round work
// drops from O(n) to O((n/k)·ln(1/ε)) evaluations — at 10k-node
// topologies that is the difference between placement in minutes and in
// well under a second. Within the sample, the CELF machinery still
// applies: gains cached in earlier rounds are upper bounds under
// submodularity, so the sample is worked through the same lazy heap and
// most sampled candidates are never re-evaluated either.

// StochasticSampleSize returns the per-round sample size
// ⌈(nGround/numServices)·ln(1/ε)⌉ (at least 1) that GreedyStochastic
// draws: the size for which a uniform sample misses the current round's
// true argmax-containing top fraction with probability at most ε.
func StochasticSampleSize(nGround, numServices int, eps float64) int {
	if nGround <= 0 || numServices <= 0 {
		return 1
	}
	s := int(math.Ceil(float64(nGround) / float64(numServices) * math.Log(1/eps)))
	if s < 1 {
		return 1
	}
	return s
}

// GreedyStochastic runs the sampled ("lazier than lazy") greedy: each
// round evaluates only a seeded-random sample of the remaining
// candidates, reusing CELF gain caching inside the sample. For monotone
// submodular objectives the expected value is within (1 − 1/e − ε) of
// the optimum; with the same seed and instance the run is fully
// deterministic. eps must lie in (0, 1); smaller values sample more and
// approach GreedyLazy, and a sample that covers every remaining
// candidate reproduces GreedyLazy's placement bit for bit.
//
// Non-submodular objectives (identifiability) get no guarantee from
// sampling and are routed to the exact Greedy, as GreedyLazy does.
func GreedyStochastic(inst *Instance, obj Objective, eps float64, seed int64) (*Result, error) {
	return GreedyStochasticCtx(context.Background(), inst, obj, eps, seed, nil)
}

// GreedyStochasticCtx is GreedyStochastic bounded by ctx with an
// optional per-round progress hook (see GreedyLazyCtx; the hook's
// Candidates field reports heap pops within the round's sample).
func GreedyStochasticCtx(ctx context.Context, inst *Instance, obj Objective, eps float64, seed int64, progress ProgressFunc) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("placement: stochastic eps %v outside (0, 1)", eps)
	}
	if !obj.submodular() {
		return GreedyCtx(ctx, inst, obj, progress)
	}

	res := &Result{Placement: NewPlacement(inst.NumServices())}
	base := obj.newEvaluator(inst.NumNodes())
	baseVal := base.Value()
	placed := make([]bool, inst.NumServices())
	rng := rand.New(rand.NewSource(seed))

	// bounds[e] is the cached marginal gain of ground element e from the
	// most recent round that evaluated it — an upper bound on its current
	// gain under submodularity, exactly the CELF invariant, carried
	// across rounds so re-sampled elements start from a tight bound
	// instead of +Inf.
	bounds := make([]float64, len(inst.elements))
	for i := range bounds {
		bounds[i] = math.Inf(1)
	}
	sampleSize := StochasticSampleSize(len(inst.elements), inst.NumServices(), eps)

	remaining := make([]int, 0, len(inst.elements))
	for iter := 0; iter < inst.NumServices(); iter++ {
		if ctx.Err() != nil {
			return nil, errCanceled(ctx, iter)
		}
		roundStart := time.Now()
		evalsBefore := res.Evaluations

		// Candidates of still-unplaced services, in ground order.
		remaining = remaining[:0]
		for e := range inst.elements {
			if !placed[inst.elements[e].service] {
				remaining = append(remaining, e)
			}
		}
		if len(remaining) == 0 {
			return nil, fmt.Errorf("placement: no feasible placement at iteration %d", iter)
		}
		s := sampleSize
		if s > len(remaining) {
			s = len(remaining)
		}
		// Partial Fisher–Yates: after the loop, remaining[:s] is a
		// uniform s-subset. The rng consumes exactly s draws per round,
		// keeping runs reproducible for a given (seed, instance).
		for i := 0; i < s; i++ {
			j := i + rng.Intn(len(remaining)-i)
			remaining[i], remaining[j] = remaining[j], remaining[i]
		}

		// CELF over the sample: pop the cached-bound max; if its bound is
		// stale, re-evaluate and push back; a fresh top is the sample's
		// exact argmax (every bound below it can only shrink), with the
		// heap's element-index tie-break matching Greedy's.
		h := make(lazyHeap, 0, s)
		for _, e := range remaining[:s] {
			h = append(h, lazyEntry{elem: e, gain: bounds[e], round: -1})
		}
		heap.Init(&h)
		pops := 0
		chosen, found := lazyEntry{}, false
		for h.Len() > 0 {
			top := heap.Pop(&h).(lazyEntry)
			pops++
			if top.round == iter {
				chosen, found = top, true
				break
			}
			trial := base.Clone()
			trial.Add(inst.elements[top.elem].evalPaths)
			gain := trial.Value() - baseVal
			res.Evaluations++
			bounds[top.elem] = gain
			heap.Push(&h, lazyEntry{elem: top.elem, gain: gain, round: iter, eval: trial})
		}
		if !found {
			return nil, fmt.Errorf("placement: no feasible placement at iteration %d", iter)
		}

		el := &inst.elements[chosen.elem]
		// The winning trial already holds base ∪ P(C_s, h): adopt it.
		base = chosen.eval
		prevVal := baseVal
		baseVal = base.Value()
		placed[el.service] = true
		res.Placement.Hosts[el.service] = el.host
		res.Order = append(res.Order, el.service)
		progress.emit(Round{
			Index:       iter,
			Service:     el.service,
			Host:        el.host,
			Gain:        baseVal - prevVal,
			Candidates:  pops,
			Evaluations: res.Evaluations - evalsBefore,
			Duration:    time.Since(roundStart),
		})
	}
	res.Value = baseVal
	return res, nil
}
