package placement

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"repro/internal/bitset"
	"repro/internal/graph"
)

// WarmPlacer re-runs lazy-greedy placement across topology revisions,
// reusing cached round-0 marginal gains for every ground element whose
// measurement paths did not change. The key observation: an element's
// first-round gain f({e}) − f(∅) depends only on its own path set and
// the node universe, not on any other element — so after an edge delta,
// only elements whose paths were actually rerouted need re-evaluation.
// A single edge change in a 10k-node hierarchy typically reroutes a few
// candidates' paths and leaves thousands untouched, which is what makes
// PUT /v1/scenarios/{id}/network re-placement sub-second.
//
// Correctness does not depend on how stale the cache is: cached gains
// are exact round-0 values keyed by the path content itself, so seeding
// the CELF engine with them is value-identical to the cold initial
// sweep and the placement comes out bit-for-bit equal to GreedyLazy on
// the current topology (the warm-start property test pins this).
//
// A WarmPlacer is safe for concurrent use; concurrent Place calls on
// the same placer serialize.
type WarmPlacer struct {
	mu       sync.Mutex
	objName  string
	numNodes int
	gains    map[warmKey]float64
}

// warmKey identifies a ground element by content, not by index: the
// service (index and client-set size), the candidate host, and a
// signature of the element's evaluated path set. Any topology change
// that reroutes the element's paths changes the signature and misses
// the cache; an element whose paths survived the change hits it even if
// candidate sets shifted around it.
type warmKey struct {
	service int
	host    graph.NodeID
	sig     pathSig
}

// pathSig fingerprints a path set: two independent FNV-64 mixes over
// the per-path keys plus the path count and total node count. A
// collision would require two different path sets to agree on both
// 64-bit hashes and both counts — vanishingly unlikely, and the cost of
// one is a placement computed from a stale gain of a *different* path
// set, caught by the equivalence tests long before production.
type pathSig struct {
	count, nodes int
	h1, h2       uint64
}

func signature(paths []*bitset.Sparse) pathSig {
	sig := pathSig{count: len(paths)}
	a := fnv.New64a()
	b := fnv.New64()
	for _, p := range paths {
		sig.nodes += p.Count()
		k := p.Key()
		a.Write([]byte(k))
		a.Write([]byte{0xff})
		b.Write([]byte(k))
		b.Write([]byte{0xfe})
	}
	sig.h1, sig.h2 = a.Sum64(), b.Sum64()
	return sig
}

// WarmStats reports how much of a warm-start run was served from cache.
type WarmStats struct {
	// Total is the ground-set size of the instance.
	Total int
	// Reused is how many round-0 gains came from the cache.
	Reused int
	// Recomputed is how many had to be evaluated fresh (these are the
	// only round-0 evaluations counted in the Result).
	Recomputed int
}

// NewWarmPlacer returns an empty placer; the first Place call is a cold
// run that populates the cache.
func NewWarmPlacer() *WarmPlacer { return &WarmPlacer{} }

// Place runs lazy-greedy placement on inst, seeding round-0 gains from
// the cache where the element's path content is unchanged, and refills
// the cache with the current instance's gains for the next call. The
// placement, order, and value are bit-for-bit identical to
// GreedyLazyParallel on the same instance; Result.Evaluations counts
// only fresh evaluations, which is the warm-start saving. workers ≤ 0
// selects GOMAXPROCS for the miss re-evaluation fan-out and the CELF
// rounds.
//
// Non-submodular objectives cannot be seeded (the CELF upper-bound
// invariant does not hold), so they run the exact Greedy uncached with
// zeroed stats.
func (w *WarmPlacer) Place(ctx context.Context, inst *Instance, obj Objective, workers int, progress ProgressFunc) (*Result, WarmStats, error) {
	if obj == nil {
		return nil, WarmStats{}, fmt.Errorf("placement: nil objective")
	}
	if !obj.submodular() {
		res, err := GreedyCtx(ctx, inst, obj, progress)
		return res, WarmStats{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.objName != obj.Name() || w.numNodes != inst.NumNodes() {
		// Different objective or universe: every cached gain is invalid.
		w.gains = nil
	}

	stats := WarmStats{Total: len(inst.elements)}
	seeds := make([]lazyEntry, len(inst.elements))
	keys := make([]warmKey, len(inst.elements))
	var misses []int
	for e := range inst.elements {
		el := &inst.elements[e]
		keys[e] = warmKey{service: el.service, host: el.host, sig: signature(el.evalPaths)}
		if g, ok := w.gains[keys[e]]; ok {
			seeds[e] = lazyEntry{elem: e, gain: g, round: 0}
			stats.Reused++
		} else {
			misses = append(misses, e)
		}
	}
	stats.Recomputed = len(misses)

	// Evaluate the misses against the empty placement, fanned out like
	// the cold engine's initial sweep.
	if len(misses) > 0 {
		base := obj.newEvaluator(inst.NumNodes())
		emptyVal := base.Value()
		one := func(e int) {
			trial := base.Clone()
			trial.Add(inst.elements[e].evalPaths)
			seeds[e] = lazyEntry{elem: e, gain: trial.Value() - emptyVal, round: 0}
		}
		if workers <= 1 || len(misses) == 1 {
			for _, e := range misses {
				one(e)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (len(misses) + workers - 1) / workers
			for lo := 0; lo < len(misses); lo += chunk {
				hi := lo + chunk
				if hi > len(misses) {
					hi = len(misses)
				}
				wg.Add(1)
				go func(part []int) {
					defer wg.Done()
					for _, e := range part {
						one(e)
					}
				}(misses[lo:hi])
			}
			wg.Wait()
		}
	}

	// Snapshot the cache rebuild before the run: the engine takes
	// ownership of the seeds slice as its heap and scrambles it. Stale
	// entries from revisions that no longer exist are dropped by
	// rebuilding wholesale rather than merging.
	next := make(map[warmKey]float64, len(seeds))
	for e := range keys {
		next[keys[e]] = seeds[e].gain
	}

	res, err := greedyLazySeeded(ctx, inst, obj, workers, progress, seeds, stats.Recomputed)
	if err != nil {
		return nil, stats, err
	}
	w.objName, w.numNodes, w.gains = obj.Name(), inst.NumNodes(), next
	return res, stats, nil
}
