package placement

import "time"

// Round is one greedy/lazy placement round as reported to a
// ProgressFunc: which (service, host) won, with what marginal gain, and
// what the round cost in candidates examined, objective evaluations, and
// wall-clock time. The serving layer turns these into trace-span stages
// and round-duration histograms.
type Round struct {
	// Index is the 0-based round number (one service placed per round).
	Index int
	// Service and Host are the winning ground element.
	Service int
	Host    int
	// Gain is the winning marginal gain f(P ∪ P(C_s, h)) − f(P).
	Gain float64
	// Candidates counts the (service, host) pairs examined this round —
	// the full unplaced ground set for the eager engine, only the heap
	// pops for the lazy one.
	Candidates int
	// Evaluations counts objective evaluations spent this round; the
	// lazy engine attributes its initial ground-set sweep to round 0, so
	// for both engines the rounds sum to Result.Evaluations.
	Evaluations int
	// Duration is the wall-clock time of the round.
	Duration time.Duration
}

// ProgressFunc receives one callback per completed round. It runs on the
// engine's goroutine between rounds, so implementations must be fast and
// must not call back into the engine.
type ProgressFunc func(Round)

// emit reports a round to fn when one is installed.
func (fn ProgressFunc) emit(r Round) {
	if fn != nil {
		fn(r)
	}
}
