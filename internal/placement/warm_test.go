package placement

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// warmTestSpec is small enough that every property-test step re-solves
// in milliseconds yet has a real three-tier hierarchy for edge deltas
// to reroute through.
var warmTestSpec = topology.HierarchySpec{
	Name: "warm-h", Core: 4, AggPerCore: 2, EdgePerAgg: 3, HostsPerEdge: 2, Seed: 11,
}

// warmInstance rebuilds the warmTestSpec topology with the given extra
// edges applied on top of the base wiring and returns a placement
// instance over three services drawn from the host tier. The router is
// lazy, as the server's re-placement path uses it.
func warmInstance(t *testing.T, extras [][2]int) *Instance {
	t.Helper()
	base, err := topology.BuildHierarchy(warmTestSpec)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(base.Graph.NumNodes())
	for _, e := range base.Graph.Edges() {
		if err := g.AddWeightedEdge(e.U, e.V, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range extras {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := routing.NewLazy(g)
	if err != nil {
		t.Fatal(err)
	}
	cc := base.CandidateClients
	svcs := []Service{
		{Name: "a", Clients: cc[:len(cc)/3]},
		{Name: "b", Clients: cc[len(cc)/3 : 2*len(cc)/3]},
		{Name: "c", Clients: cc[2*len(cc)/3:]},
	}
	inst, err := NewInstance(r, svcs, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestWarmPlacerMatchesColdAcrossDeltas is the warm-start property
// test: after every step of a random sequence of topology edge deltas
// (toggling chords between infrastructure routers), the warm-start
// placement must be bit-identical — hosts, order, value — to a cold
// GreedyLazy run on the step's topology.
func TestWarmPlacerMatchesColdAcrossDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Candidate chords between edge routers under different cores.
	aggBase := warmTestSpec.Core
	edgeBase := aggBase + warmTestSpec.Core*warmTestSpec.AggPerCore
	numEdge := warmTestSpec.Core * warmTestSpec.AggPerCore * warmTestSpec.EdgePerAgg
	var chords [][2]int
	for i := 0; i < numEdge; i += 5 {
		for j := i + 3; j < numEdge; j += 7 {
			chords = append(chords, [2]int{edgeBase + i, edgeBase + j})
		}
	}
	active := map[int]bool{}
	current := func() [][2]int {
		var out [][2]int
		for i, c := range chords {
			if active[i] {
				out = append(out, c)
			}
		}
		return out
	}

	for _, obj := range []Objective{NewCoverage(), mustDist1(t)} {
		w := NewWarmPlacer()
		for i := range active {
			delete(active, i)
		}
		for step := 0; step < 8; step++ {
			if step > 0 {
				i := rng.Intn(len(chords))
				active[i] = !active[i]
			}
			inst := warmInstance(t, current())
			warm, stats, err := w.Place(context.Background(), inst, obj, 1, nil)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			cold, err := GreedyLazy(warmInstance(t, current()), obj)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !reflect.DeepEqual(warm.Placement.Hosts, cold.Placement.Hosts) ||
				!reflect.DeepEqual(warm.Order, cold.Order) || warm.Value != cold.Value {
				t.Fatalf("step %d (%s): warm %v/%v (%v) != cold %v/%v (%v)",
					step, obj.Name(), warm.Placement.Hosts, warm.Order, warm.Value,
					cold.Placement.Hosts, cold.Order, cold.Value)
			}
			if stats.Reused+stats.Recomputed != stats.Total {
				t.Fatalf("step %d: stats %+v do not add up", step, stats)
			}
			if step == 0 && stats.Reused != 0 {
				t.Fatalf("cold first run reused %d gains", stats.Reused)
			}
		}
	}
}

// TestWarmPlacerNoChangeReusesEverything pins the best case: a repeat
// run on an unchanged topology serves every round-0 gain from cache and
// spends strictly fewer evaluations than the cold engine.
func TestWarmPlacerNoChangeReusesEverything(t *testing.T) {
	obj := NewCoverage()
	w := NewWarmPlacer()
	inst := warmInstance(t, nil)
	first, stats, err := w.Place(context.Background(), inst, obj, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recomputed != stats.Total || stats.Reused != 0 {
		t.Fatalf("first run stats %+v, want all recomputed", stats)
	}
	again, stats, err := w.Place(context.Background(), warmInstance(t, nil), obj, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != stats.Total || stats.Recomputed != 0 {
		t.Fatalf("repeat run stats %+v, want all reused", stats)
	}
	if !reflect.DeepEqual(again.Placement.Hosts, first.Placement.Hosts) {
		t.Fatal("repeat run changed the placement")
	}
	if again.Evaluations >= first.Evaluations {
		t.Fatalf("repeat run evaluations %d not below cold %d", again.Evaluations, first.Evaluations)
	}
}

// TestWarmPlacerInvalidation covers the cache-scoping rules: switching
// objectives must drop the cache, and a local edge delta must leave the
// untouched majority of elements cached.
func TestWarmPlacerInvalidation(t *testing.T) {
	w := NewWarmPlacer()
	ctx := context.Background()
	if _, _, err := w.Place(ctx, warmInstance(t, nil), NewCoverage(), 1, nil); err != nil {
		t.Fatal(err)
	}
	// Different objective: nothing may be reused.
	_, stats, err := w.Place(ctx, warmInstance(t, nil), mustDist1(t), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 {
		t.Fatalf("objective switch reused %d gains", stats.Reused)
	}
	// A link between two hosts on the same edge router shortens only the
	// path between that pair (it cannot serve as transit for any other
	// pair), so almost every element keeps its path signature and the
	// cache must survive the delta largely intact.
	hostBase := warmTestSpec.NumNodes() - warmTestSpec.Core*warmTestSpec.AggPerCore*
		warmTestSpec.EdgePerAgg*warmTestSpec.HostsPerEdge
	_, stats, err = w.Place(ctx, warmInstance(t, [][2]int{{hostBase, hostBase + 1}}), mustDist1(t), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused == 0 {
		t.Fatal("local edge delta invalidated the whole cache")
	}
}

// TestPathSignature pins the cache-key mechanism directly: signatures
// must be insensitive to nothing and sensitive to everything — any
// change in path membership, path count, or order-preserving content
// must change the fingerprint.
func TestPathSignature(t *testing.T) {
	mk := func(nodes ...[]int) []*bitset.Sparse {
		out := make([]*bitset.Sparse, len(nodes))
		for i, ns := range nodes {
			out[i] = bitset.SparseFromNodes(16, ns)
		}
		return out
	}
	base := signature(mk([]int{0, 1, 2}, []int{3, 4}))
	if base != signature(mk([]int{0, 1, 2}, []int{3, 4})) {
		t.Fatal("identical path sets hashed differently")
	}
	for name, other := range map[string][]*bitset.Sparse{
		"rerouted path":  mk([]int{0, 1, 5}, []int{3, 4}),
		"dropped path":   mk([]int{0, 1, 2}),
		"extra path":     mk([]int{0, 1, 2}, []int{3, 4}, []int{5}),
		"swapped order":  mk([]int{3, 4}, []int{0, 1, 2}),
		"moved boundary": mk([]int{0, 1}, []int{2, 3, 4}),
	} {
		if signature(other) == base {
			t.Fatalf("%s produced a colliding signature", name)
		}
	}
}

// TestWarmPlacerNonSubmodularFallback: identifiability cannot be warm
// started; the placer must produce exact Greedy's result with zeroed
// stats.
func TestWarmPlacerNonSubmodularFallback(t *testing.T) {
	ident, err := NewIdentifiability(1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWarmPlacer()
	inst := paperInstances(t, 0.6)["Abovenet"]
	got, stats, err := w.Place(context.Background(), inst, ident, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (WarmStats{}) {
		t.Fatalf("fallback reported stats %+v", stats)
	}
	exact, err := Greedy(inst, ident)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Placement.Hosts, exact.Placement.Hosts) {
		t.Fatal("fallback placement differs from exact Greedy")
	}
}

// TestWarmPlacerNilObjective pins the error surface.
func TestWarmPlacerNilObjective(t *testing.T) {
	w := NewWarmPlacer()
	if _, _, err := w.Place(context.Background(), warmInstance(t, nil), nil, 1, nil); err == nil {
		t.Fatal("nil objective should error")
	}
}
