package placement

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestLocalSearchValidation(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	complete := Placement{Hosts: []graph.NodeID{0, 1}}
	if _, err := LocalSearch(inst, nil, complete, 0); err == nil {
		t.Fatal("nil objective should error")
	}
	if _, err := LocalSearch(inst, NewCoverage(), NewPlacement(1), 0); err == nil {
		t.Fatal("wrong-length placement should error")
	}
	if _, err := LocalSearch(inst, NewCoverage(), NewPlacement(2), 0); err == nil {
		t.Fatal("incomplete placement should error")
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	for trial := 0; trial < 10; trial++ {
		start, err := Random(inst, obj, rng)
		if err != nil {
			t.Fatal(err)
		}
		improved, err := LocalSearch(inst, obj, start.Placement, 0)
		if err != nil {
			t.Fatal(err)
		}
		if improved.Value < start.Value {
			t.Fatalf("trial %d: local search worsened %v → %v", trial, start.Value, improved.Value)
		}
		// The result must be a genuine local optimum: no single move
		// improves it.
		for s := 0; s < inst.NumServices(); s++ {
			orig := improved.Placement.Hosts[s]
			for _, h := range inst.Candidates(s) {
				trialPl := improved.Placement.Clone()
				trialPl.Hosts[s] = h
				v, err := EvaluateWith(inst, obj, trialPl)
				if err != nil {
					t.Fatal(err)
				}
				if v > improved.Value {
					t.Fatalf("trial %d: move s%d %d→%d improves %v → %v; not a local optimum",
						trial, s, orig, h, improved.Value, v)
				}
			}
		}
	}
}

func TestLocalSearchRespectsMaxMoves(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	// Start from the QoS placement (all on r), which has room to improve.
	start, err := QoS(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	one, err := LocalSearch(inst, obj, start.Placement, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LocalSearch(inst, obj, start.Placement, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Value > full.Value {
		t.Fatal("capped search cannot beat uncapped")
	}
	// One move changes at most one host.
	diff := 0
	for s := range start.Placement.Hosts {
		if one.Placement.Hosts[s] != start.Placement.Hosts[s] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("maxMoves=1 changed %d hosts", diff)
	}
}

func TestGreedyWithLocalSearchAtLeastGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		g, err := topology.RandomConnected(10, 16, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(r, []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
			{Name: "c", Clients: []graph.NodeID{4, 5}},
		}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		obj := mustObj(NewDistinguishability(1))
		plain, err := Greedy(inst, obj)
		if err != nil {
			t.Fatal(err)
		}
		polished, err := GreedyWithLocalSearch(inst, obj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if polished.Value < plain.Value {
			t.Fatalf("trial %d: polish lost value %v → %v", trial, plain.Value, polished.Value)
		}
		if polished.Evaluations <= plain.Evaluations {
			t.Fatal("polish evaluations should include greedy's")
		}
		if !polished.Placement.Complete() {
			t.Fatal("polished placement incomplete")
		}
	}
}
