package placement

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// progressInstance builds a small deterministic instance for the hook
// tests.
func progressInstance(t *testing.T) *Instance {
	t.Helper()
	g, err := topology.RandomConnected(12, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(r, []Service{
		{Name: "a", Clients: []graph.NodeID{0, 1}},
		{Name: "b", Clients: []graph.NodeID{2, 3}},
		{Name: "c", Clients: []graph.NodeID{4, 5}},
	}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// checkRounds validates the invariants every engine's progress stream
// must satisfy against its final result.
func checkRounds(t *testing.T, engine string, rounds []Round, res *Result) {
	t.Helper()
	if len(rounds) != len(res.Order) {
		t.Fatalf("%s: %d rounds for %d placed services", engine, len(rounds), len(res.Order))
	}
	for i, r := range rounds {
		if r.Index != i {
			t.Errorf("%s round %d: Index = %d", engine, i, r.Index)
		}
		if r.Service != res.Order[i] {
			t.Errorf("%s round %d: Service = %d, want %d", engine, i, r.Service, res.Order[i])
		}
		if r.Host != res.Placement.Hosts[r.Service] {
			t.Errorf("%s round %d: Host = %d, want %d", engine, i, r.Host, res.Placement.Hosts[r.Service])
		}
		if r.Candidates <= 0 {
			t.Errorf("%s round %d: Candidates = %d, want > 0", engine, i, r.Candidates)
		}
		if r.Evaluations <= 0 {
			t.Errorf("%s round %d: Evaluations = %d, want > 0", engine, i, r.Evaluations)
		}
		if r.Gain < 0 {
			t.Errorf("%s round %d: Gain = %v, want ≥ 0", engine, i, r.Gain)
		}
		if r.Duration < 0 {
			t.Errorf("%s round %d: negative duration", engine, i)
		}
	}
}

func TestGreedyProgressHook(t *testing.T) {
	inst := progressInstance(t)
	obj := mustObj(NewDistinguishability(1))

	var rounds []Round
	res, err := GreedyWithProgress(inst, obj, func(r Round) { rounds = append(rounds, r) })
	if err != nil {
		t.Fatal(err)
	}
	checkRounds(t, "greedy", rounds, res)

	// The eager engine attributes every evaluation to a round.
	total := 0
	for _, r := range rounds {
		total += r.Evaluations
	}
	if total != res.Evaluations {
		t.Fatalf("greedy rounds account for %d evaluations, result says %d", total, res.Evaluations)
	}

	// The hook must not change the computation.
	plain, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Placement.Hosts, res.Placement.Hosts) || plain.Evaluations != res.Evaluations {
		t.Fatalf("progress hook changed the placement: %+v vs %+v", res, plain)
	}
}

func TestGreedyLazyProgressHook(t *testing.T) {
	inst := progressInstance(t)
	obj := mustObj(NewDistinguishability(1))

	var rounds []Round
	res, err := GreedyLazyWithProgress(inst, obj, func(r Round) { rounds = append(rounds, r) })
	if err != nil {
		t.Fatal(err)
	}
	checkRounds(t, "lazy", rounds, res)

	plain, err := GreedyLazy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Placement.Hosts, res.Placement.Hosts) || plain.Evaluations != res.Evaluations {
		t.Fatalf("progress hook changed the placement: %+v vs %+v", res, plain)
	}
}

func TestGreedyLazyParallelProgressHook(t *testing.T) {
	inst := progressInstance(t)
	obj := NewCoverage()

	var rounds []Round
	res, err := GreedyLazyParallelWithProgress(inst, obj, 4, func(r Round) { rounds = append(rounds, r) })
	if err != nil {
		t.Fatal(err)
	}
	checkRounds(t, "lazy-parallel", rounds, res)
}

// TestLazyProgressNonSubmodularFallback: identifiability routes to the
// eager engine, and the hook must still fire there.
func TestLazyProgressNonSubmodularFallback(t *testing.T) {
	inst := progressInstance(t)
	obj := mustObj(NewIdentifiability(1))

	var rounds []Round
	res, err := GreedyLazyWithProgress(inst, obj, func(r Round) { rounds = append(rounds, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no progress from the non-submodular fallback")
	}
	checkRounds(t, "lazy-fallback", rounds, res)
}
