package placement

import (
	"strings"
	"testing"
)

func TestRunPortfolioDefault(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	p, err := RunPortfolio(inst, PortfolioConfig{RDSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"GC", "GI", "GD", "QoS", "RD"}
	if len(p.Entries) != len(wantOrder) {
		t.Fatalf("entries = %d", len(p.Entries))
	}
	for i, name := range wantOrder {
		if p.Entries[i].Name != name {
			t.Fatalf("entry %d = %s, want %s", i, p.Entries[i].Name, name)
		}
		if !p.Entries[i].Placement.Complete() {
			t.Fatalf("%s placement incomplete", name)
		}
		if p.Entries[i].WorstRelDistance > 0.5+1e-9 {
			t.Fatalf("%s violates QoS: %v", name, p.Entries[i].WorstRelDistance)
		}
	}
}

func TestRunPortfolioWithBFAndLS(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	p, err := RunPortfolio(inst, PortfolioConfig{IncludeBF: true, LocalSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	bf := p.Lookup("BF")
	if bf == nil {
		t.Fatal("missing BF entry")
	}
	ls := p.Lookup("GD+LS")
	if ls == nil {
		t.Fatal("missing GD+LS entry")
	}
	gd := p.Lookup("GD")
	// BF dominates every entry in every measure it optimized.
	for _, e := range p.Entries {
		if e.Name == "BF" {
			continue
		}
		if e.Metrics.Coverage > bf.Metrics.Coverage {
			t.Fatalf("%s coverage %d beats BF %d", e.Name, e.Metrics.Coverage, bf.Metrics.Coverage)
		}
		if e.Metrics.S1 > bf.Metrics.S1 {
			t.Fatalf("%s S1 %d beats BF %d", e.Name, e.Metrics.S1, bf.Metrics.S1)
		}
		if e.Metrics.D1 > bf.Metrics.D1 {
			t.Fatalf("%s D1 %d beats BF %d", e.Name, e.Metrics.D1, bf.Metrics.D1)
		}
	}
	if ls.Metrics.D1 < gd.Metrics.D1 {
		t.Fatalf("GD+LS D1 %d below GD %d", ls.Metrics.D1, gd.Metrics.D1)
	}
}

func TestPortfolioLookupMissing(t *testing.T) {
	p := &Portfolio{}
	if p.Lookup("nope") != nil {
		t.Fatal("missing lookup should return nil")
	}
}

func TestPortfolioRender(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	p, err := RunPortfolio(inst, PortfolioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	text := p.Render()
	for _, want := range []string{"GC", "GD", "QoS", "covered", "disting."} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}
