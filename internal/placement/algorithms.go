package placement

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Result is the outcome of a placement algorithm run.
type Result struct {
	Placement Placement
	// Value is the objective value of the final placement.
	Value float64
	// Order lists services in the order the algorithm placed them
	// (greedy algorithms only; nil otherwise).
	Order []int
	// Evaluations counts objective evaluations, the dominant cost.
	Evaluations int
}

// Greedy runs Algorithm 2: starting from no placements, it repeatedly
// chooses the (service, host) pair that maximizes f(P ∪ P(C_s, h)) among
// unplaced services and their candidates, until every service is placed.
// Ties break toward the smaller service index, then the smaller host ID,
// making runs deterministic.
//
// For the coverage and distinguishability objectives this is a
// 1/2-approximation of the optimum (Corollaries 14 and 18); for
// identifiability it is the GI heuristic without a guarantee
// (Proposition 15).
func Greedy(inst *Instance, obj Objective) (*Result, error) {
	return GreedyWithProgress(inst, obj, nil)
}

// GreedyWithProgress is Greedy with a per-round progress hook; a nil
// progress reproduces Greedy exactly (same placement, same evaluation
// count — the hook never changes the computation, only reports it).
func GreedyWithProgress(inst *Instance, obj Objective, progress ProgressFunc) (*Result, error) {
	return GreedyCtx(context.Background(), inst, obj, progress)
}

// errCanceled wraps ctx.Err() so callers can errors.Is-match
// context.Canceled / DeadlineExceeded on an abandoned run.
func errCanceled(ctx context.Context, iter int) error {
	return fmt.Errorf("placement: run canceled before round %d: %w", iter, ctx.Err())
}

// GreedyCtx is GreedyWithProgress bounded by ctx: cancellation is
// observed once per greedy round (the same cadence as the progress
// hook), so an abandoned placement job stops within one round instead of
// running every remaining round to completion. The returned error wraps
// ctx.Err(). A background context reproduces Greedy exactly.
func GreedyCtx(ctx context.Context, inst *Instance, obj Objective, progress ProgressFunc) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	res := &Result{Placement: NewPlacement(inst.NumServices())}
	base := obj.newEvaluator(inst.NumNodes())
	baseVal := base.Value()
	placed := make([]bool, inst.NumServices())

	for iter := 0; iter < inst.NumServices(); iter++ {
		if ctx.Err() != nil {
			return nil, errCanceled(ctx, iter)
		}
		roundStart := time.Now()
		evalsBefore := res.Evaluations
		candidates := 0
		bestS, bestH, bestVal := -1, -1, -1.0
		var bestEval evaluator
		for s := 0; s < inst.NumServices(); s++ {
			if placed[s] {
				continue
			}
			for i := range inst.candidates[s] {
				el := &inst.elements[inst.elemIndex[s][i]]
				trial := base.Clone()
				trial.Add(el.evalPaths)
				res.Evaluations++
				candidates++
				if v := trial.Value(); v > bestVal {
					bestS, bestH, bestVal, bestEval = s, el.host, v, trial
				}
			}
		}
		if bestS < 0 {
			return nil, fmt.Errorf("placement: no feasible placement at iteration %d", iter)
		}
		// The winning trial already holds base ∪ P(C_s, h): adopt it as
		// the new base instead of re-refining the old one.
		base = bestEval
		placed[bestS] = true
		res.Placement.Hosts[bestS] = bestH
		res.Order = append(res.Order, bestS)
		progress.emit(Round{
			Index:       iter,
			Service:     bestS,
			Host:        bestH,
			Gain:        bestVal - baseVal,
			Candidates:  candidates,
			Evaluations: res.Evaluations - evalsBefore,
			Duration:    time.Since(roundStart),
		})
		baseVal = bestVal
	}
	res.Value = base.Value()
	return res, nil
}

// QoS computes the best-QoS baseline: each service goes to the host
// minimizing its worst-case client distance (ties to the smallest node
// ID), ignoring monitoring value. The objective is still evaluated so the
// result is comparable.
func QoS(inst *Instance, obj Objective) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	res := &Result{Placement: NewPlacement(inst.NumServices())}
	eval := obj.newEvaluator(inst.NumNodes())
	for s := 0; s < inst.NumServices(); s++ {
		h := inst.profiles[s].BestHost()
		paths, err := inst.EvalPaths(s, h)
		if err != nil {
			return nil, err
		}
		eval.Add(paths)
		res.Placement.Hosts[s] = h
	}
	res.Value = eval.Value()
	return res, nil
}

// Random computes the RD baseline: each service is placed on a host drawn
// uniformly from its candidate set using the provided source. Use a
// seeded source and average across seeds for the evaluation curves.
func Random(inst *Instance, obj Objective, rng *rand.Rand) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if rng == nil {
		return nil, fmt.Errorf("placement: nil rng")
	}
	res := &Result{Placement: NewPlacement(inst.NumServices())}
	eval := obj.newEvaluator(inst.NumNodes())
	for s := 0; s < inst.NumServices(); s++ {
		h := inst.candidates[s][rng.Intn(len(inst.candidates[s]))]
		paths, err := inst.EvalPaths(s, h)
		if err != nil {
			return nil, err
		}
		eval.Add(paths)
		res.Placement.Hosts[s] = h
	}
	res.Value = eval.Value()
	return res, nil
}

// DefaultBruteForceBudget caps the number of placements BruteForce will
// enumerate unless the caller raises it.
const DefaultBruteForceBudget = 5_000_000

// BruteForce enumerates every feasible placement (the product of the
// candidate sets) and returns one maximizing the objective — the BF
// reference of Section VI. It refuses instances whose search space exceeds
// budget (pass 0 for DefaultBruteForceBudget). Ties break toward the
// lexicographically smallest host vector.
func BruteForce(inst *Instance, obj Objective, budget int64) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if budget <= 0 {
		budget = DefaultBruteForceBudget
	}
	space := int64(1)
	for s := 0; s < inst.NumServices(); s++ {
		space *= int64(len(inst.candidates[s]))
		if space > budget {
			return nil, fmt.Errorf("placement: brute force space exceeds budget %d", budget)
		}
	}

	res := &Result{Placement: NewPlacement(inst.NumServices()), Value: -1}
	choice := make([]int, inst.NumServices())
	for {
		eval := obj.newEvaluator(inst.NumNodes())
		for s, ci := range choice {
			eval.Add(inst.elements[inst.elemIndex[s][ci]].evalPaths)
		}
		res.Evaluations++
		if v := eval.Value(); v > res.Value {
			res.Value = v
			for s, ci := range choice {
				res.Placement.Hosts[s] = inst.candidates[s][ci]
			}
		}
		// Odometer increment over the candidate index vector.
		s := inst.NumServices() - 1
		for s >= 0 {
			choice[s]++
			if choice[s] < len(inst.candidates[s]) {
				break
			}
			choice[s] = 0
			s--
		}
		if s < 0 {
			break
		}
	}
	return res, nil
}

// EvaluateWith computes the objective value of an arbitrary placement,
// e.g. one produced by a different algorithm or loaded from a file.
func EvaluateWith(inst *Instance, obj Objective, pl Placement) (float64, error) {
	if obj == nil {
		return 0, fmt.Errorf("placement: nil objective")
	}
	if len(pl.Hosts) != inst.NumServices() {
		return 0, fmt.Errorf("placement: placement has %d hosts, want %d", len(pl.Hosts), inst.NumServices())
	}
	eval := obj.newEvaluator(inst.NumNodes())
	for s, h := range pl.Hosts {
		if h == Unplaced {
			continue
		}
		paths, err := inst.EvalPaths(s, h)
		if err != nil {
			return 0, err
		}
		eval.Add(paths)
	}
	return eval.Value(), nil
}
