package placement

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/matroid"
)

func TestGreedyCapacitatedSpreadsLoad(t *testing.T) {
	// Five unit-demand services, every host capacity 1: no two services
	// may share a node.
	inst := fig1Instance(t, 5, 0.5)
	cons := CapacityConstraints{
		Demand:   []float64{1, 1, 1, 1, 1},
		Capacity: map[graph.NodeID]float64{0: 1, 1: 1, 2: 1, 3: 1, 4: 1},
	}
	res, err := GreedyCapacitated(inst, mustObj(NewDistinguishability(1)), cons)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Placement.Complete() {
		t.Fatalf("placement incomplete: %v", res.Placement.Hosts)
	}
	seen := map[graph.NodeID]bool{}
	for _, h := range res.Placement.Hosts {
		if seen[h] {
			t.Fatalf("host %d used twice under capacity 1", h)
		}
		seen[h] = true
	}
	if ok, bad := cons.Feasible(res.Placement); !ok {
		t.Fatalf("capacity violated at host %d", bad)
	}
}

func TestGreedyCapacitatedInfeasible(t *testing.T) {
	// Two services but the only candidate (r at α = 0) has capacity for one.
	inst := fig1Instance(t, 2, 0)
	cons := CapacityConstraints{
		Demand:   []float64{1, 1},
		Capacity: map[graph.NodeID]float64{0: 1},
	}
	res, err := GreedyCapacitated(inst, NewCoverage(), cons)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	placedCount := 0
	for _, h := range res.Placement.Hosts {
		if h != Unplaced {
			placedCount++
		}
	}
	if placedCount != 1 {
		t.Fatalf("placed %d services, want 1 partial", placedCount)
	}
}

func TestGreedyCapacitatedValidation(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if _, err := GreedyCapacitated(inst, nil, CapacityConstraints{Demand: []float64{1, 1}}); err == nil {
		t.Fatal("nil objective should error")
	}
	if _, err := GreedyCapacitated(inst, NewCoverage(), CapacityConstraints{Demand: []float64{1}}); err == nil {
		t.Fatal("demand length mismatch should error")
	}
	if _, err := GreedyCapacitated(inst, NewCoverage(), CapacityConstraints{Demand: []float64{-1, 1}}); err == nil {
		t.Fatal("negative demand should error")
	}
}

func TestGreedyCapacitatedUnlimitedMatchesGreedy(t *testing.T) {
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	plain, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := GreedyCapacitated(inst, obj, CapacityConstraints{
		Demand:   []float64{1, 1, 1},
		Capacity: nil, // unlimited everywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != capped.Value {
		t.Fatalf("unlimited capacity changed greedy value: %v != %v", capped.Value, plain.Value)
	}
}

func TestCapacityFeasible(t *testing.T) {
	cons := CapacityConstraints{
		Demand:   []float64{2, 2},
		Capacity: map[graph.NodeID]float64{1: 3},
	}
	pl := Placement{Hosts: []graph.NodeID{1, 1}}
	if ok, bad := cons.Feasible(pl); ok || bad != 1 {
		t.Fatalf("expected violation at host 1, got ok=%v bad=%d", ok, bad)
	}
	pl2 := Placement{Hosts: []graph.NodeID{1, 2}}
	if ok, _ := cons.Feasible(pl2); !ok {
		t.Fatal("split placement should be feasible")
	}
	pl3 := Placement{Hosts: []graph.NodeID{1, Unplaced}}
	if ok, _ := cons.Feasible(pl3); !ok {
		t.Fatal("partial placement within capacity should be feasible")
	}
}

func TestIndependenceSystemPartition(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	sys, err := inst.IndependenceSystem(nil)
	if err != nil {
		t.Fatal(err)
	}
	size, decode := inst.Elements()
	if sys.GroundSize() != size {
		t.Fatalf("ground size %d != %d", sys.GroundSize(), size)
	}
	if size != 10 { // 2 services × 5 candidates at α = 0.5
		t.Fatalf("ground size = %d, want 10", size)
	}
	s, h := decode(0)
	if s != 0 || h != inst.Candidates(0)[0] {
		t.Fatalf("decode(0) = (%d, %d)", s, h)
	}
	// Matroid exchange should hold for the partition system.
	if v := matroid.CheckExchange(sys, 300, 5); v != nil {
		t.Fatal(v)
	}
}

func TestIndependenceSystemCapacity(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	cons := &CapacityConstraints{
		Demand:   []float64{1, 1},
		Capacity: map[graph.NodeID]float64{0: 1},
	}
	sys, err := inst.IndependenceSystem(cons)
	if err != nil {
		t.Fatal(err)
	}
	if sys.GroundSize() == 0 {
		t.Fatal("empty ground set")
	}
	bad := &CapacityConstraints{
		Demand:   []float64{1, 1},
		Capacity: map[graph.NodeID]float64{99: 1},
	}
	if _, err := inst.IndependenceSystem(bad); err == nil {
		t.Fatal("out-of-range capacity host should error")
	}
}

func TestMatroidGreedyAgreesWithAlgorithm2(t *testing.T) {
	// Driving the generic matroid.Greedy with the instance's element
	// objective must reach the same value as the specialized Algorithm 2
	// (same function, same constraint, same tie-break by element order).
	inst := fig1Instance(t, 3, 0.5)
	obj := mustObj(NewDistinguishability(1))
	sys, err := inst.IndependenceSystem(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := inst.ObjectiveOnElements(obj)
	sel := matroid.Greedy(sys, f, inst.NumServices())
	specialized, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Value(sel), specialized.Value; got != want {
		t.Fatalf("matroid greedy %v != Algorithm 2 %v", got, want)
	}
}
