package placement

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestGreedyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	objectives := func() []Objective {
		return []Objective{
			NewCoverage(),
			mustObj(NewIdentifiability(1)),
			mustObj(NewDistinguishability(1)),
		}
	}
	for trial := 0; trial < 6; trial++ {
		g, err := topology.RandomConnected(12, 20, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.New(g)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := NewInstance(r, []Service{
			{Name: "a", Clients: []graph.NodeID{0, 1}},
			{Name: "b", Clients: []graph.NodeID{2, 3}},
			{Name: "c", Clients: []graph.NodeID{4, 5}},
		}, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range objectives() {
			seq, err := Greedy(inst, obj)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3, 16} {
				par, err := GreedyParallel(inst, obj, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par.Placement.Hosts, seq.Placement.Hosts) {
					t.Fatalf("trial %d %s workers=%d: hosts %v != sequential %v",
						trial, obj.Name(), workers, par.Placement.Hosts, seq.Placement.Hosts)
				}
				if par.Value != seq.Value {
					t.Fatalf("trial %d %s workers=%d: value %v != %v",
						trial, obj.Name(), workers, par.Value, seq.Value)
				}
				if !reflect.DeepEqual(par.Order, seq.Order) {
					t.Fatalf("trial %d %s: placement order differs", trial, obj.Name())
				}
				if par.Evaluations != seq.Evaluations {
					t.Fatalf("trial %d %s: evaluation counts differ (%d vs %d)",
						trial, obj.Name(), par.Evaluations, seq.Evaluations)
				}
			}
		}
	}
}

func TestGreedyParallelValidation(t *testing.T) {
	inst := fig1Instance(t, 2, 0.5)
	if _, err := GreedyParallel(inst, nil, 2); err == nil {
		t.Fatal("nil objective should error")
	}
}

func TestGreedyParallelOnPaperWorkload(t *testing.T) {
	topo := topology.MustBuild(topology.Tiscali)
	r, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	services := make([]Service, 3)
	for s := range services {
		services[s] = Service{Name: "svc", Clients: topo.CandidateClients[3*s : 3*s+3]}
	}
	inst, err := NewInstance(r, services, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	obj := mustObj(NewDistinguishability(1))
	seq, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	par, err := GreedyParallel(inst, obj, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Placement.Hosts, seq.Placement.Hosts) {
		t.Fatalf("parallel %v != sequential %v", par.Placement.Hosts, seq.Placement.Hosts)
	}
}
