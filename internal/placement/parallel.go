package placement

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// GreedyParallel is Algorithm 2 with each iteration's candidate
// evaluations fanned out across worker goroutines. The reduction uses the
// same deterministic tie-break as Greedy (smallest service index, then
// smallest host ID), so the resulting placement is bit-for-bit identical
// to the sequential algorithm — only faster on instances where a single
// evaluation is expensive (large networks, k ≥ 2 objectives).
//
// workers ≤ 0 selects GOMAXPROCS.
func GreedyParallel(inst *Instance, obj Objective, workers int) (*Result, error) {
	return GreedyParallelCtx(context.Background(), inst, obj, workers)
}

// GreedyParallelCtx is GreedyParallel bounded by ctx: cancellation is
// observed once per round on the coordinating goroutine (an in-flight
// fan-out finishes first), and the returned error wraps ctx.Err().
func GreedyParallelCtx(ctx context.Context, inst *Instance, obj Objective, workers int) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{Placement: NewPlacement(inst.NumServices())}
	base := obj.newEvaluator(inst.NumNodes())
	placed := make([]bool, inst.NumServices())

	type candidate struct {
		service int
		host    int
		elem    int
	}
	type verdict struct {
		candidate
		value float64
	}

	for iter := 0; iter < inst.NumServices(); iter++ {
		if ctx.Err() != nil {
			return nil, errCanceled(ctx, iter)
		}
		var work []candidate
		for s := 0; s < inst.NumServices(); s++ {
			if placed[s] {
				continue
			}
			for i, h := range inst.candidates[s] {
				work = append(work, candidate{service: s, host: h, elem: inst.elemIndex[s][i]})
			}
		}
		if len(work) == 0 {
			return nil, fmt.Errorf("placement: no feasible placement at iteration %d", iter)
		}

		verdicts := make([]verdict, len(work))
		var wg sync.WaitGroup
		chunk := (len(work) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(work) {
				break
			}
			hi := lo + chunk
			if hi > len(work) {
				hi = len(work)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					c := work[i]
					trial := base.Clone()
					trial.Add(inst.elements[c.elem].evalPaths)
					verdicts[i] = verdict{candidate: c, value: trial.Value()}
				}
			}(lo, hi)
		}
		wg.Wait()

		bestIdx := -1
		for i, v := range verdicts {
			if bestIdx < 0 || v.value > verdicts[bestIdx].value {
				bestIdx = i
			}
			// work is generated in (service, host) order, so the first
			// maximum already respects the sequential tie-break.
		}
		res.Evaluations += len(work)

		chosen := verdicts[bestIdx]
		base.Add(inst.elements[chosen.elem].evalPaths)
		placed[chosen.service] = true
		res.Placement.Hosts[chosen.service] = chosen.host
		res.Order = append(res.Order, chosen.service)
	}
	res.Value = base.Value()
	return res, nil
}
