package placement

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// ctxInstance builds a small instance shared by the cancellation tests.
func ctxInstance(t *testing.T) (*Instance, Objective) {
	t.Helper()
	g, err := topology.RandomConnected(12, 20, 4242)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(r, []Service{
		{Name: "a", Clients: []graph.NodeID{0, 1}},
		{Name: "b", Clients: []graph.NodeID{2, 3}},
		{Name: "c", Clients: []graph.NodeID{4, 5}},
	}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewDistinguishability(1)
	if err != nil {
		t.Fatal(err)
	}
	return inst, obj
}

// TestCtxEnginesMatchPlainEngines: a background context through the Ctx
// entry points must reproduce the engine's normal output bit-for-bit —
// the cancellation check may not perturb anything.
func TestCtxEnginesMatchPlainEngines(t *testing.T) {
	inst, obj := ctxInstance(t)
	want, err := Greedy(inst, obj)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		run  func(context.Context) (*Result, error)
	}{
		{"greedy", func(ctx context.Context) (*Result, error) { return GreedyCtx(ctx, inst, obj, nil) }},
		{"lazy", func(ctx context.Context) (*Result, error) { return GreedyLazyCtx(ctx, inst, obj, nil) }},
		{"lazy-parallel", func(ctx context.Context) (*Result, error) {
			return GreedyLazyParallelCtx(ctx, inst, obj, 4, nil)
		}},
		{"parallel", func(ctx context.Context) (*Result, error) { return GreedyParallelCtx(ctx, inst, obj, 4) }},
	} {
		got, err := tc.run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Placement.Hosts, want.Placement.Hosts) || got.Value != want.Value {
			t.Errorf("%s: ctx variant diverged: hosts %v value %v, want %v %v",
				tc.name, got.Placement.Hosts, got.Value, want.Placement.Hosts, want.Value)
		}
	}
}

// TestCtxEnginesStopOnCancel: a pre-canceled context must abort every
// engine before it places anything, with an error that errors.Is-matches
// context.Canceled so the serving layer maps it to the right status.
func TestCtxEnginesStopOnCancel(t *testing.T) {
	inst, obj := ctxInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"greedy", func() (*Result, error) { return GreedyCtx(ctx, inst, obj, nil) }},
		{"lazy", func() (*Result, error) { return GreedyLazyCtx(ctx, inst, obj, nil) }},
		{"lazy-parallel", func() (*Result, error) { return GreedyLazyParallelCtx(ctx, inst, obj, 4, nil) }},
		{"parallel", func() (*Result, error) { return GreedyParallelCtx(ctx, inst, obj, 4) }},
	} {
		res, err := tc.run()
		if res != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("%s: canceled run returned (%v, %v), want (nil, context.Canceled)", tc.name, res, err)
		}
	}
}

// TestCtxCancelMidRun cancels from the progress hook during the first
// round and checks the engine stops at the next round boundary instead
// of placing every remaining service.
func TestCtxCancelMidRun(t *testing.T) {
	inst, obj := ctxInstance(t)
	for _, engine := range []string{"greedy", "lazy"} {
		ctx, cancel := context.WithCancel(context.Background())
		rounds := 0
		progress := ProgressFunc(func(Round) {
			rounds++
			cancel() // fires during round 0's hook; round 1 must not start
		})
		var err error
		switch engine {
		case "greedy":
			_, err = GreedyCtx(ctx, inst, obj, progress)
		case "lazy":
			_, err = GreedyLazyCtx(ctx, inst, obj, progress)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", engine, err)
		}
		if rounds != 1 {
			t.Errorf("%s: engine ran %d rounds after cancellation, want 1", engine, rounds)
		}
		cancel()
	}
}
