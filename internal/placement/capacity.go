package placement

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matroid"
)

// CapacityConstraints models the Section VII-A extension: each service s
// consumes Demand[s] resources and each host h offers Capacity[h]; a
// placement must satisfy Σ_{s on h} Demand[s] ≤ Capacity[h] (constraint
// (5)) in addition to the candidate-set constraint (2).
type CapacityConstraints struct {
	// Demand[s] is r_s for service s. Must cover every service.
	Demand []float64
	// Capacity maps host node ID → R_h. Hosts absent from the map have
	// unlimited capacity.
	Capacity map[graph.NodeID]float64
}

// Feasible reports whether a placement satisfies the capacity constraints
// and returns the violated host if not.
func (c CapacityConstraints) Feasible(pl Placement) (bool, graph.NodeID) {
	load := map[graph.NodeID]float64{}
	for s, h := range pl.Hosts {
		if h == Unplaced {
			continue
		}
		load[h] += c.Demand[s]
	}
	for h, l := range load {
		if cap, ok := c.Capacity[h]; ok && l > cap+1e-12 {
			return false, h
		}
	}
	return true, Unplaced
}

// GreedyCapacitated runs the greedy of Algorithm 2 restricted to the
// p-independence system formed by constraints (2) and (5). For monotone
// submodular objectives (coverage, distinguishability) Theorem 21 gives a
// 1/(p+1) approximation with p = ⌈r_max/r_min⌉ + 1; identical demands
// yield the best ratio 1/3.
//
// Services that cannot be placed without violating capacity are left
// Unplaced and reported in the error; the partial placement is still
// returned for inspection.
func GreedyCapacitated(inst *Instance, obj Objective, cons CapacityConstraints) (*Result, error) {
	if obj == nil {
		return nil, fmt.Errorf("placement: nil objective")
	}
	if len(cons.Demand) != inst.NumServices() {
		return nil, fmt.Errorf("placement: %d demands for %d services", len(cons.Demand), inst.NumServices())
	}
	for s, r := range cons.Demand {
		if r < 0 {
			return nil, fmt.Errorf("placement: service %d has negative demand", s)
		}
	}

	res := &Result{Placement: NewPlacement(inst.NumServices())}
	base := obj.newEvaluator(inst.NumNodes())
	placed := make([]bool, inst.NumServices())
	residual := map[graph.NodeID]float64{}
	for h, r := range cons.Capacity {
		residual[h] = r
	}
	fits := func(s int, h graph.NodeID) bool {
		r, limited := residual[h]
		return !limited || cons.Demand[s] <= r+1e-12
	}

	unplaced := inst.NumServices()
	for iter := 0; iter < inst.NumServices(); iter++ {
		bestS, bestH, bestVal := -1, -1, -1.0
		for s := 0; s < inst.NumServices(); s++ {
			if placed[s] {
				continue
			}
			for _, h := range inst.candidates[s] {
				if !fits(s, h) {
					continue
				}
				paths, err := inst.EvalPaths(s, h)
				if err != nil {
					return nil, err
				}
				trial := base.Clone()
				trial.Add(paths)
				res.Evaluations++
				if v := trial.Value(); v > bestVal {
					bestS, bestH, bestVal = s, h, v
				}
			}
		}
		if bestS < 0 {
			break // remaining services cannot fit anywhere
		}
		paths, err := inst.EvalPaths(bestS, bestH)
		if err != nil {
			return nil, err
		}
		base.Add(paths)
		placed[bestS] = true
		if _, limited := residual[bestH]; limited {
			residual[bestH] -= cons.Demand[bestS]
		}
		res.Placement.Hosts[bestS] = bestH
		res.Order = append(res.Order, bestS)
		unplaced--
	}
	res.Value = base.Value()
	if unplaced > 0 {
		return res, fmt.Errorf("placement: %d services could not be placed within capacity", unplaced)
	}
	return res, nil
}

// IndependenceSystem exposes the instance's constraint structure as a
// matroid-package system: the partition matroid for nil constraints, or
// the capacity p-independence system otherwise. Useful for property tests
// and for driving the generic matroid.Greedy.
func (inst *Instance) IndependenceSystem(cons *CapacityConstraints) (matroid.IndependenceSystem, error) {
	serviceOf := make([]int, len(inst.elements))
	hostOf := make([]int, len(inst.elements))
	for e, el := range inst.elements {
		serviceOf[e] = el.service
		hostOf[e] = el.host
	}
	if cons == nil {
		capacity := make([]int, inst.NumServices())
		for i := range capacity {
			capacity[i] = 1
		}
		return matroid.NewPartitionMatroid(serviceOf, capacity)
	}
	capacities := make([]float64, inst.NumNodes())
	for h := range capacities {
		capacities[h] = 1e18 // effectively unlimited
	}
	for h, r := range cons.Capacity {
		if h < 0 || h >= inst.NumNodes() {
			return nil, fmt.Errorf("placement: capacity for out-of-range host %d", h)
		}
		capacities[h] = r
	}
	return matroid.NewCapacitySystem(serviceOf, hostOf, cons.Demand, capacities)
}

// Elements returns the ground-set size and a decoder from element index to
// (service, host), for use with IndependenceSystem and matroid.Greedy.
func (inst *Instance) Elements() (int, func(e int) (service int, host graph.NodeID)) {
	return len(inst.elements), func(e int) (int, graph.NodeID) {
		return inst.elements[e].service, inst.elements[e].host
	}
}

// ObjectiveOnElements adapts an Objective to a matroid.SetFunction over
// the instance's ground elements.
func (inst *Instance) ObjectiveOnElements(obj Objective) matroid.SetFunction {
	return matroid.SetFunctionFunc(func(selected []int) float64 {
		eval := obj.newEvaluator(inst.NumNodes())
		for _, e := range selected {
			eval.Add(inst.elements[e].evalPaths)
		}
		return eval.Value()
	})
}
