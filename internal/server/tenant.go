package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/metrics"
	"repro/internal/monitord"
	"repro/internal/registry"
	"repro/internal/tomography"
	"repro/internal/trace"
	"repro/internal/wal"
)

// DefaultScenario is the tenant the legacy single-scenario routes
// (/v1/observations, /v1/diagnosis, ...) operate on. A server built from
// a legacy Config hosts exactly this tenant at boot; scenario-scoped
// routes address it like any other under /v1/scenarios/default/....
const DefaultScenario = "default"

// ErrBadSpec wraps scenario-spec build failures so the HTTP layer can
// distinguish a malformed document (422) from a malformed ID (400).
var ErrBadSpec = fmt.Errorf("server: invalid scenario spec")

// TenantConfig is the per-scenario monitoring state a BuildFunc produces:
// everything New's legacy Config carries for the default tenant, scoped
// to one scenario.
type TenantConfig struct {
	// NumNodes is the scenario network's node universe.
	NumNodes int
	// K is the scenario's failure budget (≤ 0 means the server default).
	K int
	// Paths are the measurement paths of the deployed placement.
	Paths []*bitset.Set
	// Connections is index-aligned metadata for Paths.
	Connections []Connection
	// Place runs this scenario's placement jobs; must be safe for
	// concurrent use.
	Place PlaceFunc
}

// BuildFunc turns a stored scenario document (an opaque JSON blob owned
// by the facade) into the scenario's monitoring state. It must be pure
// with respect to the server: the same document always builds an
// equivalent tenant, which is what makes the Store's load-on-boot sound.
type BuildFunc func(id string, spec []byte) (*TenantConfig, error)

// tenant is one scenario's isolated state bundle: its own monitor, dedup
// window, trace ring, stale-diagnosis cache, and tenant-labeled metrics.
// Tenants never share mutable state, so requests for different scenarios
// only meet at the sharded registry lookup and the bounded worker pool.
type tenant struct {
	id    string
	mon   *monitord.Loop
	conns []Connection
	place PlaceFunc
	dedup *dedupWindow // nil when disabled
	ring  *trace.Ring  // nil when disabled
	// spec is the scenario document the tenant was built from; nil for
	// the legacy default tenant, which is rebuilt from flags at boot and
	// therefore never snapshotted.
	spec []byte

	// diagnose recomputes the rolling diagnosis; a test seam on the
	// default tenant, mon.Diagnosis everywhere else.
	diagnose func() (*tomography.Diagnosis, error)

	lastGoodMu sync.Mutex
	lastGood   *diagnosisJSON
	lastGoodAt time.Time

	drainMu  sync.Mutex
	draining bool

	// handoffCur, when non-nil, is the live migration currently moving
	// this scenario to another node. Requests that catch the tenant
	// mid-handoff wait on it instead of racing the move (cluster mode
	// only; see internal/server/cluster.go).
	handoffMu  sync.Mutex
	handoffCur *handoff

	// splice, when non-nil, records where this scenario's audit hash
	// chain continues from: the source node's log head at the migration
	// fence. Nil for scenarios that have lived on this node since
	// creation.
	spliceMu sync.Mutex
	splice   *auditSplice

	// ingestMu orders a batch's apply+WAL-append pair against other
	// batches for the same tenant (WAL mode only): replay re-applies in
	// log order, so log order must equal apply order.
	ingestMu sync.Mutex

	// Diagnosis audit ledger (WAL mode only): the retained tail of
	// emitted events, each pinned to its WAL record's sequence number and
	// chain hash, plus a total count of everything ever emitted.
	auditMu    sync.Mutex
	audit      []auditEvent
	auditTotal int

	// Tenant-labeled series. The label value may be the shared "other"
	// bucket once the cardinality cap is reached.
	obsIngested *metrics.Counter
	outage      *metrics.Gauge
	requests    *metrics.Counter
}

// beginDrain marks the tenant draining; it returns false if another
// remover got there first.
func (t *tenant) beginDrain() bool {
	t.drainMu.Lock()
	defer t.drainMu.Unlock()
	if t.draining {
		return false
	}
	t.draining = true
	return true
}

// endDrain returns a tenant to service after a failed network
// replacement claimed the drain flag and then rolled back.
func (t *tenant) endDrain() {
	t.drainMu.Lock()
	t.draining = false
	t.drainMu.Unlock()
}

// isDraining reports whether the tenant is being removed.
func (t *tenant) isDraining() bool {
	t.drainMu.Lock()
	defer t.drainMu.Unlock()
	return t.draining
}

// armHandoff installs h as the tenant's live migration; it returns
// false when another migration already owns the tenant.
func (t *tenant) armHandoff(h *handoff) bool {
	t.handoffMu.Lock()
	defer t.handoffMu.Unlock()
	if t.handoffCur != nil {
		return false
	}
	t.handoffCur = h
	return true
}

// clearHandoff detaches a failed migration so later requests stop
// consulting it. A successful migration leaves the handoff armed: the
// tenant is gone from the registry, and stragglers still holding the
// pointer follow the handoff's target.
func (t *tenant) clearHandoff() {
	t.handoffMu.Lock()
	t.handoffCur = nil
	t.handoffMu.Unlock()
}

// currentHandoff returns the live migration fencing this tenant, if any.
func (t *tenant) currentHandoff() *handoff {
	t.handoffMu.Lock()
	defer t.handoffMu.Unlock()
	return t.handoffCur
}

// setSplice records the audit-chain splice point for an adopted (or
// re-adopted) scenario.
func (t *tenant) setSplice(sp *auditSplice) {
	t.spliceMu.Lock()
	t.splice = sp
	t.spliceMu.Unlock()
}

// getSplice returns the splice point, or nil for a scenario that has
// lived here since creation.
func (t *tenant) getSplice() *auditSplice {
	t.spliceMu.Lock()
	defer t.spliceMu.Unlock()
	return t.splice
}

// auditRetain bounds the in-memory audit tail per tenant; the full
// ledger lives in the WAL (and its snapshots' audit_total counters).
const auditRetain = 1024

// addAudit appends one diagnosis event to the audit ledger, evicting the
// oldest retained entry beyond the cap.
func (t *tenant) addAudit(e auditEvent) {
	t.auditMu.Lock()
	t.audit = append(t.audit, e)
	if len(t.audit) > auditRetain {
		copy(t.audit, t.audit[len(t.audit)-auditRetain:])
		t.audit = t.audit[:auditRetain]
	}
	t.auditTotal++
	t.auditMu.Unlock()
}

// auditSnapshot copies the retained audit tail (the newest limit entries
// when limit > 0) and the all-time event count.
func (t *tenant) auditSnapshot(limit int) ([]auditEvent, int) {
	t.auditMu.Lock()
	defer t.auditMu.Unlock()
	events := t.audit
	if limit > 0 && len(events) > limit {
		events = events[len(events)-limit:]
	}
	return append([]auditEvent(nil), events...), t.auditTotal
}

// restoreAudit replaces the ledger with a recovered one (boot replay).
func (t *tenant) restoreAudit(events []auditEvent, total int) {
	t.auditMu.Lock()
	t.audit = append([]auditEvent(nil), events...)
	t.auditTotal = total
	t.auditMu.Unlock()
}

// recordGoodDiagnosis remembers the latest successfully computed
// diagnosis for the stale-serving fallback.
func (t *tenant) recordGoodDiagnosis(d *diagnosisJSON) {
	t.lastGoodMu.Lock()
	t.lastGood, t.lastGoodAt = d, time.Now()
	t.lastGoodMu.Unlock()
}

// lastGoodDiagnosis returns the remembered diagnosis and its age.
func (t *tenant) lastGoodDiagnosis() (*diagnosisJSON, time.Duration, bool) {
	t.lastGoodMu.Lock()
	defer t.lastGoodMu.Unlock()
	if t.lastGood == nil {
		return nil, 0, false
	}
	return t.lastGood, time.Since(t.lastGoodAt), true
}

// newTenant assembles one scenario's state bundle from its config.
func (s *Server) newTenant(id string, tc *TenantConfig, spec []byte) (*tenant, error) {
	if tc.Place == nil {
		return nil, fmt.Errorf("server: scenario %s: no place function", id)
	}
	if len(tc.Paths) != len(tc.Connections) {
		return nil, fmt.Errorf("server: scenario %s: %d paths for %d connections", id, len(tc.Paths), len(tc.Connections))
	}
	k := tc.K
	if k <= 0 {
		k = s.defaultK
	}
	core, err := monitord.New(tc.NumNodes, k, tc.Paths)
	if err != nil {
		return nil, fmt.Errorf("server: scenario %s: %w", id, err)
	}
	label := s.labeler.Value(id)
	t := &tenant{
		id:    id,
		mon:   monitord.NewLoop(core),
		conns: append([]Connection(nil), tc.Connections...),
		place: tc.Place,
		spec:  spec,
		obsIngested: s.registry.Counter("placemond_tenant_observations_ingested_total",
			"Connection state reports accepted, by scenario (capped cardinality; overflow in tenant=\"other\").",
			"tenant", label),
		outage: s.registry.Gauge("placemond_tenant_outage",
			"1 while the scenario has a reporting connection down, else 0 (capped cardinality).",
			"tenant", label),
		requests: s.registry.Counter("placemond_tenant_requests_total",
			"Tenant-scoped API requests, by scenario (capped cardinality).",
			"tenant", label),
	}
	t.diagnose = t.mon.Diagnosis
	if s.dedupSize > 0 {
		t.dedup = newDedupWindow(s.dedupSize)
	}
	if s.traceBuf > 0 {
		t.ring = trace.NewRing(s.traceBuf)
	}
	return t, nil
}

// addTenant registers t, keeping the scenario-count and connection-count
// gauges current.
func (s *Server) addTenant(t *tenant) error {
	if err := s.tenants.Put(t.id, t); err != nil {
		return err
	}
	s.scenarioGauge.Set(float64(s.tenants.Len()))
	s.connsGauge.Add(float64(len(t.conns)))
	return nil
}

// CreateScenario builds the scenario described by spec (via the
// configured BuildFunc), registers it, and persists the document through
// the Store (snapshot-on-write). Errors: registry.ErrExists,
// registry.ErrFull, an ID validation error, ErrBadSpec-wrapped build
// failures, or a persistence failure (in which case the scenario is
// rolled back — a create either fully survives a restart or fails).
func (s *Server) CreateScenario(id string, spec []byte) error {
	return s.createScenario(id, spec, true)
}

func (s *Server) createScenario(id string, spec []byte, persist bool) error {
	if s.build == nil {
		return fmt.Errorf("server: scenario API not configured (no BuildScenario)")
	}
	if err := registry.ValidateID(id); err != nil {
		return err
	}
	if persist && s.cluster != nil {
		// The HTTP layer routes non-owned creates to the owner before it
		// gets here; this guard catches direct API callers so a scenario
		// can never be created on a node the ring does not point at.
		if owner := s.ownerOf(id); owner.ID != s.cluster.self() {
			return fmt.Errorf("%w: %q belongs to node %s", errNotOwner, id, owner.ID)
		}
	}
	tc, err := s.build(id, spec)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	t, err := s.newTenant(id, tc, append([]byte(nil), spec...))
	if err != nil {
		return err
	}
	if err := s.addTenant(t); err != nil {
		t.mon.Close()
		return err
	}
	if persist {
		if s.wlog != nil {
			// Append-before-ack: the create must be durable in the log
			// before the 201 goes out.
			if err := s.walAppendScenario(wal.TypeScenarioCreate,
				walScenarioCreate{ID: id, Spec: t.spec}); err != nil {
				s.removeTenantState(t)
				t.mon.Close()
				return err
			}
		} else if err := s.store.Save(id, t.spec); err != nil {
			s.removeTenantState(t)
			t.mon.Close()
			return fmt.Errorf("server: persist scenario %s: %w", id, err)
		}
	}
	s.logger.Info("scenario created", "scenario", id,
		"connections", len(t.conns), "persisted", persist)
	return nil
}

// removeTenantState unregisters t and rolls the aggregate gauges back.
func (s *Server) removeTenantState(t *tenant) {
	if _, ok := s.tenants.Delete(t.id); !ok {
		return
	}
	s.scenarioGauge.Set(float64(s.tenants.Len()))
	s.connsGauge.Add(-float64(len(t.conns)))
	if s.dedupGauge != nil && t.dedup != nil {
		s.dedupGauge.Add(-float64(t.dedup.size()))
	}
}

// RemoveScenario drains and deletes a scenario: new requests for it are
// rejected immediately, in-flight placement jobs get up to the drain
// timeout (bounded further by ctx) to finish, and the stored document is
// deleted so the scenario does not resurrect at the next boot.
func (s *Server) RemoveScenario(ctx context.Context, id string) error {
	t, ok := s.tenants.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", registry.ErrNotFound, id)
	}
	if !t.beginDrain() {
		// A concurrent remover owns the drain; to this caller the
		// scenario is already gone.
		return fmt.Errorf("%w: %q", registry.ErrNotFound, id)
	}
	dctx, cancel := context.WithTimeout(ctx, s.drainTimeout)
	defer cancel()
	drained := s.pool.waitIdle(dctx, id)
	s.removeTenantState(t)
	var storeErr error
	if t.spec != nil {
		if s.wlog != nil {
			storeErr = s.walAppendScenario(wal.TypeScenarioDelete, walScenarioDelete{ID: id})
		} else {
			storeErr = s.store.Delete(id)
		}
	}
	// Stop the scenario's monitor event loop last: WAL compaction may
	// still export its state while the delete record is being appended,
	// and after Close a straggling observation fails with
	// monitord.ErrClosed instead of landing in a deleted scenario.
	t.mon.Close()
	s.logger.Info("scenario removed", "scenario", id,
		"drained", drained, "store_error", storeErr != nil)
	if storeErr != nil {
		return fmt.Errorf("server: forget scenario %s: %w", id, storeErr)
	}
	return nil
}

// ScenarioIDs returns the registered scenario IDs, sorted.
func (s *Server) ScenarioIDs() []string { return s.tenants.IDs() }

// defaultTenant returns the "default" tenant, or nil on a registry-only
// server (used by tests and the legacy-route resolver).
func (s *Server) defaultTenant() *tenant {
	t, _ := s.tenants.Get(DefaultScenario)
	return t
}

// loadScenarios rebuilds every stored scenario at boot, logging one
// outcome line per scenario. A document that no longer builds (schema
// drift, hand-edited file) is skipped with a warning rather than failing
// the whole boot: one bad tenant must not take the fleet down.
func (s *Server) loadScenarios() error {
	docs, err := s.store.Load()
	if err != nil {
		return fmt.Errorf("server: load scenarios: %w", err)
	}
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, taken := s.tenants.Get(id); taken {
			s.logger.Warn("stored scenario shadowed by boot-time tenant", "scenario", id)
			continue
		}
		if err := s.createScenario(id, docs[id], false); err != nil {
			s.logger.Warn("stored scenario failed to load", "scenario", id, "error", err)
			continue
		}
		s.logger.Info("scenario loaded", "scenario", id)
	}
	return nil
}

// snapshotScenarios writes every registered scenario document through the
// Store, one slog outcome per tenant. It runs once, at graceful shutdown,
// so even a store that missed a write (or a document updated in place)
// is consistent on disk before the process exits. Failures are counted in
// placemond_snapshot_errors_total and returned as one aggregate error, so
// the daemon exits non-zero instead of letting a supervisor believe state
// was saved.
func (s *Server) snapshotScenarios() error {
	failed := 0
	s.tenants.Range(func(id string, t *tenant) bool {
		if t.spec == nil {
			s.logger.Info("scenario snapshot skipped", "scenario", id, "reason", "no stored document")
			return true
		}
		if err := s.store.Save(id, t.spec); err != nil {
			failed++
			s.snapshotErrors.Inc()
			s.logger.Error("scenario snapshot failed", "scenario", id, "error", err)
		} else {
			s.logger.Info("scenario snapshot written", "scenario", id, "bytes", len(t.spec))
		}
		return true
	})
	if failed > 0 {
		return fmt.Errorf("server: %d scenario snapshot(s) failed; stored state is incomplete", failed)
	}
	return nil
}
