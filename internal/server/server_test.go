package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bitset"
)

// testConfig builds a config over a 5-node line 0-1-2-3-4 with two
// monitored connections, 0→2 and 4→2, and an echo placement function.
func testConfig() Config {
	return Config{
		NumNodes: 5,
		K:        1,
		Paths: []*bitset.Set{
			bitset.FromIndices(5, 0, 1, 2),
			bitset.FromIndices(5, 2, 3, 4),
		},
		Connections: []Connection{
			{Service: 0, Client: 0, Host: 2},
			{Service: 0, Client: 4, Host: 2},
		},
		Place: func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
			return &PlacementResult{Hosts: []int{2}, Coverage: 3}, nil
		},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s body: %v", resp.Request.URL, err)
	}
	return m
}

func eventKinds(t *testing.T, body map[string]any) []string {
	t.Helper()
	raw, ok := body["events"].([]any)
	if !ok {
		t.Fatalf("no events array in %v", body)
	}
	kinds := make([]string, len(raw))
	for i, e := range raw {
		kinds[i] = e.(map[string]any)["kind"].(string)
	}
	return kinds
}

// TestLifecycle drives the full ingest → diagnosis-changed → cleared
// sequence over HTTP and checks /v1/diagnosis and /metrics along the way.
func TestLifecycle(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	// t=1: connection 0 (path 0,1,2) goes down → outage starts. The
	// healthy connection 4→2 proves 2,3,4 up, so suspects are {0},{1}.
	resp, body := postJSON(t, ts.URL+"/v1/observations",
		`{"time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %v", resp.StatusCode, body)
	}
	if kinds := eventKinds(t, body); len(kinds) == 0 || kinds[0] != "outage-started" {
		t.Fatalf("kinds = %v, want outage-started first", kinds)
	}

	resp, diag := getJSON(t, ts.URL+"/v1/diagnosis")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnosis status = %d", resp.StatusCode)
	}
	if diag["in_outage"] != true {
		t.Fatalf("in_outage = %v", diag["in_outage"])
	}
	cands := diag["diagnosis"].(map[string]any)["candidates"].([]any)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want 2 ({0} and {1})", cands)
	}
	connRows := diag["connections"].([]any)
	if got := connRows[0].(map[string]any)["state"]; got != "down" {
		t.Fatalf("connection 0 state = %v, want down", got)
	}

	// t=2: the other connection drops too → only the shared node 2 can
	// explain both under k=1 → diagnosis-changed.
	_, body = postJSON(t, ts.URL+"/v1/observations",
		`{"time": 2, "reports": [{"connection": 1, "up": false}]}`)
	if kinds := eventKinds(t, body); len(kinds) != 1 || kinds[0] != "diagnosis-changed" {
		t.Fatalf("kinds = %v, want diagnosis-changed", kinds)
	}

	// t=3: everything recovers → outage-cleared.
	_, body = postJSON(t, ts.URL+"/v1/observations",
		`{"time": 3, "reports": [{"connection": 0, "up": true}, {"connection": 1, "up": true}]}`)
	kinds := eventKinds(t, body)
	if kinds[len(kinds)-1] != "outage-cleared" {
		t.Fatalf("kinds = %v, want outage-cleared last", kinds)
	}
	_, diag = getJSON(t, ts.URL+"/v1/diagnosis")
	if diag["in_outage"] != false {
		t.Fatalf("still in outage after recovery")
	}

	// The registry saw all of it.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"placemond_observations_ingested_total 5",
		`placemond_events_total{kind="outage-started"} 1`,
		// 3 changes: conn1's up report refines the t=1 batch's initial
		// diagnosis, the t=2 drop shrinks it to {2}, and conn0's recovery
		// at t=3 flips suspicion to {3},{4} before the all-clear.
		`placemond_events_total{kind="diagnosis-changed"} 3`,
		`placemond_events_total{kind="outage-cleared"} 1`,
		"placemond_outage 0",
		`placemond_http_requests_total{code="200",route="/v1/observations"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed JSON", "/v1/observations", `{"time": 1,`, http.StatusBadRequest},
		{"unknown field", "/v1/observations", `{"when": 1, "reports": []}`, http.StatusBadRequest},
		{"empty batch", "/v1/observations", `{"time": 1, "reports": []}`, http.StatusBadRequest},
		{"connection out of range", "/v1/observations",
			`{"time": 1, "reports": [{"connection": 99, "up": false}]}`, http.StatusBadRequest},
		{"negative connection", "/v1/observations",
			`{"time": 1, "reports": [{"connection": -1, "up": false}]}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/observations",
			`{"time": 1, "reports": [{"connection": 0, "up": true}]} extra`, http.StatusBadRequest},
		{"placement no services", "/v1/placements", `{"services": [], "alpha": 0.5}`, http.StatusBadRequest},
		{"placement clientless service", "/v1/placements",
			`{"services": [{"name": "s", "clients": []}], "alpha": 0.5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, tc.want, body)
			}
			if body["error"] == "" {
				t.Fatalf("no error message in %v", body)
			}
		})
	}

	// A rejected batch must not half-apply: connection 0 stayed unknown.
	_, diag := getJSON(t, ts.URL+"/v1/diagnosis")
	if diag["in_outage"] != false {
		t.Fatalf("rejected batch mutated the monitor")
	}

	// Wrong method → 405 from the pattern mux.
	resp, err := http.Get(ts.URL + "/v1/observations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/observations = %d, want 405", resp.StatusCode)
	}
}

// TestQueueFull saturates the single worker and the one-slot queue, then
// checks that further jobs are rejected with 429 without blocking. The
// queue is clogged deterministically: once any request occupies the slot
// (even one whose client timed out), the worker — blocked on the running
// job — never frees it, so every later submission must bounce.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.RequestTimeout = 200 * time.Millisecond
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		started <- struct{}{}
		<-release
		return &PlacementResult{Hosts: []int{2}}, nil
	}
	s, ts := newTestServer(t, cfg)
	t.Cleanup(func() { close(release) })
	t.Cleanup(func() { close(started) })

	const jobBody = `{"services": [{"clients": [0]}], "alpha": 0.5}`
	// Occupy the worker.
	go func() {
		resp, err := http.Post(ts.URL+"/v1/placements", "application/json", strings.NewReader(jobBody))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// Poll: requests land in the queue slot (and eventually 504) until
	// it is taken, after which 429 is the only possible answer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postJSON(t, ts.URL+"/v1/placements", jobBody)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After")
			}
			if !strings.Contains(fmt.Sprint(body["error"]), "queue full") {
				t.Errorf("429 body = %v", body)
			}
			break
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("unexpected status %d (body %v)", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429")
		}
	}
	// The rejection is visible on /metrics too.
	if got := s.Registry().Counter("placemond_placement_jobs_total",
		"", "status", "rejected").Value(); got < 1 {
		t.Errorf("rejected counter = %v, want ≥ 1", got)
	}
}

func TestPlacementPanicIsContained(t *testing.T) {
	cfg := testConfig()
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		panic("poisoned instance")
	}
	_, ts := newTestServer(t, cfg)
	resp, body := postJSON(t, ts.URL+"/v1/placements", `{"services": [{"clients": [0]}]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %v)", resp.StatusCode, body)
	}
	// The daemon survived: the next request works.
	resp, _ = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
}

func TestHandlerPanicRecovered(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.withObservability(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
}

func TestRequestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = 50 * time.Millisecond
	block := make(chan struct{})
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		<-block
		return &PlacementResult{}, nil
	}
	_, ts := newTestServer(t, cfg)
	defer close(block)
	resp, body := postJSON(t, ts.URL+"/v1/placements", `{"services": [{"clients": [0]}]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %v)", resp.StatusCode, body)
	}
}

func TestHealthzAndPprof(t *testing.T) {
	cfg := testConfig()
	cfg.EnablePprof = true
	_, ts := newTestServer(t, cfg)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
	if body["connections"] != float64(2) {
		t.Fatalf("connections = %v, want 2", body["connections"])
	}
	presp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof = %d, want 200", presp.StatusCode)
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof = %d, want 404", resp.StatusCode)
	}
}

// TestGracefulShutdown cancels the serve context while a placement job is
// in flight and checks the request still completes before Serve returns.
func TestGracefulShutdown(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		close(inFlight)
		<-release
		return &PlacementResult{Hosts: []int{2}}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	respCh := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(url+"/v1/placements", "application/json",
			strings.NewReader(`{"services": [{"clients": [0]}]}`))
		if err != nil {
			t.Error(err)
			respCh <- nil
			return
		}
		respCh <- resp
	}()

	<-inFlight // the job is running
	cancel()   // begin graceful drain
	// Serve must not return while the request is in flight.
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v before in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	resp := <-respCh
	if resp == nil {
		t.Fatal("in-flight request failed during drain")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", resp.StatusCode)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve = %v, want nil after clean drain", err)
	}
	// The listener is really closed.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatalf("server still accepting after shutdown")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Place = nil
	if _, err := New(cfg); err == nil {
		t.Fatalf("nil Place accepted")
	}
	cfg = testConfig()
	cfg.Connections = cfg.Connections[:1]
	if _, err := New(cfg); err == nil {
		t.Fatalf("paths/connections mismatch accepted")
	}
	cfg = testConfig()
	cfg.Paths = nil
	cfg.Connections = nil
	if _, err := New(cfg); err == nil {
		t.Fatalf("no connections accepted")
	}
}
