package server

// The cluster layer: ownership routing, peer forwarding, and live
// scenario migration. internal/cluster decides which node owns a
// scenario; this file decides what a node does about it — serve
// locally when owner, answer 307 + Placemond-Owner (or proxy
// peer-to-peer) when not, and move a scenario between nodes with a
// WAL-fenced snapshot-transfer-resume handoff that splices the audit
// hash chain verifiably across the two logs.
//
// Request flow for a scenario-scoped route in cluster mode:
//
//	hosted here, no handoff   → serve locally (the single-node path)
//	hosted here, mid-handoff  → wait for the handoff to settle, then
//	                            follow the scenario to its new owner
//	                            (or resume locally if the move failed)
//	not hosted, owner == self → 404: the scenario does not exist
//	not hosted, owner != self → 307 Location + Placemond-Owner, or a
//	                            proxied sub-request when Proxy is on
//
// Ownership = explicit relocation (recorded by a completed migration,
// durable via the WAL) falling back to the consistent-hash ring.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/trace"
	"repro/internal/wal"
)

const (
	// OwnerHeader names the owning node on 307 redirects (alongside the
	// Location the client should follow) and on proxied responses.
	OwnerHeader = "Placemond-Owner"
	// forwardHopsHeader counts peer-to-peer proxy hops so a stale
	// membership view cannot bounce a request around the ring forever.
	forwardHopsHeader = "Placemond-Forward-Hops"
	// maxForwardHops bounds a proxy chain. A request legitimately
	// crosses at most two hops (stale forwarder → ring owner → node the
	// scenario was migrated to); a third means the nodes disagree about
	// membership.
	maxForwardHops = 3
	// maxMigrateDoc bounds the migration transfer body — the WAL's own
	// payload cap, since the fence record carries the same document.
	maxMigrateDoc = 8 << 20
)

// errNotOwner marks a mutation refused because another node owns the
// scenario; the HTTP layer answers 421 with the owner named.
var errNotOwner = errors.New("server: scenario is owned by another node")

// ClusterConfig enables multi-node operation; see package comment in
// internal/cluster for the ownership model.
type ClusterConfig struct {
	// Membership is the parsed static member list plus ownership ring;
	// it must include this node.
	Membership *cluster.Membership
	// Proxy makes non-owners forward scenario requests peer-to-peer and
	// relay the answer, instead of redirecting the client with 307.
	Proxy bool
	// ForceAdopt lets boot adopt stored scenarios whose ring owner is
	// another node (logged loudly) instead of refusing to start.
	ForceAdopt bool
	// HTTPClient performs peer requests — proxying and migration
	// transfers (default: a client that never follows redirects, so a
	// peer's 307 passes through to the real client untouched).
	HTTPClient *http.Client
}

// clusterNode is the server's runtime cluster state.
type clusterNode struct {
	members    *cluster.Membership
	proxy      bool
	forceAdopt bool
	client     *http.Client

	// relocated maps scenario ID → node it migrated to, overriding the
	// ring. Entries are recorded by completed outbound migrations and
	// restored from the WAL (migrate-out records and snapshots), so a
	// restarted source still points followers at the right node.
	mu        sync.Mutex
	relocated map[string]string

	redirects     *metrics.Counter
	proxied       *metrics.Counter
	migrationsOut *metrics.Counter
	migrationsIn  *metrics.Counter
}

func newClusterNode(cc *ClusterConfig, reg *metrics.Registry) (*clusterNode, error) {
	if cc.Membership == nil {
		return nil, fmt.Errorf("server: ClusterConfig.Membership is required")
	}
	hc := cc.HTTPClient
	if hc == nil {
		hc = &http.Client{
			// Pass peers' redirects through untouched: a proxied request
			// must relay the 307 (it belongs to the end client), and the
			// migration POST never redirects.
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	cn := &clusterNode{
		members:    cc.Membership,
		proxy:      cc.Proxy,
		forceAdopt: cc.ForceAdopt,
		client:     hc,
		relocated:  map[string]string{},
		redirects: reg.Counter("placemond_cluster_forwards_total",
			"Scenario requests routed to their owner node, by mode.", "mode", "redirect"),
		proxied: reg.Counter("placemond_cluster_forwards_total",
			"Scenario requests routed to their owner node, by mode.", "mode", "proxy"),
		migrationsOut: reg.Counter("placemond_cluster_migrations_total",
			"Completed live scenario migrations, by direction.", "direction", "out"),
		migrationsIn: reg.Counter("placemond_cluster_migrations_total",
			"Completed live scenario migrations, by direction.", "direction", "in"),
	}
	reg.Gauge("placemond_cluster_members",
		"Static cluster membership size (absent when clustering is off).").
		Set(float64(cc.Membership.Size()))
	return cn, nil
}

func (cn *clusterNode) self() string { return cn.members.Self() }

func (cn *clusterNode) setRelocation(id, target string) {
	cn.mu.Lock()
	cn.relocated[id] = target
	cn.mu.Unlock()
}

func (cn *clusterNode) clearRelocation(id string) {
	cn.mu.Lock()
	delete(cn.relocated, id)
	cn.mu.Unlock()
}

func (cn *clusterNode) relocation(id string) string {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.relocated[id]
}

func (cn *clusterNode) relocations() map[string]string {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	out := make(map[string]string, len(cn.relocated))
	for id, n := range cn.relocated {
		out[id] = n
	}
	return out
}

// ownerOf resolves a scenario's owner: an explicit relocation (a
// completed migration moved it off-ring) wins over the ring.
func (s *Server) ownerOf(id string) cluster.Member {
	cn := s.cluster
	if reloc := cn.relocation(id); reloc != "" {
		if m, ok := cn.members.Member(reloc); ok {
			return m
		}
	}
	return cn.members.Owner(id)
}

// --- forwarding ---

// routeScenario answers a request for a scenario this node does not
// host. It reports false — respond 404 locally — only when this node is
// the owner, i.e. the scenario genuinely does not exist anywhere.
func (s *Server) routeScenario(w http.ResponseWriter, r *http.Request, id string) bool {
	owner := s.ownerOf(id)
	if owner.ID == s.cluster.self() {
		return false
	}
	trace.FromContext(r.Context()).SetTenant(id)
	s.forwardTo(w, r, owner)
	return true
}

// clusterAdminLocal routes a create/delete (which bypass forScenario):
// a scenario hosted here mid-handoff waits out the migration, one not
// hosted here goes to its owner. It returns true when the caller should
// proceed locally.
func (s *Server) clusterAdminLocal(w http.ResponseWriter, r *http.Request, id string) bool {
	if t, hosted := s.tenants.Get(id); hosted {
		if h := t.currentHandoff(); h != nil {
			return s.resolveHandoff(h, w, r, false)
		}
		return true
	}
	return !s.routeScenario(w, r, id)
}

// forwardTo hands the request to its owner node: a 307 the client
// follows, or — in proxy mode — a relayed peer-to-peer sub-request.
func (s *Server) forwardTo(w http.ResponseWriter, r *http.Request, owner cluster.Member) {
	if s.cluster.proxy {
		s.proxyTo(w, r, owner)
		return
	}
	s.redirectTo(w, r, owner)
}

// redirectTo answers 307 Temporary Redirect with the owner's absolute
// URL for the same path, naming the owner in Placemond-Owner so clients
// can cache the hint.
func (s *Server) redirectTo(w http.ResponseWriter, r *http.Request, owner cluster.Member) {
	s.cluster.redirects.Inc()
	trace.FromContext(r.Context()).Annotate("redirect_to", owner.ID)
	w.Header().Set(OwnerHeader, owner.ID)
	w.Header().Set("Location", owner.URL+r.URL.RequestURI())
	w.WriteHeader(http.StatusTemporaryRedirect)
}

// proxyTo relays the request to the owner and streams the answer back,
// timing the round trip as a "forward" stage on the request's trace.
// The trace ID crosses the hop, so one Placemond-Trace-Id spans the
// forwarder's and the owner's /debug/traces rings.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, owner cluster.Member) {
	hops := 0
	if hv := r.Header.Get(forwardHopsHeader); hv != "" {
		hops, _ = strconv.Atoi(hv)
	}
	if hops >= maxForwardHops {
		writeError(w, http.StatusBadGateway,
			"forwarding loop: %s crossed %d nodes without finding its owner (stale membership?)",
			r.URL.Path, hops)
		return
	}
	s.cluster.proxied.Inc()
	sp := trace.FromContext(r.Context())
	st := sp.StartStage("forward")
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		st.EndDetail("peer=%s build error", owner.ID)
		writeError(w, http.StatusBadGateway, "forward to node %s: %v", owner.ID, err)
		return
	}
	req.Header = r.Header.Clone()
	if id := trace.IDFromContext(r.Context()); id != "" {
		req.Header.Set(trace.Header, id)
	}
	req.Header.Set(forwardHopsHeader, strconv.Itoa(hops+1))
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		st.EndDetail("peer=%s error", owner.ID)
		writeError(w, http.StatusBadGateway, "forward to node %s: %v", owner.ID, err)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set(OwnerHeader, owner.ID)
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	st.EndDetail("peer=%s status=%d bytes=%d", owner.ID, resp.StatusCode, n)
}

// --- the migration handoff ---

// handoff is the rendezvous between a live migration and the requests
// it fences out: arm it, move the scenario, then finish it with the new
// owner (or nil when the move failed and the tenant resumed locally).
// Waiters observe the outcome through the closed channel.
type handoff struct {
	done   chan struct{}
	target *cluster.Member // written once before close(done)
}

func newHandoff() *handoff { return &handoff{done: make(chan struct{})} }

// finish publishes the outcome and releases every waiter.
func (h *handoff) finish(target *cluster.Member) {
	h.target = target
	close(h.done)
}

// await blocks until the handoff settles or ctx ends. ok=false means
// the context expired first; otherwise target is the scenario's new
// owner, or nil when the migration failed and the tenant serves on.
func (h *handoff) await(ctx context.Context) (*cluster.Member, bool) {
	select {
	case <-h.done:
		return h.target, true
	case <-ctx.Done():
		return nil, false
	}
}

// resolveHandoff settles a request caught mid-migration: wait, then
// follow the scenario to its new owner. It returns true when the caller
// should continue serving locally (the migration failed and rolled
// back); in every other case the response has been written.
// redirectOnly forces a 307 even in proxy mode — the ingest path has
// already consumed the request body, so a proxied re-send is impossible
// but a redirect (the client re-sends the body itself) is fine.
func (s *Server) resolveHandoff(h *handoff, w http.ResponseWriter, r *http.Request, redirectOnly bool) bool {
	target, ok := h.await(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "scenario is migrating; retry")
		return false
	}
	if target == nil {
		return true
	}
	if redirectOnly {
		s.redirectTo(w, r, *target)
	} else {
		s.forwardTo(w, r, *target)
	}
	return false
}

// --- migration (source side) ---

// walMigrate is the migration document: the payload of both
// TypeScenarioMigrateOut (the fence, written on the source) and
// TypeScenarioMigrateIn (the adoption, written on the target), and the
// body of POST /v1/cluster/adopt in between. Carrying the full
// replayable state in the fence record means a handoff interrupted at
// any point loses nothing: the state is always durable in at least one
// node's log.
type walMigrate struct {
	ID     string `json:"id"`
	Source string `json:"source"`
	Target string `json:"target"`
	// State is the scenario's full replayable state at the fence: spec,
	// monitor counters, dedup window, audit ledger.
	State *walTenantState `json:"state"`
	// SourceHeadSeq/Hash pin the source log's chain head — the fence
	// record itself — splicing the scenario's audit chain verifiably
	// across the two logs. Zero when the source runs without a WAL.
	SourceHeadSeq  uint64 `json:"source_head_seq,omitempty"`
	SourceHeadHash string `json:"source_head_hash,omitempty"`
}

// migrateRequest is the body of POST /v1/scenarios/{id}/migrate.
type migrateRequest struct {
	Target string `json:"target"`
}

// migrateResponse reports a completed migration, including the source
// chain head the target's audit splice must match.
type migrateResponse struct {
	Scenario        string  `json:"scenario"`
	From            string  `json:"from"`
	To              string  `json:"to"`
	HeadSeq         uint64  `json:"head_seq,omitempty"`
	HeadHash        string  `json:"head_hash,omitempty"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// serveScenarioMigrate handles POST /v1/scenarios/{id}/migrate on the
// owner: snapshot → WAL-fenced transfer → resume on the target.
func (s *Server) serveScenarioMigrate(t *tenant, w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusNotImplemented, "not a cluster member (start with -peers/-node-id)")
		return
	}
	if s.rejectReadOnly(w) {
		return
	}
	var req migrateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Target == s.cluster.self() {
		writeError(w, http.StatusBadRequest, "scenario %q is already on node %s", t.id, req.Target)
		return
	}
	target, ok := s.cluster.members.Member(req.Target)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown target node %q", req.Target)
		return
	}
	res, err := s.migrateScenario(r.Context(), t, target)
	switch {
	case errors.Is(err, errScenarioBusy):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, errWALUnavailable):
		respondReadOnly(w)
	case err != nil:
		writeError(w, http.StatusBadGateway, "%v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// migrateScenario moves a hosted scenario to target. Sequencing:
//
//  1. Arm the handoff and claim the drain flag: concurrent migrations,
//     deletions, and network replacements lose with a conflict, and
//     requests arriving from here on wait on the handoff instead of
//     racing the move.
//  2. Fence under ingestMu: snapshot the full replayable state, then
//     append the migrate-out record (which carries that state). After
//     the fence, replay on this node will never resurrect the scenario
//     as locally owned, and no observation can sneak into the log
//     behind the snapshot — ingest re-checks the handoff under ingestMu
//     and 307s instead of applying.
//  3. Transfer: POST the document to the target, which restores the
//     state, appends its migrate-in record (append-before-ack), and
//     answers only once the adoption is durable.
//  4. Resume: drop the local tenant, record the relocation so stale
//     followers get one extra 307, and release the handoff waiters
//     toward the target. On a failed transfer, append a compensating
//     migrate-in locally (re-adopting our own fence document) and
//     resume serving — the scenario never has zero owners.
func (s *Server) migrateScenario(ctx context.Context, t *tenant, target cluster.Member) (*migrateResponse, error) {
	start := time.Now()
	if t.spec == nil {
		return nil, fmt.Errorf("%w: scenario %q was built from boot flags, not a stored document", ErrBadSpec, t.id)
	}
	h := newHandoff()
	if !t.armHandoff(h) {
		return nil, fmt.Errorf("%w: %q (migration already in progress)", errScenarioBusy, t.id)
	}
	if !t.beginDrain() {
		t.clearHandoff()
		h.finish(nil)
		return nil, fmt.Errorf("%w: %q", errScenarioBusy, t.id)
	}
	resumeLocal := func() {
		t.clearHandoff()
		t.endDrain()
		h.finish(nil)
	}

	sp := trace.FromContext(ctx)
	st := sp.StartStage("fence")
	t.ingestMu.Lock()
	doc, err := s.buildMigrateDoc(t, target.ID)
	if err == nil && s.wlog != nil {
		var res wal.AppendResult
		if res, err = s.walAppendScenarioResult(wal.TypeScenarioMigrateOut, doc); err == nil {
			doc.SourceHeadSeq = res.Seq
			doc.SourceHeadHash = hex.EncodeToString(res.Hash[:])
		}
	}
	t.ingestMu.Unlock()
	if err != nil {
		st.EndDetail("failed")
		resumeLocal()
		return nil, err
	}
	st.EndDetail("head_seq=%d", doc.SourceHeadSeq)

	st = sp.StartStage("transfer")
	err = s.postAdopt(ctx, target, doc)
	st.EndDetail("target=%s ok=%t", target.ID, err == nil)
	if err != nil {
		// Compensate the fence: re-adopt our own document so boot replay
		// nets out to "still owned here", then resume serving.
		if s.wlog != nil {
			if rerr := s.walAppendScenario(wal.TypeScenarioMigrateIn, doc); rerr != nil {
				// The log just went read-only; the fence stands in the log
				// but the live tenant keeps serving reads, and the next
				// boot recovers the scenario from the fence document.
				s.logger.Error("migration rollback append failed; scenario recoverable from fence record",
					"scenario", t.id, "error", rerr)
			} else {
				t.setSplice(&auditSplice{
					SourceNode:     s.cluster.self(),
					SourceHeadSeq:  doc.SourceHeadSeq,
					SourceHeadHash: doc.SourceHeadHash,
				})
			}
		}
		resumeLocal()
		return nil, fmt.Errorf("server: transfer scenario %q to node %s: %w", t.id, target.ID, err)
	}

	s.removeTenantState(t)
	if s.wlog == nil {
		if derr := s.store.Delete(t.id); derr != nil {
			s.logger.Error("migrated scenario still in local store", "scenario", t.id, "error", derr)
		}
	}
	s.cluster.setRelocation(t.id, target.ID)
	t.mon.Close()
	moved := target
	h.finish(&moved)
	s.cluster.migrationsOut.Inc()
	s.logger.Info("scenario migrated out", "scenario", t.id, "target", target.ID,
		"head_seq", doc.SourceHeadSeq, "duration", time.Since(start))
	return &migrateResponse{
		Scenario: t.id, From: s.cluster.self(), To: target.ID,
		HeadSeq: doc.SourceHeadSeq, HeadHash: doc.SourceHeadHash,
		DurationSeconds: time.Since(start).Seconds(),
	}, nil
}

// buildMigrateDoc snapshots t's full replayable state. Caller holds
// t.ingestMu, so the snapshot is a consistent fence point.
func (s *Server) buildMigrateDoc(t *tenant, target string) (*walMigrate, error) {
	mst, ok := t.mon.ExportState()
	if !ok {
		return nil, fmt.Errorf("%w: %q", errScenarioBusy, t.id)
	}
	ts := &walTenantState{Spec: t.spec, Monitor: mst}
	if t.dedup != nil {
		ts.Dedup = t.dedup.export()
	}
	ts.Audit, ts.AuditTotal = t.auditSnapshot(0)
	return &walMigrate{ID: t.id, Source: s.cluster.self(), Target: target, State: ts}, nil
}

// postAdopt ships the migration document to the target's adopt
// endpoint and interprets the answer.
func (s *Server) postAdopt(ctx context.Context, target cluster.Member, doc *walMigrate) error {
	body, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("encode migration document: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target.URL+"/v1/cluster/adopt", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if id := trace.IDFromContext(ctx); id != "" {
		req.Header.Set(trace.Header, id)
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var envelope struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return fmt.Errorf("target answered %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// --- migration (target side) ---

// handleClusterAdopt handles POST /v1/cluster/adopt: restore the
// migrated scenario's state and make the adoption durable before
// acknowledging — the source drops its copy only after the 200.
func (s *Server) handleClusterAdopt(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMigrateDoc))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "migration document exceeds %d bytes", maxMigrateDoc)
		return
	}
	var doc walMigrate
	if err := json.Unmarshal(body, &doc); err != nil {
		writeError(w, http.StatusBadRequest, "invalid migration document: %v", err)
		return
	}
	if err := registry.ValidateID(doc.ID); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if doc.Target != s.cluster.self() {
		writeError(w, http.StatusMisdirectedRequest,
			"migration addressed to node %q, this is %q", doc.Target, s.cluster.self())
		return
	}
	switch err := s.adoptScenario(&doc, true); {
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, "scenario %q already hosted here", doc.ID)
	case errors.Is(err, registry.ErrFull):
		writeError(w, http.StatusInsufficientStorage, "%v", err)
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, errWALUnavailable):
		respondReadOnly(w)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		s.cluster.migrationsIn.Inc()
		s.logger.Info("scenario migrated in", "scenario", doc.ID, "source", doc.Source,
			"source_head_seq", doc.SourceHeadSeq)
		writeJSON(w, http.StatusOK, map[string]any{
			"adopted": true, "scenario": doc.ID, "source": doc.Source,
		})
	}
}

// adoptScenario rebuilds a migrated scenario from its document: build
// the tenant from the spec, restore monitor/dedup/audit state, record
// the audit splice, register, and (when persist) append the migrate-in
// record or store the document before reporting success. Boot replay
// calls it with persist=false — the record being replayed is the
// durability.
func (s *Server) adoptScenario(doc *walMigrate, persist bool) error {
	if s.build == nil {
		return fmt.Errorf("server: scenario API not configured (no BuildScenario)")
	}
	if doc.State == nil || len(doc.State.Spec) == 0 {
		return fmt.Errorf("%w: migration document for %q carries no scenario spec", ErrBadSpec, doc.ID)
	}
	tc, err := s.build(doc.ID, doc.State.Spec)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	t, err := s.newTenant(doc.ID, tc, append([]byte(nil), doc.State.Spec...))
	if err != nil {
		return err
	}
	if err := t.mon.RestoreState(doc.State.Monitor); err != nil {
		t.mon.Close()
		return fmt.Errorf("%w: restore monitor state: %v", ErrBadSpec, err)
	}
	if t.dedup != nil && len(doc.State.Dedup) > 0 {
		if grew := t.dedup.restore(doc.State.Dedup); grew > 0 && s.dedupGauge != nil {
			s.dedupGauge.Add(float64(grew))
		}
	}
	t.restoreAudit(doc.State.Audit, doc.State.AuditTotal)
	t.setSplice(&auditSplice{
		SourceNode:     doc.Source,
		SourceHeadSeq:  doc.SourceHeadSeq,
		SourceHeadHash: doc.SourceHeadHash,
	})
	if err := s.addTenant(t); err != nil {
		t.mon.Close()
		return err
	}
	if persist {
		var perr error
		if s.wlog != nil {
			perr = s.walAppendScenario(wal.TypeScenarioMigrateIn, doc)
		} else if err := s.store.Save(doc.ID, t.spec); err != nil {
			perr = fmt.Errorf("server: persist scenario %s: %w", doc.ID, err)
		}
		if perr != nil {
			s.removeTenantState(t)
			t.mon.Close()
			return perr
		}
	}
	if s.cluster != nil {
		s.cluster.clearRelocation(doc.ID)
	}
	s.setOutageGauges(t)
	if persist && s.prewarm != nil {
		// Prime the warm-start placement cache in the background so the
		// first post-migration network revision re-places warm (the cache
		// is per-process and did not travel with the scenario).
		go s.prewarm(doc.ID, append([]byte(nil), t.spec...))
	}
	return nil
}

// --- boot-time ownership validation ---

// validateClusterOwnership refuses to boot while hosting a stored
// scenario whose owner is another node and which was not explicitly
// adopted (via migration or -force-adopt): silently double-owning a
// scenario would fork its diagnosis state across nodes. Flag-built
// default tenants are exempt — they are gated at build time instead.
func (s *Server) validateClusterOwnership() error {
	if s.cluster == nil {
		return nil
	}
	var bad []string
	s.tenants.Range(func(id string, t *tenant) bool {
		if t.spec == nil || t.getSplice() != nil {
			return true
		}
		owner := s.ownerOf(id)
		if owner.ID == s.cluster.self() {
			return true
		}
		if s.cluster.forceAdopt {
			s.logger.Warn("force-adopting scenario owned by another node",
				"scenario", id, "owner", owner.ID)
			return true
		}
		bad = append(bad, fmt.Sprintf("%s (owner %s)", id, owner.ID))
		return true
	})
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("server: refusing to double-own scenarios that belong to other nodes: %s (migrate them, fix -peers, or start with -force-adopt)",
		strings.Join(bad, ", "))
}

// --- cluster introspection ---

// handleClusterInfo serves GET /v1/cluster: this node's membership
// view, forwarding mode, and relocation table.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	type memberJSON struct {
		ID   string `json:"id"`
		URL  string `json:"url"`
		Self bool   `json:"self,omitempty"`
	}
	cn := s.cluster
	out := struct {
		Self        string            `json:"self"`
		Proxy       bool              `json:"proxy"`
		Members     []memberJSON      `json:"members"`
		Relocations map[string]string `json:"relocations,omitempty"`
	}{Self: cn.self(), Proxy: cn.proxy, Relocations: cn.relocations()}
	for _, m := range cn.members.Members() {
		out.Members = append(out.Members, memberJSON{ID: m.ID, URL: m.URL, Self: m.ID == cn.self()})
	}
	writeJSON(w, http.StatusOK, out)
}

// replayMigrateOut re-applies a migration fence at boot: the scenario
// is no longer owned here; followers are pointed at the target.
func (s *Server) replayMigrateOut(seq uint64, p walMigrate) {
	if t, ok := s.tenants.Get(p.ID); ok {
		s.removeTenantState(t)
		t.mon.Close()
	}
	if s.cluster != nil {
		s.cluster.setRelocation(p.ID, p.Target)
	} else {
		// Booted without -peers after migrating scenarios away: the data
		// lives elsewhere, and without a membership there is nobody to
		// redirect to. The record still removed local ownership.
		s.logger.Warn("WAL replay: migrate-out without cluster membership",
			"seq", seq, "scenario", p.ID, "target", p.Target)
	}
}

// replayMigrateIn re-applies an adoption (or a failed-transfer
// re-adoption on the source) at boot.
func (s *Server) replayMigrateIn(seq uint64, p walMigrate) {
	if t, ok := s.tenants.Get(p.ID); ok {
		// A re-adoption for a tenant that never left (the fence and its
		// compensation both sit in the tail): just record the splice.
		t.setSplice(&auditSplice{
			SourceNode: p.Source, SourceHeadSeq: p.SourceHeadSeq, SourceHeadHash: p.SourceHeadHash,
		})
		if s.cluster != nil {
			s.cluster.clearRelocation(p.ID)
		}
		return
	}
	if err := s.adoptScenario(&p, false); err != nil {
		s.logger.Warn("WAL replay: migrate-in failed", "seq", seq, "scenario", p.ID, "error", err)
	}
}
