package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// postCT posts body with an explicit content type and returns the
// response plus its raw body.
func postCT(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

// decodeCase runs one body through the streaming decode path (scanner +
// fallback) and through the pure-stdlib reference, returning the scratch
// fields, the HTTP outcome, and the error response body for each.
func decodeCase(t *testing.T, body string) (handSC, refSC *obsScratch, handOK, refOK bool, handResp, refResp string) {
	t.Helper()

	req := httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	recA := httptest.NewRecorder()
	handSC = &obsScratch{}
	handOK = decodeObservations(handSC, recA, req)
	handResp = recA.Body.String()

	recB := httptest.NewRecorder()
	var ref observationsRequest
	refOK = decodeObsFallback(recB, []byte(body), &ref)
	refResp = recB.Body.String()
	refSC = &obsScratch{batchID: ref.BatchID, time: ref.Time}
	for _, rep := range ref.Reports {
		refSC.conns = append(refSC.conns, rep.Connection)
		refSC.ups = append(refSC.ups, rep.Up)
	}
	return handSC, refSC, handOK, refOK, handResp, refResp
}

// The hand-rolled scanner plus its stdlib fallback must be observably
// identical to a pure-stdlib strict decode: same accept/reject verdict,
// same decoded fields, and byte-identical error responses. This is the
// correctness contract that lets the zero-alloc path replace the old
// decoder without any golden-body drift.
func TestHandParserMatchesStdlib(t *testing.T) {
	cases := []string{
		// Plain valid documents.
		`{"time": 1, "reports": [{"connection": 0, "up": true}]}`,
		`{"batch_id":"b-1","time":2.5,"reports":[{"connection":1,"up":false},{"connection":0,"up":true}]}`,
		`{}`,
		`{"reports":[]}`,
		`{"reports":[{}]}`,
		"\n\t {\"time\": 3 ,\n\"reports\":[ { \"up\" : true , \"connection\" : 1 } ] } \r\n",
		// Duplicate keys: last write wins, reports replaces wholesale.
		`{"time":1,"time":2,"reports":[{"connection":0,"up":true}],"reports":[{"connection":1,"up":false}]}`,
		`{"reports":[{"connection":0,"connection":1,"up":true,"up":false}]}`,
		// Numbers exercising the RFC 8259 grammar edge.
		`{"time": -0.5e2, "reports": []}`,
		`{"time": 0, "reports": []}`,
		`{"time": 01, "reports": []}`,     // invalid: leading zero
		`{"time": +5, "reports": []}`,     // invalid: leading plus
		`{"time": 1., "reports": []}`,     // invalid: bare point
		`{"time": .5, "reports": []}`,     // invalid: no integer part
		`{"time": 1e, "reports": []}`,     // invalid: empty exponent
		`{"time": 1e999, "reports": []}`,  // overflow
		`{"reports":[{"connection": 1.5, "up": true}]}`, // float into int field
		`{"reports":[{"connection": 1e2, "up": true}]}`, // exponent into int field
		// Escapes and non-ASCII (handled by the fallback path).
		`{"batch_id": "aAb", "time": 1, "reports": []}`,
		`{"batch_id": "café", "reports": []}`,
		"{\"batch_id\": \"caf\xc3\xa9\", \"reports\": []}",
		"{\"batch_id\": \"bad\xff\", \"reports\": []}",
		// Malformed documents.
		``,
		`{`,
		`[]`,
		`null`,
		`{"time": 1 "reports": []}`,
		`{"time": 1,}`,
		`{"unknown": 1}`,
		`{"reports": [{"unknown": 1}]}`,
		`{"reports": {"connection": 0}}`,
		`{"time": "1"}`,
		`{"reports":[{"connection": 0, "up": "yes"}]}`,
		`{"time": 1}{"time": 2}`,  // trailing data
		`{"time": 1} garbage`,     // trailing garbage
		`{"time": 1}` + "\n\n",    // trailing whitespace only: valid
	}
	for _, body := range cases {
		handSC, refSC, handOK, refOK, handResp, refResp := decodeCase(t, body)
		if handOK != refOK {
			t.Errorf("body %q: verdict %v, stdlib %v", body, handOK, refOK)
			continue
		}
		if !handOK {
			if handResp != refResp {
				t.Errorf("body %q: error response %q, stdlib %q", body, handResp, refResp)
			}
			continue
		}
		if handSC.batchID != refSC.batchID || handSC.time != refSC.time ||
			!sameInts(handSC.conns, refSC.conns) || !sameBools(handSC.ups, refSC.ups) {
			t.Errorf("body %q: decoded {%q %v %v %v}, stdlib {%q %v %v %v}", body,
				handSC.batchID, handSC.time, handSC.conns, handSC.ups,
				refSC.batchID, refSC.time, refSC.conns, refSC.ups)
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ndjsonBatch renders the streaming form of a batch.
func ndjsonBatch(batchID string, tm float64, reports ...string) string {
	var sb strings.Builder
	if batchID != "" {
		fmt.Fprintf(&sb, "{\"batch_id\": %q, \"time\": %g}\n", batchID, tm)
	} else {
		fmt.Fprintf(&sb, "{\"time\": %g}\n", tm)
	}
	for _, r := range reports {
		sb.WriteString(r)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// An NDJSON batch must behave exactly like its JSON equivalent: same
// response bytes, same events, same rolling diagnosis — and every
// observation response advertises the streaming content type.
func TestNDJSONIngestMatchesJSON(t *testing.T) {
	_, tsJSON := newTestServer(t, testConfig())
	_, tsND := newTestServer(t, testConfig())

	steps := []struct {
		tm  float64
		ups []bool
	}{
		{1, []bool{false, true}},
		{2, []bool{false, false}},
		{3, []bool{true, true}},
	}
	for i, step := range steps {
		var reports, lines []string
		for conn, up := range step.ups {
			reports = append(reports, fmt.Sprintf(`{"connection": %d, "up": %t}`, conn, up))
			lines = append(lines, fmt.Sprintf(`{"connection": %d, "up": %t}`, conn, up))
		}
		jsonBody := fmt.Sprintf(`{"time": %g, "reports": [%s]}`, step.tm, strings.Join(reports, ","))
		respJ, rawJ := postCT(t, tsJSON.URL+"/v1/observations", "application/json", jsonBody)
		respN, rawN := postCT(t, tsND.URL+"/v1/observations", ndjsonContentType,
			ndjsonBatch("", step.tm, lines...))
		if respJ.StatusCode != http.StatusOK || respN.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status json=%d ndjson=%d (%s | %s)",
				i, respJ.StatusCode, respN.StatusCode, rawJ, rawN)
		}
		if rawJ != rawN {
			t.Fatalf("step %d: response diverged:\njson:   %s\nndjson: %s", i, rawJ, rawN)
		}
		if respJ.Header.Get(ndjsonHeader) != "1" || respN.Header.Get(ndjsonHeader) != "1" {
			t.Fatalf("step %d: missing %s advertisement", i, ndjsonHeader)
		}
	}
	_, diagJ := getJSON(t, tsJSON.URL+"/v1/diagnosis")
	_, diagN := getJSON(t, tsND.URL+"/v1/diagnosis")
	if !reflect.DeepEqual(diagJ, diagN) {
		t.Fatalf("diagnosis diverged: %v vs %v", diagJ, diagN)
	}
}

// Malformed NDJSON is rejected with a line-addressed 400; blank lines are
// tolerated.
func TestNDJSONMalformed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		body string
		want string
	}{
		{"", "empty NDJSON body"},
		{"not json\n", "line 1: malformed NDJSON header object"},
		{"{\"time\": 1} extra\n", "line 1: trailing data after NDJSON header object"},
		{"{\"time\": 1, \"reports\": []}\n", "line 1: malformed NDJSON header object"},
		{"{\"time\": 1}\nnonsense\n", "line 2: malformed NDJSON report object"},
		{"{\"time\": 1}\n{\"connection\": 0, \"up\": true} x\n", "line 2: trailing data after NDJSON report object"},
		{"{\"time\": 1}\n\n{\"connection\": 0, \"up\": true}\n\n{\"bogus\": 1}\n", "line 5: malformed NDJSON report object"},
	}
	for _, tc := range cases {
		resp, raw := postCT(t, ts.URL+"/v1/observations", ndjsonContentType, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", tc.body, resp.StatusCode)
			continue
		}
		if !strings.Contains(raw, tc.want) {
			t.Errorf("body %q: error %q does not mention %q", tc.body, raw, tc.want)
		}
		// Blank-line tolerance: the valid-with-blank-lines variant works.
	}
	resp, raw := postCT(t, ts.URL+"/v1/observations", ndjsonContentType,
		"{\"time\": 1}\n\n{\"connection\": 0, \"up\": true}\n\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blank-line batch rejected: %d %s", resp.StatusCode, raw)
	}
}

// The dedup window must replay byte-identical answers regardless of which
// encoding delivered the original batch or the retry.
func TestNDJSONDedupReplay(t *testing.T) {
	cfg := testConfig()
	cfg.DedupWindow = 16
	_, ts := newTestServer(t, cfg)

	nd := ndjsonBatch("batch-x", 1, `{"connection": 0, "up": false}`, `{"connection": 1, "up": true}`)
	resp1, raw1 := postCT(t, ts.URL+"/v1/observations", ndjsonContentType, nd)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first delivery: %d %s", resp1.StatusCode, raw1)
	}
	if resp1.Header.Get("Placemond-Replayed") == "true" {
		t.Fatal("first delivery marked replayed")
	}

	// Retry in both encodings: the cached (JSON) answer replays byte for byte.
	jsonRetry := `{"batch_id": "batch-x", "time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`
	for _, retry := range []struct{ ct, body string }{
		{ndjsonContentType, nd},
		{"application/json", jsonRetry},
	} {
		resp, raw := postCT(t, ts.URL+"/v1/observations", retry.ct, retry.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retry (%s): %d %s", retry.ct, resp.StatusCode, raw)
		}
		if resp.Header.Get("Placemond-Replayed") != "true" {
			t.Fatalf("retry (%s) not marked replayed", retry.ct)
		}
		if raw != raw1 {
			t.Fatalf("retry (%s) body %q != original %q", retry.ct, raw, raw1)
		}
	}
}

// An observation racing a scenario delete — tenant resolved, then the
// monitor loop closed — must answer 409, not corrupt a deleted scenario.
func TestObservationAfterScenarioRemoved(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	tn, ok := s.tenants.Get(DefaultScenario)
	if !ok {
		t.Fatal("no default tenant")
	}
	// Simulate the delete landing between tenant resolution and apply by
	// closing the monitor loop directly.
	tn.mon.Close()
	resp, raw := postCT(t, ts.URL+"/v1/observations", "application/json",
		`{"time": 1, "reports": [{"connection": 0, "up": false}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d (%s), want 409", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "was removed") {
		t.Fatalf("error %q does not mention removal", raw)
	}
}

// A batch that flips every path at once — the incremental updater's worst
// case — must emit the outage lifecycle and keep the incremental state
// bit-identical to a from-scratch rebuild.
func TestAllPathsFlipBatch(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	tn, _ := s.tenants.Get(DefaultScenario)

	resp, raw := postCT(t, ts.URL+"/v1/observations", "application/json",
		`{"time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": false}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-down: %d %s", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "outage-started") {
		t.Fatalf("all-down response %q missing outage-started", raw)
	}
	if err := tn.mon.VerifyIncremental(); err != nil {
		t.Fatalf("after all-down flip: %v", err)
	}

	resp, raw = postCT(t, ts.URL+"/v1/observations", "application/json",
		`{"time": 2, "reports": [{"connection": 0, "up": true}, {"connection": 1, "up": true}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-up: %d %s", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, "outage-cleared") {
		t.Fatalf("all-up response %q missing outage-cleared", raw)
	}
	if err := tn.mon.VerifyIncremental(); err != nil {
		t.Fatalf("after all-up flip: %v", err)
	}
}

// Dedup-replayed batches must leave no trace on the incremental state: a
// replay answers from the cache without re-applying, so the rolling
// diagnosis still matches a from-scratch recompute afterwards.
func TestIncrementalConsistentAfterDedupReplay(t *testing.T) {
	cfg := testConfig()
	cfg.DedupWindow = 16
	s, ts := newTestServer(t, cfg)
	tn, _ := s.tenants.Get(DefaultScenario)

	batches := []string{
		`{"batch_id": "r-1", "time": 1, "reports": [{"connection": 0, "up": false}]}`,
		`{"batch_id": "r-1", "time": 1, "reports": [{"connection": 0, "up": false}]}`, // replay
		`{"batch_id": "r-2", "time": 2, "reports": [{"connection": 1, "up": false}]}`,
		`{"batch_id": "r-2", "time": 2, "reports": [{"connection": 1, "up": false}]}`, // replay
		`{"batch_id": "r-3", "time": 3, "reports": [{"connection": 0, "up": true}, {"connection": 1, "up": true}]}`,
		`{"batch_id": "r-1", "time": 1, "reports": [{"connection": 0, "up": false}]}`, // late replay: no re-apply
	}
	for i, b := range batches {
		resp, raw := postCT(t, ts.URL+"/v1/observations", "application/json", b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, raw)
		}
		if err := tn.mon.VerifyIncremental(); err != nil {
			t.Fatalf("after batch %d: %v", i, err)
		}
	}
	// The late replay of r-1 must not have re-applied its down report.
	if tn.mon.InOutage() {
		t.Fatal("replayed batch mutated monitor state")
	}
}
