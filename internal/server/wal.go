package server

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/monitord"
	"repro/internal/wal"
)

// WALConfig enables crash safety: every state-mutating operation —
// scenario create/delete, accepted observation batch (which carries the
// dedup-window entry), emitted diagnosis event — is appended to a
// write-ahead log before its HTTP response is acknowledged, and boot
// replays snapshot + tail to rebuild every tenant. When set, the WAL
// replaces Config.Store as the persistence layer.
type WALConfig struct {
	// Dir is the log directory (segments + snapshots).
	Dir string
	// Sync is the append durability policy (default wal.SyncAlways).
	Sync wal.SyncMode
	// SegmentBytes overrides the segment rotation threshold
	// (0 = the log's 4 MiB default).
	SegmentBytes int64
	// GroupWindow overrides the group-commit window (wal.SyncGroup only).
	GroupWindow time.Duration
	// CompactEvery is how many appended records trigger an automatic
	// background compaction folding live state into a snapshot
	// (default 4096; < 0 disables automatic compaction).
	CompactEvery int
	// FS overrides the log's filesystem — the crash-injection test seam.
	FS wal.FS
}

// errWALUnavailable marks mutations refused because a WAL write failed:
// the HTTP layer answers 503 with Placemond-Read-Only instead of a 4xx.
var errWALUnavailable = errors.New("server: write-ahead log unavailable")

// --- record payloads (JSON, opaque to internal/wal) ---

// walScenarioCreate is the TypeScenarioCreate payload.
type walScenarioCreate struct {
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec"`
}

// walScenarioDelete is the TypeScenarioDelete payload.
type walScenarioDelete struct {
	ID string `json:"id"`
}

// walScenarioUpdate is the TypeScenarioUpdate payload: the scenario's
// fully revised document after an in-place network replacement. Replay
// rebuilds the tenant from the document and adopts the old tenant's
// dedup window and audit ledger, exactly like the live path.
type walScenarioUpdate struct {
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec"`
}

// walObservations is the TypeObservations payload: the accepted batch's
// inputs, not its outputs. Replaying the inputs through the monitor
// regenerates the events, the diagnosis, and the marshaled response
// bytes deterministically, which is what keeps post-crash dedup replays
// byte-exact without storing response bodies in the log.
type walObservations struct {
	Scenario string  `json:"scenario"`
	BatchID  string  `json:"batch_id,omitempty"`
	Time     float64 `json:"time"`
	Conns    []int   `json:"conns"`
	Ups      []bool  `json:"ups"`
}

// walDiagnosis is the TypeDiagnosis payload: one emitted monitoring
// event, the tamper-evident audit record of a localization decision.
type walDiagnosis struct {
	Scenario  string         `json:"scenario"`
	Time      float64        `json:"time"`
	Kind      string         `json:"kind"`
	Diagnosis *diagnosisJSON `json:"diagnosis,omitempty"`
}

// --- folded state (the compaction snapshot document) ---

// walState is the snapshot document compaction folds the live records
// into. json.Marshal sorts map keys, so the same logical state always
// produces the same bytes — the basis of the crash matrix's
// byte-identical assertion.
type walState struct {
	Scenarios map[string]*walTenantState `json:"scenarios"`
	// Relocations maps scenario ID → node it migrated to (cluster mode),
	// so a restarted source keeps pointing followers at the new owner
	// even after the migrate-out record is folded away.
	Relocations map[string]string `json:"relocations,omitempty"`
}

// walTenantState is one tenant's replayable state.
type walTenantState struct {
	// Spec is the scenario document (absent for the boot-time default
	// tenant, which is rebuilt from flags).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Monitor is the monitord core state.
	Monitor monitord.State `json:"monitor"`
	// Dedup is the idempotent-ingest window, oldest entry first.
	Dedup []dedupRecord `json:"dedup,omitempty"`
	// Audit is the retained tail of the diagnosis audit ledger;
	// AuditTotal counts every event ever appended.
	Audit      []auditEvent `json:"audit,omitempty"`
	AuditTotal int          `json:"audit_total,omitempty"`
	// Splice, for a scenario adopted from another node, records the
	// source log's chain head at the migration fence — where this
	// scenario's audit chain verifiably continues from.
	Splice *auditSplice `json:"splice,omitempty"`
}

// buildWALState captures every tenant's replayable state. Callers must
// hold s.walMu exclusively (no append in flight), so the captured state
// matches the log position exactly.
func (s *Server) buildWALState() *walState {
	st := &walState{Scenarios: map[string]*walTenantState{}}
	s.tenants.Range(func(id string, t *tenant) bool {
		mst, ok := t.mon.ExportState()
		if !ok {
			// The loop is closed: the tenant is mid-removal and its delete
			// record follows in the log, so skip it here.
			return true
		}
		ts := &walTenantState{Spec: t.spec, Monitor: mst}
		if t.dedup != nil {
			ts.Dedup = t.dedup.export()
		}
		ts.Audit, ts.AuditTotal = t.auditSnapshot(0)
		ts.Splice = t.getSplice()
		st.Scenarios[id] = ts
		return true
	})
	if s.cluster != nil {
		if reloc := s.cluster.relocations(); len(reloc) > 0 {
			st.Relocations = reloc
		}
	}
	return st
}

// StateExport returns the server's replayable state as deterministic
// JSON — the same document compaction folds into snapshots. Two servers
// that ingested the same operation stream export identical bytes; the
// crash harness leans on that.
func (s *Server) StateExport() ([]byte, error) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return json.Marshal(s.buildWALState())
}

// --- read-only degradation ---

// enterReadOnly flips the daemon into read-only mode after a WAL write
// failure (ENOSPC, I/O error): mutations answer 503 + Placemond-Read-Only
// while reads and placements keep serving. Degrade, don't die.
func (s *Server) enterReadOnly(err error) {
	if s.readOnly.CompareAndSwap(false, true) {
		if s.readOnlyGauge != nil {
			s.readOnlyGauge.Set(1)
		}
		s.logger.Error("WAL write failed; daemon is now read-only",
			"error", err, "wal_dir", s.wlog.Dir())
	}
}

// ReadOnly reports whether a WAL failure has frozen mutations.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// respondReadOnly answers a mutation refused by read-only mode.
func respondReadOnly(w http.ResponseWriter) {
	w.Header().Set("Placemond-Read-Only", "true")
	writeError(w, http.StatusServiceUnavailable,
		"daemon is read-only: write-ahead log unavailable")
}

// rejectReadOnly writes the 503 and reports true when mutations are
// frozen.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.readOnly.Load() {
		return false
	}
	respondReadOnly(w)
	return true
}

// --- append paths ---

// walAppendIngest appends one accepted observation batch plus one
// diagnosis record per emitted event, durably, in one fsync. Called with
// t.ingestMu held and s.walMu read-locked; on failure the daemon goes
// read-only and the caller must not acknowledge the batch.
func (s *Server) walAppendIngest(t *tenant, batchID string, tm float64, conns []int, ups []bool, events []monitord.Event, diags []*diagnosisJSON) error {
	obsPayload, err := json.Marshal(walObservations{
		Scenario: t.id, BatchID: batchID, Time: tm, Conns: conns, Ups: ups,
	})
	if err != nil {
		return fmt.Errorf("%w: encode: %v", errWALUnavailable, err)
	}
	ops := make([]wal.Op, 0, 1+len(events))
	ops = append(ops, wal.Op{Type: wal.TypeObservations, Payload: obsPayload})
	for i, ev := range events {
		p, err := json.Marshal(walDiagnosis{
			Scenario: t.id, Time: ev.Time, Kind: ev.Kind.String(), Diagnosis: diags[i],
		})
		if err != nil {
			return fmt.Errorf("%w: encode: %v", errWALUnavailable, err)
		}
		ops = append(ops, wal.Op{Type: wal.TypeDiagnosis, Payload: p})
	}
	results, err := s.wlog.AppendBatch(ops)
	if err != nil {
		s.enterReadOnly(err)
		return fmt.Errorf("%w: %v", errWALUnavailable, err)
	}
	for i, ev := range events {
		res := results[i+1]
		t.addAudit(auditEvent{
			Seq: res.Seq, Hash: hex.EncodeToString(res.Hash[:]),
			Time: ev.Time, Kind: ev.Kind.String(), Diagnosis: diags[i],
		})
	}
	s.walAfterAppend(len(ops))
	return nil
}

// walAppendScenario appends one scenario lifecycle record durably.
func (s *Server) walAppendScenario(typ byte, payload any) error {
	_, err := s.walAppendScenarioResult(typ, payload)
	return err
}

// walAppendScenarioResult is walAppendScenario returning the appended
// record's log position and chain hash — the migration fence records
// them as the splice anchor the target's audit chain continues from.
func (s *Server) walAppendScenarioResult(typ byte, payload any) (wal.AppendResult, error) {
	p, err := json.Marshal(payload)
	if err != nil {
		return wal.AppendResult{}, fmt.Errorf("%w: encode: %v", errWALUnavailable, err)
	}
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	res, err := s.wlog.Append(typ, p)
	if err != nil {
		s.enterReadOnly(err)
		return wal.AppendResult{}, fmt.Errorf("%w: %v", errWALUnavailable, err)
	}
	s.walAfterAppend(1)
	return res, nil
}

// walAfterAppend keeps the segment gauge fresh and kicks a background
// compaction once enough records have accumulated since the last fold.
func (s *Server) walAfterAppend(n int) {
	if s.walSegments != nil {
		s.walSegments.Set(float64(s.wlog.SegmentCount()))
	}
	if s.walCompactEvery <= 0 {
		return
	}
	if s.walRecordCount.Add(int64(n)) >= int64(s.walCompactEvery) &&
		s.walCompacting.CompareAndSwap(false, true) {
		go s.compactWAL()
	}
}

// compactWAL folds live state into a snapshot. The exclusive walMu lock
// stops every apply+append pair for the duration, so the captured state
// and the log position agree exactly.
func (s *Server) compactWAL() {
	defer s.walCompacting.Store(false)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.readOnly.Load() {
		return
	}
	state, err := json.Marshal(s.buildWALState())
	if err != nil {
		s.logger.Error("WAL compaction state encode failed", "error", err)
		return
	}
	if err := s.wlog.Compact(state); err != nil {
		if !errors.Is(err, wal.ErrClosed) {
			s.enterReadOnly(err)
		}
		return
	}
	s.walRecordCount.Store(0)
	if s.walSegments != nil {
		s.walSegments.Set(float64(s.wlog.SegmentCount()))
	}
}

// --- boot recovery ---

// openWAL opens the log, restores the snapshot, replays the tail, and
// leaves the server ready to append. Runs during New, before the handler
// serves anything.
func (s *Server) openWAL(wc *WALConfig) error {
	reg := s.registry
	s.readOnlyGauge = reg.Gauge("placemond_read_only",
		"1 while a WAL write failure has frozen mutations, else 0.")
	s.walFsync = reg.Histogram("placemond_wal_fsync_duration_seconds",
		"Latency of WAL fsyncs (the durability cost each acknowledged mutation pays).", nil)
	s.walSegments = reg.Gauge("placemond_wal_segment_count",
		"Segment files the write-ahead log currently spans.")
	s.walRecoveryDur = reg.Gauge("placemond_wal_recovery_duration_seconds",
		"Wall-clock time boot recovery spent replaying snapshot + WAL tail.")
	s.walReplayed = reg.Counter("placemond_wal_records_replayed_total",
		"WAL records replayed during boot recovery.")

	start := time.Now()
	l, rec, err := wal.Open(wc.Dir, wal.Options{
		SegmentBytes: wc.SegmentBytes,
		Sync:         wc.Sync,
		GroupWindow:  wc.GroupWindow,
		FS:           wc.FS,
		Logger:       s.logger,
		OnFsync:      func(d time.Duration) { s.walFsync.Observe(d.Seconds()) },
	})
	if err != nil {
		return err
	}
	s.wlog = l
	s.walCompactEvery = wc.CompactEvery
	if s.walCompactEvery == 0 {
		s.walCompactEvery = 4096
	}

	if len(rec.SnapshotState) > 0 {
		if err := s.restoreWALState(rec.SnapshotState); err != nil {
			l.Abort()
			return err
		}
	}
	for _, r := range rec.Records {
		s.replayRecord(r)
	}
	s.walReplayed.Add(float64(len(rec.Records)))
	s.walSegments.Set(float64(l.SegmentCount()))
	s.walRecoveryDur.Set(time.Since(start).Seconds())
	s.logger.Info("WAL recovery complete",
		"wal_dir", wc.Dir,
		"snapshot_seq", rec.SnapshotSeq,
		"records_replayed", len(rec.Records),
		"torn_truncated", rec.TornTruncated,
		"duration", time.Since(start))
	return nil
}

// restoreWALState rebuilds every tenant recorded in a compaction
// snapshot. Scenarios with a stored spec are rebuilt through the
// BuildFunc; the default tenant's state is grafted onto the flag-built
// tenant when shapes agree.
func (s *Server) restoreWALState(doc []byte) error {
	var st walState
	if err := json.Unmarshal(doc, &st); err != nil {
		return fmt.Errorf("server: WAL snapshot state: %w", err)
	}
	ids := make([]string, 0, len(st.Scenarios))
	for id := range st.Scenarios {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := st.Scenarios[id]
		t, exists := s.tenants.Get(id)
		switch {
		case exists && len(ts.Spec) > 0:
			// A flag-built tenant shadows a stored scenario of the same
			// name; refuse silently diverging from the log.
			return fmt.Errorf("server: WAL snapshot scenario %q collides with a boot-time tenant", id)
		case !exists && len(ts.Spec) > 0:
			if s.build == nil {
				s.logger.Warn("WAL snapshot scenario skipped (no BuildScenario configured)", "scenario", id)
				continue
			}
			if err := s.createScenario(id, ts.Spec, false); err != nil {
				return fmt.Errorf("server: WAL snapshot scenario %q: %w", id, err)
			}
			t, _ = s.tenants.Get(id)
		case !exists:
			// Default-tenant state but this boot has no default tenant
			// (flags changed); nothing to graft it onto.
			s.logger.Warn("WAL snapshot state for absent tenant skipped", "scenario", id)
			continue
		}
		if err := t.mon.RestoreState(ts.Monitor); err != nil {
			return fmt.Errorf("server: WAL snapshot scenario %q: %w", id, err)
		}
		s.setOutageGauges(t)
		if t.dedup != nil && len(ts.Dedup) > 0 {
			if grew := t.dedup.restore(ts.Dedup); grew > 0 && s.dedupGauge != nil {
				s.dedupGauge.Add(float64(grew))
			}
		}
		t.restoreAudit(ts.Audit, ts.AuditTotal)
		t.setSplice(ts.Splice)
	}
	if len(st.Relocations) > 0 {
		if s.cluster == nil {
			s.logger.Warn("WAL snapshot carries relocations but clustering is off; followers cannot be redirected",
				"relocations", len(st.Relocations))
		} else {
			for id, node := range st.Relocations {
				s.cluster.setRelocation(id, node)
			}
		}
	}
	return nil
}

// replayRecord applies one recovered WAL-tail record. Records for
// scenarios this boot cannot host are skipped with a warning — one stale
// record must not take the fleet down — while everything else re-applies
// exactly as the original request did.
func (s *Server) replayRecord(r wal.Record) {
	switch r.Type {
	case wal.TypeScenarioCreate:
		var p walScenarioCreate
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed create record skipped", "seq", r.Seq, "error", err)
			return
		}
		if _, exists := s.tenants.Get(p.ID); exists {
			s.logger.Warn("WAL replay: scenario already exists", "seq", r.Seq, "scenario", p.ID)
			return
		}
		if s.build == nil {
			s.logger.Warn("WAL replay: create skipped (no BuildScenario configured)", "seq", r.Seq, "scenario", p.ID)
			return
		}
		if err := s.createScenario(p.ID, p.Spec, false); err != nil {
			s.logger.Warn("WAL replay: create failed", "seq", r.Seq, "scenario", p.ID, "error", err)
		}
	case wal.TypeScenarioDelete:
		var p walScenarioDelete
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed delete record skipped", "seq", r.Seq, "error", err)
			return
		}
		if t, ok := s.tenants.Get(p.ID); ok {
			s.removeTenantState(t)
		}
	case wal.TypeObservations:
		var p walObservations
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed observation record skipped", "seq", r.Seq, "error", err)
			return
		}
		t, ok := s.tenants.Get(p.Scenario)
		if !ok {
			s.logger.Warn("WAL replay: observations for unknown scenario skipped",
				"seq", r.Seq, "scenario", p.Scenario)
			return
		}
		n := t.mon.NumConnections()
		for _, c := range p.Conns {
			if c < 0 || c >= n {
				s.logger.Warn("WAL replay: observation batch shape mismatch skipped",
					"seq", r.Seq, "scenario", p.Scenario, "connection", c)
				return
			}
		}
		events, err := t.mon.ReportBatch(p.Time, p.Conns, p.Ups)
		if err != nil {
			s.logger.Warn("WAL replay: batch re-apply failed", "seq", r.Seq, "scenario", p.Scenario, "error", err)
			return
		}
		// Regenerate exactly what the original handler produced: the
		// response body for the dedup window, the stale-diagnosis cache,
		// the outage gauge. (Audit entries come from the TypeDiagnosis
		// records that follow, not from the regenerated events.)
		out, diags := buildObsResponse(events)
		for _, d := range diags {
			if d != nil {
				t.recordGoodDiagnosis(d)
			}
		}
		s.setOutageGauges(t)
		if t.dedup != nil && p.BatchID != "" {
			if body, err := json.Marshal(out); err == nil {
				body = append(body, '\n')
				if t.dedup.store(p.BatchID, dedupEntry{status: http.StatusOK, body: body}) && s.dedupGauge != nil {
					s.dedupGauge.Add(1)
				}
			}
		}
	case wal.TypeScenarioUpdate:
		var p walScenarioUpdate
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed update record skipped", "seq", r.Seq, "error", err)
			return
		}
		s.replayScenarioUpdate(r.Seq, p)
	case wal.TypeScenarioMigrateOut:
		var p walMigrate
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed migrate-out record skipped", "seq", r.Seq, "error", err)
			return
		}
		s.replayMigrateOut(r.Seq, p)
	case wal.TypeScenarioMigrateIn:
		var p walMigrate
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed migrate-in record skipped", "seq", r.Seq, "error", err)
			return
		}
		s.replayMigrateIn(r.Seq, p)
	case wal.TypeDiagnosis:
		var p walDiagnosis
		if err := json.Unmarshal(r.Payload, &p); err != nil {
			s.logger.Warn("WAL replay: malformed diagnosis record skipped", "seq", r.Seq, "error", err)
			return
		}
		t, ok := s.tenants.Get(p.Scenario)
		if !ok {
			s.logger.Warn("WAL replay: diagnosis for unknown scenario skipped",
				"seq", r.Seq, "scenario", p.Scenario)
			return
		}
		t.addAudit(auditEvent{
			Seq: r.Seq, Hash: hex.EncodeToString(r.Hash[:]),
			Time: p.Time, Kind: p.Kind, Diagnosis: p.Diagnosis,
		})
	default:
		s.logger.Warn("WAL replay: unknown record type skipped", "seq", r.Seq, "type", r.Type)
	}
}

// setOutageGauges refreshes the tenant outage gauge (and the legacy
// unlabeled gauge for the default tenant).
func (s *Server) setOutageGauges(t *tenant) {
	outage := 0.0
	if t.mon.InOutage() {
		outage = 1
	}
	t.outage.Set(outage)
	if t.id == DefaultScenario {
		s.outageGauge.Set(outage)
	}
}

// --- the audit endpoint ---

// auditEvent is one row of the diagnosis audit ledger: the WAL record's
// position and chain hash plus the decoded event.
type auditEvent struct {
	Seq       uint64         `json:"seq"`
	Hash      string         `json:"hash"`
	Time      float64        `json:"time"`
	Kind      string         `json:"kind"`
	Diagnosis *diagnosisJSON `json:"diagnosis,omitempty"`
}

// auditSplice links a migrated scenario's audit chain across logs: the
// scenario's pre-migration events live in SourceNode's WAL, whose chain
// head at the migration fence was (SourceHeadSeq, SourceHeadHash).
// Verifying the source log and checking that its record at
// SourceHeadSeq carries SourceHeadHash proves the chains join with
// nothing lost or reordered in between.
type auditSplice struct {
	SourceNode     string `json:"source_node"`
	SourceHeadSeq  uint64 `json:"source_head_seq,omitempty"`
	SourceHeadHash string `json:"source_head_hash,omitempty"`
}

// auditChainJSON is the audit response's chain-verification block,
// produced by walking the log on disk.
type auditChainJSON struct {
	Verified    bool   `json:"verified"`
	HeadSeq     uint64 `json:"head_seq"`
	HeadHash    string `json:"head_hash"`
	Records     int    `json:"records"`
	Segments    int    `json:"segments"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Torn        bool   `json:"torn,omitempty"`
	Error       string `json:"error,omitempty"`
}

// serveAudit answers GET /v1/scenarios/{id}/audit: the scenario's
// retained diagnosis events (each pinned to its WAL sequence number and
// chain hash) plus a fresh verification walk of the log on disk. ?limit=N
// caps the event list to the N newest.
func (s *Server) serveAudit(t *tenant, w http.ResponseWriter, r *http.Request) {
	if s.wlog == nil {
		writeError(w, http.StatusNotImplemented, "audit requires the write-ahead log (-wal-dir)")
		return
	}
	limit, ok := traceLimit(w, r)
	if !ok {
		return
	}
	events, total := t.auditSnapshot(limit)
	if events == nil {
		events = []auditEvent{}
	}
	out := struct {
		Scenario    string         `json:"scenario"`
		TotalEvents int            `json:"total_events"`
		Events      []auditEvent   `json:"events"`
		// Splice, for a scenario adopted from another node, names the
		// source log's chain head at the migration fence: verifying the
		// source log and finding that (seq, hash) pair proves the two
		// chains join.
		Splice *auditSplice   `json:"splice,omitempty"`
		Chain  auditChainJSON `json:"chain"`
	}{Scenario: t.id, TotalEvents: total, Events: events, Splice: t.getSplice()}

	rep, err := s.wlog.Verify()
	if err != nil {
		out.Chain.Error = err.Error()
	} else {
		out.Chain.Verified = true
	}
	if rep != nil {
		out.Chain.HeadSeq = rep.LastSeq
		out.Chain.HeadHash = rep.ChainHead
		out.Chain.Records = rep.Records
		out.Chain.Segments = rep.Segments
		out.Chain.SnapshotSeq = rep.SnapshotSeq
		out.Chain.Torn = rep.Torn
	}
	writeJSON(w, http.StatusOK, out)
}
