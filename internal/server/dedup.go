package server

import "sync"

// dedupWindow makes observation ingest idempotent under at-least-once
// delivery: it remembers the full responses of the last `capacity`
// successfully ingested batches by their client-supplied batch ID, so a
// retried or duplicated delivery replays the original answer — same
// events, same status — instead of re-applying the batch and emitting a
// divergent (usually empty) event list.
//
// The window is bounded FIFO: once capacity is exceeded the oldest entry
// is evicted, which keeps memory constant and matches the retry horizon —
// a client that retries a batch after the window has turned over is
// indistinguishable from a new batch, and the monitor's transition
// semantics make the re-application a harmless no-op.
type dedupWindow struct {
	mu       sync.Mutex
	capacity int
	order    []string // ring buffer of IDs in insertion order
	next     int      // ring write cursor
	byID     map[string]dedupEntry
}

// dedupEntry is one cached ingest response.
type dedupEntry struct {
	status int
	body   []byte
}

// newDedupWindow creates a window remembering the last capacity batches;
// capacity must be positive.
func newDedupWindow(capacity int) *dedupWindow {
	return &dedupWindow{
		capacity: capacity,
		order:    make([]string, 0, capacity),
		byID:     make(map[string]dedupEntry, capacity),
	}
}

// lookup returns the cached response for id, if it is still in the
// window.
func (d *dedupWindow) lookup(id string) (dedupEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.byID[id]
	return e, ok
}

// store records the response for id, evicting the oldest entry when the
// window is full. Re-storing a present id refreshes its payload but not
// its eviction slot. It reports whether the window grew by one entry, so
// the caller can keep an aggregate gauge by delta (windows are per
// tenant; summing sizes on every store would touch other tenants).
func (d *dedupWindow) store(id string, e dedupEntry) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.byID[id]; ok {
		d.byID[id] = e
		return false
	}
	grew := false
	if len(d.order) < d.capacity {
		d.order = append(d.order, id)
		grew = true
	} else {
		delete(d.byID, d.order[d.next])
		d.order[d.next] = id
		d.next = (d.next + 1) % d.capacity
	}
	d.byID[id] = e
	return grew
}

// size returns the number of cached batches (for the gauge).
func (d *dedupWindow) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byID)
}

// dedupRecord is one exported window entry, in insertion order, so a
// restored window evicts in exactly the order the original would have —
// the property that makes WAL-recovered dedup state byte-identical to a
// never-crashed daemon's.
type dedupRecord struct {
	ID     string `json:"id"`
	Status int    `json:"status"`
	Body   []byte `json:"body"`
}

// export captures the window's entries oldest first.
func (d *dedupWindow) export() []dedupRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]dedupRecord, 0, len(d.order))
	emit := func(id string) {
		e := d.byID[id]
		out = append(out, dedupRecord{ID: id, Status: e.status, Body: e.body})
	}
	if len(d.order) < d.capacity {
		// Not yet wrapped: order is already insertion order.
		for _, id := range d.order {
			emit(id)
		}
		return out
	}
	// Wrapped ring: the write cursor points at the oldest entry.
	for _, id := range d.order[d.next:] {
		emit(id)
	}
	for _, id := range d.order[:d.next] {
		emit(id)
	}
	return out
}

// restore replays exported entries (oldest first) into an empty window
// and returns how many entries it now holds.
func (d *dedupWindow) restore(recs []dedupRecord) int {
	grew := 0
	for _, r := range recs {
		if d.store(r.ID, dedupEntry{status: r.Status, body: r.Body}) {
			grew++
		}
	}
	return grew
}
