package server

import (
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/wal"
)

// clusterTestNode is one member of an in-process test cluster: its fixed
// identity and address survive restarts, so WAL-backed nodes can be
// stopped and rebooted mid-test without the membership drifting.
type clusterTestNode struct {
	id      string
	url     string
	addr    string
	members []cluster.Member
	srv     *Server
	ts      *httptest.Server
}

// startClusterNodes boots an n-node cluster on loopback listeners and
// wires every node's membership to the full address list. nodeCfg builds
// each node's base Config (cluster settings are filled in here).
func startClusterNodes(t *testing.T, n int, proxy bool, nodeCfg func(i int) Config) []*clusterTestNode {
	t.Helper()
	lns := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("node-%d", i), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterTestNode, n)
	for i := range nodes {
		nodes[i] = &clusterTestNode{
			id: members[i].ID, url: members[i].URL,
			addr: lns[i].Addr().String(), members: members,
		}
		nodes[i].start(t, lns[i], proxy, false, nodeCfg(i))
	}
	return nodes
}

// start builds the node's server and serves it; ln == nil re-listens on
// the node's original address (the restart path).
func (cn *clusterTestNode) start(t *testing.T, ln net.Listener, proxy, forceAdopt bool, cfg Config) {
	t.Helper()
	ms, err := cluster.NewFromMembers(cn.id, cn.members)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cluster = &ClusterConfig{Membership: ms, Proxy: proxy, ForceAdopt: forceAdopt}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("boot %s: %v", cn.id, err)
	}
	if ln == nil {
		if ln, err = net.Listen("tcp", cn.addr); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	cn.srv, cn.ts = srv, ts
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
}

// stop shuts the node down cleanly (final snapshot and all).
func (cn *clusterTestNode) stop() {
	cn.ts.Close()
	cn.srv.Close()
}

// abort shuts the node down without the final snapshot, leaving the raw
// record tail on disk for offline inspection.
func (cn *clusterTestNode) abort() {
	cn.ts.Close()
	cn.srv.Abort()
}

// scenarioOwnedBy finds a scenario ID whose ring owner is nodes[idx].
func scenarioOwnedBy(t *testing.T, nodes []*clusterTestNode, idx int) string {
	t.Helper()
	ms, err := cluster.NewFromMembers(nodes[idx].id, nodes[idx].members)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("scn-%d", i)
		if ms.Owner(id).ID == nodes[idx].id {
			return id
		}
	}
	t.Fatal("no scenario ID hashes to the node")
	return ""
}

// noFollow performs one request without following redirects, so tests
// can observe the 307 itself.
func noFollow(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd *strings.Reader
	req, err := http.NewRequest(method, url, nil)
	if body != nil {
		rd = strings.NewReader(string(body))
		req, err = http.NewRequest(method, url, rd)
	}
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestClusterRedirectRouting: a non-owner answers scenario requests with
// 307 + Placemond-Owner toward the ring owner; the owner serves (or
// 404s) locally.
func TestClusterRedirectRouting(t *testing.T) {
	nodes := startClusterNodes(t, 2, false, func(int) Config {
		return Config{BuildScenario: testBuild}
	})
	spec := mustJSON(t, lineSpec())
	id := scenarioOwnedBy(t, nodes, 0)

	// Create through the non-owner: routed, not served.
	resp := noFollow(t, http.MethodPut, nodes[1].ts.URL+"/v1/scenarios/"+id, spec)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("create via non-owner = %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get(OwnerHeader); got != "node-0" {
		t.Fatalf("%s = %q, want node-0", OwnerHeader, got)
	}
	wantLoc := nodes[0].url + "/v1/scenarios/" + id
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("Location = %q, want %q", loc, wantLoc)
	}

	// Following the redirect lands on the owner and creates the scenario.
	if resp, body := doReq(t, http.MethodPut, wantLoc, spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create on owner = %d (%s)", resp.StatusCode, body)
	}

	// Scenario-scoped reads: non-owner redirects, owner serves.
	if resp := noFollow(t, http.MethodGet, nodes[1].ts.URL+"/v1/scenarios/"+id+"/diagnosis", nil); resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("diagnosis via non-owner = %d, want 307", resp.StatusCode)
	}
	if resp, body := doReq(t, http.MethodGet, nodes[0].ts.URL+"/v1/scenarios/"+id+"/diagnosis", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnosis on owner = %d (%s)", resp.StatusCode, body)
	}

	// An owned-but-nonexistent scenario 404s locally on the owner — the
	// one case a miss must not be forwarded — and still redirects on the
	// non-owner.
	ghost := scenarioOwnedBy(t, nodes, 0) + ".ghost"
	for ms, _ := cluster.NewFromMembers("node-0", nodes[0].members); ms.Owner(ghost).ID != "node-0"; {
		ghost += "x"
	}
	if resp := noFollow(t, http.MethodGet, nodes[0].ts.URL+"/v1/scenarios/"+ghost, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing scenario on owner = %d, want 404", resp.StatusCode)
	}
	if resp := noFollow(t, http.MethodGet, nodes[1].ts.URL+"/v1/scenarios/"+ghost, nil); resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("missing scenario on non-owner = %d, want 307", resp.StatusCode)
	}

	// Deletes route the same way as creates.
	if resp := noFollow(t, http.MethodDelete, nodes[1].ts.URL+"/v1/scenarios/"+id, nil); resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("delete via non-owner = %d, want 307", resp.StatusCode)
	}

	// GET /v1/cluster reports the membership view.
	resp2, info := getJSON(t, nodes[0].ts.URL+"/v1/cluster")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster = %d", resp2.StatusCode)
	}
	if info["self"] != "node-0" {
		t.Fatalf("cluster self = %v", info["self"])
	}
	if members := info["members"].([]any); len(members) != 2 {
		t.Fatalf("cluster members = %v, want 2", members)
	}
}

// TestClusterProxyForwarding: in proxy mode the non-owner relays the
// request peer-to-peer, one trace ID spans both nodes (with a timed
// "forward" stage on the relay), and the hop cap stops routing loops.
func TestClusterProxyForwarding(t *testing.T) {
	nodes := startClusterNodes(t, 2, true, func(int) Config {
		return Config{BuildScenario: testBuild, TraceBuffer: 16}
	})
	spec := mustJSON(t, lineSpec())
	id := scenarioOwnedBy(t, nodes, 0)

	// Create through the non-owner: proxied to the owner, answered in
	// place, owner named on the relayed response.
	req, err := http.NewRequest(http.MethodPut, nodes[1].ts.URL+"/v1/scenarios/"+id, strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("proxied create = %d, want 201", resp.StatusCode)
	}
	if got := resp.Header.Get(OwnerHeader); got != "node-0" {
		t.Fatalf("proxied %s = %q, want node-0", OwnerHeader, got)
	}
	if ids := nodes[0].srv.ScenarioIDs(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("owner hosts %v, want [%s]", ids, id)
	}

	// Ingest through the non-owner under a chosen trace ID: both nodes'
	// trace rings record the hop under the same ID, and the forwarder's
	// record carries the timed "forward" stage.
	batch := mustJSON(t, map[string]any{
		"batch_id": "px-1", "time": 1.0,
		"reports": []map[string]any{{"connection": 0, "up": false}, {"connection": 1, "up": true}},
	})
	req, err = http.NewRequest(http.MethodPost, nodes[1].ts.URL+"/v1/scenarios/"+id+"/observations", strings.NewReader(string(batch)))
	if err != nil {
		t.Fatal(err)
	}
	const traceID = "cluster-trace-1"
	req.Header.Set("Placemond-Trace-Id", traceID)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied ingest = %d, want 200", resp.StatusCode)
	}
	findTrace := func(base string) map[string]any {
		for _, rec := range getTraces(t, base) {
			if rec["trace_id"] == traceID {
				return rec
			}
		}
		return nil
	}
	fwd := findTrace(nodes[1].ts.URL)
	if fwd == nil {
		t.Fatalf("forwarder has no trace %q", traceID)
	}
	var hasForward bool
	for _, name := range stageNames(fwd) {
		hasForward = hasForward || name == "forward"
	}
	if !hasForward {
		t.Fatalf("forwarder stages = %v, want a forward stage", stageNames(fwd))
	}
	if owner := findTrace(nodes[0].ts.URL); owner == nil {
		t.Fatalf("owner has no trace %q — the trace ID did not cross the hop", traceID)
	}

	// A request that has already crossed the hop cap is refused, not
	// bounced around a stale ring forever.
	req, err = http.NewRequest(http.MethodGet, nodes[1].ts.URL+"/v1/scenarios/"+id+"/diagnosis", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardHopsHeader, "3")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("over-hopped request = %d, want 502", resp.StatusCode)
	}
}

// TestClusterMigrationMovesStateAndSplicesAudit is the migration
// end-to-end: live state moves wholesale, the source's WAL carries a
// verifiable fence, the target's audit chain splices onto it, stale
// followers get redirected by the durable relocation — across restarts
// of both nodes.
func TestClusterMigrationMovesStateAndSplicesAudit(t *testing.T) {
	walRoot := t.TempDir()
	nodeCfg := func(i int) Config {
		return Config{
			BuildScenario: testBuild,
			DedupWindow:   64,
			WAL:           &WALConfig{Dir: filepath.Join(walRoot, fmt.Sprintf("node-%d", i)), CompactEvery: -1},
		}
	}
	nodes := startClusterNodes(t, 2, false, nodeCfg)
	spec := mustJSON(t, lineSpec())
	id := scenarioOwnedBy(t, nodes, 0)
	base0 := nodes[0].ts.URL + "/v1/scenarios/" + id
	base1 := nodes[1].ts.URL + "/v1/scenarios/" + id

	if resp, body := doReq(t, http.MethodPut, base0, spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d (%s)", resp.StatusCode, body)
	}
	resp, body := postJSON(t, base0+"/observations",
		`{"batch_id": "m1", "time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d (%v)", resp.StatusCode, body)
	}

	// Bad targets first: self and unknown nodes are rejected.
	if resp, _ := postJSON(t, base0+"/migrate", `{"target": "node-0"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate to self = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, base0+"/migrate", `{"target": "node-9"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("migrate to unknown node = %d, want 400", resp.StatusCode)
	}

	resp, mig := postJSON(t, base0+"/migrate", `{"target": "node-1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate = %d (%v)", resp.StatusCode, mig)
	}
	if mig["from"] != "node-0" || mig["to"] != "node-1" {
		t.Fatalf("migrate endpoints = %v -> %v", mig["from"], mig["to"])
	}
	headSeq := uint64(mig["head_seq"].(float64))
	headHash, _ := mig["head_hash"].(string)
	if headSeq == 0 || len(headHash) != 2*wal.HashSize {
		t.Fatalf("migrate fence head = (%d, %q), want a real chain position", headSeq, headHash)
	}

	// The target serves the scenario with its live state intact.
	resp, diag := getJSON(t, base1+"/diagnosis")
	if resp.StatusCode != http.StatusOK || diag["in_outage"] != true {
		t.Fatalf("target diagnosis = %d %v, want the migrated outage", resp.StatusCode, diag)
	}
	// The source — still the ring owner — redirects followers to the
	// relocated scenario instead of 404ing.
	if resp := noFollow(t, http.MethodGet, base0+"/diagnosis", nil); resp.StatusCode != http.StatusTemporaryRedirect ||
		resp.Header.Get(OwnerHeader) != "node-1" {
		t.Fatalf("source after migration = %d owner %q, want 307 to node-1", resp.StatusCode, resp.Header.Get(OwnerHeader))
	}
	// The target's audit ledger kept the pre-migration events and pins
	// the splice to the source's fence record.
	resp, audit := getJSON(t, base1+"/audit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("target audit = %d", resp.StatusCode)
	}
	splice, _ := audit["splice"].(map[string]any)
	if splice == nil {
		t.Fatalf("target audit has no splice: %v", audit)
	}
	if splice["source_node"] != "node-0" ||
		uint64(splice["source_head_seq"].(float64)) != headSeq ||
		splice["source_head_hash"] != headHash {
		t.Fatalf("splice = %v, want (node-0, %d, %s)", splice, headSeq, headHash)
	}
	if n := int(audit["total_events"].(float64)); n < 1 {
		t.Fatalf("target audit total_events = %d, want the migrated ledger", n)
	}
	// Ingest continues on the target.
	if resp, _ := postJSON(t, base1+"/observations",
		`{"batch_id": "m2", "time": 2, "reports": [{"connection": 0, "up": true}, {"connection": 1, "up": true}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("target ingest = %d", resp.StatusCode)
	}

	// Offline, the source log's record at head_seq is the migrate-out
	// fence and its chain hash is exactly what the splice claims.
	nodes[0].abort()
	wlog, rec, err := wal.Open(filepath.Join(walRoot, "node-0"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fence *wal.Record
	for i := range rec.Records {
		if rec.Records[i].Seq == headSeq {
			fence = &rec.Records[i]
		}
	}
	if fence == nil {
		t.Fatalf("source WAL has no record at seq %d", headSeq)
	}
	if fence.Type != wal.TypeScenarioMigrateOut {
		t.Fatalf("record at fence seq is type %d (%s), want migrate-out", fence.Type, wal.TypeName(fence.Type))
	}
	if got := hex.EncodeToString(fence.Hash[:]); got != headHash {
		t.Fatalf("fence chain hash = %s, want the splice's %s", got, headHash)
	}
	wlog.Close()

	// Both nodes restart: the relocation and the adoption are replayed
	// from the logs, so routing and state survive.
	nodes[0].start(t, nil, false, false, nodeCfg(0))
	nodes[1].stop()
	nodes[1].start(t, nil, false, false, nodeCfg(1))
	base0 = nodes[0].ts.URL + "/v1/scenarios/" + id
	base1 = nodes[1].ts.URL + "/v1/scenarios/" + id
	if resp := noFollow(t, http.MethodGet, base0+"/diagnosis", nil); resp.StatusCode != http.StatusTemporaryRedirect ||
		resp.Header.Get(OwnerHeader) != "node-1" {
		t.Fatalf("restarted source = %d owner %q, want 307 to node-1", resp.StatusCode, resp.Header.Get(OwnerHeader))
	}
	resp, diag = getJSON(t, base1+"/diagnosis")
	if resp.StatusCode != http.StatusOK || diag["in_outage"] != false {
		t.Fatalf("restarted target diagnosis = %d %v, want the cleared outage", resp.StatusCode, diag)
	}
	resp, audit = getJSON(t, base1+"/audit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted target audit = %d", resp.StatusCode)
	}
	splice, _ = audit["splice"].(map[string]any)
	if splice == nil || splice["source_head_hash"] != headHash {
		t.Fatalf("restarted splice = %v, want head hash %s", splice, headHash)
	}
}

// TestClusterMigrateDuringIngest races a live migration against
// concurrent ingest: every batch is either applied before the fence or
// redirected to the new owner — acknowledged exactly once, never
// dropped, never silently drained.
func TestClusterMigrateDuringIngest(t *testing.T) {
	nodes := startClusterNodes(t, 2, false, func(int) Config {
		return Config{BuildScenario: testBuild, DedupWindow: 256}
	})
	spec := mustJSON(t, lineSpec())
	id := scenarioOwnedBy(t, nodes, 0)
	base0 := nodes[0].ts.URL + "/v1/scenarios/" + id
	if resp, body := doReq(t, http.MethodPut, base0, spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d (%s)", resp.StatusCode, body)
	}

	const workers, perWorker = 4, 30
	var tick atomic.Int64
	var migrated atomic.Bool
	errs := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := []byte(fmt.Sprintf(
					`{"batch_id": "w%d-%d", "time": %d, "reports": [{"connection": 0, "up": true}, {"connection": 1, "up": true}]}`,
					w, i, tick.Add(1)))
				resp, raw, err := rawReq(http.MethodPost, base0+"/observations", body)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode == http.StatusTemporaryRedirect {
					loc := resp.Header.Get("Location")
					if resp, raw, err = rawReq(http.MethodPost, loc, body); err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("redirected batch w%d-%d = %d (%s)", w, i, resp.StatusCode, raw)
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("batch w%d-%d = %d (%s)", w, i, resp.StatusCode, raw)
				}
			}
		}(w)
	}
	// Fire the migration mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, raw, err := rawReq(http.MethodPost, base0+"/migrate", []byte(`{"target": "node-1"}`))
		if err != nil {
			errs <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			errs <- fmt.Errorf("migrate = %d (%s)", resp.StatusCode, raw)
			return
		}
		migrated.Store(true)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !migrated.Load() {
		t.Fatal("migration did not complete")
	}
	if resp, _ := getJSON(t, nodes[1].ts.URL+"/v1/scenarios/"+id+"/diagnosis"); resp.StatusCode != http.StatusOK {
		t.Fatalf("target diagnosis after race = %d", resp.StatusCode)
	}
	if err := nodes[1].srv.VerifyIncremental(); err != nil {
		t.Fatalf("target incremental state diverged: %v", err)
	}
}

// TestClusterBootOwnershipValidation: a node restarted into a cluster
// refuses to serve stored scenarios the ring assigns to someone else,
// names them, and boots anyway under -force-adopt.
func TestClusterBootOwnershipValidation(t *testing.T) {
	dir := t.TempDir()
	members := []cluster.Member{
		{ID: "node-0", URL: "http://127.0.0.1:1"},
		{ID: "node-1", URL: "http://127.0.0.1:2"},
	}
	ms, err := cluster.NewFromMembers("node-0", members)
	if err != nil {
		t.Fatal(err)
	}
	var mine, theirs, theirs2 string
	for i := 0; mine == "" || theirs == "" || theirs2 == ""; i++ {
		id := fmt.Sprintf("scn-%d", i)
		if ms.Owner(id).ID == "node-0" {
			if mine == "" {
				mine = id
			}
		} else if theirs == "" {
			theirs = id
		} else if theirs2 == "" {
			theirs2 = id
		}
	}

	// Seed both scenarios on a single-node (clusterless) WAL daemon.
	cfg := Config{BuildScenario: testBuild, WAL: &WALConfig{Dir: dir, CompactEvery: -1}}
	seed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := mustJSON(t, lineSpec())
	for _, id := range []string{mine, theirs} {
		if err := seed.CreateScenario(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebooting as cluster member node-0 must refuse: theirs belongs to
	// node-1 and was never migrated in.
	cfg.Cluster = &ClusterConfig{Membership: ms}
	if _, err := New(cfg); err == nil {
		t.Fatal("boot with a foreign-owned scenario succeeded, want refusal")
	} else if !strings.Contains(err.Error(), theirs) || !strings.Contains(err.Error(), "force-adopt") {
		t.Fatalf("refusal %q should name scenario %s and the -force-adopt escape hatch", err, theirs)
	}

	// The escape hatch: -force-adopt boots and hosts both.
	cfg.Cluster = &ClusterConfig{Membership: ms, ForceAdopt: true}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("boot with force-adopt: %v", err)
	}
	defer srv.Close()
	if ids := srv.ScenarioIDs(); len(ids) != 2 {
		t.Fatalf("force-adopted node hosts %v, want both scenarios", ids)
	}
	// New foreign-owned scenarios are still refused at creation.
	err = srv.CreateScenario(theirs2, spec)
	if err == nil || !strings.Contains(err.Error(), "belongs to node") {
		t.Fatalf("creating a foreign-owned scenario = %v, want an ownership refusal", err)
	}
}

// TestMigrateWithoutCluster: the migrate route exists on single-node
// daemons but answers 501, keeping single-node behavior byte-compatible
// otherwise.
func TestMigrateWithoutCluster(t *testing.T) {
	_, ts := newTestServer(t, scenarioConfig())
	resp, body := postJSON(t, ts.URL+"/v1/scenarios/default/migrate", `{"target": "node-1"}`)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("migrate without cluster = %d (%v), want 501", resp.StatusCode, body)
	}
}
