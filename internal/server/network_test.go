package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/registry"
)

// testRevise is the ReviseFunc tests install: the change body IS the
// revised document (a testSpec), validated the way a real reviser
// validates a NetworkChange.
func testRevise(id string, spec, change []byte) ([]byte, error) {
	var next testSpec
	if err := json.Unmarshal(change, &next); err != nil {
		return nil, err
	}
	if next.NumNodes <= 0 {
		return nil, fmt.Errorf("num_nodes must be positive")
	}
	return change, nil
}

// networkConfig is scenarioConfig plus network replacement and the
// idempotent-ingest window.
func networkConfig() Config {
	cfg := scenarioConfig()
	cfg.ReviseNetwork = testRevise
	cfg.DedupWindow = 64
	return cfg
}

// wideSpec is a replacement network with a different shape than
// lineSpec: 7 nodes, 3 connections.
func wideSpec() testSpec {
	return testSpec{
		NumNodes: 7,
		K:        1,
		Paths:    [][]int{{0, 1, 3}, {2, 1, 3}, {4, 5, 6}},
		Connections: []Connection{
			{Service: 0, Client: 0, Host: 3},
			{Service: 0, Client: 2, Host: 3},
			{Service: 1, Client: 4, Host: 6},
		},
	}
}

// TestNetworkReplaceLifecycle drives create → ingest → replace → verify
// over HTTP: the scenario keeps its ID and dedup window while monitor
// state restarts against the new network.
func TestNetworkReplaceLifecycle(t *testing.T) {
	_, ts := newTestServer(t, networkConfig())
	base := ts.URL + "/v1/scenarios/net1"

	resp, _ := doReq(t, http.MethodPut, base, mustJSON(t, lineSpec()))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Ingest a batch that opens an outage, remembering the exact body.
	batch := []byte(`{"batch_id":"b1","time":1,"reports":[{"connection":0,"up":false}]}`)
	resp, origBody := doReq(t, http.MethodPost, base+"/observations", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, origBody)
	}

	resp, body := doReq(t, http.MethodPut, base+"/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: %d %s", resp.StatusCode, body)
	}
	var info scenarioInfoJSON
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "net1" || info.Connections != 3 || !info.Persistent {
		t.Fatalf("replace answered %+v", info)
	}

	// Monitoring restarted: the old outage is gone.
	resp, body = doReq(t, http.MethodGet, base+"/diagnosis", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnosis: %d", resp.StatusCode)
	}
	var diag struct {
		InOutage    bool              `json:"in_outage"`
		Connections []json.RawMessage `json:"connections"`
	}
	if err := json.Unmarshal([]byte(body), &diag); err != nil {
		t.Fatal(err)
	}
	if diag.InOutage || len(diag.Connections) != 3 {
		t.Fatalf("post-replace diagnosis: in_outage=%t conns=%d", diag.InOutage, len(diag.Connections))
	}

	// The dedup window survived: re-delivering the pre-replace batch
	// replays its original response instead of re-applying it against
	// the new (narrower per-path) network.
	resp, replayBody := doReq(t, http.MethodPost, base+"/observations", batch)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Placemond-Replayed") != "true" {
		t.Fatalf("replay: %d replayed=%q", resp.StatusCode, resp.Header.Get("Placemond-Replayed"))
	}
	if replayBody != origBody {
		t.Fatalf("replayed body diverged:\n%s\nvs\n%s", replayBody, origBody)
	}

	// The new shape accepts connections the old one rejected.
	resp, body = doReq(t, http.MethodPost, base+"/observations",
		[]byte(`{"time":2,"reports":[{"connection":2,"up":false}]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace ingest: %d %s", resp.StatusCode, body)
	}
}

// TestNetworkReplaceUnconfigured pins the 501 when no ReviseFunc is
// installed.
func TestNetworkReplaceUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, scenarioConfig())
	base := ts.URL + "/v1/scenarios/net1"
	doReq(t, http.MethodPut, base, mustJSON(t, lineSpec()))
	resp, _ := doReq(t, http.MethodPut, base+"/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured replace: %d", resp.StatusCode)
	}
}

// TestNetworkReplaceErrors covers the error mapping: unknown scenario,
// flag-built default tenant, malformed change, and a busy (draining)
// scenario.
func TestNetworkReplaceErrors(t *testing.T) {
	s, ts := newTestServer(t, networkConfig())
	doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/net1", mustJSON(t, lineSpec()))

	resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/ghost/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario: %d", resp.StatusCode)
	}
	// The default tenant is rebuilt from flags, not a stored document:
	// there is nothing to revise.
	resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/default/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("default tenant replace: %d %s", resp.StatusCode, body)
	}
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/net1/network", []byte(`{"num_nodes":0}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad change: %d", resp.StatusCode)
	}

	// A draining scenario conflicts rather than replacing.
	tn, _ := s.tenants.Get("net1")
	if !tn.beginDrain() {
		t.Fatal("could not claim drain")
	}
	err := s.ReplaceScenarioNetwork("net1", mustJSON(t, wideSpec()))
	if !errors.Is(err, errScenarioBusy) {
		t.Fatalf("draining replace: %v", err)
	}
	tn.endDrain()
	if err := s.ReplaceScenarioNetwork("net1", mustJSON(t, wideSpec())); err != nil {
		t.Fatalf("replace after endDrain: %v", err)
	}
}

// flakyStore fails Save after a configured number of successes.
type flakyStore struct {
	registry.Store
	mu        sync.Mutex
	saves     int
	failAfter int
}

func (f *flakyStore) Save(id string, doc []byte) error {
	f.mu.Lock()
	f.saves++
	fail := f.saves > f.failAfter
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("disk on fire")
	}
	return f.Store.Save(id, doc)
}

// TestNetworkReplaceRollback pins the persistence-failure path: when the
// revised document cannot be saved, the old network keeps serving and
// the scenario is immediately replaceable again.
func TestNetworkReplaceRollback(t *testing.T) {
	cfg := networkConfig()
	fs := &flakyStore{Store: registry.NewMemStore(), failAfter: 1} // the create succeeds
	cfg.Store = fs
	_, ts := newTestServer(t, cfg)
	base := ts.URL + "/v1/scenarios/net1"
	doReq(t, http.MethodPut, base, mustJSON(t, lineSpec()))

	resp, body := doReq(t, http.MethodPut, base+"/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("failed-persist replace: %d %s", resp.StatusCode, body)
	}
	// Old shape still serves.
	resp, body = doReq(t, http.MethodGet, base, nil)
	var info scenarioInfoJSON
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || info.Connections != 2 {
		t.Fatalf("post-rollback info: %d %+v", resp.StatusCode, info)
	}
	resp, body = doReq(t, http.MethodPost, base+"/observations",
		[]byte(`{"time":1,"reports":[{"connection":1,"up":false}]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rollback ingest: %d %s", resp.StatusCode, body)
	}
	// The store heals; the replacement goes through on retry.
	fs.mu.Lock()
	fs.failAfter = fs.saves + 10
	fs.mu.Unlock()
	resp, body = doReq(t, http.MethodPut, base+"/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed replace: %d %s", resp.StatusCode, body)
	}
}

// TestNetworkReplaceWALReplay is the durability parity check: a server
// that created, ingested, replaced, and ingested again must export
// byte-identical state after crash recovery — including the adopted
// dedup window still replaying a pre-replacement batch's original body.
func TestNetworkReplaceWALReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	cfg.ReviseNetwork = testRevise
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	base := ts.URL + "/v1/scenarios/net1"

	doReq(t, http.MethodPut, base, mustJSON(t, lineSpec()))
	batch := []byte(`{"batch_id":"pre","time":1,"reports":[{"connection":0,"up":false}]}`)
	_, preBody := doReq(t, http.MethodPost, base+"/observations", batch)
	resp, body := doReq(t, http.MethodPut, base+"/network", mustJSON(t, wideSpec()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace: %d %s", resp.StatusCode, body)
	}
	resp, body = doReq(t, http.MethodPost, base+"/observations",
		[]byte(`{"batch_id":"post","time":2,"reports":[{"connection":2,"up":false}]}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace ingest: %d %s", resp.StatusCode, body)
	}
	want := mustExport(t, s1)
	ts.Close()
	s1.Abort() // crash: recovery must come from the raw log

	cfg2 := walConfig(dir)
	cfg2.ReviseNetwork = testRevise
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Abort() }()
	if got := mustExport(t, s2); string(got) != string(want) {
		t.Fatalf("recovered state diverged:\n%s\nvs\n%s", got, want)
	}
	resp, replayBody := doReq(t, http.MethodPost, ts2.URL+"/v1/scenarios/net1/observations", batch)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Placemond-Replayed") != "true" {
		t.Fatalf("recovered replay: %d replayed=%q", resp.StatusCode, resp.Header.Get("Placemond-Replayed"))
	}
	if replayBody != preBody {
		t.Fatalf("recovered replay body diverged:\n%s\nvs\n%s", replayBody, preBody)
	}
}
