package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/registry"
	"repro/internal/wal"
)

// ReviseFunc produces a revised scenario document from the stored one
// plus a network-change request body (the facade owns both formats, like
// BuildFunc's spec). It must be pure with respect to the server: the
// returned document, fed back through BuildScenario, is the scenario's
// new monitoring state. A warm-start reviser may keep placement caches
// keyed by scenario ID — the server calls it at most once per accepted
// PUT /v1/scenarios/{id}/network.
type ReviseFunc func(id string, spec, change []byte) ([]byte, error)

// errScenarioBusy marks a network replacement refused because the
// scenario is mid-drain or mid-replacement; the HTTP layer answers 409.
var errScenarioBusy = errors.New("server: scenario is being modified")

// serveScenarioNetwork handles PUT /v1/scenarios/{id}/network: replace
// the scenario's network in place, keeping its identity, dedup window,
// and audit ledger.
func (s *Server) serveScenarioNetwork(t *tenant, w http.ResponseWriter, r *http.Request) {
	if s.revise == nil || s.build == nil {
		writeError(w, http.StatusNotImplemented, "network replacement not configured")
		return
	}
	if s.rejectReadOnly(w) {
		return
	}
	const maxSpec = 1 << 20
	change, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpec))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "network change exceeds %d bytes", maxSpec)
		return
	}
	nt, err := s.replaceNetwork(t, change)
	switch {
	case errors.Is(err, errScenarioBusy):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, errWALUnavailable):
		respondReadOnly(w)
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "scenario %q not found", t.id)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusOK, nt.info())
	}
}

// ReplaceScenarioNetwork revises a hosted scenario's network in place
// through the configured ReviseFunc: the scenario keeps its ID, dedup
// window, and audit ledger while monitor state restarts against the new
// topology. Errors: registry.ErrNotFound, errScenarioBusy surfaced as a
// conflict, ErrBadSpec-wrapped revise/build failures, or a persistence
// failure (in which case the old network keeps serving — a replacement
// either fully survives a restart or changes nothing).
func (s *Server) ReplaceScenarioNetwork(id string, change []byte) error {
	if s.revise == nil || s.build == nil {
		return fmt.Errorf("server: network replacement not configured (no ReviseNetwork)")
	}
	if s.readOnly.Load() {
		return errWALUnavailable
	}
	t, ok := s.tenants.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", registry.ErrNotFound, id)
	}
	if t.isDraining() {
		return fmt.Errorf("%w: %q", errScenarioBusy, id)
	}
	_, err := s.replaceNetwork(t, change)
	return err
}

// replaceNetwork swaps old's registry slot for a tenant rebuilt from the
// revised document. Sequencing is what makes it safe:
//
//   - beginDrain on the old tenant is the concurrency guard: a racing
//     replacement or removal loses and reports a conflict, and once the
//     swap lands the orphaned old tenant stays draining forever.
//   - The swap, the durability record, and old.mon.Close() all happen
//     under old.ingestMu: an in-flight ingest that already resolved the
//     old tenant pointer either fully commits before the update record
//     or fails against the closed monitor after it — the WAL never
//     records an observation for the old network after the update, so
//     boot replay rebuilds exactly the live state.
//   - On a persistence failure the swap is rolled back and the old
//     tenant un-drained, so served state never runs ahead of durable
//     state.
func (s *Server) replaceNetwork(old *tenant, change []byte) (*tenant, error) {
	if old.spec == nil {
		return nil, fmt.Errorf("%w: scenario %q was built from boot flags, not a stored document", ErrBadSpec, old.id)
	}
	newSpec, err := s.revise(old.id, old.spec, change)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	tc, err := s.build(old.id, newSpec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	nt, err := s.newTenant(old.id, tc, append([]byte(nil), newSpec...))
	if err != nil {
		return nil, err
	}
	if !old.beginDrain() {
		nt.mon.Close()
		return nil, fmt.Errorf("%w: %q", errScenarioBusy, old.id)
	}
	adoptTenantState(old, nt)

	old.ingestMu.Lock()
	if _, err := s.tenants.Swap(old.id, nt); err != nil {
		old.ingestMu.Unlock()
		nt.mon.Close()
		return nil, err
	}
	var perr error
	if s.wlog != nil {
		perr = s.walAppendScenario(wal.TypeScenarioUpdate, walScenarioUpdate{ID: old.id, Spec: nt.spec})
	} else if err := s.store.Save(old.id, nt.spec); err != nil {
		perr = fmt.Errorf("server: persist scenario %s: %w", old.id, err)
	}
	if perr != nil {
		if _, err := s.tenants.Swap(old.id, old); err != nil {
			// The slot vanished mid-rollback; nothing to restore.
			s.logger.Error("network replacement rollback lost the scenario", "scenario", old.id, "error", err)
		}
		old.ingestMu.Unlock()
		old.endDrain()
		nt.mon.Close()
		return nil, perr
	}
	s.connsGauge.Add(float64(len(nt.conns) - len(old.conns)))
	s.setOutageGauges(nt)
	old.mon.Close()
	old.ingestMu.Unlock()
	s.logger.Info("scenario network replaced", "scenario", old.id,
		"connections", len(nt.conns), "was_connections", len(old.conns))
	return nt, nil
}

// adoptTenantState moves the surviving per-scenario state from the
// tenant being replaced onto its successor: the idempotent-ingest window
// (so a retried batch from before the replacement still replays its
// original response) and the diagnosis audit ledger (an append-only
// history of the scenario, not of one network). Monitor state and the
// stale-diagnosis cache deliberately restart: they describe paths that
// no longer exist.
func adoptTenantState(old, nt *tenant) {
	nt.dedup = old.dedup
	events, total := old.auditSnapshot(0)
	nt.restoreAudit(events, total)
}

// replayScenarioUpdate re-applies one TypeScenarioUpdate record at boot:
// the same rebuild-adopt-swap as the live path, minus locks (recovery is
// single-threaded, before the handler exists) and minus the durability
// append (the record being replayed is the durability).
func (s *Server) replayScenarioUpdate(seq uint64, p walScenarioUpdate) {
	old, ok := s.tenants.Get(p.ID)
	if !ok {
		s.logger.Warn("WAL replay: network update for unknown scenario skipped", "seq", seq, "scenario", p.ID)
		return
	}
	if s.build == nil {
		s.logger.Warn("WAL replay: network update skipped (no BuildScenario configured)", "seq", seq, "scenario", p.ID)
		return
	}
	tc, err := s.build(p.ID, p.Spec)
	if err != nil {
		s.logger.Warn("WAL replay: network update build failed", "seq", seq, "scenario", p.ID, "error", err)
		return
	}
	nt, err := s.newTenant(p.ID, tc, append([]byte(nil), p.Spec...))
	if err != nil {
		s.logger.Warn("WAL replay: network update failed", "seq", seq, "scenario", p.ID, "error", err)
		return
	}
	adoptTenantState(old, nt)
	if _, err := s.tenants.Swap(p.ID, nt); err != nil {
		nt.mon.Close()
		s.logger.Warn("WAL replay: network update swap failed", "seq", seq, "scenario", p.ID, "error", err)
		return
	}
	s.connsGauge.Add(float64(len(nt.conns) - len(old.conns)))
	s.setOutageGauges(nt)
	old.mon.Close()
}
