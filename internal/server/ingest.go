package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/monitord"
	"repro/internal/trace"
)

// The observation ingest wire path. Two request content types are
// served:
//
//   - application/json (the original): one observationsRequest document.
//   - application/x-ndjson (streaming): a header line carrying batch_id
//     and time, then one report object per line — decodable a line at a
//     time without materializing a nested document.
//
// Both are decoded by a hand-rolled scanner into pooled scratch buffers,
// so a steady-state ingest request allocates nothing for parsing. The
// scanner accepts exactly the documents the strict encoding/json path
// accepts; any deviation (unknown field, escape sequence, number
// overflow, trailing data) falls back to the stdlib decoder over the
// same buffered bytes, which keeps every error response byte-identical
// to the pre-streaming implementation. Responses are JSON for both
// request content types, so dedup-window replay and WAL boot recovery
// are unchanged.

// ndjsonContentType is the streaming request content type; the server
// advertises support via the ndjsonHeader response header, which the
// client uses to upgrade (JSON remains the fallback).
const ndjsonContentType = "application/x-ndjson"

// ndjsonHeader is set to "1" on every observations response, telling
// clients the scenario endpoint accepts application/x-ndjson bodies.
const ndjsonHeader = "Placemond-Ndjson"

// maxObsBody bounds the observation request body (same limit as the
// generic decodeJSON path).
const maxObsBody = 1 << 20

// emptyObsBody is the response body for a batch that emitted no events —
// byte-identical to json.Marshal(obsResponse{Events: []eventJSON{}})
// plus the trailing newline json.Encoder appends. The slice is shared
// (responses and dedup entries reference it); it must never be mutated.
var emptyObsBody = []byte("{\"events\":[]}\n")

// obsScratch is the pooled per-request ingest state: the buffered body
// and the decoded batch. Everything is reused across requests; only the
// batch ID (when present) is materialized as a string, because the dedup
// window keys on it.
type obsScratch struct {
	buf     []byte
	batchID string
	time    float64
	conns   []int
	ups     []bool
}

var obsScratchPool = sync.Pool{
	New: func() any { return &obsScratch{buf: make([]byte, 0, 4096)} },
}

func getObsScratch() *obsScratch {
	sc := obsScratchPool.Get().(*obsScratch)
	sc.buf = sc.buf[:0]
	sc.batchID = ""
	sc.time = 0
	sc.conns = sc.conns[:0]
	sc.ups = sc.ups[:0]
	return sc
}

func putObsScratch(sc *obsScratch) {
	if cap(sc.buf) > maxObsBody/4 {
		// Don't let one huge batch pin a megabyte per pooled entry.
		sc.buf = make([]byte, 0, 4096)
	}
	obsScratchPool.Put(sc)
}

// readBody buffers the whole request body into sc.buf, enforcing the
// size limit. It writes the 413 itself (and returns false) on overflow.
func readBody(sc *obsScratch, w http.ResponseWriter, r *http.Request) bool {
	body := http.MaxBytesReader(w, r.Body, maxObsBody)
	for {
		if len(sc.buf) == cap(sc.buf) {
			sc.buf = append(sc.buf, 0)[:len(sc.buf)]
		}
		n, err := body.Read(sc.buf[len(sc.buf):cap(sc.buf)])
		sc.buf = sc.buf[:len(sc.buf)+n]
		if err == io.EOF {
			return true
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			} else {
				writeError(w, http.StatusBadRequest, "reading body: %v", err)
			}
			return false
		}
	}
}

// --- hand-rolled JSON scanner ---

// obsParser scans the fixed observationsRequest shape. Every method
// reports false on anything unexpected, which sends the request down the
// stdlib fallback path; the scanner never needs to produce an error
// message of its own.
type obsParser struct {
	b []byte
	i int
}

func (p *obsParser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// eat consumes c (after whitespace) or reports false.
func (p *obsParser) eat(c byte) bool {
	p.skipWS()
	if p.i >= len(p.b) || p.b[p.i] != c {
		return false
	}
	p.i++
	return true
}

// peek returns the next non-space byte without consuming it.
func (p *obsParser) peek() (byte, bool) {
	p.skipWS()
	if p.i >= len(p.b) {
		return 0, false
	}
	return p.b[p.i], true
}

// str scans a JSON string with no escapes and returns the raw bytes
// between the quotes. Escapes and control characters report false (the
// fallback handles them).
func (p *obsParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// number scans one JSON number token and validates it against the JSON
// grammar (-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?). strconv is
// more permissive than the grammar ("+5", "01", "1.", ".5"), so shapes
// strconv would accept but encoding/json rejects must fail here to keep
// the fallback's error responses authoritative.
func (p *obsParser) number() ([]byte, bool) {
	p.skipWS()
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.i++
		} else {
			break
		}
	}
	tok := p.b[start:p.i]
	if !validJSONNumber(tok) {
		return nil, false
	}
	return tok, true
}

// validJSONNumber checks tok against RFC 8259's number grammar.
func validJSONNumber(tok []byte) bool {
	i, n := 0, len(tok)
	if i < n && tok[i] == '-' {
		i++
	}
	switch {
	case i < n && tok[i] == '0':
		i++
	case i < n && tok[i] >= '1' && tok[i] <= '9':
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < n && tok[i] == '.' {
		i++
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < n && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < n && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= n || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < n && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == n
}

// intTok parses a strict integer (no fraction, no exponent) — the shape
// encoding/json accepts for an int field.
func (p *obsParser) intTok() (int, bool) {
	tok, ok := p.number()
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(string(tok)) // no alloc: tok stays on the stack
	if err != nil {
		return 0, false
	}
	return v, true
}

// float parses a float64, rejecting range overflow (the fallback
// reproduces encoding/json's overflow error).
func (p *obsParser) float() (float64, bool) {
	tok, ok := p.number()
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// boolean parses true/false.
func (p *obsParser) boolean() (bool, bool) {
	p.skipWS()
	if bytes.HasPrefix(p.b[p.i:], []byte("true")) {
		p.i += 4
		return true, true
	}
	if bytes.HasPrefix(p.b[p.i:], []byte("false")) {
		p.i += 5
		return false, true
	}
	return false, false
}

// report scans one {"connection": N, "up": B} object into sc. Missing
// keys default to the zero value, duplicate keys take the last write —
// both matching encoding/json.
func (p *obsParser) report(sc *obsScratch) bool {
	if !p.eat('{') {
		return false
	}
	conn, up := 0, false
	if c, ok := p.peek(); ok && c == '}' {
		p.i++
		sc.conns = append(sc.conns, conn)
		sc.ups = append(sc.ups, up)
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.eat(':') {
			return false
		}
		switch string(key) {
		case "connection":
			if conn, ok = p.intTok(); !ok {
				return false
			}
		case "up":
			if up, ok = p.boolean(); !ok {
				return false
			}
		default:
			return false
		}
		c, ok := p.peek()
		if !ok {
			return false
		}
		p.i++
		if c == '}' {
			sc.conns = append(sc.conns, conn)
			sc.ups = append(sc.ups, up)
			return true
		}
		if c != ',' {
			return false
		}
	}
}

// header scans the top-level batch_id/time keys shared by the JSON
// document ("reports" allowed when withReports) and the NDJSON header
// line (withReports false).
func (p *obsParser) header(sc *obsScratch, withReports bool) bool {
	if !p.eat('{') {
		return false
	}
	if c, ok := p.peek(); ok && c == '}' {
		p.i++
		return true
	}
	for {
		key, ok := p.str()
		if !ok || !p.eat(':') {
			return false
		}
		switch string(key) {
		case "batch_id":
			id, ok := p.str()
			if !ok {
				return false
			}
			for _, c := range id {
				if c >= 0x80 {
					// encoding/json sanitizes invalid UTF-8; defer to it so
					// the dedup key matches what the stdlib path would use.
					return false
				}
			}
			sc.batchID = string(id)
		case "time":
			if sc.time, ok = p.float(); !ok {
				return false
			}
		case "reports":
			// A duplicate reports key replaces the slice, matching
			// json.Unmarshal's overwrite semantics.
			sc.conns = sc.conns[:0]
			sc.ups = sc.ups[:0]
			if !withReports || !p.reports(sc) {
				return false
			}
		default:
			return false
		}
		c, ok := p.peek()
		if !ok {
			return false
		}
		p.i++
		if c == '}' {
			return true
		}
		if c != ',' {
			return false
		}
	}
}

// reports scans the reports array.
func (p *obsParser) reports(sc *obsScratch) bool {
	if !p.eat('[') {
		return false
	}
	if c, ok := p.peek(); ok && c == ']' {
		p.i++
		return true
	}
	for {
		if !p.report(sc) {
			return false
		}
		c, ok := p.peek()
		if !ok {
			return false
		}
		p.i++
		if c == ']' {
			return true
		}
		if c != ',' {
			return false
		}
	}
}

// parseObsJSON scans a whole application/json observations body into sc.
// False means "let the stdlib decoder have it", not necessarily
// malformed.
func parseObsJSON(sc *obsScratch) bool {
	p := obsParser{b: sc.buf}
	if !p.header(sc, true) {
		return false
	}
	p.skipWS()
	return p.i == len(p.b) // trailing data falls back too
}

// parseObsNDJSON scans an application/x-ndjson body: a header line, then
// one report per line. Blank lines are permitted (a trailing newline is
// the common case). Unlike the JSON path there is no fallback decoder —
// the format is new, so the scanner's verdict is final and err carries
// the 400 message.
func parseObsNDJSON(sc *obsScratch) error {
	rest := sc.buf
	line, rest, ok := nextLine(rest)
	if !ok {
		return fmt.Errorf("empty NDJSON body")
	}
	p := obsParser{b: line}
	if !p.header(sc, false) {
		return fmt.Errorf("line 1: malformed NDJSON header object")
	}
	p.skipWS()
	if p.i != len(p.b) {
		return fmt.Errorf("line 1: trailing data after NDJSON header object")
	}
	for n := 2; ; n++ {
		line, rest, ok = nextLine(rest)
		if !ok {
			return nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		p := obsParser{b: line}
		if !p.report(sc) {
			return fmt.Errorf("line %d: malformed NDJSON report object", n)
		}
		p.skipWS()
		if p.i != len(p.b) {
			return fmt.Errorf("line %d: trailing data after NDJSON report object", n)
		}
	}
}

// nextLine splits off the next newline-terminated line; ok is false when
// the input is exhausted.
func nextLine(b []byte) (line, rest []byte, ok bool) {
	if len(b) == 0 {
		return nil, nil, false
	}
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, true
}

// decodeObsFallback re-decodes the buffered body with the strict stdlib
// decoder, reproducing the pre-streaming error responses byte for byte.
// It returns false when it wrote the error response itself.
func decodeObsFallback(w http.ResponseWriter, body []byte, v *observationsRequest) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// decodeObservations fills sc from the request, preferring the zero-alloc
// scanner and falling back to encoding/json for anything irregular. It
// writes the 4xx itself and reports false on failure.
func decodeObservations(sc *obsScratch, w http.ResponseWriter, r *http.Request) bool {
	if !readBody(sc, w, r) {
		return false
	}
	if r.Header.Get("Content-Type") == ndjsonContentType {
		if err := parseObsNDJSON(sc); err != nil {
			writeError(w, http.StatusBadRequest, "invalid NDJSON body: %v", err)
			return false
		}
		return true
	}
	if parseObsJSON(sc) {
		return true
	}
	// Irregular document: reset and let the stdlib decoder either accept
	// it (escaped strings, exotic-but-valid spacing) or produce the
	// canonical error response.
	sc.batchID = ""
	sc.time = 0
	sc.conns = sc.conns[:0]
	sc.ups = sc.ups[:0]
	var req observationsRequest
	if !decodeObsFallback(w, sc.buf, &req) {
		return false
	}
	sc.batchID = req.BatchID
	sc.time = req.Time
	for _, rep := range req.Reports {
		sc.conns = append(sc.conns, rep.Connection)
		sc.ups = append(sc.ups, rep.Up)
	}
	return true
}

func (s *Server) serveObservations(t *tenant, w http.ResponseWriter, r *http.Request) {
	sp := trace.FromContext(r.Context())
	sc := getObsScratch()
	defer putObsScratch(sc)
	st := sp.StartStage("decode")
	ok := decodeObservations(sc, w, r)
	st.EndCount("reports", len(sc.conns))
	if !ok {
		return
	}
	// Advertise the streaming content type so clients can upgrade their
	// next batch; set before any write, replays included.
	w.Header().Set(ndjsonHeader, "1")
	if len(sc.conns) == 0 {
		writeError(w, http.StatusBadRequest, "no reports in batch")
		return
	}
	if s.wlog != nil || s.cluster != nil {
		if s.wlog != nil && s.rejectReadOnly(w) {
			return
		}
		// Apply and append must not interleave across batches: replay
		// re-applies in log order, so log order has to equal apply order.
		// The per-tenant lock serializes same-tenant batches; the shared
		// read lock lets compaction capture a state that matches the log
		// position exactly. In cluster mode the same per-tenant lock is
		// the migration fence: a migration snapshots under it, so a batch
		// that acquires it must re-check for a handoff armed while it
		// waited — applying after the fence would silently diverge the
		// two nodes' states. Such a batch releases the lock, waits the
		// migration out, and answers 307 toward the new owner (the body
		// is already consumed, so the client re-sends it there): the
		// batch is never applied post-fence and never dropped.
		for {
			t.ingestMu.Lock()
			if s.cluster == nil {
				break
			}
			h := t.currentHandoff()
			if h == nil {
				break
			}
			t.ingestMu.Unlock()
			if !s.resolveHandoff(h, w, r, true) {
				return
			}
		}
		defer t.ingestMu.Unlock()
		if s.wlog != nil {
			s.walMu.RLock()
			defer s.walMu.RUnlock()
			if s.rejectReadOnly(w) {
				// Mode may have flipped while waiting on the locks.
				return
			}
		}
	}
	if t.dedup != nil && sc.batchID != "" {
		st := sp.StartStage("dedup")
		cached, hit := t.dedup.lookup(sc.batchID)
		st.EndDetail("batch_id=%s hit=%t", sc.batchID, hit)
		if hit {
			// Already applied: replay the original answer byte for byte
			// so the retrying client observes the events it missed.
			s.obsReplayed.Inc()
			sp.Annotate("replayed", true)
			w.Header().Set("Placemond-Replayed", "true")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(cached.status)
			w.Write(cached.body)
			return
		}
	}
	ingest := sp.StartStage("ingest")
	n := t.mon.NumConnections()
	for i, conn := range sc.conns {
		if conn < 0 || conn >= n {
			// Validated up front so a bad entry rejects the whole batch
			// without side effects.
			ingest.EndDetail("rejected report %d", i)
			writeError(w, http.StatusBadRequest,
				"report %d: connection %d out of range [0, %d)", i, conn, n)
			return
		}
	}

	events, err := t.mon.ReportBatch(sc.time, sc.conns, sc.ups)
	if errors.Is(err, monitord.ErrClosed) {
		// The scenario was deleted between tenant resolution and apply.
		ingest.EndDetail("scenario removed")
		writeError(w, http.StatusConflict, "scenario %q was removed", t.id)
		return
	}
	if err != nil {
		// Unreachable after validation; kept as a hard failure signal.
		ingest.EndDetail("error")
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	var (
		out   obsResponse
		diags []*diagnosisJSON
	)
	if len(events) > 0 {
		out, diags = buildObsResponse(events)
	}
	if s.wlog != nil {
		// Append-before-ack: the batch (and each emitted diagnosis) must
		// be durable before the client hears 200. A failed append flips
		// the daemon read-only — the batch was applied in memory but not
		// logged, and freezing further mutations caps the divergence at
		// this one unacknowledged batch, which the client will retry
		// after the restart that recovers pre-batch state.
		walStage := sp.StartStage("wal")
		err := s.walAppendIngest(t, sc.batchID, sc.time, sc.conns, sc.ups, events, diags)
		walStage.EndDetail("records=%d ok=%t", 1+len(events), err == nil)
		if err != nil {
			ingest.EndDetail("wal append failed")
			respondReadOnly(w)
			return
		}
	}
	s.obsIngested.Add(float64(len(sc.conns)))
	t.obsIngested.Add(float64(len(sc.conns)))
	for _, ev := range events {
		if c, ok := s.eventTotal[ev.Kind]; ok {
			c.Inc()
		}
	}
	// The legacy unlabeled gauge keeps its pre-registry meaning: the
	// default scenario's outage state.
	s.setOutageGauges(t)

	for _, diag := range diags {
		if diag != nil {
			// Every diagnosis the daemon emits is by construction fresh
			// and good: remember it for the stale-serving fallback.
			t.recordGoodDiagnosis(diag)
		}
	}
	ingest.EndCount("events", len(events))
	body := emptyObsBody
	if len(events) > 0 {
		b, err := json.Marshal(out)
		if err != nil {
			writeJSON(w, http.StatusOK, out)
			return
		}
		body = append(b, '\n')
	}
	if t.dedup != nil && sc.batchID != "" {
		if t.dedup.store(sc.batchID, dedupEntry{status: http.StatusOK, body: body}) {
			s.dedupGauge.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
