package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestPoolDrainCompletesInFlightJobs: close() must let jobs already
// dequeued-or-queued finish and deliver their results, while concurrent
// and subsequent submits are rejected with ErrPoolClosed.
func TestPoolDrainCompletesInFlightJobs(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	p := newPool(func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		started <- struct{}{}
		<-release
		return &PlacementResult{Hosts: []int{int(req.Seed)}}, nil
	}, 1, 3, metrics.NewRegistry())

	// One job running in the worker, three parked in a now-full queue —
	// full, so the rejection probe below can never sneak a job in while
	// racing close().
	type outcome struct {
		res *PlacementResult
		err error
	}
	results := make(chan outcome, 4)
	var wg sync.WaitGroup
	submit := func(seed int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.submit(context.Background(), PlacementRequest{Seed: seed})
			results <- outcome{res, err}
		}()
	}
	submit(0)
	<-started // the worker holds job 0 now
	for seed := int64(1); seed <= 3; seed++ {
		submit(seed)
	}
	// Wait until the three queued jobs are actually enqueued (submit
	// either parks them in the channel or would have errored).
	deadline := time.After(2 * time.Second)
	for len(p.queue) != 3 {
		select {
		case <-deadline:
			t.Fatalf("queue depth = %d, want 3", len(p.queue))
		case <-time.After(time.Millisecond):
		}
	}

	// Drain concurrently with the stuck jobs.
	closed := make(chan struct{})
	go func() {
		p.close()
		close(closed)
	}()

	// close() marks the pool closed immediately; a fresh submit must be
	// turned away without blocking.
	rejectDeadline := time.After(2 * time.Second)
	for {
		_, err := p.submit(context.Background(), PlacementRequest{Seed: 99})
		if errors.Is(err, ErrPoolClosed) {
			break
		}
		select {
		case <-rejectDeadline:
			t.Fatalf("submit during drain: err = %v, want ErrPoolClosed", err)
		case <-time.After(time.Millisecond):
		}
	}

	select {
	case <-closed:
		t.Fatalf("close returned while jobs were still in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(release) // let the worker finish all four jobs
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatalf("close did not return after jobs finished")
	}
	wg.Wait()
	close(results)

	got := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("drained job failed: %v", r.err)
		}
		if r.res == nil {
			t.Fatalf("drained job lost its result")
		}
		got++
	}
	if got != 4 {
		t.Fatalf("completed jobs = %d, want 4 (1 running + 3 queued)", got)
	}

	// After drain, rejection is permanent.
	if _, err := p.submit(context.Background(), PlacementRequest{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-drain submit err = %v, want ErrPoolClosed", err)
	}
}

// TestPoolCloseIdempotent: double close must not panic or deadlock.
func TestPoolCloseIdempotent(t *testing.T) {
	p := newPool(func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		return &PlacementResult{}, nil
	}, 2, 2, metrics.NewRegistry())
	p.close()
	p.close()
}
