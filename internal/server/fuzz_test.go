package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzObservations throws arbitrary bytes at the POST /v1/observations
// decode path. The contract under fuzz: the handler never panics (a panic
// would surface as a 500 through the recovery middleware, or crash the
// fuzz worker outright) and malformed input is always answered with a
// 4xx, never a 5xx.
func FuzzObservations(f *testing.F) {
	seeds := []string{
		`{"time": 1, "reports": [{"connection": 0, "up": false}]}`,
		`{"batch_id": "b-1", "time": 1, "reports": [{"connection": 1, "up": true}]}`,
		``,
		`{}`,
		`null`,
		`[]`,
		`{"time": 1, "reports": []}`,
		`{"time": 1, "reports": [{"connection": -1, "up": false}]}`,
		`{"time": 1, "reports": [{"connection": 99999999, "up": true}]}`,
		`{"time": "yesterday", "reports": [{"connection": 0, "up": false}]}`,
		`{"time": 1, "reports": [{"connection": 0, "up": false}]} trailing`,
		`{"time": 1, "reports": [{"connection": 0, "up": false}], "extra": 1}`,
		`{"batch_id": 42, "time": 1, "reports": [{"connection": 0}]}`,
		`{"time": 1e309, "reports": [{"connection": 0, "up": false}]}`,
		`{"time": 1, "reports": [{"connection": 0.5, "up": false}]}`,
		strings.Repeat(`{"time":1,`, 1000),
		"\x00\xff\xfe",
		`{"reports": ` + strings.Repeat("[", 200) + strings.Repeat("]", 200) + `}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	srv, err := New(testConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q answered %d:\n%s", body, rec.Code, rec.Body.String())
		}
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("body %q answered %d, want 200 or 4xx", body, rec.Code)
		}
	})
}
