package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// This file pins the streaming-ingest edge cases: the final NDJSON line
// arriving without a trailing newline, blank interior lines in all their
// encodings, bodies landing exactly on the pooled-buffer boundary, and a
// differential corpus holding the hand-rolled scanner byte-identical to
// the stdlib reference on the same edges.

// postObs posts one body to a fresh server and returns the status and
// raw response. Every call gets its own server so monitor state never
// bleeds between compared bodies.
func postObs(t *testing.T, contentType, body string) (int, string) {
	t.Helper()
	_, ts := newTestServer(t, testConfig())
	resp, raw := postCT(t, ts.URL+"/v1/observations", contentType, body)
	return resp.StatusCode, raw
}

// TestNDJSONFinalLineNoNewline pins that a batch whose last report line
// is not newline-terminated (a client that doesn't end its stream with
// '\n') behaves byte-for-byte like its terminated twin.
func TestNDJSONFinalLineNoNewline(t *testing.T) {
	terminated := "{\"time\": 1}\n{\"connection\": 0, \"up\": false}\n{\"connection\": 1, \"up\": true}\n"
	bare := strings.TrimSuffix(terminated, "\n")

	codeT, rawT := postObs(t, ndjsonContentType, terminated)
	codeB, rawB := postObs(t, ndjsonContentType, bare)
	if codeT != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("status terminated=%d bare=%d (%s | %s)", codeT, codeB, rawT, rawB)
	}
	if rawT != rawB {
		t.Fatalf("unterminated final line diverged:\n%s\nvs\n%s", rawB, rawT)
	}

	// A header-only body without a newline still parses as a header and
	// fails for the right reason: no reports, not a malformed header.
	code, raw := postObs(t, ndjsonContentType, `{"time": 1}`)
	if code != http.StatusBadRequest || !strings.Contains(raw, "no reports in batch") {
		t.Fatalf("bare header: %d %q, want 400 mentioning no reports", code, raw)
	}

	// An unterminated final line that is malformed is still addressed by
	// its line number.
	code, raw = postObs(t, ndjsonContentType, "{\"time\": 1}\n{\"connection\": 0, \"up\": false}\nnonsense")
	if code != http.StatusBadRequest || !strings.Contains(raw, "line 3: malformed NDJSON report object") {
		t.Fatalf("unterminated malformed line: %d %q", code, raw)
	}
}

// TestNDJSONBlankLineVariants pins blank-interior-line tolerance across
// encodings: empty lines, whitespace-only lines, tab lines, CRLF blank
// lines, and CRLF-terminated report lines must all decode identically to
// the canonical LF-separated batch.
func TestNDJSONBlankLineVariants(t *testing.T) {
	canonical := "{\"time\": 1}\n{\"connection\": 0, \"up\": false}\n{\"connection\": 1, \"up\": true}\n"
	wantCode, wantRaw := postObs(t, ndjsonContentType, canonical)
	if wantCode != http.StatusOK {
		t.Fatalf("canonical batch rejected: %d %s", wantCode, wantRaw)
	}

	variants := map[string]string{
		"empty interior line":   "{\"time\": 1}\n\n{\"connection\": 0, \"up\": false}\n\n{\"connection\": 1, \"up\": true}\n",
		"space-only line":       "{\"time\": 1}\n   \n{\"connection\": 0, \"up\": false}\n \n{\"connection\": 1, \"up\": true}\n",
		"tab-only line":         "{\"time\": 1}\n\t\n{\"connection\": 0, \"up\": false}\n\t \n{\"connection\": 1, \"up\": true}\n",
		"CRLF blank line":       "{\"time\": 1}\n\r\n{\"connection\": 0, \"up\": false}\n\r\n{\"connection\": 1, \"up\": true}\n",
		"CRLF-terminated lines": "{\"time\": 1}\r\n{\"connection\": 0, \"up\": false}\r\n{\"connection\": 1, \"up\": true}\r\n",
		"trailing blank run":    "{\"time\": 1}\n{\"connection\": 0, \"up\": false}\n{\"connection\": 1, \"up\": true}\n\n\n  \n",
	}
	for name, body := range variants {
		code, raw := postObs(t, ndjsonContentType, body)
		if code != wantCode || raw != wantRaw {
			t.Errorf("%s: %d %q, want %d %q", name, code, raw, wantCode, wantRaw)
		}
	}
}

// padTo pads a document with trailing newlines until it is exactly size
// bytes — whitespace after the document is valid in both encodings, so
// padding changes only where the body lands relative to the pooled read
// buffer.
func padTo(t *testing.T, doc string, size int) string {
	t.Helper()
	if len(doc) > size {
		t.Fatalf("document of %d bytes cannot pad to %d", len(doc), size)
	}
	body := doc + strings.Repeat("\n", size-len(doc))
	if len(body) != size {
		t.Fatalf("padded to %d, want %d", len(body), size)
	}
	return body
}

// TestIngestBodyAtBufferBoundary pins readBody's growth edge: the pooled
// scratch buffer starts at 4096 bytes capacity, so bodies of 4095, 4096,
// and 4097 bytes straddle the len==cap grow-and-reread path in every
// way. All must decode exactly like their unpadded form.
func TestIngestBodyAtBufferBoundary(t *testing.T) {
	jsonDoc := `{"time": 1, "reports": [{"connection": 0, "up": false}]}`
	wantCode, wantRaw := postObs(t, "application/json", jsonDoc)
	if wantCode != http.StatusOK {
		t.Fatalf("unpadded document rejected: %d %s", wantCode, wantRaw)
	}
	for _, size := range []int{4095, 4096, 4097, 8192} {
		code, raw := postObs(t, "application/json", padTo(t, jsonDoc, size))
		if code != wantCode || raw != wantRaw {
			t.Errorf("JSON body of %d bytes: %d %q, want %d %q", size, code, raw, wantCode, wantRaw)
		}
	}

	// NDJSON at the boundary with an unterminated final line: the last
	// byte of the buffer is the last byte of the last report.
	ndDoc := "{\"time\": 1}\n{\"connection\": 0, \"up\": false}\n{\"connection\": 1, \"up\": true}"
	ndWantCode, ndWantRaw := postObs(t, ndjsonContentType, ndDoc)
	if ndWantCode != http.StatusOK {
		t.Fatalf("unpadded NDJSON rejected: %d %s", ndWantCode, ndWantRaw)
	}
	for _, size := range []int{4095, 4096, 4097} {
		// Pad with interior blank lines after the header so the final
		// report line still ends the body without a newline.
		head := "{\"time\": 1}\n"
		tail := "{\"connection\": 0, \"up\": false}\n{\"connection\": 1, \"up\": true}"
		body := head + strings.Repeat("\n", size-len(head)-len(tail)) + tail
		if len(body) != size {
			t.Fatalf("built %d bytes, want %d", len(body), size)
		}
		code, raw := postObs(t, ndjsonContentType, body)
		if code != ndWantCode || raw != ndWantRaw {
			t.Errorf("NDJSON body of %d bytes: %d %q, want %d %q", size, code, raw, ndWantCode, ndWantRaw)
		}
	}
}

// TestHandParserMatchesStdlibEdges extends the differential corpus with
// the edges this sweep is about: bodies at the pooled-buffer boundary
// (valid and malformed), null fields, exotic-but-valid numbers, control
// characters, and trailing-comma shapes. The contract is the same as
// TestHandParserMatchesStdlib: same verdict, same decoded fields, and
// byte-identical error responses.
func TestHandParserMatchesStdlibEdges(t *testing.T) {
	valid := `{"time": 1, "reports": [{"connection": 0, "up": false}]}`
	invalid := `{"time": 01, "reports": []}`
	cases := []string{
		padTo(t, valid, 4095),
		padTo(t, valid, 4096),
		padTo(t, valid, 4097),
		padTo(t, invalid, 4096),
		`{"reports": null}`,
		`{"batch_id": null, "reports": []}`,
		`{"time": null, "reports": []}`,
		`{"time": -0, "reports": []}`,
		`{"time": 1E+2, "reports": []}`,
		`{"time": 1e-2, "reports": []}`,
		`{"batch_id": "Abc", "reports": []}`,
		"{\"batch_id\": \"a\tb\", \"reports\": []}", // literal control char: invalid
		`{"reports": [{"connection": 0, "up": true},]}`,
		`{"reports": [{"connection": 0, "up": true}, {"connection": 1]}`,
		`{"reports": [[{"connection": 0}]]}`,
		`{"reports": [{"connection": 9223372036854775808, "up": true}]}`, // int64 overflow
		`{"reports": [{"connection": -1, "up": truefalse}]}`,
		"{\"time\": 1, \"reports\": []}\r\n",
		"\r\n{\"time\": 1, \"reports\": []}",
	}
	for _, body := range cases {
		handSC, refSC, handOK, refOK, handResp, refResp := decodeCase(t, body)
		label := body
		if len(label) > 64 {
			label = fmt.Sprintf("%s... (%d bytes)", label[:64], len(body))
		}
		if handOK != refOK {
			t.Errorf("body %q: verdict %v, stdlib %v", label, handOK, refOK)
			continue
		}
		if !handOK {
			if handResp != refResp {
				t.Errorf("body %q: error response %q, stdlib %q", label, handResp, refResp)
			}
			continue
		}
		if handSC.batchID != refSC.batchID || handSC.time != refSC.time ||
			!sameInts(handSC.conns, refSC.conns) || !sameBools(handSC.ups, refSC.ups) {
			t.Errorf("body %q: decoded {%q %v %v %v}, stdlib {%q %v %v %v}", label,
				handSC.batchID, handSC.time, handSC.conns, handSC.ups,
				refSC.batchID, refSC.time, refSC.conns, refSC.ups)
		}
	}
}
