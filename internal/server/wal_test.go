package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// walConfig is scenarioConfig persisting through a write-ahead log in
// dir, with the idempotent-ingest window on.
func walConfig(dir string) Config {
	cfg := scenarioConfig()
	cfg.DedupWindow = 64
	cfg.WAL = &WALConfig{Dir: dir, CompactEvery: -1}
	return cfg
}

// walOp is one step of the deterministic crash-matrix workload.
type walOp struct {
	method string
	path   string
	body   []byte
	// retryOK lists extra statuses a re-driven (retried) op may answer:
	// a create that was logged but never acknowledged replays as 409, a
	// delete as 404. Idempotent outcomes, not failures.
	retryOK []int
}

func obsOp(t testing.TB, path, batchID string, tm float64, up bool) walOp {
	t.Helper()
	body := mustJSON(t, map[string]any{
		"batch_id": batchID,
		"time":     tm,
		"reports": []map[string]any{
			{"connection": 0, "up": up},
			{"connection": 1, "up": up},
		},
	})
	return walOp{method: http.MethodPost, path: path, body: body}
}

// walWorkload builds the op sequence every crash-matrix life drives:
// scenario lifecycle plus interleaved default/scenario ingest with
// alternating outages, so the log carries every record type.
func walWorkload(t testing.TB) []walOp {
	t.Helper()
	spec := mustJSON(t, lineSpec())
	ops := []walOp{
		{method: http.MethodPut, path: "/v1/scenarios/alpha", body: spec,
			retryOK: []int{http.StatusConflict}},
		{method: http.MethodPut, path: "/v1/scenarios/beta", body: spec,
			retryOK: []int{http.StatusConflict}},
	}
	for i := 0; i < 8; i++ {
		up := i%2 == 1 // down, up, down, ... — every batch emits events
		ops = append(ops,
			obsOp(t, "/v1/scenarios/alpha/observations", fmt.Sprintf("a-%d", i), float64(i+1), up),
			obsOp(t, "/v1/observations", fmt.Sprintf("d-%d", i), float64(i+1), up),
		)
	}
	ops = append(ops, walOp{method: http.MethodDelete, path: "/v1/scenarios/beta",
		retryOK: []int{http.StatusNotFound}})
	for i := 8; i < 12; i++ {
		ops = append(ops,
			obsOp(t, "/v1/scenarios/alpha/observations", fmt.Sprintf("a-%d", i), float64(i+1), i%2 == 1))
	}
	return ops
}

// driveOps sends ops[from:] in order, recording each acknowledged op's
// body in bodies. It returns the index of the first op refused with 503
// (the daemon crashed into read-only mode), or len(ops) when every op
// was acknowledged. A retried op answering one of its retryOK statuses
// counts as acknowledged.
func driveOps(t testing.TB, base string, ops []walOp, from int, bodies map[int]string) int {
	t.Helper()
	for i := from; i < len(ops); i++ {
		op := ops[i]
		resp, raw, err := rawReq(op.method, base+op.path, op.body)
		if err != nil {
			t.Fatalf("op %d %s %s: %v", i, op.method, op.path, err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Placemond-Read-Only") != "true" {
				t.Fatalf("op %d: 503 without Placemond-Read-Only header", i)
			}
			return i
		}
		okStatus := resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated ||
			resp.StatusCode == http.StatusNoContent
		for _, code := range op.retryOK {
			if from > 0 && resp.StatusCode == code {
				okStatus = true
			}
		}
		if !okStatus {
			t.Fatalf("op %d %s %s: status %d body %s", i, op.method, op.path, resp.StatusCode, raw)
		}
		if bodies != nil && resp.StatusCode == http.StatusOK && op.method == http.MethodPost {
			bodies[i] = raw
		}
	}
	return len(ops)
}

func mustExport(t testing.TB, s *Server) []byte {
	t.Helper()
	b, err := s.StateExport()
	if err != nil {
		t.Fatalf("StateExport: %v", err)
	}
	return b
}

// TestWALServerRecoveryRoundTrip drives the workload over HTTP, restarts
// the daemon twice — once from the raw log, once from a compaction
// snapshot — and checks every restart rebuilds byte-identical state,
// including a dedup window that still replays the original bodies.
func TestWALServerRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ops := walWorkload(t)
	bodies := map[int]string{}

	s1, err := New(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	if n := driveOps(t, ts1.URL, ops, 0, bodies); n != len(ops) {
		t.Fatalf("workload stopped at op %d", n)
	}
	want := mustExport(t, s1)
	if err := s1.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged after workload: %v", err)
	}
	ts1.Close()
	// Abort, not Close: the first restart must recover from the raw log
	// tail with no snapshot to lean on.
	s1.Abort()

	s2, err := New(walConfig(dir))
	if err != nil {
		t.Fatalf("recovery from log tail: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	if got := mustExport(t, s2); string(got) != string(want) {
		t.Fatalf("state after log-tail recovery diverged:\n got %s\nwant %s", got, want)
	}
	if err := s2.VerifyIncremental(); err != nil {
		t.Fatalf("incremental diagnosis diverged after log-tail recovery: %v", err)
	}
	// A retried batch replays the original response byte for byte.
	lastObs := len(ops) - 1
	resp, raw, err := rawReq(ops[lastObs].method, ts2.URL+ops[lastObs].path, ops[lastObs].body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Placemond-Replayed") != "true" {
		t.Fatalf("duplicate batch after restart not replayed (status %d)", resp.StatusCode)
	}
	if raw != bodies[lastObs] {
		t.Fatalf("replayed body diverged:\n got %s\nwant %s", raw, bodies[lastObs])
	}
	ts2.Close()
	// Graceful close folds everything into a snapshot; the second restart
	// recovers from it.
	if err := s2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s3, err := New(walConfig(dir))
	if err != nil {
		t.Fatalf("recovery from snapshot: %v", err)
	}
	defer s3.Close()
	if got := mustExport(t, s3); string(got) != string(want) {
		t.Fatalf("state after snapshot recovery diverged:\n got %s\nwant %s", got, want)
	}
	if _, err := wal.Check(dir, false); err != nil {
		t.Fatalf("fsck after round trip: %v", err)
	}
}

// TestCrashServerMatrix is the end-to-end half of the crash harness:
// seeded byte budgets kill the filesystem under the serving stack —
// mid-append, mid-rotation, mid-compaction — and after each kill a fresh
// daemon must recover, finish the workload via client retries, and end
// with state byte-identical to a never-crashed reference.
func TestCrashServerMatrix(t *testing.T) {
	ops := walWorkload(t)

	// Reference life: no crash. Its responses are the oracle and its FS
	// cost sizes the seeded budgets.
	refDir := t.TempDir()
	refFS := wal.NewCrashFSBudget(wal.OSFS{}, 1<<60)
	refCfg := walConfig(refDir)
	refCfg.WAL.FS = refFS
	refSrv, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refBodies := map[int]string{}
	refTS := httptest.NewServer(refSrv.Handler())
	if n := driveOps(t, refTS.URL, ops, 0, refBodies); n != len(ops) {
		t.Fatalf("reference stopped at op %d", n)
	}
	want := mustExport(t, refSrv)
	refTS.Close()
	refSrv.Abort()
	cost := refFS.Spent()
	if cost <= 0 {
		t.Fatal("reference consumed no budget")
	}

	modes := []struct {
		name         string
		segmentBytes int64
		compactEvery int
	}{
		{"append", 0, -1},
		{"rotate", 4 << 10, -1},
		{"compact", 4 << 10, 8},
	}
	const seeds = 5
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(m.name)) * 7919))
			for seed := 0; seed < seeds; seed++ {
				budget := 1 + rng.Int63n(cost)
				dir := t.TempDir()

				// First life: crash-injected. New itself may die mid-boot.
				fs := wal.NewCrashFSBudget(wal.OSFS{}, budget)
				cfg := walConfig(dir)
				cfg.WAL.FS = fs
				cfg.WAL.SegmentBytes = m.segmentBytes
				cfg.WAL.CompactEvery = m.compactEvery
				stopped := 0
				ackBodies := map[int]string{}
				if srv, err := New(cfg); err == nil {
					ts := httptest.NewServer(srv.Handler())
					stopped = driveOps(t, ts.URL, ops, 0, ackBodies)
					ts.Close()
					srv.Abort()
				}
				// Everything acknowledged before the kill matched the
				// reference byte for byte.
				for i, body := range ackBodies {
					if body != refBodies[i] {
						t.Fatalf("seed %d budget %d: acked op %d body diverged from reference", seed, budget, i)
					}
				}

				// Second life: injection lifted; recovery must succeed and
				// the retried tail must complete.
				cfg2 := walConfig(dir)
				cfg2.WAL.SegmentBytes = m.segmentBytes
				cfg2.WAL.CompactEvery = m.compactEvery
				srv2, err := New(cfg2)
				if err != nil {
					t.Fatalf("seed %d budget %d: recovery refused: %v", seed, budget, err)
				}
				ts2 := httptest.NewServer(srv2.Handler())
				if n := driveOps(t, ts2.URL, ops, stopped, nil); n != len(ops) {
					t.Fatalf("seed %d budget %d: retried workload stopped again at op %d", seed, budget, n)
				}
				if got := mustExport(t, srv2); string(got) != string(want) {
					t.Fatalf("seed %d budget %d: recovered state diverged from never-crashed reference:\n got %s\nwant %s",
						seed, budget, got, want)
				}
				if err := srv2.VerifyIncremental(); err != nil {
					t.Fatalf("seed %d budget %d: incremental diagnosis diverged after recovery: %v", seed, budget, err)
				}
				// A post-crash duplicate of an acknowledged batch replays
				// the exact original response.
				if stopped > 0 {
					for i := stopped - 1; i >= 0; i-- {
						if _, isObs := ackBodies[i]; !isObs {
							continue
						}
						resp, raw, err := rawReq(ops[i].method, ts2.URL+ops[i].path, ops[i].body)
						if err != nil {
							t.Fatal(err)
						}
						if resp.Header.Get("Placemond-Replayed") != "true" {
							t.Fatalf("seed %d: duplicate of acked op %d not replayed (status %d)", seed, i, resp.StatusCode)
						}
						if raw != refBodies[i] {
							t.Fatalf("seed %d: replayed body for op %d diverged from reference", seed, i)
						}
						break
					}
				}
				ts2.Close()
				if err := srv2.Close(); err != nil {
					t.Fatalf("seed %d: close after recovery: %v", seed, err)
				}
				if _, err := wal.Check(dir, false); err != nil {
					t.Fatalf("seed %d: fsck after recovery: %v", seed, err)
				}
			}
		})
	}
}

// TestWALReadOnlyDegradation exhausts the filesystem mid-flight and
// checks the daemon degrades instead of dying: mutations answer 503 with
// Placemond-Read-Only, reads keep serving, and the mode is sticky.
func TestWALReadOnlyDegradation(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	// Enough budget to boot and accept a few batches, never all of them.
	cfg.WAL.FS = wal.NewCrashFSBudget(wal.OSFS{}, 3000)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Abort()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sawReadOnly := false
	for i := 0; i < 100 && !sawReadOnly; i++ {
		op := obsOp(t, "/v1/observations", fmt.Sprintf("ro-%d", i), float64(i+1), i%2 == 0)
		resp, _, err := rawReq(op.method, ts.URL+op.path, op.body)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Placemond-Read-Only") != "true" {
				t.Fatal("503 without Placemond-Read-Only header")
			}
			sawReadOnly = true
		default:
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
	}
	if !sawReadOnly {
		t.Fatal("budget never exhausted: read-only mode never entered")
	}
	if !srv.ReadOnly() {
		t.Fatal("ReadOnly() = false after a refused mutation")
	}

	// Sticky: scenario mutations are refused too.
	resp, _, err := rawReq(http.MethodPut, ts.URL+"/v1/scenarios/late", mustJSON(t, lineSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Placemond-Read-Only") != "true" {
		t.Fatalf("scenario create in read-only mode: status %d", resp.StatusCode)
	}
	// Reads and placements still serve.
	if resp, _, err := rawReq(http.MethodGet, ts.URL+"/v1/diagnosis", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnosis in read-only mode: status %d err %v", resp.StatusCode, err)
	}
	if resp, _, err := rawReq(http.MethodGet, ts.URL+"/healthz", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz in read-only mode: status %d err %v", resp.StatusCode, err)
	}
}

// TestWALAuditEndpoint checks the hash-chained audit ledger end to end:
// events pinned to WAL records, a verified chain while intact, and loud
// detection once a bit flips on disk.
func TestWALAuditEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	spec := mustJSON(t, lineSpec())
	if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/alpha", spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 6; i++ {
		op := obsOp(t, "/v1/scenarios/alpha/observations", fmt.Sprintf("au-%d", i), float64(i+1), i%2 == 1)
		if resp, body := doReq(t, op.method, ts.URL+op.path, op.body); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, resp.StatusCode, body)
		}
	}

	var audit struct {
		Scenario    string       `json:"scenario"`
		TotalEvents int          `json:"total_events"`
		Events      []auditEvent `json:"events"`
		Chain       struct {
			Verified bool   `json:"verified"`
			HeadSeq  uint64 `json:"head_seq"`
			HeadHash string `json:"head_hash"`
			Error    string `json:"error,omitempty"`
		} `json:"chain"`
	}
	resp, raw := doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/alpha/audit", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit: %d %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal([]byte(raw), &audit); err != nil {
		t.Fatalf("audit body: %v", err)
	}
	if audit.TotalEvents == 0 || len(audit.Events) == 0 {
		t.Fatalf("audit ledger empty: %s", raw)
	}
	for _, ev := range audit.Events {
		if ev.Seq == 0 || len(ev.Hash) != 2*wal.HashSize {
			t.Fatalf("audit event not pinned to a WAL record: %+v", ev)
		}
	}
	if !audit.Chain.Verified || audit.Chain.HeadSeq == 0 {
		t.Fatalf("chain not verified: %s", raw)
	}
	// ?limit caps the event list.
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/alpha/audit?limit=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit limit: %d", resp.StatusCode)
	}
	var limited struct {
		Events []auditEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(raw), &limited); err != nil || len(limited.Events) != 1 {
		t.Fatalf("limit=1 returned %d events (err %v)", len(limited.Events), err)
	}

	// Flip one payload bit on disk: the live Verify walk reports the
	// break, and a restart refuses recovery with the offset.
	ts.Close()
	srv.Abort()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Check(dir, false); err == nil {
		t.Fatal("fsck accepted a flipped bit")
	}
	if _, err := New(walConfig(dir)); err == nil {
		t.Fatal("recovery accepted a flipped bit")
	}
}

// TestWALAuditWithoutWAL pins the 501 contract for daemons running
// without a log.
func TestWALAuditWithoutWAL(t *testing.T) {
	_, ts := newTestServer(t, scenarioConfig())
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/default/audit", nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("audit without WAL: status %d, want 501", resp.StatusCode)
	}
}
