package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/tomography"
)

// TestIngestIdempotency: re-delivering a batch under the same batch_id
// must replay the original events instead of re-applying the batch —
// the exactly-once contract a retrying client depends on.
func TestIngestIdempotency(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	body := `{"batch_id": "b-1", "time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`
	resp, first := postJSON(t, ts.URL+"/v1/observations", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first delivery status = %d", resp.StatusCode)
	}
	if kinds := eventKinds(t, first); len(kinds) == 0 || kinds[0] != "outage-started" {
		t.Fatalf("first delivery kinds = %v", kinds)
	}
	ingested := s.obsIngested.Value()

	// Second delivery of the same batch: replayed, byte-identical events,
	// nothing re-ingested.
	resp2, err := http.Post(ts.URL+"/v1/observations", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed delivery status = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Placemond-Replayed") != "true" {
		t.Fatalf("replay header missing; headers = %v", resp2.Header)
	}
	if !strings.Contains(string(raw), "outage-started") {
		t.Fatalf("replayed body lost the original events: %s", raw)
	}
	if got := s.obsIngested.Value(); got != ingested {
		t.Fatalf("replay re-ingested: counter %v → %v", ingested, got)
	}
	if s.obsReplayed.Value() != 1 {
		t.Fatalf("replay counter = %v, want 1", s.obsReplayed.Value())
	}

	// Control: the same reports under a FRESH batch_id are re-applied,
	// and — the states being unchanged — produce zero events. This is
	// exactly the divergence dedup exists to prevent.
	resp3, third := postJSON(t, ts.URL+"/v1/observations",
		`{"batch_id": "b-2", "time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fresh-id delivery status = %d", resp3.StatusCode)
	}
	if kinds := eventKinds(t, third); len(kinds) != 0 {
		t.Fatalf("fresh-id redelivery produced events %v, want none", kinds)
	}
}

// TestIngestWithoutBatchIDStillWorks: the idempotency key is optional.
func TestIngestWithoutBatchIDStillWorks(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, body := postJSON(t, ts.URL+"/v1/observations",
		`{"time": 1, "reports": [{"connection": 0, "up": false}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Placemond-Replayed") != "" {
		t.Fatalf("keyless ingest marked as replay")
	}
}

// TestDedupDisabled: DedupWindow -1 turns the window off and duplicate
// IDs are re-applied like any other batch.
func TestDedupDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DedupWindow = -1
	_, ts := newTestServer(t, cfg)

	body := `{"batch_id": "b-1", "time": 1, "reports": [{"connection": 0, "up": false}]}`
	postJSON(t, ts.URL+"/v1/observations", body)
	resp, second := postJSON(t, ts.URL+"/v1/observations", body)
	if resp.Header.Get("Placemond-Replayed") != "" {
		t.Fatalf("dedup disabled but delivery was replayed")
	}
	if kinds := eventKinds(t, second); len(kinds) != 0 {
		t.Fatalf("no-op redelivery produced events %v", kinds)
	}
}

// TestDedupWindowEviction: the window is bounded FIFO.
func TestDedupWindowEviction(t *testing.T) {
	d := newDedupWindow(2)
	for i := 0; i < 3; i++ {
		d.store(fmt.Sprintf("b-%d", i), dedupEntry{status: 200, body: []byte{byte(i)}})
	}
	if _, ok := d.lookup("b-0"); ok {
		t.Fatalf("oldest entry not evicted at capacity 2")
	}
	for _, id := range []string{"b-1", "b-2"} {
		if _, ok := d.lookup(id); !ok {
			t.Fatalf("%s evicted prematurely", id)
		}
	}
	if d.size() != 2 {
		t.Fatalf("size = %d, want 2", d.size())
	}
	// Refreshing a present ID must not grow the window.
	d.store("b-2", dedupEntry{status: 200, body: []byte("new")})
	if d.size() != 2 {
		t.Fatalf("size after refresh = %d, want 2", d.size())
	}
	if e, _ := d.lookup("b-2"); string(e.body) != "new" {
		t.Fatalf("refresh did not update payload")
	}
}

// ingestOutage drives the server into an outage whose events carry a
// diagnosis, seeding the last-good cache.
func ingestOutage(t *testing.T, url string) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/observations",
		`{"time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %v", resp.StatusCode, body)
	}
}

// TestStaleDiagnosisOnTimeout: when the recompute blows its deadline the
// handler serves the last good diagnosis, marked stale.
func TestStaleDiagnosisOnTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.DiagnosisTimeout = 20 * time.Millisecond
	s, ts := newTestServer(t, cfg)
	ingestOutage(t, ts.URL)

	real := s.diagnoseFn
	s.diagnoseFn = func() (*tomography.Diagnosis, error) {
		time.Sleep(200 * time.Millisecond)
		return real()
	}
	resp, body := getJSON(t, ts.URL+"/v1/diagnosis")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body["stale"] != true {
		t.Fatalf("stale marker missing: %v", body)
	}
	if body["inconsistent"] == true {
		t.Fatalf("timeout misreported as inconsistency: %v", body)
	}
	if body["diagnosis"] == nil {
		t.Fatalf("no diagnosis served despite a cached one: %v", body)
	}
	if age, ok := body["stale_age_seconds"].(float64); !ok || age < 0 {
		t.Fatalf("stale_age_seconds = %v", body["stale_age_seconds"])
	}
	if s.staleServed.Value() != 1 {
		t.Fatalf("stale counter = %v, want 1", s.staleServed.Value())
	}
}

// TestStaleDiagnosisOnRecomputeError: an inconsistent recompute keeps the
// inconsistency flag AND degrades to the last good diagnosis.
func TestStaleDiagnosisOnRecomputeError(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	ingestOutage(t, ts.URL)

	s.diagnoseFn = func() (*tomography.Diagnosis, error) {
		return nil, fmt.Errorf("tomography: no consistent failure set")
	}
	resp, body := getJSON(t, ts.URL+"/v1/diagnosis")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body["inconsistent"] != true {
		t.Fatalf("inconsistency flag missing: %v", body)
	}
	if body["stale"] != true || body["diagnosis"] == nil {
		t.Fatalf("stale fallback missing: %v", body)
	}
}

// TestStaleWithoutCacheDegradesLikeBefore: with no last good diagnosis
// the old behavior (inconsistent, no diagnosis) is preserved.
func TestStaleWithoutCacheDegradesLikeBefore(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	// Reach the outage without ever producing a good diagnosis.
	s.diagnoseFn = func() (*tomography.Diagnosis, error) {
		return nil, fmt.Errorf("tomography: no consistent failure set")
	}
	ingestOutage(t, ts.URL)
	// Ingest events seed the cache through the daemon's internal
	// recompute; empty it so the fallback genuinely has nothing.
	def := s.defaultTenant()
	def.lastGoodMu.Lock()
	def.lastGood = nil
	def.lastGoodMu.Unlock()

	_, body := getJSON(t, ts.URL+"/v1/diagnosis")
	if body["inconsistent"] != true {
		t.Fatalf("inconsistency flag missing: %v", body)
	}
	if body["stale"] == true || body["diagnosis"] != nil {
		t.Fatalf("phantom stale diagnosis served: %v", body)
	}
}

// TestFreshDiagnosisNotMarkedStale: the happy path must not carry the
// staleness marker.
func TestFreshDiagnosisNotMarkedStale(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	ingestOutage(t, ts.URL)
	_, body := getJSON(t, ts.URL+"/v1/diagnosis")
	if body["stale"] == true {
		t.Fatalf("fresh diagnosis marked stale: %v", body)
	}
	if body["diagnosis"] == nil {
		t.Fatalf("no diagnosis on happy path: %v", body)
	}
}
