// Package server is placemond's HTTP serving layer: it wraps the online
// monitoring daemon (internal/monitord) and the placement engine behind a
// small JSON API so that observations can arrive over the network — the
// paper's premise that end-to-end measurements are "a byproduct of
// fulfilling the service" realized as a long-running ingestion service.
//
// The server is multi-tenant: it hosts many independent monitoring
// scenarios (each its own network, placement, monitor state, dedup
// window, and trace ring) behind a sharded registry, so tenants never
// serialize against each other on the hot ingest path. The legacy
// single-scenario routes operate on the tenant named "default" and are
// byte-compatible with the single-network daemon they replace.
//
// Legacy (default-tenant) endpoints:
//
//	POST /v1/observations  ingest connection state transitions → events
//	GET  /v1/diagnosis     current rolling diagnosis + connection states
//	POST /v1/placements    run a placement job on the bounded worker pool
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/traces     recent request traces with per-stage timings
//	GET  /debug/pprof/*    optional profiling (Config.EnablePprof)
//
// Scenario-scoped endpoints (the same wire formats, per tenant):
//
//	POST   /v1/scenarios/{id}/observations
//	GET    /v1/scenarios/{id}/diagnosis
//	POST   /v1/scenarios/{id}/placements
//	GET    /v1/scenarios/{id}/traces
//
// Scenario administration:
//
//	GET    /v1/scenarios        list scenarios
//	PUT    /v1/scenarios/{id}   create from a scenario document
//	GET    /v1/scenarios/{id}   one scenario's status
//	DELETE /v1/scenarios/{id}   drain and remove
//
// Created scenarios are persisted through a registry.Store
// (snapshot-on-write, load-on-boot), so a file-backed daemon restarts
// with the fleet it was serving.
//
// Every request carries a trace ID (minted here or adopted from the
// client's Placemond-Trace-Id header), echoed in the response header,
// attached to every structured log line, and recorded — together with
// named per-stage timings — in a bounded in-memory ring served at
// /debug/traces.
//
// The package depends only on the standard library plus internal/metrics,
// internal/monitord, internal/trace, and internal/bitset; the placement
// engine is injected as a PlaceFunc so the root facade can close over its
// Network without an import cycle.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/metrics"
	"repro/internal/monitord"
	"repro/internal/registry"
	"repro/internal/tomography"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Connection describes one monitored client↔host pair, index-aligned with
// the paths handed to New.
type Connection struct {
	Service int `json:"service"`
	Client  int `json:"client"`
	Host    int `json:"host"`
}

// Config parameterizes New. NumNodes, Paths, Connections, and Place are
// required; everything else has serviceable defaults.
type Config struct {
	// NumNodes is the size of the monitored network's node universe.
	NumNodes int
	// K is the failure budget for the rolling diagnosis (default 1).
	K int
	// Paths are the measurement paths of the deployed placement, one per
	// monitored connection.
	Paths []*bitset.Set
	// Connections is index-aligned metadata for Paths.
	Connections []Connection
	// Place runs one placement job; must be safe for concurrent use.
	Place PlaceFunc
	// Workers is the placement pool size (default: half the CPUs, ≥ 1).
	Workers int
	// QueueDepth bounds the placement backlog (default 8); a full queue
	// rejects with 429.
	QueueDepth int
	// RequestTimeout bounds each request's context (default 15s; ≤ -1
	// disables, 0 means default).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DedupWindow is how many recent batch IDs the idempotent-ingest
	// window remembers; retried or duplicated POST /v1/observations
	// deliveries carrying a remembered batch_id replay the original
	// response instead of re-applying (default 1024; ≤ -1 disables).
	DedupWindow int
	// DiagnosisTimeout bounds the diagnosis recompute in
	// GET /v1/diagnosis; on timeout (or an inconsistent recompute) the
	// handler serves the last good diagnosis marked stale (default 2s;
	// ≤ -1 disables the deadline).
	DiagnosisTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured request and error records
	// (default: discard).
	Logger *slog.Logger
	// SlowRequest is the latency at or above which a request additionally
	// logs a warning (default 1s; ≤ -1 disables slow-request warnings).
	SlowRequest time.Duration
	// TraceBuffer is how many finished request traces the /debug/traces
	// ring retains, newest first (default 64; ≤ -1 disables the ring and
	// the endpoint). Each tenant gets its own ring of the same size for
	// GET /v1/scenarios/{id}/traces.
	TraceBuffer int
	// Registry receives the server's metrics (default: a fresh registry).
	Registry *metrics.Registry

	// BuildScenario turns a stored scenario document into its monitoring
	// state; required to enable the scenario create/load API. When nil,
	// only the boot-time default tenant (Paths/Place above) is served.
	BuildScenario BuildFunc
	// ReviseNetwork produces a revised scenario document from the stored
	// one plus a network-change request, enabling in-place network
	// replacement via PUT /v1/scenarios/{id}/network; nil answers 501.
	ReviseNetwork ReviseFunc
	// Store persists scenario documents across restarts (default: an
	// in-memory store, i.e. process-lifetime scenarios only).
	Store registry.Store
	// MaxScenarios caps concurrently hosted scenarios (default 64).
	MaxScenarios int
	// TenantSeriesCap caps tenant-labeled metric cardinality: the first
	// cap tenants get their own series, later ones share tenant="other"
	// (default 32; ≤ -1 removes the cap).
	TenantSeriesCap int
	// MaxJobsPerScenario caps one scenario's queued-plus-running
	// placement jobs, rejecting the excess with 429 so a noisy tenant
	// cannot monopolize the shared pool (default: Workers + QueueDepth,
	// i.e. the whole pool; < 0 removes the quota).
	MaxJobsPerScenario int
	// WAL enables the crash-safe write-ahead log; see WALConfig. When
	// set, Store must be nil (the WAL is the persistence layer).
	WAL *WALConfig
	// Cluster enables multi-node ownership routing, peer forwarding, and
	// live scenario migration; see ClusterConfig. Nil keeps the server a
	// plain single-node daemon with zero routing overhead.
	Cluster *ClusterConfig
	// PrewarmPlacer, when set, is called in the background after a
	// migration adopts a scenario, so the facade can prime its warm-start
	// placement cache (which is per-process and does not travel with the
	// scenario state).
	PrewarmPlacer func(id string, spec []byte)
}

// Server is the placemond HTTP service. Create with New; the embedded
// worker pool starts immediately, so either Serve or Close must be called
// eventually.
type Server struct {
	tenants        *registry.Registry[*tenant]
	store          registry.Store
	build          BuildFunc  // nil disables the scenario create/load API
	revise         ReviseFunc // nil disables in-place network replacement
	labeler        *metrics.Labeler
	pool           *pool
	registry       *metrics.Registry
	logger         *slog.Logger
	logRequests    bool // logger enabled at Info: skip per-request log arg boxing otherwise
	slowRequest    time.Duration
	traces         *trace.Ring // global ring; nil when disabled
	requestTimeout time.Duration
	drainTimeout   time.Duration
	handler        http.Handler
	closeOnce      sync.Once
	closeErr       error

	// cluster is non-nil in multi-node mode: ownership routing, peer
	// forwarding, relocation table, migration endpoints. prewarm is the
	// optional post-adoption placement-cache hook.
	cluster *clusterNode
	prewarm func(id string, spec []byte)

	// Write-ahead log state (wlog nil when disabled). walMu orders
	// apply+append pairs (read side) against compaction's state capture
	// (write side); readOnly freezes mutations after a WAL write failure.
	wlog            *wal.Log
	walMu           sync.RWMutex
	readOnly        atomic.Bool
	walCompactEvery int
	walRecordCount  atomic.Int64
	walCompacting   atomic.Bool
	readOnlyGauge   *metrics.Gauge
	walFsync        *metrics.Histogram
	walSegments     *metrics.Gauge
	walRecoveryDur  *metrics.Gauge
	walReplayed     *metrics.Counter

	// Per-tenant knobs applied to every scenario as it is built.
	defaultK    int
	dedupSize   int           // ≤ 0 disables the idempotent-ingest window
	traceBuf    int           // ≤ 0 disables per-tenant trace rings
	diagTimeout time.Duration // ≤ 0 means no diagnosis recompute deadline

	// diagnoseFn is a test seam: when non-nil it overrides the default
	// tenant's diagnosis recompute (scenario tenants always use their own
	// monitor).
	diagnoseFn func() (*tomography.Diagnosis, error)

	obsIngested   *metrics.Counter
	obsReplayed   *metrics.Counter
	staleServed   *metrics.Counter
	dedupGauge    *metrics.Gauge
	outageGauge   *metrics.Gauge
	reqHist       *metrics.Histogram
	roundHist     *metrics.Histogram
	scenarioGauge  *metrics.Gauge
	connsGauge     *metrics.Gauge
	snapshotErrors *metrics.Counter
	eventTotal     map[monitord.EventKind]*metrics.Counter
}

// New builds the service: the scenario registry (seeded with a default
// tenant when the legacy Paths/Place config is given, and with every
// stored scenario when a Store plus BuildScenario are), a bounded
// placement pool shared by all tenants, and the routed, instrumented
// HTTP handler.
func New(cfg Config) (*Server, error) {
	legacy := cfg.Place != nil || len(cfg.Paths) > 0 || len(cfg.Connections) > 0
	if legacy && cfg.Place == nil {
		return nil, fmt.Errorf("server: Config.Place is required")
	}
	if !legacy && cfg.BuildScenario == nil {
		return nil, fmt.Errorf("server: neither a default scenario (Paths/Place) nor BuildScenario configured")
	}
	if len(cfg.Paths) != len(cfg.Connections) {
		return nil, fmt.Errorf("server: %d paths for %d connections", len(cfg.Paths), len(cfg.Connections))
	}
	k := cfg.K
	if k == 0 {
		k = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = 15 * time.Second
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 10 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	slowReq := cfg.SlowRequest
	if slowReq == 0 {
		slowReq = time.Second
	}
	traceBuf := cfg.TraceBuffer
	if traceBuf == 0 {
		traceBuf = 64
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	dedupSize := cfg.DedupWindow
	if dedupSize == 0 {
		dedupSize = 1024
	}
	diagTimeout := cfg.DiagnosisTimeout
	if diagTimeout == 0 {
		diagTimeout = 2 * time.Second
	}
	maxScenarios := cfg.MaxScenarios
	if maxScenarios == 0 {
		maxScenarios = 64
	}
	seriesCap := cfg.TenantSeriesCap
	if seriesCap == 0 {
		seriesCap = 32
	}
	store := cfg.Store
	if store == nil {
		store = registry.NewMemStore()
	}
	if cfg.WAL != nil && cfg.Store != nil {
		return nil, fmt.Errorf("server: Config.WAL and Config.Store are mutually exclusive")
	}

	s := &Server{
		tenants:        registry.New[*tenant](maxScenarios),
		store:          store,
		build:          cfg.BuildScenario,
		revise:         cfg.ReviseNetwork,
		labeler:        metrics.NewLabeler(seriesCap),
		pool:           newPool(cfg.Place, workers, depth, reg),
		registry:       reg,
		logger:         logger,
		logRequests:    logger.Enabled(context.Background(), slog.LevelInfo),
		slowRequest:    slowReq,
		requestTimeout: reqTimeout,
		drainTimeout:   drain,
		defaultK:       k,
		dedupSize:      dedupSize,
		traceBuf:       traceBuf,
		diagTimeout:    diagTimeout,
		obsIngested: reg.Counter("placemond_observations_ingested_total",
			"Connection state reports accepted by POST /v1/observations."),
		obsReplayed: reg.Counter("placemond_ingest_replayed_total",
			"Duplicate observation batches answered from the dedup window."),
		staleServed: reg.Counter("placemond_diagnosis_stale_total",
			"Diagnosis requests served from the last good diagnosis."),
		outageGauge: reg.Gauge("placemond_outage",
			"1 while at least one reporting connection is down, else 0."),
		reqHist: reg.Histogram("placemond_request_duration_seconds",
			"End-to-end latency of traced requests.", nil),
		roundHist: reg.Histogram("placemond_placement_round_duration_seconds",
			"Wall-clock duration of individual placement engine rounds.", nil),
		scenarioGauge: reg.Gauge("placemond_scenarios",
			"Number of hosted monitoring scenarios."),
		connsGauge: reg.Gauge("placemond_connections",
			"Number of monitored connections across all scenarios."),
		snapshotErrors: reg.Counter("placemond_snapshot_errors_total",
			"Scenario snapshots or final WAL compactions that failed; a non-zero value at exit means state was NOT fully saved."),
		eventTotal: map[monitord.EventKind]*metrics.Counter{},
	}
	if cfg.MaxJobsPerScenario != 0 {
		s.pool.maxPerKey = cfg.MaxJobsPerScenario // < 0 removes the quota
	}
	if traceBuf > 0 {
		s.traces = trace.NewRing(traceBuf)
	}
	if dedupSize > 0 {
		s.dedupGauge = reg.Gauge("placemond_dedup_window_batches",
			"Batch IDs remembered by the idempotent-ingest windows, all scenarios.")
	}
	for _, kind := range []monitord.EventKind{
		monitord.EventOutageStarted, monitord.EventDiagnosisChanged,
		monitord.EventOutageCleared, monitord.EventInconsistent,
	} {
		s.eventTotal[kind] = reg.Counter("placemond_events_total",
			"Monitoring daemon events by kind.", "kind", kind.String())
	}

	if cfg.Cluster != nil {
		cn, err := newClusterNode(cfg.Cluster, reg)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.cluster = cn
	}
	s.prewarm = cfg.PrewarmPlacer

	if legacy && s.cluster != nil && !s.cluster.members.IsOwner(DefaultScenario) {
		// Another node owns "default": building it here would double-own
		// the scenario. The legacy routes forward to the owner instead.
		logger.Info("default scenario owned by peer; legacy routes will forward",
			"owner", s.cluster.members.Owner(DefaultScenario).ID)
		legacy = false
	}
	if legacy {
		def, err := s.newTenant(DefaultScenario, &TenantConfig{
			NumNodes:    cfg.NumNodes,
			K:           k,
			Paths:       cfg.Paths,
			Connections: cfg.Connections,
			Place:       cfg.Place,
		}, nil)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		// The test seam: the default tenant's recompute indirects through
		// s.diagnoseFn so tests can inject slow or failing tomography.
		s.diagnoseFn = def.mon.Diagnosis
		def.diagnose = func() (*tomography.Diagnosis, error) { return s.diagnoseFn() }
		if err := s.addTenant(def); err != nil {
			s.pool.close()
			return nil, err
		}
	}
	if s.build != nil && cfg.WAL == nil {
		if err := s.loadScenarios(); err != nil {
			s.pool.close()
			return nil, err
		}
	}
	if cfg.WAL != nil {
		// Recovery runs before the handler exists: replay is not racing
		// requests, so it needs no locks.
		if err := s.openWAL(cfg.WAL); err != nil {
			s.pool.close()
			return nil, err
		}
	}
	if err := s.validateClusterOwnership(); err != nil {
		s.pool.close()
		if s.wlog != nil {
			s.wlog.Abort()
		}
		s.closeLoops()
		return nil, err
	}

	// One mux for every route. The request-timeout deadline is applied
	// per-route, and only to handlers that actually observe it: the
	// placement pool, the diagnosis recompute, and scenario create/delete
	// (job drains). Ingest and the other quick handlers never read the
	// deadline, so building a timer context for them was pure overhead —
	// and pprof profile collection legitimately runs longer than an API
	// request is allowed to.
	mux := http.NewServeMux()
	mux.Handle("POST /v1/observations", s.instrument("/v1/observations", s.forDefault(s.serveObservations)))
	mux.Handle("GET /v1/diagnosis", s.withTimeout(s.instrument("/v1/diagnosis", s.forDefault(s.serveDiagnosis))))
	mux.Handle("POST /v1/placements", s.withTimeout(s.instrument("/v1/placements", s.forDefault(s.servePlacements))))
	mux.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))

	mux.Handle("POST /v1/scenarios/{id}/observations",
		s.instrument("/v1/scenarios/{id}/observations", s.forScenario(s.serveObservations)))
	mux.Handle("GET /v1/scenarios/{id}/diagnosis",
		s.withTimeout(s.instrument("/v1/scenarios/{id}/diagnosis", s.forScenario(s.serveDiagnosis))))
	mux.Handle("POST /v1/scenarios/{id}/placements",
		s.withTimeout(s.instrument("/v1/scenarios/{id}/placements", s.forScenario(s.servePlacements))))
	mux.Handle("GET /v1/scenarios/{id}/traces",
		s.instrument("/v1/scenarios/{id}/traces", s.forScenario(s.serveTenantTraces)))
	mux.Handle("GET /v1/scenarios/{id}/audit",
		s.instrument("/v1/scenarios/{id}/audit", s.forScenario(s.serveAudit)))
	mux.Handle("PUT /v1/scenarios/{id}/network",
		s.withTimeout(s.instrument("/v1/scenarios/{id}/network", s.forScenario(s.serveScenarioNetwork))))
	mux.Handle("POST /v1/scenarios/{id}/migrate",
		s.withTimeout(s.instrument("/v1/scenarios/{id}/migrate", s.forScenario(s.serveScenarioMigrate))))
	if s.cluster != nil {
		mux.Handle("POST /v1/cluster/adopt",
			s.instrument("/v1/cluster/adopt", http.HandlerFunc(s.handleClusterAdopt)))
		mux.Handle("GET /v1/cluster",
			s.instrument("/v1/cluster", http.HandlerFunc(s.handleClusterInfo)))
	}

	mux.Handle("GET /v1/scenarios", s.instrument("/v1/scenarios", http.HandlerFunc(s.handleScenarioList)))
	mux.Handle("PUT /v1/scenarios/{id}", s.withTimeout(s.instrument("/v1/scenarios/{id}", http.HandlerFunc(s.handleScenarioCreate))))
	mux.Handle("GET /v1/scenarios/{id}", s.instrument("/v1/scenarios/{id}", s.forScenario(s.serveScenarioInfo)))
	mux.Handle("DELETE /v1/scenarios/{id}", s.withTimeout(s.instrument("/v1/scenarios/{id}", http.HandlerFunc(s.handleScenarioDelete))))

	if s.traces != nil {
		mux.Handle("GET /debug/traces", s.instrument("/debug/traces", http.HandlerFunc(s.handleTraces)))
	}
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.withObservability(mux)
	return s, nil
}

// Handler returns the fully middleware-wrapped HTTP handler (also usable
// under httptest without a real listener).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the metrics registry the server writes to.
func (s *Server) Registry() *metrics.Registry { return s.registry }

// Close stops the placement pool (draining queued jobs) and persists
// final state: a compaction fold + clean close of the write-ahead log
// when one is configured, else a snapshot of every registered scenario
// through the Store, one logged outcome per tenant. The returned error
// is non-nil when any final persistence step failed — placemond exits
// non-zero on it, so supervisors restart instead of believing state was
// saved. Idempotent (later calls return the first outcome) and implied
// by Serve returning.
func (s *Server) Close() error {
	s.pool.close()
	s.closeOnce.Do(func() {
		s.closeErr = s.persistFinal()
		s.closeLoops()
	})
	return s.closeErr
}

// VerifyIncremental cross-checks every tenant's incremental rolling
// diagnosis against a from-scratch recompute, returning the first
// divergence. It is a test seam: the chaos soak and crash matrix call it
// to pin the tentpole invariant — the event-driven O(changed paths)
// update must stay bit-identical to a full rebuild. Tenants whose loop
// already closed (mid-removal) are skipped.
func (s *Server) VerifyIncremental() error {
	var firstErr error
	s.tenants.Range(func(id string, t *tenant) bool {
		if err := t.mon.VerifyIncremental(); err != nil && !errors.Is(err, monitord.ErrClosed) {
			firstErr = fmt.Errorf("scenario %q: %w", id, err)
			return false
		}
		return true
	})
	return firstErr
}

// closeLoops stops every tenant's monitor event loop so scenario
// goroutines never outlive the server. Runs after final persistence:
// compaction still needs to export monitor state.
func (s *Server) closeLoops() {
	s.tenants.Range(func(id string, t *tenant) bool {
		t.mon.Close()
		return true
	})
}

// persistFinal is the once-only shutdown persistence step behind Close.
func (s *Server) persistFinal() error {
	if s.wlog == nil {
		return s.snapshotScenarios()
	}
	var err error
	if s.readOnly.Load() {
		// The log is poisoned: nothing more can be folded. The earlier
		// failure is the exit status.
		err = s.wlog.Err()
		if err == nil {
			err = errWALUnavailable
		}
	} else {
		s.walMu.Lock()
		var state []byte
		state, err = json.Marshal(s.buildWALState())
		if err == nil {
			err = s.wlog.Compact(state)
		}
		s.walMu.Unlock()
	}
	if cerr := s.wlog.Close(); err == nil && cerr != nil && !errors.Is(cerr, wal.ErrClosed) {
		err = cerr
	}
	if err != nil {
		s.snapshotErrors.Inc()
		s.logger.Error("final WAL fold failed", "error", err)
		return fmt.Errorf("server: final WAL fold: %w", err)
	}
	s.logger.Info("WAL closed cleanly", "snapshot_seq", s.wlog.SnapshotSeq())
	return nil
}

// Abort terminates without final persistence — the in-process stand-in
// for kill -9 used by crash tests: the pool stops, the WAL file handle
// is dropped without a closing fsync, and nothing is folded. Whatever
// the sync policy already made durable is what the next boot recovers.
func (s *Server) Abort() {
	s.pool.close()
	s.closeOnce.Do(func() {
		if s.wlog != nil {
			s.wlog.Abort()
		}
		s.closeLoops()
	})
}

// Serve accepts connections on ln until ctx is canceled, then drains:
// in-flight requests get DrainTimeout to complete, the placement pool
// finishes queued jobs, and Serve returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.logger.Handler(), slog.LevelError),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(drainCtx)
	}()

	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		// Listener failure, not a shutdown: report it (and still stop the
		// pool so workers don't leak).
		s.Close()
		return err
	}
	err = <-shutdownErr
	if cerr := s.Close(); err == nil {
		// A failed final snapshot surfaces here so placemond exits
		// non-zero: state was NOT fully saved.
		err = cerr
	}
	return err
}

// --- tenant resolution ---

// tenantHandler is a request handler bound to one resolved tenant.
type tenantHandler func(t *tenant, w http.ResponseWriter, r *http.Request)

// forDefault serves the legacy single-scenario routes against the
// "default" tenant. The response bytes are identical to the pre-registry
// daemon's; a registry-only server (no default tenant) answers 404.
func (s *Server) forDefault(fn tenantHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.tenants.Get(DefaultScenario)
		if !ok {
			if s.cluster != nil && s.routeScenario(w, r, DefaultScenario) {
				return
			}
			writeError(w, http.StatusNotFound, "no default scenario (use /v1/scenarios/{id}/...)")
			return
		}
		if s.cluster != nil {
			if h := t.currentHandoff(); h != nil && !s.resolveHandoff(h, w, r, false) {
				return
			}
		}
		t.requests.Inc()
		fn(t, w, r)
	})
}

// forScenario resolves the {id} path segment against the registry,
// stamps the request's trace span with the tenant, and rejects tenants
// mid-drain so removal has a clean cutoff.
func (s *Server) forScenario(fn tenantHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		t, ok := s.tenants.Get(id)
		if !ok {
			if s.cluster != nil && s.routeScenario(w, r, id) {
				return
			}
			writeError(w, http.StatusNotFound, "scenario %q not found", id)
			return
		}
		if s.cluster != nil {
			if h := t.currentHandoff(); h != nil && !s.resolveHandoff(h, w, r, false) {
				return
			}
		}
		if t.isDraining() {
			writeError(w, http.StatusConflict, "scenario %q is draining", id)
			return
		}
		trace.FromContext(r.Context()).SetTenant(id)
		t.requests.Inc()
		fn(t, w, r)
	})
}

// --- handlers ---

// observationsRequest is the body of POST /v1/observations.
type observationsRequest struct {
	// BatchID is an optional client-supplied idempotency key: deliveries
	// repeating a remembered ID replay the original response instead of
	// re-applying the batch, so at-least-once delivery (client retries,
	// duplicated packets) yields exactly-once ingestion.
	BatchID string `json:"batch_id,omitempty"`
	// Time is the virtual or wall-clock timestamp of the batch.
	Time float64 `json:"time"`
	// Reports are the state transitions, applied in order.
	Reports []reportEntry `json:"reports"`
}

type reportEntry struct {
	Connection int  `json:"connection"`
	Up         bool `json:"up"`
}

// eventJSON is the wire form of a monitord.Event.
type eventJSON struct {
	Time      float64        `json:"time"`
	Kind      string         `json:"kind"`
	Diagnosis *diagnosisJSON `json:"diagnosis,omitempty"`
}

// diagnosisJSON is the wire form of a tomography diagnosis.
type diagnosisJSON struct {
	Candidates       [][]int `json:"candidates"`
	DefinitelyFailed []int   `json:"definitely_failed"`
	PossiblyFailed   []int   `json:"possibly_failed"`
	Healthy          []int   `json:"healthy"`
	Unobserved       []int   `json:"unobserved"`
}

// obsResponse is the body of a successful observations POST.
type obsResponse struct {
	Events []eventJSON `json:"events"`
}

// buildObsResponse turns emitted events into the wire response plus the
// index-aligned diagnosis documents. Both the live handler and WAL boot
// replay use it, which is what keeps recovered dedup-window bodies
// byte-identical to the originally served ones.
func buildObsResponse(events []monitord.Event) (obsResponse, []*diagnosisJSON) {
	out := obsResponse{Events: make([]eventJSON, 0, len(events))}
	diags := make([]*diagnosisJSON, len(events))
	for i, ev := range events {
		diags[i] = diagnosisToJSON(ev.Diagnosis)
		out.Events = append(out.Events, eventJSON{
			Time:      ev.Time,
			Kind:      ev.Kind.String(),
			Diagnosis: diags[i],
		})
	}
	return out, diags
}

// serveObservations (the ingest hot path) lives in ingest.go.

// connectionJSON is one row of GET /v1/diagnosis's connection table.
type connectionJSON struct {
	Connection
	State string `json:"state"`
}

// errDiagnosisTimeout marks a recompute that blew its deadline.
var errDiagnosisTimeout = errors.New("server: diagnosis recompute timed out")

func (s *Server) serveDiagnosis(t *tenant, w http.ResponseWriter, r *http.Request) {
	snap := t.mon.Snapshot()
	out := struct {
		InOutage        bool             `json:"in_outage"`
		Inconsistent    bool             `json:"inconsistent,omitempty"`
		Stale           bool             `json:"stale,omitempty"`
		StaleAgeSeconds float64          `json:"stale_age_seconds,omitempty"`
		Connections     []connectionJSON `json:"connections"`
		Diagnosis       *diagnosisJSON   `json:"diagnosis,omitempty"`
	}{InOutage: snap.InOutage}
	for i, c := range t.conns {
		out.Connections = append(out.Connections, connectionJSON{
			Connection: c,
			State:      snap.States[i].String(),
		})
	}
	if snap.InOutage {
		sp := trace.FromContext(r.Context())
		st := sp.StartStage("diagnose")
		diag, err := s.diagnoseWithDeadline(r.Context(), t)
		st.EndDetail("ok=%t", err == nil)
		if err == nil {
			out.Diagnosis = diagnosisToJSON(diag)
			t.recordGoodDiagnosis(out.Diagnosis)
		} else {
			if !errors.Is(err, errDiagnosisTimeout) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				// More simultaneous failures than the budget k explains,
				// or conflicting reports: the outage is real but
				// unlocalizable right now.
				out.Inconsistent = true
			}
			// Degrade gracefully: a stale localization beats a blank
			// page during an outage, as long as it is marked as such.
			if cached, age, ok := t.lastGoodDiagnosis(); ok {
				out.Diagnosis = cached
				out.Stale = true
				out.StaleAgeSeconds = age.Seconds()
				s.staleServed.Inc()
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// diagnoseWithDeadline recomputes t's diagnosis, bounded by the
// configured deadline and the request context. On timeout the recompute
// goroutine finishes (and is discarded) in the background — the monitor
// lock is held at most one recompute longer than the deadline.
func (s *Server) diagnoseWithDeadline(ctx context.Context, t *tenant) (*tomography.Diagnosis, error) {
	if s.diagTimeout <= 0 {
		return t.diagnose()
	}
	type result struct {
		diag *tomography.Diagnosis
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		diag, err := t.diagnose()
		ch <- result{diag, err}
	}()
	timer := time.NewTimer(s.diagTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.diag, res.err
	case <-timer.C:
		return nil, errDiagnosisTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) servePlacements(t *tenant, w http.ResponseWriter, r *http.Request) {
	sp := trace.FromContext(r.Context())
	var req PlacementRequest
	st := sp.StartStage("decode")
	ok := decodeJSON(w, r, &req)
	st.EndDetail("services=%d", len(req.Services))
	if !ok {
		return
	}
	if len(req.Services) == 0 {
		writeError(w, http.StatusBadRequest, "no services to place")
		return
	}
	for i, svc := range req.Services {
		if len(svc.Clients) == 0 {
			writeError(w, http.StatusBadRequest, "service %d has no clients", i)
			return
		}
	}

	res, err := s.pool.submitKeyed(r.Context(), t.id, t.place, req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "placement queue full")
	case errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "scenario placement job limit reached")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "placement job timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	case errors.Is(err, ErrJobPanicked):
		s.logger.Error("placement job panicked",
			"error", err, "trace_id", trace.IDFromContext(r.Context()))
		writeError(w, http.StatusInternalServerError, "placement job failed")
	case err != nil:
		// The placement library validates inputs; its errors describe
		// what was wrong with the job.
		writeError(w, http.StatusBadRequest, "placement: %v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenants.Get(DefaultScenario); ok {
		// Byte-compatible with the single-scenario daemon.
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "ok",
			"connections": t.mon.NumConnections(),
			"in_outage":   t.mon.InOutage(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"scenarios": s.tenants.Len(),
	})
}

// handleTraces serves the trace ring, newest first. The ring itself
// skips /debug/ paths, so reading traces never pollutes them. Query
// filters scope the read: ?limit=N caps the answer to the N newest
// records (large rings make an unbounded dump a self-inflicted slow
// request) and ?scenario=ID keeps only traces served for that scenario.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit, ok := traceLimit(w, r)
	if !ok {
		return
	}
	var keep func(*trace.Record) bool
	if scenario := r.URL.Query().Get("scenario"); scenario != "" {
		keep = func(rec *trace.Record) bool { return rec.Tenant == scenario }
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []trace.Record `json:"traces"`
	}{Traces: s.traces.SnapshotFunc(limit, keep)})
}

// traceLimit parses the ?limit= query parameter shared by the trace
// endpoints: absent or 0 means the whole ring, negative or non-numeric
// values answer 400. The second return is false when the response has
// already been written.
func traceLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, true
	}
	limit, err := strconv.Atoi(raw)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer, got %q", raw)
		return 0, false
	}
	return limit, true
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.registry.WriteText(w); err != nil {
		s.logger.Error("metrics exposition failed", "error", err)
	}
}

// --- scenario administration ---

// scenarioInfoJSON is one scenario's status row.
type scenarioInfoJSON struct {
	ID          string `json:"id"`
	Connections int    `json:"connections"`
	InOutage    bool   `json:"in_outage"`
	// Persistent marks scenarios created from a stored document; the
	// boot-time default tenant is rebuilt from flags instead and reports
	// false.
	Persistent bool `json:"persistent"`
}

func (t *tenant) info() scenarioInfoJSON {
	return scenarioInfoJSON{
		ID:          t.id,
		Connections: len(t.conns),
		InOutage:    t.mon.InOutage(),
		Persistent:  t.spec != nil,
	}
}

func (s *Server) handleScenarioList(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Scenarios []scenarioInfoJSON `json:"scenarios"`
	}{Scenarios: []scenarioInfoJSON{}}
	s.tenants.Range(func(id string, t *tenant) bool {
		out.Scenarios = append(out.Scenarios, t.info())
		return true
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) serveScenarioInfo(t *tenant, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, t.info())
}

// serveTenantTraces serves the tenant's own trace ring, newest first —
// the per-scenario view of /debug/traces. ?limit=N caps the answer to
// the N newest records.
func (s *Server) serveTenantTraces(t *tenant, w http.ResponseWriter, r *http.Request) {
	limit, ok := traceLimit(w, r)
	if !ok {
		return
	}
	traces := []trace.Record{}
	if t.ring != nil {
		traces = t.ring.SnapshotFunc(limit, nil)
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []trace.Record `json:"traces"`
	}{Traces: traces})
}

func (s *Server) handleScenarioCreate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil && !s.clusterAdminLocal(w, r, id) {
		return
	}
	if s.build == nil {
		writeError(w, http.StatusNotImplemented, "scenario API not configured")
		return
	}
	if s.rejectReadOnly(w) {
		return
	}
	const maxSpec = 1 << 20
	spec, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpec))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "scenario document exceeds %d bytes", maxSpec)
		return
	}
	switch err := s.CreateScenario(id, spec); {
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, "scenario %q already exists", id)
	case errors.Is(err, registry.ErrFull):
		writeError(w, http.StatusInsufficientStorage, "%v", err)
	case errors.Is(err, ErrBadSpec):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, errWALUnavailable):
		respondReadOnly(w)
	case err != nil:
		// ID validation failures and persistence errors; the former are
		// the caller's fault, and the latter must not report success.
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		if t, ok := s.tenants.Get(id); ok {
			writeJSON(w, http.StatusCreated, t.info())
		} else {
			// Deleted again between create and response; report the create.
			writeJSON(w, http.StatusCreated, scenarioInfoJSON{ID: id})
		}
	}
}

func (s *Server) handleScenarioDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil && !s.clusterAdminLocal(w, r, id) {
		return
	}
	if s.rejectReadOnly(w) {
		return
	}
	switch err := s.RemoveScenario(r.Context(), id); {
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "scenario %q not found", id)
	case errors.Is(err, errWALUnavailable):
		respondReadOnly(w)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// decodeJSON strictly decodes the request body into v, writing the 4xx
// response itself (and returning false) on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	const maxBody = 1 << 20
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func diagnosisToJSON(d *tomography.Diagnosis) *diagnosisJSON {
	if d == nil {
		return nil
	}
	return &diagnosisJSON{
		Candidates:       d.Consistent,
		DefinitelyFailed: d.DefinitelyFailed,
		PossiblyFailed:   d.PossiblyFailed,
		Healthy:          d.Healthy,
		Unobserved:       d.Unobserved,
	}
}
