// Package server is placemond's HTTP serving layer: it wraps the online
// monitoring daemon (internal/monitord) and the placement engine behind a
// small JSON API so that observations can arrive over the network — the
// paper's premise that end-to-end measurements are "a byproduct of
// fulfilling the service" realized as a long-running ingestion service.
//
// Endpoints:
//
//	POST /v1/observations  ingest connection state transitions → events
//	GET  /v1/diagnosis     current rolling diagnosis + connection states
//	POST /v1/placements    run a placement job on the bounded worker pool
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/traces     recent request traces with per-stage timings
//	GET  /debug/pprof/*    optional profiling (Config.EnablePprof)
//
// Every request carries a trace ID (minted here or adopted from the
// client's Placemond-Trace-Id header), echoed in the response header,
// attached to every structured log line, and recorded — together with
// named per-stage timings — in a bounded in-memory ring served at
// /debug/traces.
//
// The package depends only on the standard library plus internal/metrics,
// internal/monitord, internal/trace, and internal/bitset; the placement
// engine is injected as a PlaceFunc so the root facade can close over its
// Network without an import cycle.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/metrics"
	"repro/internal/monitord"
	"repro/internal/tomography"
	"repro/internal/trace"
)

// Connection describes one monitored client↔host pair, index-aligned with
// the paths handed to New.
type Connection struct {
	Service int `json:"service"`
	Client  int `json:"client"`
	Host    int `json:"host"`
}

// Config parameterizes New. NumNodes, Paths, Connections, and Place are
// required; everything else has serviceable defaults.
type Config struct {
	// NumNodes is the size of the monitored network's node universe.
	NumNodes int
	// K is the failure budget for the rolling diagnosis (default 1).
	K int
	// Paths are the measurement paths of the deployed placement, one per
	// monitored connection.
	Paths []*bitset.Set
	// Connections is index-aligned metadata for Paths.
	Connections []Connection
	// Place runs one placement job; must be safe for concurrent use.
	Place PlaceFunc
	// Workers is the placement pool size (default: half the CPUs, ≥ 1).
	Workers int
	// QueueDepth bounds the placement backlog (default 8); a full queue
	// rejects with 429.
	QueueDepth int
	// RequestTimeout bounds each request's context (default 15s; ≤ -1
	// disables, 0 means default).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// DedupWindow is how many recent batch IDs the idempotent-ingest
	// window remembers; retried or duplicated POST /v1/observations
	// deliveries carrying a remembered batch_id replay the original
	// response instead of re-applying (default 1024; ≤ -1 disables).
	DedupWindow int
	// DiagnosisTimeout bounds the diagnosis recompute in
	// GET /v1/diagnosis; on timeout (or an inconsistent recompute) the
	// handler serves the last good diagnosis marked stale (default 2s;
	// ≤ -1 disables the deadline).
	DiagnosisTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Logger receives structured request and error records
	// (default: discard).
	Logger *slog.Logger
	// SlowRequest is the latency at or above which a request additionally
	// logs a warning (default 1s; ≤ -1 disables slow-request warnings).
	SlowRequest time.Duration
	// TraceBuffer is how many finished request traces the /debug/traces
	// ring retains, newest first (default 64; ≤ -1 disables the ring and
	// the endpoint).
	TraceBuffer int
	// Registry receives the server's metrics (default: a fresh registry).
	Registry *metrics.Registry
}

// Server is the placemond HTTP service. Create with New; the embedded
// worker pool starts immediately, so either Serve or Close must be called
// eventually.
type Server struct {
	mon            *monitord.Safe
	conns          []Connection
	pool           *pool
	registry       *metrics.Registry
	logger         *slog.Logger
	slowRequest    time.Duration
	traces         *trace.Ring // nil when disabled
	requestTimeout time.Duration
	drainTimeout   time.Duration
	handler        http.Handler

	// Resilience layer: idempotent ingest + stale-diagnosis fallback.
	dedup       *dedupWindow                          // nil when disabled
	diagTimeout time.Duration                         // ≤ 0 means no deadline
	diagnoseFn  func() (*tomography.Diagnosis, error) // test seam; defaults to mon.Diagnosis
	lastGoodMu  sync.Mutex
	lastGood    *diagnosisJSON
	lastGoodAt  time.Time

	obsIngested *metrics.Counter
	obsReplayed *metrics.Counter
	staleServed *metrics.Counter
	dedupGauge  *metrics.Gauge
	outageGauge *metrics.Gauge
	reqHist     *metrics.Histogram
	roundHist   *metrics.Histogram
	eventTotal  map[monitord.EventKind]*metrics.Counter
}

// New builds the service: a thread-safe monitor over the given paths, a
// bounded placement pool, and the routed, instrumented HTTP handler.
func New(cfg Config) (*Server, error) {
	if cfg.Place == nil {
		return nil, fmt.Errorf("server: Config.Place is required")
	}
	if len(cfg.Paths) != len(cfg.Connections) {
		return nil, fmt.Errorf("server: %d paths for %d connections", len(cfg.Paths), len(cfg.Connections))
	}
	k := cfg.K
	if k == 0 {
		k = 1
	}
	core, err := monitord.New(cfg.NumNodes, k, cfg.Paths)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / 2
		if workers < 1 {
			workers = 1
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 8
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = 15 * time.Second
	}
	drain := cfg.DrainTimeout
	if drain <= 0 {
		drain = 10 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	slowReq := cfg.SlowRequest
	if slowReq == 0 {
		slowReq = time.Second
	}
	traceBuf := cfg.TraceBuffer
	if traceBuf == 0 {
		traceBuf = 64
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	dedupSize := cfg.DedupWindow
	if dedupSize == 0 {
		dedupSize = 1024
	}
	diagTimeout := cfg.DiagnosisTimeout
	if diagTimeout == 0 {
		diagTimeout = 2 * time.Second
	}

	s := &Server{
		mon:            monitord.NewSafe(core),
		conns:          append([]Connection(nil), cfg.Connections...),
		pool:           newPool(cfg.Place, workers, depth, reg),
		registry:       reg,
		logger:         logger,
		slowRequest:    slowReq,
		requestTimeout: reqTimeout,
		drainTimeout:   drain,
		diagTimeout:    diagTimeout,
		obsIngested: reg.Counter("placemond_observations_ingested_total",
			"Connection state reports accepted by POST /v1/observations."),
		obsReplayed: reg.Counter("placemond_ingest_replayed_total",
			"Duplicate observation batches answered from the dedup window."),
		staleServed: reg.Counter("placemond_diagnosis_stale_total",
			"Diagnosis requests served from the last good diagnosis."),
		outageGauge: reg.Gauge("placemond_outage",
			"1 while at least one reporting connection is down, else 0."),
		reqHist: reg.Histogram("placemond_request_duration_seconds",
			"End-to-end latency of traced requests.", nil),
		roundHist: reg.Histogram("placemond_placement_round_duration_seconds",
			"Wall-clock duration of individual placement engine rounds.", nil),
		eventTotal: map[monitord.EventKind]*metrics.Counter{},
	}
	s.diagnoseFn = s.mon.Diagnosis
	if traceBuf > 0 {
		s.traces = trace.NewRing(traceBuf)
	}
	if dedupSize > 0 {
		s.dedup = newDedupWindow(dedupSize)
		s.dedupGauge = reg.Gauge("placemond_dedup_window_batches",
			"Batch IDs currently remembered by the idempotent-ingest window.")
	}
	for _, kind := range []monitord.EventKind{
		monitord.EventOutageStarted, monitord.EventDiagnosisChanged,
		monitord.EventOutageCleared, monitord.EventInconsistent,
	} {
		s.eventTotal[kind] = reg.Counter("placemond_events_total",
			"Monitoring daemon events by kind.", "kind", kind.String())
	}
	reg.Gauge("placemond_connections",
		"Number of monitored connections.").Set(float64(len(cfg.Paths)))

	api := http.NewServeMux()
	api.Handle("POST /v1/observations", s.instrument("/v1/observations", http.HandlerFunc(s.handleObservations)))
	api.Handle("GET /v1/diagnosis", s.instrument("/v1/diagnosis", http.HandlerFunc(s.handleDiagnosis)))
	api.Handle("POST /v1/placements", s.instrument("/v1/placements", http.HandlerFunc(s.handlePlacements)))
	api.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	api.Handle("GET /metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))

	root := http.NewServeMux()
	// pprof mounts outside the timeout middleware: profile collection
	// legitimately runs longer than an API request is allowed to.
	root.Handle("/", s.withTimeout(api))
	if s.traces != nil {
		root.Handle("GET /debug/traces", s.instrument("/debug/traces", http.HandlerFunc(s.handleTraces)))
	}
	if cfg.EnablePprof {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.withObservability(root)
	return s, nil
}

// Handler returns the fully middleware-wrapped HTTP handler (also usable
// under httptest without a real listener).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the metrics registry the server writes to.
func (s *Server) Registry() *metrics.Registry { return s.registry }

// Close stops the placement pool, draining queued jobs. It is idempotent
// and implied by Serve returning.
func (s *Server) Close() { s.pool.close() }

// Serve accepts connections on ln until ctx is canceled, then drains:
// in-flight requests get DrainTimeout to complete, the placement pool
// finishes queued jobs, and Serve returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		ErrorLog:          slog.NewLogLogger(s.logger.Handler(), slog.LevelError),
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		shutdownErr <- srv.Shutdown(drainCtx)
	}()

	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		// Listener failure, not a shutdown: report it (and still stop the
		// pool so workers don't leak).
		s.pool.close()
		return err
	}
	err = <-shutdownErr
	s.pool.close()
	return err
}

// --- handlers ---

// observationsRequest is the body of POST /v1/observations.
type observationsRequest struct {
	// BatchID is an optional client-supplied idempotency key: deliveries
	// repeating a remembered ID replay the original response instead of
	// re-applying the batch, so at-least-once delivery (client retries,
	// duplicated packets) yields exactly-once ingestion.
	BatchID string `json:"batch_id,omitempty"`
	// Time is the virtual or wall-clock timestamp of the batch.
	Time float64 `json:"time"`
	// Reports are the state transitions, applied in order.
	Reports []reportEntry `json:"reports"`
}

type reportEntry struct {
	Connection int  `json:"connection"`
	Up         bool `json:"up"`
}

// eventJSON is the wire form of a monitord.Event.
type eventJSON struct {
	Time      float64        `json:"time"`
	Kind      string         `json:"kind"`
	Diagnosis *diagnosisJSON `json:"diagnosis,omitempty"`
}

// diagnosisJSON is the wire form of a tomography diagnosis.
type diagnosisJSON struct {
	Candidates       [][]int `json:"candidates"`
	DefinitelyFailed []int   `json:"definitely_failed"`
	PossiblyFailed   []int   `json:"possibly_failed"`
	Healthy          []int   `json:"healthy"`
	Unobserved       []int   `json:"unobserved"`
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	sp := trace.FromContext(r.Context())
	var req observationsRequest
	st := sp.StartStage("decode")
	ok := decodeJSON(w, r, &req)
	st.EndDetail("reports=%d", len(req.Reports))
	if !ok {
		return
	}
	if len(req.Reports) == 0 {
		writeError(w, http.StatusBadRequest, "no reports in batch")
		return
	}
	if s.dedup != nil && req.BatchID != "" {
		st := sp.StartStage("dedup")
		cached, hit := s.dedup.lookup(req.BatchID)
		st.EndDetail("batch_id=%s hit=%t", req.BatchID, hit)
		if hit {
			// Already applied: replay the original answer byte for byte
			// so the retrying client observes the events it missed.
			s.obsReplayed.Inc()
			sp.Annotate("replayed", true)
			w.Header().Set("Placemond-Replayed", "true")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(cached.status)
			w.Write(cached.body)
			return
		}
	}
	ingest := sp.StartStage("ingest")
	n := s.mon.NumConnections()
	conns := make([]int, len(req.Reports))
	ups := make([]bool, len(req.Reports))
	for i, rep := range req.Reports {
		if rep.Connection < 0 || rep.Connection >= n {
			// Validated up front so a bad entry rejects the whole batch
			// without side effects.
			ingest.EndDetail("rejected report %d", i)
			writeError(w, http.StatusBadRequest,
				"report %d: connection %d out of range [0, %d)", i, rep.Connection, n)
			return
		}
		conns[i] = rep.Connection
		ups[i] = rep.Up
	}

	events, err := s.mon.ReportBatch(req.Time, conns, ups)
	if err != nil {
		// Unreachable after validation; kept as a hard failure signal.
		ingest.EndDetail("error")
		writeError(w, http.StatusInternalServerError, "ingest: %v", err)
		return
	}
	s.obsIngested.Add(float64(len(req.Reports)))
	for _, ev := range events {
		if c, ok := s.eventTotal[ev.Kind]; ok {
			c.Inc()
		}
	}
	if s.mon.Snapshot().InOutage {
		s.outageGauge.Set(1)
	} else {
		s.outageGauge.Set(0)
	}

	out := struct {
		Events []eventJSON `json:"events"`
	}{Events: make([]eventJSON, 0, len(events))}
	for _, ev := range events {
		diag := diagnosisToJSON(ev.Diagnosis)
		if diag != nil {
			// Every diagnosis the daemon emits is by construction fresh
			// and good: remember it for the stale-serving fallback.
			s.recordGoodDiagnosis(diag)
		}
		out.Events = append(out.Events, eventJSON{
			Time:      ev.Time,
			Kind:      ev.Kind.String(),
			Diagnosis: diag,
		})
	}
	ingest.EndDetail("events=%d", len(events))
	if s.dedup != nil && req.BatchID != "" {
		if body, err := json.Marshal(out); err == nil {
			body = append(body, '\n')
			s.dedup.store(req.BatchID, dedupEntry{status: http.StatusOK, body: body})
			s.dedupGauge.Set(float64(s.dedup.size()))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// recordGoodDiagnosis remembers the latest successfully computed
// diagnosis for the stale-serving fallback.
func (s *Server) recordGoodDiagnosis(d *diagnosisJSON) {
	s.lastGoodMu.Lock()
	s.lastGood, s.lastGoodAt = d, time.Now()
	s.lastGoodMu.Unlock()
}

// lastGoodDiagnosis returns the remembered diagnosis and its age.
func (s *Server) lastGoodDiagnosis() (*diagnosisJSON, time.Duration, bool) {
	s.lastGoodMu.Lock()
	defer s.lastGoodMu.Unlock()
	if s.lastGood == nil {
		return nil, 0, false
	}
	return s.lastGood, time.Since(s.lastGoodAt), true
}

// connectionJSON is one row of GET /v1/diagnosis's connection table.
type connectionJSON struct {
	Connection
	State string `json:"state"`
}

// errDiagnosisTimeout marks a recompute that blew its deadline.
var errDiagnosisTimeout = errors.New("server: diagnosis recompute timed out")

func (s *Server) handleDiagnosis(w http.ResponseWriter, r *http.Request) {
	snap := s.mon.Snapshot()
	out := struct {
		InOutage        bool             `json:"in_outage"`
		Inconsistent    bool             `json:"inconsistent,omitempty"`
		Stale           bool             `json:"stale,omitempty"`
		StaleAgeSeconds float64          `json:"stale_age_seconds,omitempty"`
		Connections     []connectionJSON `json:"connections"`
		Diagnosis       *diagnosisJSON   `json:"diagnosis,omitempty"`
	}{InOutage: snap.InOutage}
	for i, c := range s.conns {
		out.Connections = append(out.Connections, connectionJSON{
			Connection: c,
			State:      snap.States[i].String(),
		})
	}
	if snap.InOutage {
		sp := trace.FromContext(r.Context())
		st := sp.StartStage("diagnose")
		diag, err := s.diagnoseWithDeadline(r.Context())
		st.EndDetail("ok=%t", err == nil)
		if err == nil {
			out.Diagnosis = diagnosisToJSON(diag)
			s.recordGoodDiagnosis(out.Diagnosis)
		} else {
			if !errors.Is(err, errDiagnosisTimeout) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				// More simultaneous failures than the budget k explains,
				// or conflicting reports: the outage is real but
				// unlocalizable right now.
				out.Inconsistent = true
			}
			// Degrade gracefully: a stale localization beats a blank
			// page during an outage, as long as it is marked as such.
			if cached, age, ok := s.lastGoodDiagnosis(); ok {
				out.Diagnosis = cached
				out.Stale = true
				out.StaleAgeSeconds = age.Seconds()
				s.staleServed.Inc()
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// diagnoseWithDeadline recomputes the diagnosis, bounded by the
// configured deadline and the request context. On timeout the recompute
// goroutine finishes (and is discarded) in the background — the monitor
// lock is held at most one recompute longer than the deadline.
func (s *Server) diagnoseWithDeadline(ctx context.Context) (*tomography.Diagnosis, error) {
	if s.diagTimeout <= 0 {
		return s.diagnoseFn()
	}
	type result struct {
		diag *tomography.Diagnosis
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		diag, err := s.diagnoseFn()
		ch <- result{diag, err}
	}()
	timer := time.NewTimer(s.diagTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.diag, res.err
	case <-timer.C:
		return nil, errDiagnosisTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	sp := trace.FromContext(r.Context())
	var req PlacementRequest
	st := sp.StartStage("decode")
	ok := decodeJSON(w, r, &req)
	st.EndDetail("services=%d", len(req.Services))
	if !ok {
		return
	}
	if len(req.Services) == 0 {
		writeError(w, http.StatusBadRequest, "no services to place")
		return
	}
	for i, svc := range req.Services {
		if len(svc.Clients) == 0 {
			writeError(w, http.StatusBadRequest, "service %d has no clients", i)
			return
		}
	}

	res, err := s.pool.submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "placement queue full")
	case errors.Is(err, ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "placement job timed out")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled")
	case errors.Is(err, ErrJobPanicked):
		s.logger.Error("placement job panicked",
			"error", err, "trace_id", trace.IDFromContext(r.Context()))
		writeError(w, http.StatusInternalServerError, "placement job failed")
	case err != nil:
		// The placement library validates inputs; its errors describe
		// what was wrong with the job.
		writeError(w, http.StatusBadRequest, "placement: %v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.mon.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"connections": len(snap.States),
		"in_outage":   snap.InOutage,
	})
}

// handleTraces serves the trace ring, newest first. The ring itself
// skips /debug/ paths, so reading traces never pollutes them.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Traces []trace.Record `json:"traces"`
	}{Traces: s.traces.Snapshot()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.registry.WriteText(w); err != nil {
		s.logger.Error("metrics exposition failed", "error", err)
	}
}

// decodeJSON strictly decodes the request body into v, writing the 4xx
// response itself (and returning false) on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	const maxBody = 1 << 20
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func diagnosisToJSON(d *tomography.Diagnosis) *diagnosisJSON {
	if d == nil {
		return nil
	}
	return &diagnosisJSON{
		Candidates:       d.Consistent,
		DefinitelyFailed: d.DefinitelyFailed,
		PossiblyFailed:   d.PossiblyFailed,
		Healthy:          d.Healthy,
		Unobserved:       d.Unobserved,
	}
}
