package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/registry"
)

// testSpec is the scenario document the test builder understands: a
// compact form of TenantConfig with paths as index lists.
type testSpec struct {
	NumNodes    int          `json:"num_nodes"`
	K           int          `json:"k,omitempty"`
	Paths       [][]int      `json:"paths"`
	Connections []Connection `json:"connections"`
}

// testBuild is a BuildFunc over testSpec with an echo place function.
func testBuild(id string, raw []byte) (*TenantConfig, error) {
	var spec testSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	if spec.NumNodes <= 0 {
		return nil, fmt.Errorf("num_nodes must be positive")
	}
	paths := make([]*bitset.Set, len(spec.Paths))
	for i, p := range spec.Paths {
		paths[i] = bitset.FromIndices(spec.NumNodes, p...)
	}
	return &TenantConfig{
		NumNodes:    spec.NumNodes,
		K:           spec.K,
		Paths:       paths,
		Connections: spec.Connections,
		Place: func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
			return &PlacementResult{Hosts: []int{int(req.Seed)}}, nil
		},
	}, nil
}

// lineSpec is the 5-node line scenario every test tenant uses: the same
// network testConfig builds for the legacy routes.
func lineSpec() testSpec {
	return testSpec{
		NumNodes: 5,
		K:        1,
		Paths:    [][]int{{0, 1, 2}, {2, 3, 4}},
		Connections: []Connection{
			{Service: 0, Client: 0, Host: 2},
			{Service: 0, Client: 4, Host: 2},
		},
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// scenarioConfig is testConfig plus the scenario API.
func scenarioConfig() Config {
	cfg := testConfig()
	cfg.BuildScenario = testBuild
	return cfg
}

// rawReq performs one request and drains the body; goroutine-safe (no
// testing.TB calls).
func rawReq(method, url string, body []byte) (*http.Response, string, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	return resp, string(raw), nil
}

func doReq(t testing.TB, method, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, raw, err := rawReq(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestScenarioLifecycle drives create → list → ingest → diagnosis →
// traces → delete over HTTP and checks the tenant is fully isolated from
// the default one.
func TestScenarioLifecycle(t *testing.T) {
	_, ts := newTestServer(t, scenarioConfig())
	spec := mustJSON(t, lineSpec())

	resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/alpha", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, body %s", resp.StatusCode, body)
	}
	// Duplicate create conflicts; malformed documents are 422; bad IDs 400.
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/alpha", spec); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status = %d, want 409", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/beta", []byte(`{"num_nodes":0}`)); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec status = %d, want 422", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/.hidden", spec); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status = %d, want 400", resp.StatusCode)
	}

	resp, body = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"alpha"`) || !strings.Contains(body, `"default"`) {
		t.Fatalf("list = %d %s, want alpha and default", resp.StatusCode, body)
	}

	// An outage in alpha must not leak into the default tenant.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/scenarios/alpha/observations",
		[]byte(`{"time": 1, "reports": [{"connection": 0, "up": false}, {"connection": 1, "up": true}]}`))
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "outage-started") {
		t.Fatalf("scenario ingest = %d %s", resp.StatusCode, body)
	}
	_, body = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/alpha/diagnosis", nil)
	if !strings.Contains(body, `"in_outage":true`) {
		t.Fatalf("alpha diagnosis = %s, want outage", body)
	}
	_, body = doReq(t, http.MethodGet, ts.URL+"/v1/diagnosis", nil)
	if !strings.Contains(body, `"in_outage":false`) {
		t.Fatalf("default diagnosis = %s, want no outage", body)
	}

	// The tenant ring holds only alpha's requests, tagged with the tenant.
	_, body = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/alpha/traces", nil)
	if !strings.Contains(body, `"tenant":"alpha"`) || strings.Contains(body, "/v1/diagnosis\"") {
		t.Fatalf("alpha traces = %s", body)
	}

	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/alpha", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", resp.StatusCode)
	}
	if resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/alpha/diagnosis", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted scenario status = %d, want 404", resp.StatusCode)
	}
	if resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/alpha", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status = %d, want 404", resp.StatusCode)
	}
	// Legacy routes are untouched by the scenario lifecycle.
	if resp, _ = doReq(t, http.MethodGet, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after delete = %d", resp.StatusCode)
	}
}

// scenarioScript is one tenant's deterministic observation sequence:
// alternating up/down patterns derived from the scenario index, ending
// mid-outage so the final diagnosis is non-trivial.
func scenarioScript(i int) []string {
	var steps []string
	for step := 1; step <= 6; step++ {
		down := (step + i) % 2 // which connection is down this step
		steps = append(steps, fmt.Sprintf(
			`{"time": %d, "reports": [{"connection": %d, "up": false}, {"connection": %d, "up": true}]}`,
			step, down, 1-down))
	}
	return steps
}

// TestScenarioIsolationConcurrent is the tentpole's acceptance test: one
// server hosts 8 scenarios driven concurrently, and every tenant's
// diagnosis stream must be byte-identical to the same script replayed on
// an isolated single-tenant server. Run with -race, the interleaving
// also proves the sharded registry and per-tenant state are data-race
// free.
func TestScenarioIsolationConcurrent(t *testing.T) {
	const tenants = 8
	_, ts := newTestServer(t, scenarioConfig())
	for i := 0; i < tenants; i++ {
		spec := lineSpec()
		resp, body := doReq(t, http.MethodPut, fmt.Sprintf("%s/v1/scenarios/tenant-%d", ts.URL, i), mustJSON(t, spec))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create tenant-%d: %d %s", i, resp.StatusCode, body)
		}
	}

	// Drive all tenants concurrently, one goroutine per tenant, recording
	// the diagnosis body after every ingest step.
	streams := make([][]string, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := fmt.Sprintf("%s/v1/scenarios/tenant-%d", ts.URL, i)
			for _, step := range scenarioScript(i) {
				resp, body, err := rawReq(http.MethodPost, base+"/observations", []byte(step))
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("tenant-%d ingest: %v %s", i, err, body)
					return
				}
				_, diag, err := rawReq(http.MethodGet, base+"/diagnosis", nil)
				if err != nil {
					t.Errorf("tenant-%d diagnosis: %v", i, err)
					return
				}
				streams[i] = append(streams[i], diag)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent ingest failed")
	}

	// Replay each script on a dedicated single-tenant server and compare
	// the diagnosis streams byte for byte.
	for i := 0; i < tenants; i++ {
		_, iso := newTestServer(t, testConfig())
		var want []string
		for _, step := range scenarioScript(i) {
			resp, body := doReq(t, http.MethodPost, iso.URL+"/v1/observations", []byte(step))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("isolated tenant-%d ingest: %d %s", i, resp.StatusCode, body)
			}
			_, diag := doReq(t, http.MethodGet, iso.URL+"/v1/diagnosis", nil)
			want = append(want, diag)
		}
		if len(streams[i]) != len(want) {
			t.Fatalf("tenant-%d stream length %d, want %d", i, len(streams[i]), len(want))
		}
		for step := range want {
			if streams[i][step] != want[step] {
				t.Errorf("tenant-%d step %d diverged from isolated run:\n multi: %s\n solo:  %s",
					i, step, streams[i][step], want[step])
			}
		}
	}
}

// TestScenarioQuota429: a scenario at its per-tenant job quota answers
// 429 while the pool still has room for other tenants.
func TestScenarioQuota429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 8)
	cfg := scenarioConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 4
	cfg.MaxJobsPerScenario = 1
	cfg.RequestTimeout = 5 * time.Second
	spec := lineSpec()
	// Only the busy tenant's place function parks; quiet's returns at once.
	cfg.BuildScenario = func(id string, raw []byte) (*TenantConfig, error) {
		tc, err := testBuild(id, raw)
		if err != nil {
			return nil, err
		}
		if id == "busy" {
			tc.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
				started <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
				}
				return &PlacementResult{Hosts: []int{0}}, nil
			}
		}
		return tc, nil
	}
	_, ts := newTestServer(t, cfg)
	for _, id := range []string{"busy", "quiet"} {
		if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/"+id, mustJSON(t, spec)); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
		}
	}

	const jobBody = `{"services": [{"clients": [0]}], "alpha": 0.5}`
	go rawReq(http.MethodPost, ts.URL+"/v1/scenarios/busy/placements", []byte(jobBody))
	// The parked job signals once a worker is running it; from then until
	// release it holds busy's single quota slot.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("busy tenant's placement job never started")
	}
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/scenarios/busy/placements", []byte(jobBody))
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, "scenario placement job limit") {
		t.Fatalf("over-quota submit = %d %s, want 429 job limit", resp.StatusCode, body)
	}
	// The quiet tenant still places (its quota and the pool have room).
	resp, body = doReq(t, http.MethodPost, ts.URL+"/v1/scenarios/quiet/placements", []byte(jobBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant blocked by busy tenant: %d %s", resp.StatusCode, body)
	}
}

// TestScenarioStoreRoundTrip: scenarios created on one server boot into
// the next server that shares the Store, and deleted ones stay gone.
func TestScenarioStoreRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		store func(t *testing.T) registry.Store
	}{
		{"mem", func(t *testing.T) registry.Store { return registry.NewMemStore() }},
		{"file", func(t *testing.T) registry.Store {
			fs, err := registry.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := tc.store(t)
			cfg := scenarioConfig()
			cfg.Store = store
			s1, ts1 := newTestServer(t, cfg)
			spec := mustJSON(t, lineSpec())
			for _, id := range []string{"keep", "drop"} {
				if resp, body := doReq(t, http.MethodPut, ts1.URL+"/v1/scenarios/"+id, spec); resp.StatusCode != http.StatusCreated {
					t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
				}
			}
			if resp, _ := doReq(t, http.MethodDelete, ts1.URL+"/v1/scenarios/drop", nil); resp.StatusCode != http.StatusNoContent {
				t.Fatalf("delete drop failed: %d", resp.StatusCode)
			}
			ts1.Close()
			s1.Close()

			s2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			ids := s2.ScenarioIDs()
			want := []string{DefaultScenario, "keep"}
			if len(ids) != len(want) || ids[0] != want[0] || ids[1] != want[1] {
				t.Fatalf("reloaded scenarios = %v, want %v", ids, want)
			}
			ts2 := httptest.NewServer(s2.Handler())
			defer ts2.Close()
			resp, body := doReq(t, http.MethodGet, ts2.URL+"/v1/scenarios/keep/diagnosis", nil)
			if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"connections"`) {
				t.Fatalf("reloaded scenario not serving: %d %s", resp.StatusCode, body)
			}
		})
	}
}

// TestTenantSeriesCap: tenants beyond the cardinality cap share the
// tenant="other" series instead of growing /metrics without bound.
func TestTenantSeriesCap(t *testing.T) {
	cfg := scenarioConfig()
	cfg.TenantSeriesCap = 2 // the default tenant takes one slot at boot
	_, ts := newTestServer(t, cfg)
	spec := mustJSON(t, lineSpec())
	for _, id := range []string{"one", "two", "three"} {
		if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/"+id, spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
		}
		doReq(t, http.MethodPost, ts.URL+"/v1/scenarios/"+id+"/observations",
			[]byte(`{"time": 1, "reports": [{"connection": 0, "up": true}]}`))
	}
	_, metricsText := doReq(t, http.MethodGet, ts.URL+"/metrics", nil)
	if !strings.Contains(metricsText, `placemond_tenant_observations_ingested_total{tenant="one"}`) {
		t.Fatalf("first tenant lost its own series:\n%s", metricsText)
	}
	if !strings.Contains(metricsText, `tenant="other"`) {
		t.Fatalf("over-cap tenants not folded into other:\n%s", metricsText)
	}
	if strings.Contains(metricsText, `tenant="three"`) {
		t.Fatalf("cardinality cap leaked tenant three:\n%s", metricsText)
	}
}

// TestRegistryModeWithoutDefault: a server with only the scenario API
// (no legacy Paths/Place) rejects legacy routes with 404 but serves
// scenarios and healthz.
func TestRegistryModeWithoutDefault(t *testing.T) {
	s, err := New(Config{BuildScenario: testBuild})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/diagnosis", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy route without default tenant = %d, want 404", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"scenarios":0`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
	if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/solo", mustJSON(t, lineSpec())); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create in registry mode: %d %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/scenarios/solo/diagnosis", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario diagnosis in registry mode: %d", resp.StatusCode)
	}
}

// TestMaxScenarios: the registry cap answers 507 and the server stays up.
func TestMaxScenarios(t *testing.T) {
	cfg := scenarioConfig()
	cfg.MaxScenarios = 2 // default tenant occupies one slot
	_, ts := newTestServer(t, cfg)
	spec := mustJSON(t, lineSpec())
	if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/fits", spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create fits: %d %s", resp.StatusCode, body)
	}
	resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/overflow", spec)
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-cap create = %d %s, want 507", resp.StatusCode, body)
	}
	// Deleting frees a slot.
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/scenarios/fits", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete fits: %d", resp.StatusCode)
	}
	if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/overflow", spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after free: %d %s", resp.StatusCode, body)
	}
}
