package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Errors the placement pool can return from submit.
var (
	// ErrQueueFull means the bounded job queue had no room; the HTTP
	// layer translates it to 429 Too Many Requests.
	ErrQueueFull = errors.New("server: placement queue full")
	// ErrPoolClosed means the pool has been shut down.
	ErrPoolClosed = errors.New("server: placement pool closed")
	// ErrJobPanicked means the placement function panicked; the worker
	// recovered (one bad job must not take the daemon down) and the HTTP
	// layer reports 500.
	ErrJobPanicked = errors.New("server: placement job panicked")
)

// ServiceSpec is the wire form of one service to place.
type ServiceSpec struct {
	Name    string `json:"name,omitempty"`
	Clients []int  `json:"clients"`
}

// PlacementRequest is the body of POST /v1/placements.
type PlacementRequest struct {
	Services  []ServiceSpec `json:"services"`
	Alpha     float64       `json:"alpha"`
	Objective string        `json:"objective,omitempty"`
	// Algorithm selects the placement strategy: "lazy", "lazy-parallel",
	// "greedy", "greedy+ls", "qos", "random", "bruteforce", or
	// "branchbound". Empty selects the facade default — lazy for
	// submodular objectives, greedy otherwise; both produce the identical
	// deterministic placement.
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// PlacementResult is the body of a successful placement response.
type PlacementResult struct {
	Hosts                 []int   `json:"hosts"`
	Objective             float64 `json:"objective"`
	Coverage              int     `json:"coverage"`
	Identifiable          int     `json:"identifiable"`
	Distinguishable       int64   `json:"distinguishable"`
	WorstRelativeDistance float64 `json:"worst_relative_distance"`
	Evaluations           int     `json:"evaluations"`
	DurationSeconds       float64 `json:"duration_seconds"`
}

// PlaceFunc runs one placement job. Implementations must be safe for
// concurrent use (the facade's Network methods are). ctx is the
// submitting request's context and carries its trace span, so engine
// progress can be recorded against the originating request. An error is
// treated as a bad request: the placement library validates inputs and
// only fails on infeasible or malformed jobs.
type PlaceFunc func(ctx context.Context, req PlacementRequest) (*PlacementResult, error)

// pool is a bounded worker pool for placement jobs: a fixed number of
// workers drain a fixed-capacity queue, and submission never blocks —
// when the queue is full the caller gets ErrQueueFull immediately, which
// is the backpressure contract the API exposes as HTTP 429.
type pool struct {
	place   PlaceFunc
	queue   chan *job
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed against concurrent submits
	closed  bool
	jobs    func(status string) *metrics.Counter
	latency *metrics.Histogram
}

type job struct {
	ctx      context.Context
	req      PlacementRequest
	enqueued time.Time
	done     chan jobResult // buffered; workers never block on delivery
}

type jobResult struct {
	res *PlacementResult
	err error
}

func newPool(place PlaceFunc, workers, depth int, reg *metrics.Registry) *pool {
	p := &pool{
		place: place,
		queue: make(chan *job, depth),
		jobs: func(status string) *metrics.Counter {
			return reg.Counter("placemond_placement_jobs_total",
				"Placement jobs by final status.", "status", status)
		},
		latency: reg.Histogram("placemond_placement_job_duration_seconds",
			"Wall-clock duration of executed placement jobs.", nil),
	}
	// Pre-register every status so /metrics shows the full vocabulary
	// from the first scrape.
	for _, st := range []string{"completed", "failed", "rejected", "canceled"} {
		p.jobs(st)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		// The submitter may have given up (request timeout, client gone)
		// while the job sat in the queue; don't burn a worker on it.
		if j.ctx.Err() != nil {
			p.jobs("canceled").Inc()
			j.done <- jobResult{err: j.ctx.Err()}
			continue
		}
		sp := trace.FromContext(j.ctx)
		sp.AddStage("queue wait", time.Since(j.enqueued), "")
		start := time.Now()
		st := sp.StartStage("place")
		res, err := p.run(j.ctx, j.req)
		st.EndDetail("ok=%t", err == nil)
		p.latency.Observe(time.Since(start).Seconds())
		if err != nil {
			p.jobs("failed").Inc()
		} else {
			res.DurationSeconds = time.Since(start).Seconds()
			p.jobs("completed").Inc()
		}
		j.done <- jobResult{res: res, err: err}
	}
}

// run executes one job, converting a panic in the placement function
// into ErrJobPanicked so a poisoned request cannot kill the worker (or
// the process — workers run outside the HTTP recovery middleware).
func (p *pool) run(ctx context.Context, req PlacementRequest) (res *PlacementResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrJobPanicked, r)
		}
	}()
	return p.place(ctx, req)
}

// submit enqueues a job and waits for its result or for ctx to end.
// It returns ErrQueueFull without blocking when the queue has no room.
func (p *pool) submit(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
	j := &job{ctx: ctx, req: req, enqueued: time.Now(), done: make(chan jobResult, 1)}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		p.jobs("rejected").Inc()
		return nil, ErrQueueFull
	}

	select {
	case r := <-j.done:
		return r.res, r.err
	case <-ctx.Done():
		// The worker will notice the dead context (or deliver into the
		// buffered channel and move on); either way nothing leaks.
		return nil, ctx.Err()
	}
}

// close stops accepting jobs and waits for queued work to drain, so a
// graceful server shutdown finishes in-flight placements.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
