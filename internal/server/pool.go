package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Errors the placement pool can return from submit.
var (
	// ErrQueueFull means the bounded job queue had no room; the HTTP
	// layer translates it to 429 Too Many Requests.
	ErrQueueFull = errors.New("server: placement queue full")
	// ErrPoolClosed means the pool has been shut down.
	ErrPoolClosed = errors.New("server: placement pool closed")
	// ErrJobPanicked means the placement function panicked; the worker
	// recovered (one bad job must not take the daemon down) and the HTTP
	// layer reports 500.
	ErrJobPanicked = errors.New("server: placement job panicked")
	// ErrTenantBusy means one scenario already has its per-tenant quota of
	// placement jobs queued or running; the HTTP layer translates it to
	// 429 so a single noisy tenant cannot monopolize the shared pool.
	ErrTenantBusy = errors.New("server: scenario placement job limit reached")
)

// ServiceSpec is the wire form of one service to place.
type ServiceSpec struct {
	Name    string `json:"name,omitempty"`
	Clients []int  `json:"clients"`
}

// PlacementRequest is the body of POST /v1/placements.
type PlacementRequest struct {
	Services  []ServiceSpec `json:"services"`
	Alpha     float64       `json:"alpha"`
	Objective string        `json:"objective,omitempty"`
	// Algorithm selects the placement strategy: "lazy", "lazy-parallel",
	// "greedy", "greedy+ls", "qos", "random", "bruteforce", or
	// "branchbound". Empty selects the facade default — lazy for
	// submodular objectives, greedy otherwise; both produce the identical
	// deterministic placement.
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// PlacementResult is the body of a successful placement response.
type PlacementResult struct {
	Hosts                 []int   `json:"hosts"`
	Objective             float64 `json:"objective"`
	Coverage              int     `json:"coverage"`
	Identifiable          int     `json:"identifiable"`
	Distinguishable       int64   `json:"distinguishable"`
	WorstRelativeDistance float64 `json:"worst_relative_distance"`
	Evaluations           int     `json:"evaluations"`
	DurationSeconds       float64 `json:"duration_seconds"`
}

// PlaceFunc runs one placement job. Implementations must be safe for
// concurrent use (the facade's Network methods are). ctx is the
// submitting request's context and carries its trace span, so engine
// progress can be recorded against the originating request. An error is
// treated as a bad request: the placement library validates inputs and
// only fails on infeasible or malformed jobs.
type PlaceFunc func(ctx context.Context, req PlacementRequest) (*PlacementResult, error)

// pool is a bounded worker pool for placement jobs: a fixed number of
// workers drain a fixed-capacity queue, and submission never blocks —
// when the queue is full the caller gets ErrQueueFull immediately, which
// is the backpressure contract the API exposes as HTTP 429.
type pool struct {
	place   PlaceFunc // default job runner; keyed submits may override per job
	queue   chan *job
	wg      sync.WaitGroup
	mu      sync.RWMutex // guards closed against concurrent submits
	closed  bool
	jobs    func(status string) *metrics.Counter
	latency *metrics.Histogram

	// Per-key accounting: a keyed job occupies one slot of its key's
	// quota from submit until the worker retires it, so queued and
	// running jobs both count. keyCond broadcasts on every release,
	// which is what waitIdle (per-tenant drain) sleeps on.
	keyMu     sync.Mutex
	keyCond   *sync.Cond
	inflight  map[string]int
	maxPerKey int // ≤ 0 means no per-key quota
}

type job struct {
	ctx      context.Context
	req      PlacementRequest
	key      string    // per-tenant quota key; "" for unkeyed jobs
	place    PlaceFunc // nil selects the pool default
	enqueued time.Time
	done     chan jobResult // buffered; workers never block on delivery
}

type jobResult struct {
	res *PlacementResult
	err error
}

func newPool(place PlaceFunc, workers, depth int, reg *metrics.Registry) *pool {
	p := &pool{
		place: place,
		queue: make(chan *job, depth),
		jobs: func(status string) *metrics.Counter {
			return reg.Counter("placemond_placement_jobs_total",
				"Placement jobs by final status.", "status", status)
		},
		latency: reg.Histogram("placemond_placement_job_duration_seconds",
			"Wall-clock duration of executed placement jobs.", nil),
		inflight: make(map[string]int),
		// By default one key may use the pool's whole capacity (running
		// plus queued); the quota only bites below that when configured.
		maxPerKey: workers + depth,
	}
	p.keyCond = sync.NewCond(&p.keyMu)
	// Pre-register every status so /metrics shows the full vocabulary
	// from the first scrape.
	for _, st := range []string{"completed", "failed", "rejected", "canceled"} {
		p.jobs(st)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		// The submitter may have given up (request timeout, client gone)
		// while the job sat in the queue; don't burn a worker on it.
		if j.ctx.Err() != nil {
			p.jobs("canceled").Inc()
			j.done <- jobResult{err: j.ctx.Err()}
			p.release(j.key)
			continue
		}
		sp := trace.FromContext(j.ctx)
		sp.AddStage("queue wait", time.Since(j.enqueued), "")
		start := time.Now()
		st := sp.StartStage("place")
		res, err := p.run(j)
		st.EndDetail("ok=%t", err == nil)
		p.latency.Observe(time.Since(start).Seconds())
		if err != nil {
			p.jobs("failed").Inc()
		} else {
			res.DurationSeconds = time.Since(start).Seconds()
			p.jobs("completed").Inc()
		}
		j.done <- jobResult{res: res, err: err}
		p.release(j.key)
	}
}

// run executes one job, converting a panic in the placement function
// into ErrJobPanicked so a poisoned request cannot kill the worker (or
// the process — workers run outside the HTTP recovery middleware).
func (p *pool) run(j *job) (res *PlacementResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrJobPanicked, r)
		}
	}()
	fn := j.place
	if fn == nil {
		fn = p.place
	}
	return fn(j.ctx, j.req)
}

// acquire claims one quota slot for key; it fails with ErrTenantBusy at
// the per-key cap. An empty key is unkeyed and never limited.
func (p *pool) acquire(key string) error {
	if key == "" {
		return nil
	}
	p.keyMu.Lock()
	defer p.keyMu.Unlock()
	if p.maxPerKey > 0 && p.inflight[key] >= p.maxPerKey {
		return fmt.Errorf("%w: %q", ErrTenantBusy, key)
	}
	p.inflight[key]++
	return nil
}

// release returns key's quota slot and wakes any drain waiting on it.
func (p *pool) release(key string) {
	if key == "" {
		return
	}
	p.keyMu.Lock()
	if p.inflight[key]--; p.inflight[key] <= 0 {
		delete(p.inflight, key)
	}
	p.keyCond.Broadcast()
	p.keyMu.Unlock()
}

// waitIdle blocks until key has no queued or running jobs, or ctx ends;
// it reports whether the key actually drained.
func (p *pool) waitIdle(ctx context.Context, key string) bool {
	stop := context.AfterFunc(ctx, func() {
		p.keyMu.Lock()
		p.keyCond.Broadcast()
		p.keyMu.Unlock()
	})
	defer stop()
	p.keyMu.Lock()
	defer p.keyMu.Unlock()
	for p.inflight[key] > 0 {
		if ctx.Err() != nil {
			return false
		}
		p.keyCond.Wait()
	}
	return true
}

// submit enqueues an unkeyed job with the pool's default place function
// and waits for its result or for ctx to end.
func (p *pool) submit(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
	return p.submitKeyed(ctx, "", nil, req)
}

// submitKeyed enqueues a job charged against key's per-tenant quota,
// running place (or the pool default when nil), and waits for its result
// or for ctx to end. It returns ErrQueueFull or ErrTenantBusy without
// blocking when there is no room.
func (p *pool) submitKeyed(ctx context.Context, key string, place PlaceFunc, req PlacementRequest) (*PlacementResult, error) {
	if err := p.acquire(key); err != nil {
		p.jobs("rejected").Inc()
		if len(p.queue) == cap(p.queue) {
			// Both limits are hit: report the pool-wide condition, which
			// keeps single-tenant behavior identical to the pre-registry
			// daemon's.
			return nil, ErrQueueFull
		}
		return nil, err
	}
	j := &job{ctx: ctx, req: req, key: key, place: place, enqueued: time.Now(), done: make(chan jobResult, 1)}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.release(key)
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		p.release(key)
		p.jobs("rejected").Inc()
		return nil, ErrQueueFull
	}

	select {
	case r := <-j.done:
		return r.res, r.err
	case <-ctx.Done():
		// The worker will notice the dead context (or deliver into the
		// buffered channel and move on); either way nothing leaks — the
		// quota slot is released when the worker retires the job.
		return nil, ctx.Err()
	}
}

// close stops accepting jobs and waits for queued work to drain, so a
// graceful server shutdown finishes in-flight placements.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
