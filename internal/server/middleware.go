package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// statusWriter records the status code and byte count a handler produced
// so the logging/metrics layer can report them. Wrappers are pooled —
// one is checked out per request and returned after the deferred
// observability epilogue, the last code to touch it.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

func getStatusWriter(w http.ResponseWriter) *statusWriter {
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter = w
	sw.status = 0
	sw.bytes = 0
	return sw
}

func putStatusWriter(sw *statusWriter) {
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Flush lets streaming handlers (pprof) keep working through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability is the outermost middleware: it adopts the client's
// Placemond-Trace-Id (minting one when absent), attaches a span to the
// request context, echoes the ID on the response, captures the response
// status, converts panics into 500s (logging the stack), writes one
// structured request record per request — plus a warning above the
// slow-request threshold — and files the finished trace into the
// /debug/traces ring.
func (s *Server) withObservability(next http.Handler) http.Handler {
	// The stage hook closes only over the server, so one closure serves
	// every request instead of allocating per request.
	onStage := func(st trace.Stage) {
		// Engine rounds surface as span stages; fold them into the
		// round-duration histogram as they land.
		if strings.HasPrefix(st.Name, "placement round") {
			s.roundHist.Observe(st.DurationSeconds)
		}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := getStatusWriter(w)
		defer putStatusWriter(sw)
		start := time.Now()
		sp := trace.NewSpan(r.Header.Get(trace.Header))
		sp.OnStage(onStage)
		sw.Header().Set(trace.Header, sp.ID())
		r = r.WithContext(trace.NewContext(r.Context(), sp))
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error("panic serving request",
					"method", r.Method, "path", r.URL.Path,
					"trace_id", sp.ID(), "panic", p, "stack", string(debug.Stack()))
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal server error")
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			elapsed := time.Since(start)
			s.reqHist.Observe(elapsed.Seconds())
			if s.logRequests {
				// Guarded so a disabled logger skips the variadic arg
				// boxing entirely, not just the record formatting.
				s.logger.Info("request",
					"method", r.Method, "path", r.URL.Path,
					"status", sw.status, "bytes", sw.bytes,
					"duration", elapsed.Round(time.Microsecond),
					"trace_id", sp.ID())
			}
			if s.slowRequest > 0 && elapsed >= s.slowRequest {
				s.logger.Warn("slow request",
					"method", r.Method, "path", r.URL.Path,
					"status", sw.status,
					"duration", elapsed.Round(time.Microsecond),
					"threshold", s.slowRequest,
					"trace_id", sp.ID())
			}
			if !strings.HasPrefix(r.URL.Path, "/debug/") {
				// Reading /debug/traces (or profiling) must not evict the
				// traces being inspected.
				rec := sp.Finish(r.Method, r.URL.Path, sw.status, elapsed)
				if s.traces != nil {
					s.traces.Add(rec)
				}
				// Scenario-scoped requests (span carries the tenant) are
				// also filed into that tenant's own ring.
				if rec.Tenant != "" {
					if t, ok := s.tenants.Get(rec.Tenant); ok && t.ring != nil {
						t.ring.Add(rec)
					}
				}
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// withTimeout bounds every request with a context deadline. Handlers that
// wait (the placement pool) observe the deadline and abort; quick handlers
// never notice it.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	if s.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// instrument counts requests and observes latency for one named route.
// The per-status counters are registered through the registry on first
// use and then cached per route, so the hot path skips the registry's
// label rendering and lock.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	hist := s.registry.Histogram("placemond_http_request_duration_seconds",
		"HTTP request latency by route.", nil, "route", route)
	var (
		mu       sync.RWMutex
		byStatus = make(map[int]*metrics.Counter)
	)
	counterFor := func(status int) *metrics.Counter {
		mu.RLock()
		c, ok := byStatus[status]
		mu.RUnlock()
		if ok {
			return c
		}
		c = s.registry.Counter("placemond_http_requests_total",
			"HTTP requests by route and status code.",
			"route", route, "code", strconv.Itoa(status))
		mu.Lock()
		byStatus[status] = c
		mu.Unlock()
		return c
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		counterFor(status).Inc()
	})
}

// discardHandler is the backend of the default (nil Config.Logger)
// logger: Enabled reports false for every level, so slog skips record
// construction entirely. The previous default — a TextHandler writing to
// io.Discard — paid full record formatting per request on the hot path
// just to throw the bytes away.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// writeJSON renders v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors after WriteHeader can only be transport failures;
	// there is nothing useful left to tell the client.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
