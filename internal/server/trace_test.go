package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
)

// getTraces fetches and decodes /debug/traces.
func getTraces(t *testing.T, base string) []map[string]any {
	t.Helper()
	resp, body := getJSON(t, base+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces = %d", resp.StatusCode)
	}
	raw, ok := body["traces"].([]any)
	if !ok {
		t.Fatalf("no traces array in %v", body)
	}
	out := make([]map[string]any, len(raw))
	for i, r := range raw {
		out[i] = r.(map[string]any)
	}
	return out
}

func stageNames(rec map[string]any) []string {
	var names []string
	stages, _ := rec["stages"].([]any)
	for _, s := range stages {
		names = append(names, s.(map[string]any)["name"].(string))
	}
	return names
}

// TestTraceAdoptedAndRecorded sends an ingest request with a
// client-supplied trace ID and checks the ID is echoed on the response
// and that the ring entry carries the named stages with real timings.
func TestTraceAdoptedAndRecorded(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations",
		strings.NewReader(`{"batch_id": "b1", "time": 1, "reports": [{"connection": 0, "up": true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "client-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.Header); got != "client-chosen-id" {
		t.Fatalf("response %s = %q, want the adopted ID", trace.Header, got)
	}

	recs := getTraces(t, ts.URL)
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1: %v", len(recs), recs)
	}
	rec := recs[0]
	if rec["trace_id"] != "client-chosen-id" || rec["path"] != "/v1/observations" {
		t.Fatalf("record = %v", rec)
	}
	if names := stageNames(rec); len(names) != 3 ||
		names[0] != "decode" || names[1] != "dedup" || names[2] != "ingest" {
		t.Fatalf("stages = %v, want [decode dedup ingest]", names)
	}
	if rec["duration_seconds"].(float64) <= 0 {
		t.Fatalf("record duration = %v", rec["duration_seconds"])
	}
}

// TestTraceMintedWhenAbsent: a request without the header still gets a
// fresh ID on the response.
func TestTraceMintedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, _ := getJSON(t, ts.URL+"/healthz")
	if id := resp.Header.Get(trace.Header); len(id) != 24 {
		t.Fatalf("minted ID = %q, want 24 hex chars", id)
	}
}

// TestTraceReachesWorkerPool checks the request's trace ID is visible
// inside the PlaceFunc via its context, and that the finished placement
// trace records the pool stages.
func TestTraceReachesWorkerPool(t *testing.T) {
	seen := make(chan string, 1)
	cfg := testConfig()
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		seen <- trace.IDFromContext(ctx)
		return &PlacementResult{Hosts: []int{2}}, nil
	}
	_, ts := newTestServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/placements",
		strings.NewReader(`{"services": [{"clients": [0]}], "alpha": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "pool-trace-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement status = %d", resp.StatusCode)
	}
	if got := <-seen; got != "pool-trace-id" {
		t.Fatalf("PlaceFunc saw trace ID %q, want pool-trace-id", got)
	}

	recs := getTraces(t, ts.URL)
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	names := stageNames(recs[0])
	want := []string{"decode", "queue wait", "place"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
}

// TestTraceRingSkipsDebug: reading /debug/traces must not add itself to
// the ring, and TraceBuffer ≤ -1 disables the endpoint entirely.
func TestTraceRingSkipsDebug(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		if recs := getTraces(t, ts.URL); len(recs) != 0 {
			t.Fatalf("ring polluted by /debug/traces reads: %v", recs)
		}
	}

	cfg := testConfig()
	cfg.TraceBuffer = -1
	_, ts2 := newTestServer(t, cfg)
	resp, err := http.Get(ts2.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /debug/traces = %d, want 404", resp.StatusCode)
	}
}

// tracesFrom fetches and decodes any traces URL (with query string).
func tracesFrom(t *testing.T, url string) []map[string]any {
	t.Helper()
	resp, body := getJSON(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	raw, ok := body["traces"].([]any)
	if !ok {
		t.Fatalf("no traces array in %v", body)
	}
	out := make([]map[string]any, len(raw))
	for i, r := range raw {
		out[i] = r.(map[string]any)
	}
	return out
}

// TestTracesLimitAndScenarioFilters: /debug/traces?limit= caps the
// response at the newest N records, ?scenario= keeps only one tenant's
// requests, the two compose, and the per-scenario ring honours ?limit=
// too. Malformed limits are rejected with 400.
func TestTracesLimitAndScenarioFilters(t *testing.T) {
	_, ts := newTestServer(t, scenarioConfig())
	spec := mustJSON(t, lineSpec())
	for _, id := range []string{"alpha", "beta"} {
		if resp, body := doReq(t, http.MethodPut, ts.URL+"/v1/scenarios/"+id, spec); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s = %d %s", id, resp.StatusCode, body)
		}
	}
	ingest := func(id string, n int) {
		for i := 0; i < n; i++ {
			resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/scenarios/"+id+"/observations",
				[]byte(fmt.Sprintf(`{"time": %d, "reports": [{"connection": 0, "up": true}]}`, i+1)))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest %s = %d %s", id, resp.StatusCode, body)
			}
		}
	}
	ingest("alpha", 3)
	ingest("beta", 2)

	all := getTraces(t, ts.URL)
	if len(all) != 7 { // 2 creates + 5 ingests
		t.Fatalf("ring has %d records, want 7", len(all))
	}

	// limit returns exactly the newest N: the two beta ingests.
	limited := tracesFrom(t, ts.URL+"/debug/traces?limit=2")
	if len(limited) != 2 {
		t.Fatalf("limit=2 returned %d records", len(limited))
	}
	for _, rec := range limited {
		if rec["tenant"] != "beta" {
			t.Fatalf("limit=2 returned non-newest record: %v", rec)
		}
	}
	// A limit beyond the ring size is not an error.
	if recs := tracesFrom(t, ts.URL+"/debug/traces?limit=100"); len(recs) != 7 {
		t.Fatalf("limit=100 returned %d records, want 7", len(recs))
	}

	// scenario= keeps only that tenant's records, even mid-ring.
	alpha := tracesFrom(t, ts.URL+"/debug/traces?scenario=alpha")
	if len(alpha) != 3 {
		t.Fatalf("scenario=alpha returned %d records, want 3: %v", len(alpha), alpha)
	}
	for _, rec := range alpha {
		if rec["tenant"] != "alpha" {
			t.Fatalf("scenario=alpha leaked record: %v", rec)
		}
	}
	if recs := tracesFrom(t, ts.URL+"/debug/traces?scenario=nosuch"); len(recs) != 0 {
		t.Fatalf("scenario=nosuch returned %d records, want 0", len(recs))
	}

	// The filters compose: newest single alpha record.
	combo := tracesFrom(t, ts.URL+"/debug/traces?scenario=alpha&limit=1")
	if len(combo) != 1 || combo[0]["tenant"] != "alpha" {
		t.Fatalf("scenario=alpha&limit=1 = %v", combo)
	}

	// The tenant-scoped ring understands limit too.
	if recs := tracesFrom(t, ts.URL+"/v1/scenarios/beta/traces?limit=1"); len(recs) != 1 {
		t.Fatalf("tenant traces limit=1 returned %d records", len(recs))
	}

	// Bad limits are rejected up front on both endpoints.
	for _, url := range []string{
		ts.URL + "/debug/traces?limit=abc",
		ts.URL + "/debug/traces?limit=-1",
		ts.URL + "/v1/scenarios/beta/traces?limit=abc",
	} {
		resp, _, err := rawReq(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", url, resp.StatusCode)
		}
	}
}
