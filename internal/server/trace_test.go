package server

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
)

// getTraces fetches and decodes /debug/traces.
func getTraces(t *testing.T, base string) []map[string]any {
	t.Helper()
	resp, body := getJSON(t, base+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces = %d", resp.StatusCode)
	}
	raw, ok := body["traces"].([]any)
	if !ok {
		t.Fatalf("no traces array in %v", body)
	}
	out := make([]map[string]any, len(raw))
	for i, r := range raw {
		out[i] = r.(map[string]any)
	}
	return out
}

func stageNames(rec map[string]any) []string {
	var names []string
	stages, _ := rec["stages"].([]any)
	for _, s := range stages {
		names = append(names, s.(map[string]any)["name"].(string))
	}
	return names
}

// TestTraceAdoptedAndRecorded sends an ingest request with a
// client-supplied trace ID and checks the ID is echoed on the response
// and that the ring entry carries the named stages with real timings.
func TestTraceAdoptedAndRecorded(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/observations",
		strings.NewReader(`{"batch_id": "b1", "time": 1, "reports": [{"connection": 0, "up": true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "client-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(trace.Header); got != "client-chosen-id" {
		t.Fatalf("response %s = %q, want the adopted ID", trace.Header, got)
	}

	recs := getTraces(t, ts.URL)
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1: %v", len(recs), recs)
	}
	rec := recs[0]
	if rec["trace_id"] != "client-chosen-id" || rec["path"] != "/v1/observations" {
		t.Fatalf("record = %v", rec)
	}
	if names := stageNames(rec); len(names) != 3 ||
		names[0] != "decode" || names[1] != "dedup" || names[2] != "ingest" {
		t.Fatalf("stages = %v, want [decode dedup ingest]", names)
	}
	if rec["duration_seconds"].(float64) <= 0 {
		t.Fatalf("record duration = %v", rec["duration_seconds"])
	}
}

// TestTraceMintedWhenAbsent: a request without the header still gets a
// fresh ID on the response.
func TestTraceMintedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, _ := getJSON(t, ts.URL+"/healthz")
	if id := resp.Header.Get(trace.Header); len(id) != 24 {
		t.Fatalf("minted ID = %q, want 24 hex chars", id)
	}
}

// TestTraceReachesWorkerPool checks the request's trace ID is visible
// inside the PlaceFunc via its context, and that the finished placement
// trace records the pool stages.
func TestTraceReachesWorkerPool(t *testing.T) {
	seen := make(chan string, 1)
	cfg := testConfig()
	cfg.Place = func(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
		seen <- trace.IDFromContext(ctx)
		return &PlacementResult{Hosts: []int{2}}, nil
	}
	_, ts := newTestServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/placements",
		strings.NewReader(`{"services": [{"clients": [0]}], "alpha": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "pool-trace-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("placement status = %d", resp.StatusCode)
	}
	if got := <-seen; got != "pool-trace-id" {
		t.Fatalf("PlaceFunc saw trace ID %q, want pool-trace-id", got)
	}

	recs := getTraces(t, ts.URL)
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	names := stageNames(recs[0])
	want := []string{"decode", "queue wait", "place"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
}

// TestTraceRingSkipsDebug: reading /debug/traces must not add itself to
// the ring, and TraceBuffer ≤ -1 disables the endpoint entirely.
func TestTraceRingSkipsDebug(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		if recs := getTraces(t, ts.URL); len(recs) != 0 {
			t.Fatalf("ring polluted by /debug/traces reads: %v", recs)
		}
	}

	cfg := testConfig()
	cfg.TraceBuffer = -1
	_, ts2 := newTestServer(t, cfg)
	resp, err := http.Get(ts2.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /debug/traces = %d, want 404", resp.StatusCode)
	}
}
