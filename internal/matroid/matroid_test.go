package matroid

import (
	"reflect"
	"testing"
)

func TestPartitionMatroidBasics(t *testing.T) {
	// Two blocks: elements {0,1} in block 0, {2,3} in block 1, capacity 1.
	m, err := NewPartitionMatroid([]int{0, 0, 1, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.GroundSize() != 4 {
		t.Fatalf("GroundSize = %d", m.GroundSize())
	}
	if !m.CanAdd(nil, 0) {
		t.Fatal("empty set should accept any element")
	}
	if m.CanAdd([]int{0}, 1) {
		t.Fatal("block capacity 1 should reject second element of block 0")
	}
	if !m.CanAdd([]int{0}, 2) {
		t.Fatal("different block should be acceptable")
	}
}

func TestPartitionMatroidCapacities(t *testing.T) {
	m, err := NewPartitionMatroid([]int{0, 0, 0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanAdd([]int{0}, 1) {
		t.Fatal("capacity 2 should admit a second element")
	}
	if m.CanAdd([]int{0, 1}, 2) {
		t.Fatal("capacity 2 should reject a third element")
	}
}

func TestPartitionMatroidErrors(t *testing.T) {
	if _, err := NewPartitionMatroid([]int{0, 5}, []int{1}); err == nil {
		t.Fatal("out-of-range block should error")
	}
	if _, err := NewPartitionMatroid([]int{0}, []int{0}); err == nil {
		t.Fatal("zero capacity should error")
	}
}

func TestPartitionMatroidExchangeAxiom(t *testing.T) {
	m, err := NewPartitionMatroid([]int{0, 0, 1, 1, 2, 2, 2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckExchange(m, 500, 1); v != nil {
		t.Fatal(v)
	}
}

func TestCapacitySystemBasics(t *testing.T) {
	// Two services (demand 1 and 2), one host with capacity 2, elements:
	// e0 = (s0, h0), e1 = (s1, h0).
	c, err := NewCapacitySystem([]int{0, 1}, []int{0, 0}, []float64{1, 2}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !c.CanAdd(nil, 0) || !c.CanAdd(nil, 1) {
		t.Fatal("either service alone should fit")
	}
	if c.CanAdd([]int{0}, 1) {
		t.Fatal("1 + 2 > 2 should be rejected")
	}
	// One host per service: same service twice is rejected even with room.
	c2, err := NewCapacitySystem([]int{0, 0}, []int{0, 1}, []float64{1}, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if c2.CanAdd([]int{0}, 1) {
		t.Fatal("same service on second host should be rejected")
	}
}

func TestCapacitySystemErrors(t *testing.T) {
	if _, err := NewCapacitySystem([]int{0}, []int{0, 1}, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := NewCapacitySystem([]int{2}, []int{0}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("bad service index should error")
	}
	if _, err := NewCapacitySystem([]int{0}, []int{3}, []float64{1}, []float64{1}); err == nil {
		t.Fatal("bad host index should error")
	}
	if _, err := NewCapacitySystem([]int{0}, []int{0}, []float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative demand should error")
	}
	if _, err := NewCapacitySystem([]int{0}, []int{0}, []float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestCapacitySystemP(t *testing.T) {
	cases := []struct {
		demand []float64
		want   int
	}{
		{[]float64{1, 1, 1}, 2}, // identical demands: ceil(1)+1 = 2, ratio 1/3
		{[]float64{1, 2}, 3},    // ceil(2)+1
		{[]float64{2, 3}, 3},    // ceil(1.5)+1 = 2+1
		{[]float64{}, 2},        // degenerate
		{[]float64{0, 1}, 2},    // zero min: degenerate fallback
	}
	for _, c := range cases {
		hosts := []float64{100}
		service := make([]int, len(c.demand))
		hostIdx := make([]int, len(c.demand))
		for i := range service {
			service[i] = i
		}
		sys, err := NewCapacitySystem(service, hostIdx, c.demand, hosts)
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.P(); got != c.want {
			t.Errorf("P(%v) = %d, want %d", c.demand, got, c.want)
		}
	}
}

// modularCount is f(S) = |S|, trivially monotone submodular.
type modularCount struct{}

func (modularCount) Value(s []int) float64 { return float64(len(s)) }

func TestGreedyPicksAllFeasible(t *testing.T) {
	m, err := NewPartitionMatroid([]int{0, 0, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sel := Greedy(m, modularCount{}, 10)
	if len(sel) != 2 {
		t.Fatalf("selected %v, want one element per block", sel)
	}
}

func TestGreedyDeterministicTieBreak(t *testing.T) {
	m, err := NewPartitionMatroid([]int{0, 0, 0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	sel := Greedy(m, modularCount{}, 1)
	if !reflect.DeepEqual(sel, []int{0}) {
		t.Fatalf("sel = %v, want [0] (smallest index wins ties)", sel)
	}
}

func TestGreedyRespectsMaxSteps(t *testing.T) {
	m, err := NewPartitionMatroid([]int{0, 1, 2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	sel := Greedy(m, modularCount{}, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %d elements, want 2", len(sel))
	}
}

// coverObjective is a weighted-coverage function over predefined sets.
type coverObjective struct {
	sets [][]int
	n    int
}

func (c coverObjective) Value(sel []int) float64 {
	covered := map[int]bool{}
	for _, e := range sel {
		for _, x := range c.sets[e] {
			covered[x] = true
		}
	}
	return float64(len(covered))
}

func TestGreedyHalfApproximation(t *testing.T) {
	// Exhaustively compare greedy against brute force on small partition
	// matroid coverage instances: greedy ≥ optimal/2 (Theorem 11).
	obj := coverObjective{
		sets: [][]int{{0, 1}, {2}, {1, 2, 3}, {4}, {0, 4}},
		n:    5,
	}
	block := []int{0, 0, 1, 1, 1}
	m, err := NewPartitionMatroid(block, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	greedyVal := obj.Value(Greedy(m, obj, 2))

	best := 0.0
	for e1 := 0; e1 < 2; e1++ {
		for e2 := 2; e2 < 5; e2++ {
			if v := obj.Value([]int{e1, e2}); v > best {
				best = v
			}
		}
	}
	if greedyVal < best/2 {
		t.Fatalf("greedy %v < opt/2 = %v", greedyVal, best/2)
	}
}

func TestLazyGreedyMatchesGreedyOnSubmodular(t *testing.T) {
	obj := coverObjective{
		sets: [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0}, {5, 6}, {1, 6}},
		n:    7,
	}
	block := []int{0, 0, 1, 1, 2, 2}
	m, err := NewPartitionMatroid(block, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	g := Greedy(m, obj, 3)
	l := LazyGreedy(m, obj, 3)
	if obj.Value(g) != obj.Value(l) {
		t.Fatalf("lazy value %v != plain value %v (g=%v l=%v)", obj.Value(l), obj.Value(g), g, l)
	}
}

func TestLazyGreedyEmptyGround(t *testing.T) {
	m, err := NewPartitionMatroid(nil, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sel := LazyGreedy(m, modularCount{}, 3); len(sel) != 0 {
		t.Fatalf("sel = %v, want empty", sel)
	}
}

func TestCheckMonotoneAndSubmodular(t *testing.T) {
	obj := coverObjective{sets: [][]int{{0}, {0, 1}, {2}}, n: 3}
	if v := CheckMonotone(obj, 3, 300, 7); v != nil {
		t.Fatal(v)
	}
	if v := CheckSubmodular(obj, 3, 300, 7); v != nil {
		t.Fatal(v)
	}
}

// antitone is decreasing, violating monotonicity.
type antitone struct{}

func (antitone) Value(s []int) float64 { return -float64(len(s)) }

func TestCheckMonotoneFindsViolation(t *testing.T) {
	v := CheckMonotone(antitone{}, 4, 500, 3)
	if v == nil {
		t.Fatal("expected a monotonicity violation")
	}
	if v.Property != "monotonicity" {
		t.Fatalf("property = %q", v.Property)
	}
	if v.Error() == "" {
		t.Fatal("violation should render an error string")
	}
}

// supermodular has increasing returns: f(S) = |S|².
type supermodular struct{}

func (supermodular) Value(s []int) float64 { return float64(len(s) * len(s)) }

func TestCheckSubmodularFindsViolation(t *testing.T) {
	if v := CheckSubmodular(supermodular{}, 5, 500, 11); v == nil {
		t.Fatal("expected a submodularity violation")
	}
}

func TestSetFunctionFunc(t *testing.T) {
	f := SetFunctionFunc(func(s []int) float64 { return float64(len(s)) })
	if f.Value([]int{1, 2}) != 2 {
		t.Fatal("adapter broken")
	}
}
