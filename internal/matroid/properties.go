package matroid

import (
	"fmt"
	"math/rand"
)

// This file provides empirical checkers for the structural properties the
// paper's guarantees depend on (Definitions 9 and 10). They are used by
// tests to confirm Lemmas 13 and 17 (coverage and distinguishability are
// monotone submodular) on concrete instances and to exhibit the
// Proposition 15/16 violations for identifiability. Checks are randomized
// but deterministic given the seed.

// Violation describes a counterexample found by a property checker.
type Violation struct {
	Property string
	A, B     []int // witness subsets (A ⊆ B)
	E        int   // witness element
	Detail   string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("matroid: %s violated: A=%v B=%v e=%d: %s", v.Property, v.A, v.B, v.E, v.Detail)
}

// CheckMonotone samples random chains A ⊆ B and verifies f(A) ≤ f(B). It
// returns nil if no violation is found in trials attempts.
func CheckMonotone(f SetFunction, groundSize, trials int, seed int64) *Violation {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		b := randomSubset(rng, groundSize)
		a := subSubset(rng, b)
		if f.Value(a) > f.Value(b)+1e-9 {
			return &Violation{
				Property: "monotonicity",
				A:        a, B: b,
				Detail: fmt.Sprintf("f(A)=%g > f(B)=%g", f.Value(a), f.Value(b)),
			}
		}
	}
	return nil
}

// CheckSubmodular samples random chains A ⊆ B and elements e ∉ B and
// verifies the diminishing-returns inequality
// f(A ∪ {e}) − f(A) ≥ f(B ∪ {e}) − f(B).
func CheckSubmodular(f SetFunction, groundSize, trials int, seed int64) *Violation {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		b := randomSubset(rng, groundSize)
		if len(b) == groundSize {
			continue
		}
		a := subSubset(rng, b)
		e := randomOutside(rng, b, groundSize)
		gainA := f.Value(append(append([]int(nil), a...), e)) - f.Value(a)
		gainB := f.Value(append(append([]int(nil), b...), e)) - f.Value(b)
		if gainA < gainB-1e-9 {
			return &Violation{
				Property: "submodularity",
				A:        a, B: b, E: e,
				Detail: fmt.Sprintf("gain at A = %g < gain at B = %g", gainA, gainB),
			}
		}
	}
	return nil
}

// CheckExchange verifies the matroid exchange axiom on random independent
// pairs: for independent A, B with |B| > |A| there is x ∈ B \ A with
// A ∪ {x} independent. It enumerates independent sets by random growth, so
// it is a sampling check, not a proof.
func CheckExchange(sys IndependenceSystem, trials int, seed int64) *Violation {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		a := randomIndependent(rng, sys)
		b := randomIndependent(rng, sys)
		if len(b) <= len(a) {
			a, b = b, a
		}
		if len(b) <= len(a) {
			continue
		}
		inA := map[int]bool{}
		for _, x := range a {
			inA[x] = true
		}
		ok := false
		for _, x := range b {
			if !inA[x] && sys.CanAdd(a, x) {
				ok = true
				break
			}
		}
		if !ok {
			return &Violation{
				Property: "exchange",
				A:        a, B: b,
				Detail: "no element of B \\ A extends A",
			}
		}
	}
	return nil
}

func randomSubset(rng *rand.Rand, groundSize int) []int {
	var out []int
	for e := 0; e < groundSize; e++ {
		if rng.Intn(2) == 0 {
			out = append(out, e)
		}
	}
	return out
}

func subSubset(rng *rand.Rand, b []int) []int {
	var out []int
	for _, e := range b {
		if rng.Intn(2) == 0 {
			out = append(out, e)
		}
	}
	return out
}

func randomOutside(rng *rand.Rand, b []int, groundSize int) int {
	in := map[int]bool{}
	for _, e := range b {
		in[e] = true
	}
	for {
		e := rng.Intn(groundSize)
		if !in[e] {
			return e
		}
	}
}

func randomIndependent(rng *rand.Rand, sys IndependenceSystem) []int {
	var sel []int
	perm := rng.Perm(sys.GroundSize())
	for _, e := range perm {
		if rng.Intn(2) == 0 && sys.CanAdd(sel, e) {
			sel = append(sel, e)
		}
	}
	return sel
}
