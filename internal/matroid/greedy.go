package matroid

import (
	"container/heap"
	"math"
)

// Greedy maximizes a monotone set function over an independence system by
// repeatedly adding the feasible element with the largest objective value,
// for at most maxSteps additions (use GroundSize() or the matroid rank for
// "until saturation"). Ties break toward the smaller element index so
// results are deterministic.
//
// When f is monotone submodular and the system is a matroid, the result is
// a 1/2-approximation (Theorem 11); over a p-independence system it is a
// 1/(p+1)-approximation (Theorem 21). The returned selection lists
// elements in the order they were added.
func Greedy(sys IndependenceSystem, f SetFunction, maxSteps int) []int {
	var selected []int
	in := make([]bool, sys.GroundSize())
	trial := make([]int, 0, maxSteps+1)
	for step := 0; step < maxSteps; step++ {
		best, bestVal := -1, math.Inf(-1)
		for e := 0; e < sys.GroundSize(); e++ {
			if in[e] || !sys.CanAdd(selected, e) {
				continue
			}
			trial = append(trial[:0], selected...)
			trial = append(trial, e)
			if v := f.Value(trial); v > bestVal {
				best, bestVal = e, v
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, best)
		in[best] = true
	}
	return selected
}

// LazyGreedy is Greedy with lazy evaluation ("accelerated greedy"): stale
// marginal gains are kept in a max-heap and only re-evaluated when an
// element reaches the top, exploiting the diminishing-returns property.
// For submodular f it returns a selection with the same guarantee as
// Greedy (and usually the identical one); for non-submodular f the result
// may differ from Greedy and carries no guarantee.
func LazyGreedy(sys IndependenceSystem, f SetFunction, maxSteps int) []int {
	n := sys.GroundSize()
	var selected []int
	in := make([]bool, n)
	base := f.Value(nil)
	trial := make([]int, 0, maxSteps+1)

	gain := func(e int) float64 {
		trial = append(trial[:0], selected...)
		trial = append(trial, e)
		return f.Value(trial) - base
	}

	h := &gainHeap{}
	for e := 0; e < n; e++ {
		if sys.CanAdd(selected, e) {
			heap.Push(h, gainEntry{element: e, gain: gain(e), round: 0})
		}
	}

	for step := 0; step < maxSteps && h.Len() > 0; step++ {
		chosen, found := -1, false
		for h.Len() > 0 {
			top := heap.Pop(h).(gainEntry)
			if in[top.element] || !sys.CanAdd(selected, top.element) {
				// Infeasibility is monotone in both of this package's
				// systems (selections are never removed), so the element
				// can be dropped for good.
				continue
			}
			if top.round == step {
				chosen, found = top.element, true
				break
			}
			top.gain = gain(top.element)
			top.round = step
			heap.Push(h, top)
		}
		if !found {
			break // heap drained without a feasible element
		}
		selected = append(selected, chosen)
		in[chosen] = true
		base = f.Value(selected)
	}
	return selected
}

type gainEntry struct {
	element int
	gain    float64
	round   int
}

type gainHeap struct {
	entries []gainEntry
}

func (h *gainHeap) Len() int { return len(h.entries) }

func (h *gainHeap) Less(i, j int) bool {
	if h.entries[i].gain != h.entries[j].gain {
		return h.entries[i].gain > h.entries[j].gain
	}
	return h.entries[i].element < h.entries[j].element
}

func (h *gainHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }

func (h *gainHeap) Push(x any) { h.entries = append(h.entries, x.(gainEntry)) }

func (h *gainHeap) Pop() any {
	last := len(h.entries) - 1
	e := h.entries[last]
	h.entries = h.entries[:last]
	return e
}
