// Package matroid provides the combinatorial-optimization scaffolding of
// the paper's Section V: independence systems over an integer ground set,
// the partition matroid induced by per-service host choices (Section
// V-A1), the p-independence system induced by capacity constraints
// (Definition 20, Section VII-A), and greedy maximization of monotone set
// functions with the guarantees of Theorems 11 and 21.
//
// Elements of the ground set are identified by indices 0..GroundSize()-1;
// callers map them to (service, host) pairs.
package matroid

import (
	"fmt"
)

// IndependenceSystem describes a downward-closed feasibility structure
// over a finite ground set.
type IndependenceSystem interface {
	// GroundSize returns the number of elements in the ground set.
	GroundSize() int
	// CanAdd reports whether selected ∪ {e} remains independent, given
	// that selected is independent and does not contain e.
	CanAdd(selected []int, e int) bool
}

// SetFunction evaluates an objective over subsets of the ground set.
// Implementations must be deterministic; Value is called with unsorted
// element lists.
type SetFunction interface {
	Value(selected []int) float64
}

// SetFunctionFunc adapts a plain function to SetFunction.
type SetFunctionFunc func(selected []int) float64

// Value implements SetFunction.
func (f SetFunctionFunc) Value(selected []int) float64 { return f(selected) }

// PartitionMatroid is the constraint of problem (1)-(2): the ground set is
// partitioned into blocks (one block per service, one element per
// candidate host), and an independent set contains at most Capacity[b]
// elements of block b (capacity 1 for plain service placement).
type PartitionMatroid struct {
	block    []int
	capacity []int
}

var _ IndependenceSystem = (*PartitionMatroid)(nil)

// NewPartitionMatroid builds a partition matroid. block[e] gives the block
// of element e; capacity[b] bounds how many elements of block b an
// independent set may hold. It returns an error on out-of-range block IDs
// or non-positive capacities.
func NewPartitionMatroid(block []int, capacity []int) (*PartitionMatroid, error) {
	for e, b := range block {
		if b < 0 || b >= len(capacity) {
			return nil, fmt.Errorf("matroid: element %d has out-of-range block %d", e, b)
		}
	}
	for b, c := range capacity {
		if c <= 0 {
			return nil, fmt.Errorf("matroid: block %d has non-positive capacity %d", b, c)
		}
	}
	return &PartitionMatroid{
		block:    append([]int(nil), block...),
		capacity: append([]int(nil), capacity...),
	}, nil
}

// GroundSize implements IndependenceSystem.
func (m *PartitionMatroid) GroundSize() int { return len(m.block) }

// CanAdd implements IndependenceSystem.
func (m *PartitionMatroid) CanAdd(selected []int, e int) bool {
	b := m.block[e]
	used := 0
	for _, s := range selected {
		if m.block[s] == b {
			used++
		}
	}
	return used < m.capacity[b]
}

// CapacitySystem is the p-independence system of Section VII-A: the
// partition constraint (at most one host per service) plus node capacity
// constraints (5): Σ_{s hosted on h} r_s ≤ R_h.
type CapacitySystem struct {
	service  []int     // element → service
	host     []int     // element → host
	demand   []float64 // per-service resource consumption r_s
	capacity []float64 // per-host resource R_h
}

var _ IndependenceSystem = (*CapacitySystem)(nil)

// NewCapacitySystem builds the constraint structure. service[e] and
// host[e] map ground elements to (service, host) pairs; demand and
// capacity give r_s and R_h.
func NewCapacitySystem(service, host []int, demand, capacity []float64) (*CapacitySystem, error) {
	if len(service) != len(host) {
		return nil, fmt.Errorf("matroid: service/host length mismatch %d != %d", len(service), len(host))
	}
	for e, s := range service {
		if s < 0 || s >= len(demand) {
			return nil, fmt.Errorf("matroid: element %d has out-of-range service %d", e, s)
		}
		if host[e] < 0 || host[e] >= len(capacity) {
			return nil, fmt.Errorf("matroid: element %d has out-of-range host %d", e, host[e])
		}
	}
	for s, r := range demand {
		if r < 0 {
			return nil, fmt.Errorf("matroid: service %d has negative demand %g", s, r)
		}
	}
	for h, r := range capacity {
		if r < 0 {
			return nil, fmt.Errorf("matroid: host %d has negative capacity %g", h, r)
		}
	}
	return &CapacitySystem{
		service:  append([]int(nil), service...),
		host:     append([]int(nil), host...),
		demand:   append([]float64(nil), demand...),
		capacity: append([]float64(nil), capacity...),
	}, nil
}

// GroundSize implements IndependenceSystem.
func (c *CapacitySystem) GroundSize() int { return len(c.service) }

// CanAdd implements IndependenceSystem.
func (c *CapacitySystem) CanAdd(selected []int, e int) bool {
	s, h := c.service[e], c.host[e]
	load := c.demand[s]
	for _, sel := range selected {
		if c.service[sel] == s {
			return false // one host per service
		}
		if c.host[sel] == h {
			load += c.demand[c.service[sel]]
		}
	}
	return load <= c.capacity[h]+1e-12
}

// P returns the independence parameter p = ceil(r_max/r_min) + 1 of
// Section VII-A, governing the greedy guarantee 1/(p+1) of Theorem 21.
// With no services or zero minimum demand it returns 2 (the uncapacitated
// partition-matroid case behaves like p = 1; an extra slot covers the
// service's own displacement).
func (c *CapacitySystem) P() int {
	if len(c.demand) == 0 {
		return 2
	}
	rMin, rMax := c.demand[0], c.demand[0]
	for _, r := range c.demand[1:] {
		if r < rMin {
			rMin = r
		}
		if r > rMax {
			rMax = r
		}
	}
	if rMin <= 0 {
		return 2
	}
	p := int(rMax/rMin) + 1
	if float64(int(rMax/rMin))*rMin < rMax {
		p++ // ceiling correction
	}
	return p
}
