package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjected marks every error the injector fabricates, so tests and
// retry layers can tell injected faults from real transport failures with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Transport is an http.RoundTripper that applies the injector's policy to
// every outgoing request before (or after) delegating to Base. It is the
// client-side half of the harness: put it inside the retrying client's
// http.Client to simulate a lossy path to placemond.
type Transport struct {
	// Base performs real deliveries (default http.DefaultTransport).
	Base http.RoundTripper
	// Injector supplies the fault decisions; required.
	Injector *Injector
}

// NewTransport wraps base (nil means http.DefaultTransport) with inj.
func NewTransport(base http.RoundTripper, inj *Injector) *Transport {
	return &Transport{Base: base, Injector: inj}
}

// RoundTrip applies at most one injected fault, then delivers (or
// doesn't). Requests the injector drops or resets return errors wrapping
// ErrInjected; flaps return a synthetic 503 carrying Retry-After.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch d := t.Injector.decide(); d.kind {
	case KindDrop:
		// The request vanishes before reaching the wire: close the body
		// (RoundTripper contract) and report a transport error.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: request dropped", ErrInjected)

	case KindFlap:
		if req.Body != nil {
			req.Body.Close()
		}
		secs := int(d.d / time.Second)
		if secs < 0 {
			secs = 0
		}
		resp := &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": []string{fmt.Sprintf("%d", secs)}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected flap"}`)),
			Request: req,
		}
		return resp, nil

	case KindReset:
		// Deliver for real — the server applies the batch — then destroy
		// the response so the client must retry something already applied.
		resp, err := base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		t.Injector.noteDelivered()
		return nil, fmt.Errorf("%w: connection reset after delivery", ErrInjected)

	case KindDuplicate:
		// Deliver twice back-to-back when the body is rewindable; the
		// caller sees only the second response, like a duplicated packet
		// whose first copy's reply was lost.
		if req.Body == nil || req.GetBody != nil {
			if first, err := base.RoundTrip(cloneRequest(req)); err == nil {
				io.Copy(io.Discard, first.Body)
				first.Body.Close()
				t.Injector.noteDelivered()
			}
		}
		return t.deliver(base, req)

	case KindHold:
		// Park until a later request completes (true reorder under
		// concurrency) or the hold budget elapses (plain latency for a
		// sequential sender).
		timer := time.NewTimer(d.d)
		defer timer.Stop()
		select {
		case <-t.Injector.deliveredCh():
		case <-timer.C:
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.deliver(base, req)

	case KindDelay:
		timer := time.NewTimer(d.d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.deliver(base, req)

	default:
		return t.deliver(base, req)
	}
}

// deliver performs one real round trip and wakes held requests.
func (t *Transport) deliver(base http.RoundTripper, req *http.Request) (*http.Response, error) {
	resp, err := base.RoundTrip(req)
	t.Injector.noteDelivered()
	return resp, err
}

// cloneRequest copies req with a fresh body from GetBody, so it can be
// sent a second time. Bodyless requests are cloned as-is.
func cloneRequest(req *http.Request) *http.Request {
	clone := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			clone.Body = body
		}
	}
	return clone
}
