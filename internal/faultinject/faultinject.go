package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind names one injectable fault for Counts and test assertions.
type Kind string

// The injectable fault kinds.
const (
	// KindDrop: the request never reaches the server; the client observes
	// a transport error. Safe to retry — nothing was applied.
	KindDrop Kind = "drop"
	// KindDuplicate: the request is delivered twice back-to-back — the
	// at-least-once delivery a retrying client produces, compressed into
	// one call. Exercises server-side idempotency.
	KindDuplicate Kind = "duplicate"
	// KindReset: the request is delivered, then the response is destroyed
	// and the client observes a connection reset. The nasty half of
	// at-least-once delivery: the server applied a batch the client must
	// now retry.
	KindReset Kind = "reset"
	// KindFlap: the client observes an injected 503 (with a Retry-After
	// header) without the request reaching the server — an overloaded or
	// restarting frontend.
	KindFlap Kind = "flap"
	// KindDelay: the request is delivered after an injected latency.
	KindDelay Kind = "delay"
	// KindHold: the request is parked until either a later request
	// completes or MaxHold elapses, so concurrent senders observe genuine
	// reordering; a sequential sender degrades to extra latency.
	KindHold Kind = "hold"
	// KindConnReset: an accepted server-side connection is destroyed
	// after a bounded number of I/O operations (listener wrapper).
	KindConnReset Kind = "conn-reset"
)

// Policy configures an Injector. All probabilities are in [0, 1] and are
// evaluated in the order drop, flap, reset, duplicate, hold, delay — the
// first match wins, so at most one fault applies per request (plus any
// listener-side fault on the underlying connection).
type Policy struct {
	// Seed feeds the decision PRNG; the same seed reproduces the same
	// decision stream.
	Seed int64

	// DropProb loses the request before delivery.
	DropProb float64
	// FlapProb answers an injected 503 without delivering.
	FlapProb float64
	// FlapRetryAfter is the Retry-After value (whole seconds, floor 0)
	// the injected 503 carries.
	FlapRetryAfter time.Duration
	// ResetProb delivers the request, then destroys the response.
	ResetProb float64
	// DupProb delivers the request twice (requires a rewindable body;
	// requests without GetBody fall through to a single delivery).
	DupProb float64
	// HoldProb parks the request until a later request completes or
	// MaxHold elapses.
	HoldProb float64
	// MaxHold bounds a hold (default 10ms).
	MaxHold time.Duration
	// DelayProb sleeps for a uniform duration in (0, MaxDelay] before
	// delivering.
	DelayProb float64
	// MaxDelay bounds an injected delay (default 5ms).
	MaxDelay time.Duration

	// ConnResetProb destroys an accepted server-side connection after
	// 0–3 I/O operations (listener wrapper only).
	ConnResetProb float64
}

// Injector draws fault decisions from the policy's seeded PRNG and keeps
// per-kind counts. Safe for concurrent use; create with New and share one
// instance between the Transport and Listener wrappers so they consume a
// single decision stream.
type Injector struct {
	policy Policy

	mu        sync.Mutex
	rng       *rand.Rand
	counts    map[Kind]int
	delivered chan struct{} // closed and replaced on every delivery
}

// New creates an injector for the policy, validating probabilities and
// filling duration defaults.
func New(policy Policy) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", policy.DropProb}, {"FlapProb", policy.FlapProb},
		{"ResetProb", policy.ResetProb}, {"DupProb", policy.DupProb},
		{"HoldProb", policy.HoldProb}, {"DelayProb", policy.DelayProb},
		{"ConnResetProb", policy.ConnResetProb},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("faultinject: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if policy.MaxHold <= 0 {
		policy.MaxHold = 10 * time.Millisecond
	}
	if policy.MaxDelay <= 0 {
		policy.MaxDelay = 5 * time.Millisecond
	}
	return &Injector{
		policy:    policy,
		rng:       rand.New(rand.NewSource(policy.Seed)),
		counts:    make(map[Kind]int),
		delivered: make(chan struct{}),
	}, nil
}

// Counts returns a snapshot of how many faults of each kind have fired.
func (i *Injector) Counts() map[Kind]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]int, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults across all kinds.
func (i *Injector) Total() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, v := range i.counts {
		n += v
	}
	return n
}

// decision is one drawn fault (kind + any duration parameter).
type decision struct {
	kind Kind // "" means no fault
	d    time.Duration
}

// decide draws the fault (if any) for one request.
func (i *Injector) decide() decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	p := i.policy
	roll := i.rng.Float64()
	switch {
	case roll < p.DropProb:
		return i.record(decision{kind: KindDrop})
	case roll < p.DropProb+p.FlapProb:
		return i.record(decision{kind: KindFlap, d: p.FlapRetryAfter})
	case roll < p.DropProb+p.FlapProb+p.ResetProb:
		return i.record(decision{kind: KindReset})
	case roll < p.DropProb+p.FlapProb+p.ResetProb+p.DupProb:
		return i.record(decision{kind: KindDuplicate})
	case roll < p.DropProb+p.FlapProb+p.ResetProb+p.DupProb+p.HoldProb:
		return i.record(decision{kind: KindHold, d: p.MaxHold})
	case roll < p.DropProb+p.FlapProb+p.ResetProb+p.DupProb+p.HoldProb+p.DelayProb:
		// Uniform in (0, MaxDelay]; never zero so the fault is observable.
		d := time.Duration(i.rng.Int63n(int64(p.MaxDelay))) + 1
		return i.record(decision{kind: KindDelay, d: d})
	}
	return decision{}
}

// decideConnReset draws the listener-side decision for one accepted
// connection: the number of I/O operations to allow before destroying it
// (0–3, so the reset lands before, during, or just after one request), or
// -1 for a healthy connection.
func (i *Injector) decideConnReset() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.rng.Float64() >= i.policy.ConnResetProb {
		return -1
	}
	i.record(decision{kind: KindConnReset})
	return i.rng.Intn(4)
}

// record bumps the count for d's kind; callers hold i.mu.
func (i *Injector) record(d decision) decision {
	i.counts[d.kind]++
	return d
}

// noteDelivered wakes any held request: a later request has completed, so
// the hold has achieved a genuine reorder.
func (i *Injector) noteDelivered() {
	i.mu.Lock()
	close(i.delivered)
	i.delivered = make(chan struct{})
	i.mu.Unlock()
}

// deliveredCh returns the channel the next delivery will close.
func (i *Injector) deliveredCh() <-chan struct{} {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.delivered
}
