// Package faultinject is a seeded, deterministic fault policy engine for
// exercising placemond's resilience layer: it wraps an http.RoundTripper
// (client side) and a net.Listener (server side) and injects the failure
// modes an observation ingest path meets in production — latency spikes,
// connection resets, 5xx flaps, and dropped, duplicated, or
// held/reordered observation batches.
//
// The faults live one layer below the paper's failure model: Section
// II-B failures are the *monitored* nodes going down, observed as path
// state; this package breaks the *delivery* of those observations to
// the daemon. The chaos soaks assert that hostile delivery changes
// nothing — the daemon's event stream and Section III-B diagnosis match
// a fault-free run byte for byte, because retries with idempotency keys
// make the observation history identical.
//
// The engine is stdlib-only and draws every decision from one seeded
// PRNG, so a given seed always produces the same decision stream. Under
// concurrency the *assignment* of decisions to requests depends on
// arrival order, but the multiset of injected faults — and therefore
// the stress the system is put under — is reproducible. Counts()
// exposes how many faults of each kind actually fired so tests can
// assert the run was genuinely hostile rather than lucky.
package faultinject
