package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDeterministicDecisions: the same seed must reproduce the same
// decision stream — the property that makes chaos runs replayable.
func TestDeterministicDecisions(t *testing.T) {
	policy := Policy{
		Seed: 42, DropProb: 0.1, FlapProb: 0.1, ResetProb: 0.1,
		DupProb: 0.1, HoldProb: 0.1, DelayProb: 0.1,
	}
	a, err := New(policy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(policy)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Kind]bool{}
	for i := 0; i < 2000; i++ {
		da, db := a.decide(), b.decide()
		if da != db {
			t.Fatalf("decision %d: %v != %v", i, da, db)
		}
		seen[da.kind] = true
	}
	for _, k := range []Kind{KindDrop, KindFlap, KindReset, KindDuplicate, KindHold, KindDelay} {
		if !seen[k] {
			t.Errorf("kind %q never drawn in 2000 decisions at p=0.1", k)
		}
	}
	if a.Total() == 0 || a.Total() != b.Total() {
		t.Fatalf("totals diverge: %d vs %d", a.Total(), b.Total())
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := New(Policy{DropProb: 1.5}); err == nil {
		t.Fatalf("DropProb 1.5 accepted")
	}
	if _, err := New(Policy{DelayProb: -0.1}); err == nil {
		t.Fatalf("negative DelayProb accepted")
	}
	if _, err := New(Policy{}); err != nil {
		t.Fatalf("zero policy rejected: %v", err)
	}
}

// single returns an injector whose every transport decision is the one
// kind under test.
func single(t *testing.T, p Policy) *Injector {
	t.Helper()
	inj, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func countingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func post(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(),
		http.MethodPost, url, strings.NewReader(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestTransportDrop(t *testing.T) {
	ts, hits := countingServer(t)
	rt := NewTransport(nil, single(t, Policy{DropProb: 1}))
	_, err := post(t, rt, ts.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server")
	}
}

func TestTransportFlap(t *testing.T) {
	ts, hits := countingServer(t)
	rt := NewTransport(nil, single(t, Policy{FlapProb: 1, FlapRetryAfter: 2 * time.Second}))
	resp, err := post(t, rt, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if hits.Load() != 0 {
		t.Fatalf("flapped request reached the server")
	}
}

func TestTransportResetDeliversFirst(t *testing.T) {
	ts, hits := countingServer(t)
	rt := NewTransport(nil, single(t, Policy{ResetProb: 1}))
	_, err := post(t, rt, ts.URL)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (reset happens after delivery)", hits.Load())
	}
}

func TestTransportDuplicateDeliversTwice(t *testing.T) {
	ts, hits := countingServer(t)
	rt := NewTransport(nil, single(t, Policy{DupProb: 1}))
	resp, err := post(t, rt, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2", hits.Load())
	}
}

func TestTransportDelayAndHoldStillDeliver(t *testing.T) {
	ts, hits := countingServer(t)
	rt := NewTransport(nil, single(t, Policy{
		DelayProb: 0.5, HoldProb: 0.5,
		MaxDelay: time.Millisecond, MaxHold: time.Millisecond,
	}))
	for i := 0; i < 10; i++ {
		resp, err := post(t, rt, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if hits.Load() != 10 {
		t.Fatalf("server hits = %d, want 10", hits.Load())
	}
	counts := rt.Injector.Counts()
	if counts[KindDelay]+counts[KindHold] != 10 {
		t.Fatalf("counts = %v, want 10 delay+hold", counts)
	}
}

// TestListenerResets: with ConnResetProb 1 every accepted connection dies
// within a few reads, so a plain HTTP request must fail — and the wrapped
// listener must keep accepting afterwards.
func TestListenerResets(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := single(t, Policy{ConnResetProb: 1})
	ln := NewListener(inner, inj)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	})}
	go srv.Serve(ln)
	defer srv.Close()

	// Fresh connection per request: keep-alive reuse would let Go's
	// transparent replay-on-dead-idle-conn retry mask the injected resets.
	client := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	failures := 0
	for i := 0; i < 5; i++ {
		resp, err := client.Post("http://"+ln.Addr().String(), "application/json",
			strings.NewReader(strings.Repeat(`{"filler":"xxxxxxxxxxxxxxxx"}`, 64)))
		if err != nil {
			failures++
			continue
		}
		resp.Body.Close()
	}
	if failures == 0 {
		t.Fatalf("no request failed despite ConnResetProb=1")
	}
	if inj.Counts()[KindConnReset] == 0 {
		t.Fatalf("no conn-reset recorded: %v", inj.Counts())
	}
}
