package faultinject

import (
	"net"
	"sync"
	"syscall"
)

// Listener wraps a net.Listener so that a policy-chosen fraction of
// accepted connections are destroyed after a bounded number of reads —
// the server-side view of a client (or middlebox) dying mid-request. TCP
// connections are closed with linger disabled so the peer observes a real
// RST rather than a graceful FIN.
type Listener struct {
	net.Listener
	inj *Injector
}

// NewListener wraps ln with inj's connection-level faults.
func NewListener(ln net.Listener, inj *Injector) *Listener {
	return &Listener{Listener: ln, inj: inj}
}

// Accept accepts from the inner listener and, per policy, arms the
// connection to reset after a small number of I/O operations.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if ops := l.inj.decideConnReset(); ops >= 0 {
		return &resetConn{Conn: c, remaining: ops}, nil
	}
	return c, nil
}

// resetConn destroys the connection once its I/O budget is spent: both
// reads and writes count, so a connection can die before the request is
// parsed, mid-body, or after the server applied the batch but before the
// response escaped — the full spectrum of at-least-once delivery hazards.
type resetConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
	dead      bool
}

// spend consumes one I/O operation, destroying the connection when the
// budget runs out. It reports whether the connection is still alive.
func (c *resetConn) spend() bool {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return false
	}
	if c.remaining <= 0 {
		c.dead = true
		c.mu.Unlock()
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			// Linger 0 turns Close into an RST, the abortive teardown a
			// crashed peer produces.
			tc.SetLinger(0)
		}
		c.Conn.Close()
		return false
	}
	c.remaining--
	c.mu.Unlock()
	return true
}

func (c *resetConn) Read(b []byte) (int, error) {
	if !c.spend() {
		return 0, syscall.ECONNRESET
	}
	return c.Conn.Read(b)
}

func (c *resetConn) Write(b []byte) (int, error) {
	if !c.spend() {
		return 0, syscall.ECONNRESET
	}
	return c.Conn.Write(b)
}
