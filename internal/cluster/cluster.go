// Package cluster is the ownership layer of a multi-node placemond
// deployment: a static membership list (node IDs and base URLs) plus a
// consistent-hashing ring that maps every scenario ID to exactly one
// owner node. It decides *who* serves a scenario; the serving layer
// decides *how* a non-owner answers (redirect or proxy).
//
// Membership is static by design. The paper's diagnosis engines keep
// per-scenario incremental counters that are only bit-reproducible under
// a single writer, so ownership must be unambiguous and identical on
// every node: all nodes parse the same -peers list, build the same ring,
// and agree on every owner without any runtime coordination protocol.
// Moving a scenario between nodes is an explicit, WAL-fenced migration
// (see internal/server), not a ring rebalance.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// maxNodeID bounds node IDs to the same length registry scenario IDs
// get, so IDs compose into headers and file names without surprises.
const maxNodeID = 64

// Member is one node of the static membership: its stable ID and the
// base URL peers and redirected clients reach it at.
type Member struct {
	// ID is the node's stable name (-node-id), unique in the membership.
	ID string `json:"id"`
	// URL is the node's base URL (scheme://host[:port], no path), with
	// any trailing slash already trimmed.
	URL string `json:"url"`
}

// ValidateNodeID checks a node ID against the same shape scenario IDs
// use: 1–64 bytes of [a-zA-Z0-9._-] with no leading dot. Node IDs
// travel in the Placemond-Owner header and inside WAL migration
// records, so the charset is deliberately header- and filename-safe.
func ValidateNodeID(id string) error {
	if id == "" {
		return fmt.Errorf("cluster: empty node ID")
	}
	if len(id) > maxNodeID {
		return fmt.Errorf("cluster: node ID longer than %d bytes", maxNodeID)
	}
	if id[0] == '.' {
		return fmt.Errorf("cluster: node ID %q starts with a dot", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("cluster: node ID %q has invalid byte %q", id, c)
		}
	}
	return nil
}

// validateBaseURL checks a member URL: absolute http(s), a host, and no
// path/query/fragment beyond an optional bare "/", so joining request
// paths onto it can never change their meaning. Returns the URL with a
// trailing slash trimmed.
func validateBaseURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("cluster: member URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: member URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: member URL %q: missing host", raw)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return "", fmt.Errorf("cluster: member URL %q: must be scheme://host[:port] with no path", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// ParseMembers parses a -peers specification: comma-separated
// "id=url" entries, e.g.
//
//	node-a=http://127.0.0.1:8080,node-b=http://127.0.0.1:8081
//
// IDs must pass ValidateNodeID and be unique; URLs must be bare
// http(s) base URLs and unique. The returned slice is sorted by ID so
// every node that parses the same specification builds the same ring.
func ParseMembers(spec string) ([]Member, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	entries := strings.Split(spec, ",")
	members := make([]Member, 0, len(entries))
	ids := make(map[string]bool, len(entries))
	urls := make(map[string]bool, len(entries))
	for _, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			return nil, fmt.Errorf("cluster: empty peer entry")
		}
		id, raw, ok := strings.Cut(e, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: peer entry %q is not id=url", e)
		}
		id = strings.TrimSpace(id)
		if err := ValidateNodeID(id); err != nil {
			return nil, err
		}
		base, err := validateBaseURL(strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		if ids[id] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
		if urls[base] {
			return nil, fmt.Errorf("cluster: duplicate member URL %q", base)
		}
		ids[id], urls[base] = true, true
		members = append(members, Member{ID: id, URL: base})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	return members, nil
}

// FormatMembers renders members back into the ParseMembers wire form,
// sorted by ID. ParseMembers(FormatMembers(m)) == m for any valid m —
// the round-trip the fuzz target holds the parser to.
func FormatMembers(members []Member) string {
	parts := make([]string, len(members))
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i, m := range sorted {
		parts[i] = m.ID + "=" + m.URL
	}
	return strings.Join(parts, ",")
}

// Membership is a node's view of the cluster: the full (sorted) member
// list, which member is this process, and the ownership ring over the
// list. Immutable after New; safe for concurrent use.
type Membership struct {
	self    string
	members []Member
	byID    map[string]Member
	ring    *ring
}

// New builds a Membership from this node's ID and the shared -peers
// specification. The specification must include self — a node that is
// not in its own membership would disagree with every peer about
// ownership.
func New(self, peerSpec string) (*Membership, error) {
	if err := ValidateNodeID(self); err != nil {
		return nil, err
	}
	members, err := ParseMembers(peerSpec)
	if err != nil {
		return nil, err
	}
	return NewFromMembers(self, members)
}

// NewFromMembers builds a Membership from an already-parsed member
// list (which must include self and be free of duplicates).
func NewFromMembers(self string, members []Member) (*Membership, error) {
	if err := ValidateNodeID(self); err != nil {
		return nil, err
	}
	sorted := append([]Member(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	byID := make(map[string]Member, len(sorted))
	for _, m := range sorted {
		if _, dup := byID[m.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", m.ID)
		}
		byID[m.ID] = m
	}
	if _, ok := byID[self]; !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the peer list (every node must list itself)", self)
	}
	return &Membership{self: self, members: sorted, byID: byID, ring: newRing(sorted)}, nil
}

// Self returns this node's ID.
func (m *Membership) Self() string { return m.self }

// SelfMember returns this node's full membership entry.
func (m *Membership) SelfMember() Member { return m.byID[m.self] }

// Size returns the number of members.
func (m *Membership) Size() int { return len(m.members) }

// Members returns the member list, sorted by ID. The caller must not
// mutate it.
func (m *Membership) Members() []Member { return m.members }

// Member looks a node up by ID.
func (m *Membership) Member(id string) (Member, bool) {
	mem, ok := m.byID[id]
	return mem, ok
}

// Owner maps a scenario ID to its ring owner. The mapping depends only
// on the member IDs and the key, so every node with the same peer list
// computes the same owner with no coordination.
func (m *Membership) Owner(scenarioID string) Member {
	return m.byID[m.ring.owner(scenarioID)]
}

// IsOwner reports whether this node is the ring owner of scenarioID.
func (m *Membership) IsOwner(scenarioID string) bool {
	return m.ring.owner(scenarioID) == m.self
}

// ringReplicas is the number of virtual points each member contributes
// to the ring. 128 points per node keeps the ownership split of a
// small static cluster within a few percent of even while the ring
// stays a couple of KB.
const ringReplicas = 128

// ring is a consistent-hashing ring: each member contributes
// ringReplicas points at sha256(id + "#" + i), and a key is owned by
// the member of the first point clockwise of sha256(key).
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

func newRing(members []Member) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*ringReplicas)}
	var buf []byte
	for _, m := range members {
		for i := 0; i < ringReplicas; i++ {
			buf = buf[:0]
			buf = append(buf, m.ID...)
			buf = append(buf, '#')
			buf = appendUint(buf, i)
			r.points = append(r.points, ringPoint{hash: hashKey(string(buf)), node: m.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision between distinct points is vanishingly
		// rare; break it by node ID so the ring order is still total and
		// identical everywhere.
		return r.points[i].node < r.points[j].node
	})
	return r
}

func appendUint(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func (r *ring) owner(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}
