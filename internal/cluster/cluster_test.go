package cluster

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseMembers(t *testing.T) {
	members, err := ParseMembers("node-b=http://127.0.0.1:8081, node-a=http://127.0.0.1:8080 ,node-c=https://host.example")
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	if len(members) != 3 {
		t.Fatalf("got %d members, want 3", len(members))
	}
	// Sorted by ID regardless of spec order.
	for i, want := range []string{"node-a", "node-b", "node-c"} {
		if members[i].ID != want {
			t.Errorf("members[%d].ID = %q, want %q", i, members[i].ID, want)
		}
	}
	if members[2].URL != "https://host.example" {
		t.Errorf("URL = %q, want https://host.example", members[2].URL)
	}
}

func TestParseMembersRejects(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"node-a",                          // no =
		"node-a=http://h:1,node-a=http://h:2", // dup ID
		"node-a=http://h:1,node-b=http://h:1", // dup URL
		"=http://h:1",                     // empty ID
		".dot=http://h:1",                 // leading dot
		"a b=http://h:1",                  // bad charset
		"node-a=ftp://h:1",                // bad scheme
		"node-a=http://",                  // no host
		"node-a=http://h:1/path",          // path
		"node-a=http://h:1?x=1",           // query
		"node-a=http://u:p@h:1",           // userinfo
		"node-a=http://h:1,",              // trailing empty entry
		strings.Repeat("x", 65) + "=http://h:1", // ID too long
	}
	for _, spec := range bad {
		if _, err := ParseMembers(spec); err == nil {
			t.Errorf("ParseMembers(%q) accepted, want error", spec)
		}
	}
}

func TestParseMembersTrailingSlash(t *testing.T) {
	members, err := ParseMembers("node-a=http://127.0.0.1:8080/")
	if err != nil {
		t.Fatalf("ParseMembers: %v", err)
	}
	if members[0].URL != "http://127.0.0.1:8080" {
		t.Errorf("URL = %q, want trailing slash trimmed", members[0].URL)
	}
}

func TestMembershipSelfRequired(t *testing.T) {
	if _, err := New("node-x", "node-a=http://h:1,node-b=http://h:2"); err == nil {
		t.Fatal("New accepted a self ID absent from the peer list")
	}
	m, err := New("node-a", "node-a=http://h:1,node-b=http://h:2")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Self() != "node-a" || m.SelfMember().URL != "http://h:1" || m.Size() != 2 {
		t.Errorf("membership self view wrong: %+v", m.SelfMember())
	}
}

// TestOwnerDeterministic holds the ring to its core contract: every
// node that parses the same peer list assigns every key to the same
// owner, and the owner is always a member.
func TestOwnerDeterministic(t *testing.T) {
	spec := "node-a=http://h:1,node-b=http://h:2,node-c=http://h:3"
	ma, err := New("node-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same spec in a different textual order: same ring.
	mb, err := New("node-b", "node-c=http://h:3,node-a=http://h:1,node-b=http://h:2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("scenario-%d", i)
		oa, ob := ma.Owner(key), mb.Owner(key)
		if oa != ob {
			t.Fatalf("owner(%q) differs by node: %v vs %v", key, oa, ob)
		}
		if _, ok := ma.Member(oa.ID); !ok {
			t.Fatalf("owner(%q) = %q is not a member", key, oa.ID)
		}
		if ma.IsOwner(key) != (oa.ID == "node-a") {
			t.Fatalf("IsOwner(%q) disagrees with Owner", key)
		}
	}
}

// TestOwnerBalance checks the ring spreads keys roughly evenly: with
// 128 virtual points per node, no node of a 3-node ring should own
// less than half or more than double its fair share of 3000 keys.
func TestOwnerBalance(t *testing.T) {
	m, err := New("n1", "n1=http://h:1,n2=http://h:2,n3=http://h:3")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("key-%d", i)).ID]++
	}
	fair := keys / 3
	for id, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("node %s owns %d of %d keys (fair share %d): ring badly unbalanced", id, n, keys, fair)
		}
	}
}

// TestOwnerStability: removing one member only moves keys that the
// removed member owned — the consistent-hashing property that makes
// planned migrations cheap.
func TestOwnerStability(t *testing.T) {
	m3, err := New("n1", "n1=http://h:1,n2=http://h:2,n3=http://h:3")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New("n1", "n1=http://h:1,n2=http://h:2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := m3.Owner(key).ID
		after := m2.Owner(key).ID
		if before != "n3" && before != after {
			t.Fatalf("key %q moved %s -> %s although %s stayed in the ring", key, before, after, before)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec := "node-a=http://h:1,node-b=http://h:2"
	members, err := ParseMembers(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatMembers(members); got != spec {
		t.Errorf("FormatMembers = %q, want %q", got, spec)
	}
}
