package cluster

import (
	"sort"
	"testing"
)

// FuzzMembershipParse fuzzes the -peers parser and the ring built from
// whatever it accepts. The invariants: the parser never panics; an
// accepted list is sorted, duplicate-free, and round-trips through
// FormatMembers; and the ring over it is total (every key owned by a
// member) and deterministic across a rebuild.
func FuzzMembershipParse(f *testing.F) {
	f.Add("node-a=http://127.0.0.1:8080")
	f.Add("node-a=http://h:1,node-b=http://h:2,node-c=http://h:3")
	f.Add("a=https://example.com/")
	f.Add(" a =\thttp://h:1 , b=http://h:2")
	f.Add("a=http://h:1,a=http://h:2")
	f.Add("=http://h:1")
	f.Add(".a=http://h:1")
	f.Add("a=ftp://h:1")
	f.Add("a=http://h:1/path?q=1#frag")
	f.Add(",,,")
	f.Add("a\x00b=http://h:1")
	f.Fuzz(func(t *testing.T, spec string) {
		members, err := ParseMembers(spec)
		if err != nil {
			return
		}
		if len(members) == 0 {
			t.Fatal("accepted spec produced no members")
		}
		if !sort.SliceIsSorted(members, func(i, j int) bool { return members[i].ID < members[j].ID }) {
			t.Fatalf("members not sorted: %v", members)
		}
		ids := map[string]bool{}
		for _, m := range members {
			if err := ValidateNodeID(m.ID); err != nil {
				t.Fatalf("accepted invalid node ID %q: %v", m.ID, err)
			}
			if ids[m.ID] {
				t.Fatalf("accepted duplicate node ID %q", m.ID)
			}
			ids[m.ID] = true
		}
		// Round-trip: formatting and reparsing is lossless.
		again, err := ParseMembers(FormatMembers(members))
		if err != nil {
			t.Fatalf("FormatMembers output rejected: %v", err)
		}
		if len(again) != len(members) {
			t.Fatalf("round trip lost members: %d -> %d", len(members), len(again))
		}
		for i := range members {
			if again[i] != members[i] {
				t.Fatalf("round trip changed member %d: %v -> %v", i, members[i], again[i])
			}
		}
		// The ring is total and deterministic.
		self := members[0].ID
		m1, err := NewFromMembers(self, members)
		if err != nil {
			t.Fatalf("NewFromMembers on accepted list: %v", err)
		}
		m2, err := NewFromMembers(self, members)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"", "default", spec, "scenario-7"} {
			o1, o2 := m1.Owner(key), m2.Owner(key)
			if o1 != o2 {
				t.Fatalf("owner(%q) nondeterministic: %v vs %v", key, o1, o2)
			}
			if !ids[o1.ID] {
				t.Fatalf("owner(%q) = %q is not a member", key, o1.ID)
			}
		}
	})
}
