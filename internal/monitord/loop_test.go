package monitord

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bitset"
)

// newLoopLine builds a Loop over the same 5-node line as newSafeLine.
func newLoopLine(t *testing.T) *Loop {
	t.Helper()
	paths := []*bitset.Set{
		bitset.FromIndices(5, 0, 1, 2),
		bitset.FromIndices(5, 2, 3, 4),
	}
	m, err := New(5, 1, paths)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoop(m)
	t.Cleanup(l.Close)
	return l
}

// The event loop must present the same sequential semantics as Safe: it
// replaced Safe on the serving hot path, so this mirrors
// TestSafeSequentialSemantics through the loop.
func TestLoopSequentialSemantics(t *testing.T) {
	l := newLoopLine(t)
	events, err := l.ReportBatch(1, []int{0, 1}, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != EventOutageStarted {
		t.Fatalf("events = %v, want outage-started first", events)
	}
	snap := l.Snapshot()
	if !snap.InOutage {
		t.Fatalf("not in outage after down report")
	}
	if !l.InOutage() {
		t.Fatalf("InOutage disagrees with Snapshot")
	}
	if snap.States[0] != StateDown || snap.States[1] != StateUp {
		t.Fatalf("states = %v", snap.States)
	}
	diag, err := l.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(diag.Consistent); got != 2 {
		t.Fatalf("candidates = %v, want {0},{1}", diag.Consistent)
	}
	if n := l.NumConnections(); n != 2 {
		t.Fatalf("NumConnections = %d, want 2", n)
	}

	events, err = l.Report(2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventOutageCleared {
		t.Fatalf("events = %v, want outage-cleared", events)
	}
	if l.InOutage() {
		t.Fatalf("still in outage after all-clear")
	}
}

func TestLoopBadConnectionKeepsPrefix(t *testing.T) {
	l := newLoopLine(t)
	events, err := l.ReportBatch(1, []int{0, 99}, []bool{false, false})
	if err == nil {
		t.Fatalf("out-of-range connection accepted")
	}
	if len(events) == 0 {
		t.Fatalf("prefix events lost on error")
	}
	if !l.Snapshot().InOutage {
		t.Fatalf("prefix report not applied")
	}
}

func TestLoopMismatchedBatchRejected(t *testing.T) {
	l := newLoopLine(t)
	if _, err := l.ReportBatch(1, []int{0, 1}, []bool{false}); err == nil {
		t.Fatalf("mismatched batch accepted")
	}
	if l.Snapshot().InOutage {
		t.Fatalf("rejected batch still applied a report")
	}
}

// An empty batch is a no-op, not an error: the ingest path forwards
// whatever the wire carried, and zero reports must leave no trace.
func TestLoopEmptyBatch(t *testing.T) {
	l := newLoopLine(t)
	events, err := l.ReportBatch(1, nil, nil)
	if err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty batch produced events: %v", events)
	}
	for i, st := range l.Snapshot().States {
		if st != StateUnknown {
			t.Fatalf("connection %d state = %v after empty batch", i, st)
		}
	}
}

// After Close every operation reports ErrClosed (or a zero value), the
// goroutine is gone, and Close stays idempotent.
func TestLoopClosed(t *testing.T) {
	l := newLoopLine(t)
	if _, err := l.Report(1, 0, false); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // idempotent

	if _, err := l.ReportBatch(2, []int{0}, []bool{true}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReportBatch after Close: err = %v, want ErrClosed", err)
	}
	if _, err := l.Diagnosis(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Diagnosis after Close: err = %v, want ErrClosed", err)
	}
	if err := l.RestoreState(State{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RestoreState after Close: err = %v, want ErrClosed", err)
	}
	if snap := l.Snapshot(); snap.InOutage || snap.States != nil {
		t.Fatalf("Snapshot after Close = %+v, want zero", snap)
	}
	if l.InOutage() {
		t.Fatalf("InOutage true after Close")
	}
	if _, ok := l.ExportState(); ok {
		t.Fatalf("ExportState after Close reported ok")
	}
	if err := l.VerifyIncremental(); !errors.Is(err, ErrClosed) {
		t.Fatalf("VerifyIncremental after Close: err = %v, want ErrClosed", err)
	}
	// The connection count is cached at construction and survives Close.
	if n := l.NumConnections(); n != 2 {
		t.Fatalf("NumConnections after Close = %d, want 2", n)
	}
}

// TestLoopConcurrent hammers the loop from many goroutines, with one
// closing it midway; run with -race. Every operation must either succeed
// or fail with ErrClosed — never panic, deadlock, or corrupt state.
func TestLoopConcurrent(t *testing.T) {
	l := newLoopLine(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				up := (i+w)%3 != 0
				if _, err := l.Report(float64(i), w%2, up); err != nil && !errors.Is(err, ErrClosed) {
					t.Error(err)
					return
				}
				snap := l.Snapshot()
				if len(snap.States) != 2 && snap.States != nil {
					t.Errorf("snapshot states = %v", snap.States)
					return
				}
				if snap.InOutage {
					if _, err := l.Diagnosis(); err != nil && !errors.Is(err, ErrClosed) {
						// "no outage" races with clearing reports and is
						// expected; other errors surface via -race.
						continue
					}
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	if _, err := l.Report(0, 0, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Report: err = %v, want ErrClosed", err)
	}
}

// randomMonitor builds a monitor over random overlapping paths, shared by
// the incremental-equivalence tests.
func randomMonitor(t *testing.T, rng *rand.Rand, k int) (*Monitor, int, int) {
	t.Helper()
	n := 3 + rng.Intn(6)
	numConns := 2 + rng.Intn(5)
	paths := make([]*bitset.Set, numConns)
	for i := range paths {
		p := bitset.New(n)
		start := rng.Intn(n)
		for j := 0; j <= rng.Intn(3); j++ {
			p.Add((start + j) % n)
		}
		paths[i] = p
	}
	m, err := New(n, k, paths)
	if err != nil {
		t.Fatal(err)
	}
	return m, n, numConns
}

// The tentpole invariant: the incremental rolling diagnosis must stay
// bit-identical to a from-scratch recompute after every report, for k=1
// (the closed-form fast path) and k=2 (the generic path), across random
// report streams. VerifyIncremental also cross-checks the per-node
// counters against the ground-truth states.
func TestIncrementalMatchesScratchRandom(t *testing.T) {
	for _, k := range []int{1, 2} {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		for trial := 0; trial < 25; trial++ {
			m, _, numConns := randomMonitor(t, rng, k)
			for step := 0; step < 20; step++ {
				conn := rng.Intn(numConns)
				up := rng.Intn(2) == 0
				if _, err := m.Report(float64(step), conn, up); err != nil {
					t.Fatal(err)
				}
				if err := m.VerifyIncremental(); err != nil {
					t.Fatalf("k=%d trial %d step %d: %v", k, trial, step, err)
				}
			}
		}
	}
}

// Flipping every path down in one batch — the worst case for the
// incremental path — and then every path up must keep the incremental
// state consistent at each boundary.
func TestIncrementalAllPathsFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m, _, numConns := randomMonitor(t, rng, 1)
		conns := make([]int, numConns)
		downs := make([]bool, numConns)
		ups := make([]bool, numConns)
		for i := range conns {
			conns[i] = i
			ups[i] = true
		}
		l := NewLoop(m)
		if _, err := l.ReportBatch(1, conns, downs); err != nil {
			t.Fatal(err)
		}
		if err := l.VerifyIncremental(); err != nil {
			t.Fatalf("trial %d after all-down: %v", trial, err)
		}
		if !l.InOutage() {
			t.Fatalf("trial %d: not in outage with every path down", trial)
		}
		if _, err := l.ReportBatch(2, conns, ups); err != nil {
			t.Fatal(err)
		}
		if err := l.VerifyIncremental(); err != nil {
			t.Fatalf("trial %d after all-up: %v", trial, err)
		}
		if l.InOutage() {
			t.Fatalf("trial %d: still in outage with every path up", trial)
		}
		l.Close()
	}
}

// Restoring exported state must rebuild the incremental structures, not
// just the raw states: the restored monitor's diagnosis has to match the
// original bit for bit and pass the self-check.
func TestRestoreStateRebuildsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		m, n, numConns := randomMonitor(t, rng, 1)
		paths := make([]*bitset.Set, numConns)
		for i := range paths {
			paths[i] = m.paths[i]
		}
		for step := 0; step < 15; step++ {
			if _, err := m.Report(float64(step), rng.Intn(numConns), rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
		st := m.ExportState()

		m2, err := New(n, 1, paths)
		if err != nil {
			t.Fatal(err)
		}
		if err := m2.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		if err := m2.VerifyIncremental(); err != nil {
			t.Fatalf("trial %d: restored monitor fails self-check: %v", trial, err)
		}
		if m.InOutage() {
			d1, err1 := m.Diagnosis()
			d2, err2 := m2.Diagnosis()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: error disagreement: %v vs %v", trial, err1, err2)
			}
			if err1 == nil && !reflect.DeepEqual(d1, d2) {
				t.Fatalf("trial %d: restored diagnosis %+v != original %+v", trial, d2, d1)
			}
		}
	}
}
