package monitord

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/tomography"
)

// The daemon's incremental diagnosis must always equal an offline
// Localize over the currently known connection states, whatever the
// report order — the event-driven path adds no approximation.
func TestDaemonMatchesOfflineLocalization(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		numConns := 2 + rng.Intn(4)
		paths := make([]*bitset.Set, numConns)
		for i := range paths {
			p := bitset.New(n)
			start := rng.Intn(n)
			for j := 0; j <= rng.Intn(3); j++ {
				p.Add((start + j) % n)
			}
			paths[i] = p
		}
		m, err := New(n, 1, paths)
		if err != nil {
			t.Fatal(err)
		}

		// Random report stream.
		for step := 0; step < 12; step++ {
			conn := rng.Intn(numConns)
			up := rng.Intn(2) == 0
			if _, err := m.Report(float64(step), conn, up); err != nil {
				t.Fatal(err)
			}
			if !m.InOutage() {
				continue
			}
			daemonDiag, daemonErr := m.Diagnosis()
			offlineDiag, offlineErr := offlineLocalize(n, paths, m)
			if (daemonErr == nil) != (offlineErr == nil) {
				t.Fatalf("trial %d step %d: error disagreement: %v vs %v",
					trial, step, daemonErr, offlineErr)
			}
			if daemonErr != nil {
				continue
			}
			if !reflect.DeepEqual(daemonDiag.Consistent, offlineDiag.Consistent) {
				t.Fatalf("trial %d step %d: daemon %v != offline %v",
					trial, step, daemonDiag.Consistent, offlineDiag.Consistent)
			}
		}
	}
}

// offlineLocalize rebuilds the observation from the daemon's visible
// state and runs plain tomography.
func offlineLocalize(n int, paths []*bitset.Set, m *Monitor) (*tomography.Diagnosis, error) {
	ps := monitor.NewPathSet(n)
	var failed []bool
	for i, p := range paths {
		switch m.State(i) {
		case StateUnknown:
			continue
		case StateUp:
			failed = append(failed, false)
		case StateDown:
			failed = append(failed, true)
		}
		if err := ps.Add(p); err != nil {
			return nil, err
		}
	}
	obs, err := tomography.NewObservation(ps, failed)
	if err != nil {
		return nil, err
	}
	return tomography.Localize(obs, 1)
}
