package monitord

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/tomography"
)

// ConnState is the last known state of one monitored connection.
type ConnState int

// Connection states.
const (
	// StateUnknown means the connection has not reported yet; it
	// contributes nothing to the diagnosis.
	StateUnknown ConnState = iota
	// StateUp means the last report was a success.
	StateUp
	// StateDown means the last report was a failure.
	StateDown
)

// String renders the state.
func (s ConnState) String() string {
	switch s {
	case StateUnknown:
		return "unknown"
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("ConnState(%d)", int(s))
	}
}

// EventKind classifies daemon events.
type EventKind int

// Daemon event kinds.
const (
	// EventOutageStarted fires when the first connection goes down after
	// an all-clear period.
	EventOutageStarted EventKind = iota + 1
	// EventDiagnosisChanged fires whenever the candidate failure sets
	// change while an outage is in progress.
	EventDiagnosisChanged
	// EventOutageCleared fires when every reporting connection is up
	// again.
	EventOutageCleared
	// EventInconsistent fires when no failure set within the budget
	// explains the reports (more failures than k, or conflicting data).
	EventInconsistent
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EventOutageStarted:
		return "outage-started"
	case EventDiagnosisChanged:
		return "diagnosis-changed"
	case EventOutageCleared:
		return "outage-cleared"
	case EventInconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one daemon notification.
type Event struct {
	Time float64
	Kind EventKind
	// Diagnosis accompanies EventOutageStarted and
	// EventDiagnosisChanged.
	Diagnosis *tomography.Diagnosis
}

// Monitor is the daemon state. Create with New; not safe for concurrent
// use.
type Monitor struct {
	numNodes int
	k        int
	paths    []*bitset.Set
	states   []ConnState
	inOutage bool
	lastKey  string
}

// New creates a monitor for a fixed set of monitored connections, each
// identified by its index and described by the node set of its routed
// path. k is the failure budget used for diagnosis.
func New(numNodes, k int, paths []*bitset.Set) (*Monitor, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("monitord: numNodes = %d", numNodes)
	}
	if k < 1 {
		return nil, fmt.Errorf("monitord: k = %d", k)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("monitord: no connections")
	}
	m := &Monitor{
		numNodes: numNodes,
		k:        k,
		paths:    make([]*bitset.Set, len(paths)),
		states:   make([]ConnState, len(paths)),
	}
	for i, p := range paths {
		if p == nil || p.Cap() != numNodes || p.Empty() {
			return nil, fmt.Errorf("monitord: connection %d has an invalid path", i)
		}
		m.paths[i] = p.Clone()
	}
	return m, nil
}

// NumConnections returns the number of monitored connections.
func (m *Monitor) NumConnections() int { return len(m.paths) }

// State returns the last known state of connection i.
func (m *Monitor) State(i int) ConnState { return m.states[i] }

// InOutage reports whether at least one reporting connection is down.
func (m *Monitor) InOutage() bool { return m.inOutage }

// Report feeds one connection observation at virtual time t and returns
// the events it triggered (possibly none). Repeated identical reports are
// cheap no-ops.
func (m *Monitor) Report(t float64, conn int, up bool) ([]Event, error) {
	if conn < 0 || conn >= len(m.paths) {
		return nil, fmt.Errorf("monitord: connection %d out of range", conn)
	}
	newState := StateDown
	if up {
		newState = StateUp
	}
	if m.states[conn] == newState {
		return nil, nil
	}
	m.states[conn] = newState

	anyDown := false
	for _, s := range m.states {
		if s == StateDown {
			anyDown = true
			break
		}
	}

	var events []Event
	switch {
	case anyDown && !m.inOutage:
		m.inOutage = true
		diag, err := m.diagnose()
		if err != nil {
			events = append(events,
				Event{Time: t, Kind: EventOutageStarted},
				Event{Time: t, Kind: EventInconsistent})
			m.lastKey = "!"
			return events, nil
		}
		m.lastKey = diagnosisKey(diag)
		events = append(events, Event{Time: t, Kind: EventOutageStarted, Diagnosis: diag})
	case anyDown && m.inOutage:
		diag, err := m.diagnose()
		if err != nil {
			if m.lastKey != "!" {
				m.lastKey = "!"
				events = append(events, Event{Time: t, Kind: EventInconsistent})
			}
			return events, nil
		}
		if key := diagnosisKey(diag); key != m.lastKey {
			m.lastKey = key
			events = append(events, Event{Time: t, Kind: EventDiagnosisChanged, Diagnosis: diag})
		}
	case !anyDown && m.inOutage:
		m.inOutage = false
		m.lastKey = ""
		events = append(events, Event{Time: t, Kind: EventOutageCleared})
	}
	return events, nil
}

// Diagnosis recomputes the current diagnosis from all reporting
// connections. It returns an error outside outages (nothing to diagnose)
// or when the reports are inconsistent with the failure budget.
func (m *Monitor) Diagnosis() (*tomography.Diagnosis, error) {
	if !m.inOutage {
		return nil, fmt.Errorf("monitord: no outage in progress")
	}
	return m.diagnose()
}

func (m *Monitor) diagnose() (*tomography.Diagnosis, error) {
	ps := monitor.NewPathSet(m.numNodes)
	var failed []bool
	for i, s := range m.states {
		if s == StateUnknown {
			continue
		}
		if err := ps.Add(m.paths[i]); err != nil {
			return nil, err
		}
		failed = append(failed, s == StateDown)
	}
	obs, err := tomography.NewObservation(ps, failed)
	if err != nil {
		return nil, err
	}
	return tomography.Localize(obs, m.k)
}

// diagnosisKey fingerprints the candidate list so changes are detectable.
func diagnosisKey(d *tomography.Diagnosis) string {
	key := ""
	for _, f := range d.Consistent {
		key += "["
		for _, v := range f {
			key += fmt.Sprintf("%d,", v)
		}
		key += "]"
	}
	return key
}
