package monitord

import (
	"fmt"
	"reflect"
	"strconv"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/tomography"
)

// ConnState is the last known state of one monitored connection.
type ConnState int

// Connection states.
const (
	// StateUnknown means the connection has not reported yet; it
	// contributes nothing to the diagnosis.
	StateUnknown ConnState = iota
	// StateUp means the last report was a success.
	StateUp
	// StateDown means the last report was a failure.
	StateDown
)

// String renders the state.
func (s ConnState) String() string {
	switch s {
	case StateUnknown:
		return "unknown"
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("ConnState(%d)", int(s))
	}
}

// EventKind classifies daemon events.
type EventKind int

// Daemon event kinds.
const (
	// EventOutageStarted fires when the first connection goes down after
	// an all-clear period.
	EventOutageStarted EventKind = iota + 1
	// EventDiagnosisChanged fires whenever the candidate failure sets
	// change while an outage is in progress.
	EventDiagnosisChanged
	// EventOutageCleared fires when every reporting connection is up
	// again.
	EventOutageCleared
	// EventInconsistent fires when no failure set within the budget
	// explains the reports (more failures than k, or conflicting data).
	EventInconsistent
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EventOutageStarted:
		return "outage-started"
	case EventDiagnosisChanged:
		return "diagnosis-changed"
	case EventOutageCleared:
		return "outage-cleared"
	case EventInconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one daemon notification.
type Event struct {
	Time float64
	Kind EventKind
	// Diagnosis accompanies EventOutageStarted and
	// EventDiagnosisChanged.
	Diagnosis *tomography.Diagnosis
}

// Monitor is the daemon state. Create with New; not safe for concurrent
// use.
//
// Beyond the per-connection states, the monitor maintains the incremental
// observation structures of the paper's Section V-D1: the reporting
// path set (grown once per connection, the first time it reports), the
// aligned failed flags, and per-node up/down coverage counters. A state
// transition therefore costs O(|path|) bookkeeping instead of an
// O(all paths) rebuild, and the k = 1 rolling diagnosis is answered from
// the counters alone — the same incrementality Algorithm 1 applies to
// the equivalence graph as paths arrive.
type Monitor struct {
	numNodes int
	k        int
	paths    []*bitset.Set
	states   []ConnState
	inOutage bool
	lastKey  string

	// Incremental observation state. ps collects the paths of reporting
	// connections in first-report order (a connection never returns to
	// unknown, so ps is append-only); failed is index-aligned with ps;
	// pos maps a connection to its ps index (-1 while unknown).
	ps     *monitor.PathSet
	failed []bool
	pos    []int
	// upCount/downCount count, per node, the reporting up/down paths
	// covering it; downTotal counts down paths. Together they answer
	// "healthy", "covered", and the k = 1 candidate test in O(1) per node.
	upCount   []int
	downCount []int
	downTotal int
}

// New creates a monitor for a fixed set of monitored connections, each
// identified by its index and described by the node set of its routed
// path. k is the failure budget used for diagnosis.
func New(numNodes, k int, paths []*bitset.Set) (*Monitor, error) {
	if numNodes <= 0 {
		return nil, fmt.Errorf("monitord: numNodes = %d", numNodes)
	}
	if k < 1 {
		return nil, fmt.Errorf("monitord: k = %d", k)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("monitord: no connections")
	}
	m := &Monitor{
		numNodes:  numNodes,
		k:         k,
		paths:     make([]*bitset.Set, len(paths)),
		states:    make([]ConnState, len(paths)),
		ps:        monitor.NewPathSet(numNodes),
		failed:    make([]bool, 0, len(paths)),
		pos:       make([]int, len(paths)),
		upCount:   make([]int, numNodes),
		downCount: make([]int, numNodes),
	}
	for i, p := range paths {
		if p == nil || p.Cap() != numNodes || p.Empty() {
			return nil, fmt.Errorf("monitord: connection %d has an invalid path", i)
		}
		m.paths[i] = p.Clone()
		m.pos[i] = -1
	}
	return m, nil
}

// NumConnections returns the number of monitored connections.
func (m *Monitor) NumConnections() int { return len(m.paths) }

// State returns the last known state of connection i.
func (m *Monitor) State(i int) ConnState { return m.states[i] }

// InOutage reports whether at least one reporting connection is down.
func (m *Monitor) InOutage() bool { return m.inOutage }

// Report feeds one connection observation at virtual time t and returns
// the events it triggered (possibly none). Repeated identical reports are
// cheap no-ops.
func (m *Monitor) Report(t float64, conn int, up bool) ([]Event, error) {
	if conn < 0 || conn >= len(m.paths) {
		return nil, fmt.Errorf("monitord: connection %d out of range", conn)
	}
	newState := StateDown
	if up {
		newState = StateUp
	}
	if m.states[conn] == newState {
		return nil, nil
	}
	m.applyTransition(conn, m.states[conn], up)
	m.states[conn] = newState

	anyDown := m.downTotal > 0

	var events []Event
	switch {
	case anyDown && !m.inOutage:
		m.inOutage = true
		diag, err := m.diagnose()
		if err != nil {
			events = append(events,
				Event{Time: t, Kind: EventOutageStarted},
				Event{Time: t, Kind: EventInconsistent})
			m.lastKey = "!"
			return events, nil
		}
		m.lastKey = diagnosisKey(diag)
		events = append(events, Event{Time: t, Kind: EventOutageStarted, Diagnosis: diag})
	case anyDown && m.inOutage:
		diag, err := m.diagnose()
		if err != nil {
			if m.lastKey != "!" {
				m.lastKey = "!"
				events = append(events, Event{Time: t, Kind: EventInconsistent})
			}
			return events, nil
		}
		if key := diagnosisKey(diag); key != m.lastKey {
			m.lastKey = key
			events = append(events, Event{Time: t, Kind: EventDiagnosisChanged, Diagnosis: diag})
		}
	case !anyDown && m.inOutage:
		m.inOutage = false
		m.lastKey = ""
		events = append(events, Event{Time: t, Kind: EventOutageCleared})
	}
	return events, nil
}

// Diagnosis returns the current diagnosis, computed incrementally from
// the maintained observation structures. It returns an error outside
// outages (nothing to diagnose) or when the reports are inconsistent
// with the failure budget.
func (m *Monitor) Diagnosis() (*tomography.Diagnosis, error) {
	if !m.inOutage {
		return nil, fmt.Errorf("monitord: no outage in progress")
	}
	return m.diagnose()
}

// DiagnosisFromScratch recomputes the diagnosis the pre-incremental way:
// rebuild the reporting path set from the connection states and run the
// full localization. It exists as the reference the incremental path is
// pinned against (chaos soak, crash matrix, and the equivalence tests
// assert bit-identical results); production callers want Diagnosis.
func (m *Monitor) DiagnosisFromScratch() (*tomography.Diagnosis, error) {
	if !m.inOutage {
		return nil, fmt.Errorf("monitord: no outage in progress")
	}
	return m.diagnoseFromScratch()
}

// VerifyIncremental cross-checks the incremental diagnosis against a
// from-scratch recompute and returns an error describing the first
// divergence. Outside outages it verifies the bookkeeping invariants
// (counters and path set versus states) instead.
func (m *Monitor) VerifyIncremental() error {
	if err := m.verifyCounters(); err != nil {
		return err
	}
	if !m.inOutage {
		return nil
	}
	inc, incErr := m.diagnose()
	ref, refErr := m.diagnoseFromScratch()
	if (incErr != nil) != (refErr != nil) {
		return fmt.Errorf("monitord: incremental diagnosis error %v, from-scratch %v", incErr, refErr)
	}
	if incErr != nil {
		return nil // both inconsistent: agreement
	}
	if !reflect.DeepEqual(inc, ref) {
		return fmt.Errorf("monitord: incremental diagnosis diverged from from-scratch recompute:\nincremental: %+v\nfrom-scratch: %+v", inc, ref)
	}
	return nil
}

// verifyCounters recomputes the incremental bookkeeping from the states
// and compares.
func (m *Monitor) verifyCounters() error {
	up := make([]int, m.numNodes)
	down := make([]int, m.numNodes)
	total := 0
	reporting := 0
	for i, s := range m.states {
		if s == StateUnknown {
			if m.pos[i] != -1 {
				return fmt.Errorf("monitord: unknown connection %d has path-set position %d", i, m.pos[i])
			}
			continue
		}
		reporting++
		if m.pos[i] < 0 || m.pos[i] >= m.ps.Len() {
			return fmt.Errorf("monitord: reporting connection %d has position %d outside path set of %d", i, m.pos[i], m.ps.Len())
		}
		if m.failed[m.pos[i]] != (s == StateDown) {
			return fmt.Errorf("monitord: connection %d state %v disagrees with failed flag", i, s)
		}
		isDown := s == StateDown
		if isDown {
			total++
		}
		m.paths[i].ForEach(func(v int) bool {
			if isDown {
				down[v]++
			} else {
				up[v]++
			}
			return true
		})
	}
	if reporting != m.ps.Len() {
		return fmt.Errorf("monitord: %d reporting connections but %d paths in the incremental set", reporting, m.ps.Len())
	}
	if total != m.downTotal {
		return fmt.Errorf("monitord: downTotal = %d, states say %d", m.downTotal, total)
	}
	for v := 0; v < m.numNodes; v++ {
		if up[v] != m.upCount[v] || down[v] != m.downCount[v] {
			return fmt.Errorf("monitord: node %d counters (up %d, down %d) disagree with states (up %d, down %d)",
				v, m.upCount[v], m.downCount[v], up[v], down[v])
		}
	}
	return nil
}

// applyTransition maintains the incremental observation structures for
// one connection moving from old to the state implied by up. The caller
// has already ruled out a no-op transition.
func (m *Monitor) applyTransition(conn int, old ConnState, up bool) {
	p := m.paths[conn]
	if old == StateUnknown {
		// First report: the connection's path joins the reporting set.
		// ps.Add cannot fail here — the path was validated by New against
		// the same universe ps was built over.
		_ = m.ps.Add(p)
		m.failed = append(m.failed, !up)
		m.pos[conn] = m.ps.Len() - 1
		p.ForEach(func(v int) bool {
			if up {
				m.upCount[v]++
			} else {
				m.downCount[v]++
			}
			return true
		})
		if !up {
			m.downTotal++
		}
		return
	}
	// Up/down flip of an already reporting connection.
	m.failed[m.pos[conn]] = !up
	p.ForEach(func(v int) bool {
		if up {
			m.downCount[v]--
			m.upCount[v]++
		} else {
			m.upCount[v]--
			m.downCount[v]++
		}
		return true
	})
	if up {
		m.downTotal--
	} else {
		m.downTotal++
	}
}

// diagnose computes the diagnosis from the incrementally maintained
// observation: a counter-driven O(|N|) construction when the failure
// budget is 1 (the common case), the full enumeration over the
// maintained path set otherwise. Either way the result is bit-identical
// to diagnoseFromScratch, which the tests pin.
func (m *Monitor) diagnose() (*tomography.Diagnosis, error) {
	if m.k == 1 && m.downTotal > 0 {
		return m.diagnoseK1()
	}
	// The enumeration cost is Θ(|F_k|) regardless, but the observation
	// itself is already maintained — no per-call path-set rebuild. The
	// Observation is constructed directly (not via NewObservation) to
	// skip the defensive copy; Localize does not retain or mutate it.
	obs := &tomography.Observation{Paths: m.ps, Failed: m.failed}
	return tomography.Localize(obs, m.k)
}

// diagnoseK1 answers the k = 1 diagnosis from the per-node counters: the
// singleton {v} is consistent iff v lies on no up path and on every down
// path. The construction mirrors tomography.Localize exactly (same
// bitset-driven field building, same enumeration order) so the result is
// bit-identical to the from-scratch recompute.
func (m *Monitor) diagnoseK1() (*tomography.Diagnosis, error) {
	n := m.numNodes
	d := &tomography.Diagnosis{}
	inAll := bitset.New(n)
	for v := 0; v < n; v++ {
		inAll.Add(v)
	}
	inAny := bitset.New(n)
	healthy := bitset.New(n)
	for v := 0; v < n; v++ {
		if m.upCount[v] > 0 {
			healthy.Add(v)
		}
	}
	for v := 0; v < n; v++ {
		if m.upCount[v] == 0 && m.downCount[v] == m.downTotal {
			member := bitset.FromIndices(n, v)
			inAll.IntersectWith(member)
			inAny.UnionWith(member)
			d.Consistent = append(d.Consistent, []int{v})
		}
	}
	if len(d.Consistent) == 0 {
		return nil, fmt.Errorf("tomography: no failure set of size ≤ %d explains the observation", m.k)
	}
	d.DefinitelyFailed = inAll.Indices()
	d.PossiblyFailed = inAny.Indices()
	d.Healthy = healthy.Indices()
	for v := 0; v < n; v++ {
		if m.upCount[v] == 0 && m.downCount[v] == 0 {
			d.Unobserved = append(d.Unobserved, v)
		}
	}
	return d, nil
}

// diagnoseFromScratch is the reference recompute: rebuild the reporting
// path set from the connection states and localize over it.
func (m *Monitor) diagnoseFromScratch() (*tomography.Diagnosis, error) {
	ps := monitor.NewPathSet(m.numNodes)
	var failed []bool
	for i, s := range m.states {
		if s == StateUnknown {
			continue
		}
		if err := ps.Add(m.paths[i]); err != nil {
			return nil, err
		}
		failed = append(failed, s == StateDown)
	}
	obs, err := tomography.NewObservation(ps, failed)
	if err != nil {
		return nil, err
	}
	return tomography.Localize(obs, m.k)
}

// diagnosisKey fingerprints the candidate list so changes are detectable.
func diagnosisKey(d *tomography.Diagnosis) string {
	var b []byte
	for _, f := range d.Consistent {
		b = append(b, '[')
		for _, v := range f {
			b = strconv.AppendInt(b, int64(v), 10)
			b = append(b, ',')
		}
		b = append(b, ']')
	}
	return string(b)
}
