// Package monitord is the online monitoring daemon core: it consumes the
// stream of end-to-end connection state changes a deployed placement
// produces and maintains a rolling failure diagnosis. It is the runtime
// counterpart of the offline tomography package — the same Boolean
// tomography of Section III-B, but incremental, event-driven, and aware
// that some connections have not reported yet.
//
// Monitor tracks each monitoring path as up, down, or unknown, raises
// outage-started/outage-ended Events as the first failure appears and
// the last one clears, and refines its Diagnosis as reports arrive: an
// unknown path constrains nothing, a down path must contain a failed
// node, an up path exonerates every node on it. How sharp the refined
// diagnosis can get is exactly what the placement bought — nodes in
// S_k(P) (Section II-B2) localize uniquely, and the candidate-set size
// for the rest is the Fig. 8 degree of uncertainty (Section VI-B). The
// daemon-equals-offline property (a fully-reported daemon diagnosis
// matches tomography on the same observation) is pinned by test.
//
// The core is deliberately synchronous and deterministic: callers feed
// it state transitions (from netsim, from production probes, or from
// tests) and receive the events the transition triggered. Safe wraps a
// Monitor in a mutex and atomic batch ingest for concurrent callers —
// the HTTP serving layer (internal/server) uses it; everyone else gets
// single-threaded determinism for free.
package monitord
