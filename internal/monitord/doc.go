// Package monitord is the online monitoring daemon core: it consumes the
// stream of end-to-end connection state changes a deployed placement
// produces and maintains a rolling failure diagnosis. It is the runtime
// counterpart of the offline tomography package — the same Boolean
// tomography of Section III-B, but incremental, event-driven, and aware
// that some connections have not reported yet.
//
// Monitor tracks each monitoring path as up, down, or unknown, raises
// outage-started/outage-ended Events as the first failure appears and
// the last one clears, and refines its Diagnosis as reports arrive: an
// unknown path constrains nothing, a down path must contain a failed
// node, an up path exonerates every node on it. How sharp the refined
// diagnosis can get is exactly what the placement bought — nodes in
// S_k(P) (Section II-B2) localize uniquely, and the candidate-set size
// for the rest is the Fig. 8 degree of uncertainty (Section VI-B). The
// daemon-equals-offline property (a fully-reported daemon diagnosis
// matches tomography on the same observation) is pinned by test.
//
// Diagnosis refinement is incremental: Monitor carries per-node
// up-path/down-path counters maintained in O(|path|) per state change,
// so the common k=1 diagnosis is a closed-form read instead of a
// from-scratch recompute over every path. VerifyIncremental cross-checks
// the incremental state against that recompute; the soak and crash
// harnesses call it to prove exactness under hostile schedules.
//
// The core is deliberately synchronous and deterministic: callers feed
// it state transitions (from netsim, from production probes, or from
// tests) and receive the events the transition triggered. Two wrappers
// add concurrency safety: Safe puts a mutex around a Monitor, and Loop
// runs one behind a single-writer event loop — every operation is a
// message to the owning goroutine, so batch ingest serializes without
// lock contention. The HTTP serving layer (internal/server) uses Loop;
// everyone else gets single-threaded determinism for free.
package monitord
