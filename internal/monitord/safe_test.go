package monitord

import (
	"sync"
	"testing"

	"repro/internal/bitset"
)

// newSafeLine builds a Safe monitor over a 5-node line 0-1-2-3-4 with two
// connections: 0→2 (nodes 0,1,2) and 4→2 (nodes 2,3,4).
func newSafeLine(t *testing.T) *Safe {
	t.Helper()
	paths := []*bitset.Set{
		bitset.FromIndices(5, 0, 1, 2),
		bitset.FromIndices(5, 2, 3, 4),
	}
	m, err := New(5, 1, paths)
	if err != nil {
		t.Fatal(err)
	}
	return NewSafe(m)
}

func TestSafeSequentialSemantics(t *testing.T) {
	s := newSafeLine(t)
	events, err := s.ReportBatch(1, []int{0, 1}, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != EventOutageStarted {
		t.Fatalf("events = %v, want outage-started first", events)
	}
	snap := s.Snapshot()
	if !snap.InOutage {
		t.Fatalf("not in outage after down report")
	}
	if snap.States[0] != StateDown || snap.States[1] != StateUp {
		t.Fatalf("states = %v", snap.States)
	}
	diag, err := s.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	// Connection 4→2 is up, so 2, 3, 4 are healthy; 0 or 1 must have failed.
	if got := len(diag.Consistent); got != 2 {
		t.Fatalf("candidates = %v, want {0},{1}", diag.Consistent)
	}

	events, err = s.Report(2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != EventOutageCleared {
		t.Fatalf("events = %v, want outage-cleared", events)
	}
	if s.Snapshot().InOutage {
		t.Fatalf("still in outage after all-clear")
	}
}

func TestSafeBadConnectionKeepsPrefix(t *testing.T) {
	s := newSafeLine(t)
	events, err := s.ReportBatch(1, []int{0, 99}, []bool{false, false})
	if err == nil {
		t.Fatalf("out-of-range connection accepted")
	}
	if len(events) == 0 {
		t.Fatalf("prefix events lost on error")
	}
	if !s.Snapshot().InOutage {
		t.Fatalf("prefix report not applied")
	}
}

// TestSafeConcurrent hammers the wrapper from many goroutines; run with
// -race to verify the locking (the serving layer calls it exactly like
// this).
func TestSafeConcurrent(t *testing.T) {
	s := newSafeLine(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				up := (i+w)%3 != 0
				if _, err := s.Report(float64(i), w%2, up); err != nil {
					t.Error(err)
					return
				}
				snap := s.Snapshot()
				if len(snap.States) != 2 {
					t.Errorf("snapshot states = %v", snap.States)
					return
				}
				if snap.InOutage {
					// Diagnosis may legitimately race with a clearing
					// report; only hard errors other than "no outage"
					// would be bugs, and those surface via -race.
					_, _ = s.Diagnosis()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSafeMismatchedBatchRejected is the regression test for the panic a
// short ups slice used to cause: ReportBatch indexed ups[i] for every
// conns entry, so a length mismatch crashed the daemon while holding its
// lock. The batch must now be rejected whole, before any report applies.
func TestSafeMismatchedBatchRejected(t *testing.T) {
	s := newSafeLine(t)
	events, err := s.ReportBatch(1, []int{0, 1}, []bool{false})
	if err == nil {
		t.Fatalf("mismatched batch accepted")
	}
	if len(events) != 0 {
		t.Fatalf("events = %v, want none from a rejected batch", events)
	}
	snap := s.Snapshot()
	if snap.InOutage {
		t.Fatalf("rejected batch still applied a report")
	}
	for i, st := range snap.States {
		if st != StateUnknown {
			t.Fatalf("connection %d state = %v, want unknown", i, st)
		}
	}
	// The longer-ups direction must be rejected too, not silently truncated.
	if _, err := s.ReportBatch(2, []int{0}, []bool{false, true}); err == nil {
		t.Fatalf("oversized ups slice accepted")
	}
}
