package monitord

import (
	"fmt"
	"sync"

	"repro/internal/tomography"
)

// ErrClosed is returned by Loop operations after Close: the scenario the
// loop served has been deleted, so late observations have nowhere to go.
var ErrClosed = fmt.Errorf("monitord: monitor loop closed")

// Loop wraps a Monitor behind a per-scenario single-writer event loop:
// one goroutine owns the Monitor and applies commands in arrival order,
// so the core never needs a lock and writers never contend on a mutex —
// they queue. This replaces the big-lock Safe wrapper on the serving hot
// path; Safe remains for embedders that want a synchronous guard.
//
// All operations are synchronous from the caller's point of view
// (command in, reply out) and the loop serializes them, so Loop provides
// the same atomicity guarantees as Safe: a ReportBatch never interleaves
// with another batch or a Snapshot. Commands and their reply channels are
// pooled, so a steady-state round-trip allocates nothing.
//
// After Close every operation fails with ErrClosed (or returns a zero
// value for error-free reads); the loop goroutine exits, so deleting a
// scenario cannot leak its monitor goroutine.
type Loop struct {
	numConns int

	cmds chan *loopCmd
	stop chan struct{} // closed by Close
	done chan struct{} // closed when the goroutine has exited

	closeOnce sync.Once
	pool      sync.Pool
}

// loopOp selects the Monitor operation a command performs.
type loopOp int

const (
	opReportBatch loopOp = iota + 1
	opDiagnosis
	opSnapshot
	opInOutage
	opExportState
	opRestoreState
	opVerify
)

// loopCmd is one pooled command envelope. The reply channel has capacity
// one and is reused across round-trips; the loop goroutine is the only
// sender and the issuing caller the only receiver, so a reply can never
// be consumed by the wrong request.
type loopCmd struct {
	op    loopOp
	t     float64
	conns []int
	ups   []bool
	state State
	reply chan loopReply
}

// loopReply carries every result shape a command can produce.
type loopReply struct {
	events []Event
	diag   *tomography.Diagnosis
	snap   Snapshot
	state  State
	err    error
}

// NewLoop starts the event loop that owns m. The caller must not use m
// directly afterwards, and must Close the loop when the scenario goes
// away.
func NewLoop(m *Monitor) *Loop {
	l := &Loop{
		numConns: m.NumConnections(),
		cmds:     make(chan *loopCmd),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.pool.New = func() any {
		return &loopCmd{reply: make(chan loopReply, 1)}
	}
	go l.run(m)
	return l
}

// run is the single writer: it owns m exclusively until Close.
func (l *Loop) run(m *Monitor) {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case cmd := <-l.cmds:
			cmd.reply <- l.apply(m, cmd)
		}
	}
}

// apply executes one command against the owned monitor.
func (l *Loop) apply(m *Monitor, cmd *loopCmd) loopReply {
	switch cmd.op {
	case opReportBatch:
		var events []Event
		for i, conn := range cmd.conns {
			evs, err := m.Report(cmd.t, conn, cmd.ups[i])
			events = append(events, evs...)
			if err != nil {
				return loopReply{events: events, err: err}
			}
		}
		return loopReply{events: events}
	case opDiagnosis:
		d, err := m.Diagnosis()
		return loopReply{diag: d, err: err}
	case opSnapshot:
		return loopReply{snap: Snapshot{
			InOutage: m.InOutage(),
			States:   append([]ConnState(nil), m.states...),
		}}
	case opInOutage:
		// Outage-flag-only read: the ingest path refreshes gauges per
		// batch, so skip the Snapshot states copy.
		return loopReply{snap: Snapshot{InOutage: m.InOutage()}}
	case opExportState:
		return loopReply{state: m.ExportState()}
	case opRestoreState:
		return loopReply{err: m.RestoreState(cmd.state)}
	case opVerify:
		return loopReply{err: m.VerifyIncremental()}
	default:
		return loopReply{err: fmt.Errorf("monitord: unknown loop op %d", int(cmd.op))}
	}
}

// roundTrip submits cmd and waits for its reply; after Close it returns
// ErrClosed without blocking. The command channel is unbuffered, so a
// successful send means the loop goroutine holds the command and will
// reply exactly once.
func (l *Loop) roundTrip(cmd *loopCmd) (loopReply, error) {
	select {
	case l.cmds <- cmd:
		return <-cmd.reply, nil
	case <-l.done:
		return loopReply{}, ErrClosed
	}
}

// getCmd checks a command envelope out of the pool.
func (l *Loop) getCmd(op loopOp) *loopCmd {
	cmd := l.pool.Get().(*loopCmd)
	cmd.op = op
	return cmd
}

// putCmd clears caller data and returns the envelope to the pool.
func (l *Loop) putCmd(cmd *loopCmd) {
	cmd.conns = nil
	cmd.ups = nil
	cmd.state = State{}
	l.pool.Put(cmd)
}

// ReportBatch feeds several observations at the same virtual time and
// returns the concatenated events; same contract as Safe.ReportBatch
// (length mismatch rejects the whole batch; a bad index keeps the applied
// prefix and returns its events alongside the error). The batch is
// serialized by the event loop, so no other operation interleaves.
//
// The conns and ups slices are only read until ReportBatch returns, so
// callers may reuse them (the ingest path feeds pooled scratch directly).
func (l *Loop) ReportBatch(t float64, conns []int, ups []bool) ([]Event, error) {
	if len(conns) != len(ups) {
		return nil, fmt.Errorf("monitord: batch has %d connections but %d states", len(conns), len(ups))
	}
	cmd := l.getCmd(opReportBatch)
	cmd.t, cmd.conns, cmd.ups = t, conns, ups
	r, err := l.roundTrip(cmd)
	if err != nil {
		return nil, err
	}
	l.putCmd(cmd)
	return r.events, r.err
}

// Report feeds one observation; see Monitor.Report.
func (l *Loop) Report(t float64, conn int, up bool) ([]Event, error) {
	return l.ReportBatch(t, []int{conn}, []bool{up})
}

// Diagnosis returns the rolling diagnosis; see Monitor.Diagnosis.
func (l *Loop) Diagnosis() (*tomography.Diagnosis, error) {
	cmd := l.getCmd(opDiagnosis)
	r, err := l.roundTrip(cmd)
	if err != nil {
		return nil, err
	}
	l.putCmd(cmd)
	return r.diag, r.err
}

// NumConnections returns the number of monitored connections. The count
// is fixed at construction, so this never blocks on the loop.
func (l *Loop) NumConnections() int { return l.numConns }

// Snapshot returns the outage flag and every connection state as one
// serialized read; after Close it returns the zero Snapshot.
func (l *Loop) Snapshot() Snapshot {
	cmd := l.getCmd(opSnapshot)
	r, err := l.roundTrip(cmd)
	if err != nil {
		return Snapshot{}
	}
	l.putCmd(cmd)
	return r.snap
}

// InOutage reports whether any monitored connection is currently down —
// the same flag Snapshot carries, without copying the per-connection
// states. After Close it returns false.
func (l *Loop) InOutage() bool {
	cmd := l.getCmd(opInOutage)
	r, err := l.roundTrip(cmd)
	if err != nil {
		return false
	}
	l.putCmd(cmd)
	return r.snap.InOutage
}

// ExportState captures the monitor's replayable state; see
// Monitor.ExportState. After Close it returns the zero State and false.
func (l *Loop) ExportState() (State, bool) {
	cmd := l.getCmd(opExportState)
	r, err := l.roundTrip(cmd)
	if err != nil {
		return State{}, false
	}
	l.putCmd(cmd)
	return r.state, true
}

// RestoreState overwrites the monitor's state; see Monitor.RestoreState.
func (l *Loop) RestoreState(st State) error {
	cmd := l.getCmd(opRestoreState)
	cmd.state = st
	r, err := l.roundTrip(cmd)
	if err != nil {
		return err
	}
	l.putCmd(cmd)
	return r.err
}

// VerifyIncremental cross-checks the incremental diagnosis against a
// from-scratch recompute; see Monitor.VerifyIncremental. Test seam for
// the chaos soak and crash matrix.
func (l *Loop) VerifyIncremental() error {
	cmd := l.getCmd(opVerify)
	r, err := l.roundTrip(cmd)
	if err != nil {
		return err
	}
	l.putCmd(cmd)
	return r.err
}

// Close stops the event loop and waits for its goroutine to exit.
// Subsequent operations return ErrClosed (or zero values). Close is
// idempotent and safe to call concurrently.
func (l *Loop) Close() {
	l.closeOnce.Do(func() { close(l.stop) })
	<-l.done
}
