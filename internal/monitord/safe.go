package monitord

import (
	"fmt"
	"sync"

	"repro/internal/tomography"
)

// Safe wraps a Monitor for concurrent use: every operation takes an
// internal mutex, so HTTP handlers (or any other concurrent producers)
// can feed reports and read the diagnosis without external locking. The
// core Monitor stays synchronous and deterministic; Safe is the
// concurrency layer the package doc says belongs to the caller.
type Safe struct {
	mu sync.Mutex
	m  *Monitor
}

// NewSafe wraps m. The caller must not use m directly afterwards.
func NewSafe(m *Monitor) *Safe { return &Safe{m: m} }

// Report feeds one observation; see Monitor.Report.
func (s *Safe) Report(t float64, conn int, up bool) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Report(t, conn, up)
}

// ReportBatch feeds several observations at the same virtual time and
// returns the concatenated events. The batch is applied atomically with
// respect to other Safe calls: no Report or Snapshot interleaves. A
// mismatched conns/ups length rejects the whole batch before anything is
// applied; on a bad connection index the prefix already applied stays
// applied, and the events it produced are returned alongside the error.
func (s *Safe) ReportBatch(t float64, conns []int, ups []bool) ([]Event, error) {
	if len(conns) != len(ups) {
		return nil, fmt.Errorf("monitord: batch has %d connections but %d states", len(conns), len(ups))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var events []Event
	for i, conn := range conns {
		evs, err := s.m.Report(t, conn, ups[i])
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// Diagnosis recomputes the current diagnosis; see Monitor.Diagnosis.
func (s *Safe) Diagnosis() (*tomography.Diagnosis, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Diagnosis()
}

// NumConnections returns the number of monitored connections.
func (s *Safe) NumConnections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.NumConnections()
}

// Snapshot is a consistent point-in-time view of the daemon state.
type Snapshot struct {
	InOutage bool
	States   []ConnState
}

// Snapshot returns the outage flag and every connection state under one
// lock acquisition, so readers never see a half-applied batch.
func (s *Safe) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		InOutage: s.m.InOutage(),
		States:   append([]ConnState(nil), s.m.states...),
	}
}
