package monitord

import (
	"fmt"

	"repro/internal/monitor"
)

// State is the monitor's replayable core: everything Report consults when
// deciding which events a future observation emits. Exporting it, folding
// it into a snapshot, and restoring it on a fresh Monitor built from the
// same paths yields a daemon that continues the event stream exactly
// where the exported one stopped — the property placemond's write-ahead
// log compaction depends on.
type State struct {
	// States is the last known state per connection, index-aligned with
	// the monitor's paths.
	States []ConnState `json:"states"`
	// InOutage mirrors the outage flag.
	InOutage bool `json:"in_outage"`
	// LastKey is the fingerprint of the last emitted diagnosis ("!" after
	// an inconsistent localization, "" outside outages); it decides
	// whether the next diagnosis emits EventDiagnosisChanged.
	LastKey string `json:"last_key,omitempty"`
}

// ExportState captures the monitor's replayable state.
func (m *Monitor) ExportState() State {
	return State{
		States:   append([]ConnState(nil), m.states...),
		InOutage: m.inOutage,
		LastKey:  m.lastKey,
	}
}

// RestoreState overwrites the monitor's state with a previously exported
// one. The connection count must match the monitor's paths — state from a
// differently shaped scenario is refused.
func (m *Monitor) RestoreState(st State) error {
	if len(st.States) != len(m.paths) {
		return fmt.Errorf("monitord: state has %d connections, monitor has %d", len(st.States), len(m.paths))
	}
	for i, s := range st.States {
		if s != StateUnknown && s != StateUp && s != StateDown {
			return fmt.Errorf("monitord: state %d has invalid connection state %d", i, int(s))
		}
	}
	m.states = append(m.states[:0], st.States...)
	m.inOutage = st.InOutage
	m.lastKey = st.LastKey
	m.rebuildIncremental()
	return nil
}

// rebuildIncremental reconstructs the incremental observation structures
// (path set, failed flags, counters) from the connection states. Restored
// monitors lose the original first-report order, so reporting paths are
// re-added in connection-index order — the diagnosis is insensitive to
// path order (consistency is a set property), which the incremental
// equivalence tests pin.
func (m *Monitor) rebuildIncremental() {
	m.ps = monitor.NewPathSet(m.numNodes)
	m.failed = m.failed[:0]
	m.downTotal = 0
	for v := 0; v < m.numNodes; v++ {
		m.upCount[v] = 0
		m.downCount[v] = 0
	}
	for i := range m.pos {
		m.pos[i] = -1
	}
	for i, s := range m.states {
		if s == StateUnknown {
			continue
		}
		m.applyTransition(i, StateUnknown, s == StateUp)
	}
}

// ExportState captures the monitor's replayable state; see
// Monitor.ExportState.
func (s *Safe) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.ExportState()
}

// RestoreState overwrites the monitor's state; see Monitor.RestoreState.
func (s *Safe) RestoreState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.RestoreState(st)
}
