package monitord

import (
	"reflect"
	"testing"

	"repro/internal/bitset"
)

// twoBranchMonitor watches connections over a 5-node network:
// conn 0: {0,1,2} (client 0 via 1 to host 2)
// conn 1: {4,3,2} (client 4 via 3 to host 2)
func twoBranchMonitor(t testing.TB, k int) *Monitor {
	t.Helper()
	m, err := New(5, k, []*bitset.Set{
		bitset.FromIndices(5, 0, 1, 2),
		bitset.FromIndices(5, 4, 3, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	ok := bitset.FromIndices(3, 0)
	if _, err := New(0, 1, []*bitset.Set{ok}); err == nil {
		t.Fatal("numNodes=0 should error")
	}
	if _, err := New(3, 0, []*bitset.Set{ok}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := New(3, 1, nil); err == nil {
		t.Fatal("no connections should error")
	}
	if _, err := New(3, 1, []*bitset.Set{nil}); err == nil {
		t.Fatal("nil path should error")
	}
	if _, err := New(3, 1, []*bitset.Set{bitset.New(3)}); err == nil {
		t.Fatal("empty path should error")
	}
	if _, err := New(3, 1, []*bitset.Set{bitset.FromIndices(4, 0)}); err == nil {
		t.Fatal("universe mismatch should error")
	}
}

func TestReportOutOfRange(t *testing.T) {
	m := twoBranchMonitor(t, 1)
	if _, err := m.Report(0, 5, true); err == nil {
		t.Fatal("bad connection index should error")
	}
}

func TestOutageLifecycle(t *testing.T) {
	m := twoBranchMonitor(t, 1)
	if m.InOutage() {
		t.Fatal("fresh monitor should not be in outage")
	}
	if m.NumConnections() != 2 {
		t.Fatal("wrong connection count")
	}

	// Both connections report up: no events.
	ev, err := m.Report(1, 0, true)
	if err != nil || len(ev) != 0 {
		t.Fatalf("up report: %v, %v", ev, err)
	}
	ev, err = m.Report(1, 1, true)
	if err != nil || len(ev) != 0 {
		t.Fatalf("up report: %v, %v", ev, err)
	}
	if m.State(0) != StateUp || m.State(1) != StateUp {
		t.Fatal("states should be up")
	}

	// Connection 0 goes down: outage starts with a diagnosis. Nodes 0 and
	// 1 are candidates; node 2 is exonerated by the healthy conn 1.
	ev, err = m.Report(2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventOutageStarted {
		t.Fatalf("events = %v", ev)
	}
	if ev[0].Time != 2 {
		t.Fatalf("event time = %v", ev[0].Time)
	}
	if got := ev[0].Diagnosis.Consistent; !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Fatalf("candidates = %v", got)
	}
	if !m.InOutage() {
		t.Fatal("should be in outage")
	}

	// Duplicate report: no-op.
	ev, err = m.Report(3, 0, false)
	if err != nil || len(ev) != 0 {
		t.Fatalf("duplicate report: %v, %v", ev, err)
	}

	// Recovery: outage cleared.
	ev, err = m.Report(4, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventOutageCleared {
		t.Fatalf("events = %v", ev)
	}
	if m.InOutage() {
		t.Fatal("outage should be over")
	}
}

func TestDiagnosisRefinesAsReportsArrive(t *testing.T) {
	m := twoBranchMonitor(t, 1)
	// Only connection 0 has reported, and it is down: candidates are all
	// of its nodes {0}, {1}, {2}.
	ev, err := m.Report(1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventOutageStarted {
		t.Fatalf("events = %v", ev)
	}
	if got := len(ev[0].Diagnosis.Consistent); got != 3 {
		t.Fatalf("candidates = %v", ev[0].Diagnosis.Consistent)
	}

	// Connection 1 reports up: node 2 exonerated → diagnosis changes.
	ev, err = m.Report(2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventDiagnosisChanged {
		t.Fatalf("events = %v", ev)
	}
	if got := ev[0].Diagnosis.Consistent; !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Fatalf("candidates = %v", got)
	}

	// Direct query matches.
	d, err := m.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Consistent, [][]int{{0}, {1}}) {
		t.Fatalf("Diagnosis = %v", d.Consistent)
	}
}

func TestDiagnosisOutsideOutageErrors(t *testing.T) {
	m := twoBranchMonitor(t, 1)
	if _, err := m.Diagnosis(); err == nil {
		t.Fatal("no-outage diagnosis should error")
	}
}

func TestInconsistentReports(t *testing.T) {
	// Disjoint single-node connections; k=1 cannot explain both down.
	m, err := New(4, 1, []*bitset.Set{
		bitset.FromIndices(4, 0),
		bitset.FromIndices(4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Report(1, 0, false); err != nil {
		t.Fatal(err)
	}
	ev, err := m.Report(2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventInconsistent {
		t.Fatalf("events = %v", ev)
	}
	// Staying inconsistent does not spam events.
	ev, err = m.Report(3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventDiagnosisChanged {
		t.Fatalf("events after partial recovery = %v", ev)
	}
}

func TestStrings(t *testing.T) {
	if StateUnknown.String() != "unknown" || StateUp.String() != "up" || StateDown.String() != "down" {
		t.Fatal("ConnState strings wrong")
	}
	if ConnState(9).String() == "" {
		t.Fatal("unknown state should render")
	}
	for k, want := range map[EventKind]string{
		EventOutageStarted:    "outage-started",
		EventDiagnosisChanged: "diagnosis-changed",
		EventOutageCleared:    "outage-cleared",
		EventInconsistent:     "inconsistent",
		EventKind(42):         "EventKind(42)",
	} {
		if k.String() != want {
			t.Fatalf("EventKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestOutageStartWithInconsistentFirstReport(t *testing.T) {
	// k=1 monitor where the very first report is already unexplainable:
	// a down connection whose only node is also on an up connection.
	m, err := New(3, 1, []*bitset.Set{
		bitset.FromIndices(3, 0),
		bitset.FromIndices(3, 0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Report(0, 1, true); err != nil {
		t.Fatal(err)
	}
	ev, err := m.Report(1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev[0].Kind != EventOutageStarted || ev[1].Kind != EventInconsistent {
		t.Fatalf("events = %v", ev)
	}
}
