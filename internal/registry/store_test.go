package registry

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"
)

// storeContract exercises the Store semantics every implementation must
// share: save, overwrite, delete (including absent IDs), and load-all.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	if err := s.Save("a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("b", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	// Snapshot-on-write: a second Save replaces the document.
	if err := s.Save("a", []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("ghost"); err != nil {
		t.Fatalf("deleting an absent document: %v", err)
	}
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{"a": []byte(`{"v":3}`)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Load = %q, want %q", got, want)
	}
	if err := s.Save(".sneaky", []byte("x")); err == nil {
		t.Fatal("Save accepted a dot-leading ID")
	}
	if err := s.Save("a/b", []byte("x")); err == nil {
		t.Fatal("Save accepted a path separator in the ID")
	}
}

func TestMemStoreContract(t *testing.T) {
	storeContract(t, NewMemStore())
}

func TestFileStoreContract(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

// TestMemStoreIsolation: Load must return copies, not aliases.
func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	doc := []byte(`{"v":1}`)
	if err := s.Save("a", doc); err != nil {
		t.Fatal(err)
	}
	doc[1] = 'X' // caller mutates its buffer after Save
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(got["a"]) != `{"v":1}` {
		t.Fatalf("stored doc aliased the caller's buffer: %q", got["a"])
	}
	got["a"][1] = 'Y' // caller mutates the loaded copy
	again, _ := s.Load()
	if string(again["a"]) != `{"v":1}` {
		t.Fatalf("loaded doc aliased the store's buffer: %q", again["a"])
	}
}

// TestFileStoreSurvivesRestart is the durability contract: a new store
// over the same directory sees everything a previous one saved.
func TestFileStoreSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "scenarios")
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save("net-1", []byte(`{"topology":"Abovenet"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save("net-2", []byte(`{"topology":"Tiscali"}`)); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir) // the "restarted daemon"
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got["net-1"]) != `{"topology":"Abovenet"}` {
		t.Fatalf("restart lost documents: %q", got)
	}
}

// TestFileStoreIgnoresDebris: interrupted-write temp files and foreign
// files must not surface as scenarios at boot.
func TestFileStoreIgnoresDebris(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "scenarios")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("real", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".real.json.tmp-123", "README.txt", "bad name.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got["real"]) != `{}` {
		t.Fatalf("debris leaked into Load: %q", got)
	}
}

// TestFileStoreConcurrent: concurrent writers must not corrupt documents
// (each Load observes complete snapshots).
func TestFileStoreConcurrent(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Save("shared", []byte(`{"full":"document"}`)); err != nil {
					t.Error(err)
					return
				}
				docs, err := s.Load()
				if err != nil {
					t.Error(err)
					return
				}
				if d, ok := docs["shared"]; ok && string(d) != `{"full":"document"}` {
					t.Errorf("torn read: %q", d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFileStoreHostileDirectory: a scenario directory seeded with
// adversarial entries — non-regular files wearing the .json suffix,
// hidden files, names that fail scenario-ID validation — must neither
// surface bogus scenarios at boot nor hang or fail the Load. A FIFO
// named like a document is the nastiest case: following it would block
// ReadFile forever.
func TestFileStoreHostileDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "scenarios")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("real", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}

	outside := filepath.Join(t.TempDir(), "outside.json")
	if err := os.WriteFile(outside, []byte(`{"smuggled":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A directory that wears the document suffix.
	if err := os.Mkdir(filepath.Join(dir, "subdir.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Symlinks: one to a file outside the store, one to a directory.
	if err := os.Symlink(outside, filepath.Join(dir, "link.json")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := os.Symlink(t.TempDir(), filepath.Join(dir, "dirlink.json")); err != nil {
		t.Fatal(err)
	}
	// A FIFO named like a document: reading it would block forever.
	if err := syscall.Mkfifo(filepath.Join(dir, "pipe.json"), 0o644); err != nil {
		t.Skipf("mkfifo unavailable: %v", err)
	}
	// Names that fail scenario-ID validation.
	for _, name := range []string{"..json", ".hidden.json", "bad name.json", "café.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var got map[string][]byte
	var loadErr error
	go func() { got, loadErr = s.Load(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Load hung on a hostile directory entry")
	}
	if loadErr != nil {
		t.Fatalf("Load failed on a hostile directory: %v", loadErr)
	}
	want := map[string][]byte{"real": []byte(`{"v":1}`)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hostile entries leaked into Load: %q", got)
	}
}
