package registry

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"default", "a", "Tenant-2", "net.0_1", "x-" + string(make([]byte, 0))} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, MaxIDLength+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", ".hidden", "..", "a/b", "a\\b", "a b", "a\nb", "ü", string(long)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := New[int](0)
	if err := r.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("a", 2); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put error = %v, want ErrExists", err)
	}
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %t", v, ok)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("Get(b) found a ghost")
	}
	if err := r.Put("b", 2); err != nil {
		t.Fatal(err)
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("IDs = %v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if v, ok := r.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete(a) = %d, %t", v, ok)
	}
	if _, ok := r.Delete("a"); ok {
		t.Fatal("second Delete(a) succeeded")
	}
	if r.Len() != 1 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
}

func TestRegistryCap(t *testing.T) {
	r := New[int](2)
	if err := r.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("c", 3); !errors.Is(err, ErrFull) {
		t.Fatalf("over-cap Put error = %v, want ErrFull", err)
	}
	// A duplicate Put at the cap must not leak a length slot.
	r.Delete("b")
	if err := r.Put("a", 9); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Put error = %v", err)
	}
	if err := r.Put("c", 3); err != nil {
		t.Fatalf("Put after freeing a slot: %v", err)
	}
}

func TestRegistryRange(t *testing.T) {
	r := New[int](0)
	for i := 0; i < 10; i++ {
		if err := r.Put(fmt.Sprintf("s%02d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	var visited []string
	r.Range(func(id string, v int) bool {
		visited = append(visited, id)
		return len(visited) < 5
	})
	if len(visited) != 5 {
		t.Fatalf("Range visited %d entries after early stop, want 5", len(visited))
	}
	// Range must tolerate mutation from inside fn (no shard lock held).
	r.Range(func(id string, v int) bool {
		r.Delete(id)
		return true
	})
	if r.Len() != 0 {
		t.Fatalf("Len after deleting during Range = %d", r.Len())
	}
}

// TestRegistryConcurrent hammers every operation from many goroutines;
// run under -race this is the lock-striping correctness gate.
func TestRegistryConcurrent(t *testing.T) {
	r := New[int](0)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-s%d", w, i)
				if err := r.Put(id, i); err != nil {
					t.Error(err)
					return
				}
				if v, ok := r.Get(id); !ok || v != i {
					t.Errorf("Get(%s) = %d, %t", id, v, ok)
					return
				}
				if i%3 == 0 {
					r.Delete(id)
				}
				if i%17 == 0 {
					r.IDs()
					r.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	want := 0
	for i := 0; i < perWorker; i++ {
		if i%3 != 0 {
			want++
		}
	}
	if got := r.Len(); got != want*workers {
		t.Fatalf("Len = %d, want %d", got, want*workers)
	}
	if got := len(r.IDs()); got != want*workers {
		t.Fatalf("len(IDs) = %d, want %d", got, want*workers)
	}
}
