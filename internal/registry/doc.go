// Package registry owns the multi-tenant scenario index of the serving
// stack: a sharded, concurrency-safe map from scenario ID to per-tenant
// state, plus a Store contract that persists scenario documents so a
// daemon restart reloads every tenant it was serving.
//
// The paper evaluates placement and localization per network (one
// topology, one service set, one placement — the Section VI setup); the
// related many-topology work (Johnson et al.'s set-cover-by-pairs
// instances, Ma et al.'s per-topology capability studies) operates on
// fleets of independent instances. This package is the piece that lets
// one placemond process host such a fleet: every scenario is an
// isolated bundle (its own monitor state, dedup window, trace ring) and
// lookups take only a per-shard read lock, so tenants never serialize
// against each other on the hot ingest path.
//
// The package is generic over the tenant payload and depends only on the
// standard library; the serving layer (internal/server) instantiates it
// with its tenant type, and the Store implementations (in store.go) give
// scenarios crash-restart durability.
package registry
