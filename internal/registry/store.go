package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store persists scenario documents — opaque JSON blobs owned by the
// caller — so a restarted daemon can rebuild every tenant it was serving.
// The contract is snapshot-on-write: Save replaces the stored document
// atomically (a reader or a crash never observes a torn write), Delete
// forgets it, and Load returns every stored document at boot.
//
// Implementations must be safe for concurrent use. The registry itself
// never calls the Store; the serving layer does, at scenario create,
// delete, and graceful shutdown, which keeps I/O off the ingest path.
type Store interface {
	// Save atomically replaces the document stored under id.
	Save(id string, doc []byte) error
	// Delete forgets the document stored under id; deleting an absent
	// document is not an error.
	Delete(id string) error
	// Load returns every stored (id, document) pair.
	Load() (map[string][]byte, error)
}

// MemStore is an in-memory Store: scenarios survive for the life of the
// process only. It is the default when no scenario directory is
// configured, and the test double everywhere else.
type MemStore struct {
	mu   sync.Mutex
	docs map[string][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{docs: make(map[string][]byte)}
}

// Save stores a private copy of doc under id.
func (s *MemStore) Save(id string, doc []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	s.docs[id] = append([]byte(nil), doc...)
	s.mu.Unlock()
	return nil
}

// Delete forgets id.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	delete(s.docs, id)
	s.mu.Unlock()
	return nil
}

// Load returns a copy of every stored document.
func (s *MemStore) Load() (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.docs))
	for id, doc := range s.docs {
		out[id] = append([]byte(nil), doc...)
	}
	return out, nil
}

// storeExt is the file extension of persisted scenario documents.
const storeExt = ".json"

// FileStore persists each scenario as <dir>/<id>.json with atomic
// snapshot-on-write: the document is written to a temporary file in the
// same directory, fsynced, and renamed over the target, so a crash at any
// point leaves either the old or the new document — never a torn one.
// IDs pass ValidateID (no separators, no leading dot), so the document
// path cannot escape the directory.
type FileStore struct {
	dir string
	mu  sync.Mutex // serializes writers per store; readers go through Load
}

// NewFileStore creates (if needed) dir and returns a store over it.
func NewFileStore(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty scenario directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: scenario dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the directory the store writes to.
func (s *FileStore) Dir() string { return s.dir }

// Save atomically replaces <dir>/<id>.json with doc.
func (s *FileStore) Save(id string, doc []byte) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, id+storeExt)); err != nil {
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	// The rename itself must be made durable: without an fsync of the
	// directory, a power cut after Save returns can roll the directory
	// entry back to the old document even though the data file synced.
	// (Regression note: Save originally skipped this, which the WAL crash
	// harness flagged — the file contents were durable but the name was
	// not.)
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("registry: snapshot %s: %w", id, err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename or remove of one of
// its entries survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Delete removes <dir>/<id>.json; an absent file is not an error.
func (s *FileStore) Delete(id string) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(filepath.Join(s.dir, id+storeExt))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: delete %s: %w", id, err)
	}
	// Same durability rule as Save: the unlink is only permanent once the
	// directory itself is synced.
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("registry: delete %s: %w", id, err)
	}
	return nil
}

// Load reads every <id>.json in the directory, in sorted order.
// Temporary files from interrupted writes (dot-prefixed) are skipped, so
// a crash mid-Save never resurrects a partial document. Only regular
// files are considered — the store only ever writes regular files, and
// following anything else in a hostile directory is a boot hazard (a
// FIFO named x.json would block ReadFile forever; a symlink can point
// anywhere).
func (s *FileStore) Load() (map[string][]byte, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("registry: load: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasSuffix(name, storeExt) || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		id := strings.TrimSuffix(name, storeExt)
		if ValidateID(id) != nil {
			continue // foreign file in the scenario directory
		}
		doc, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("registry: load %s: %w", id, err)
		}
		out[id] = doc
	}
	return out, nil
}
