package registry

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
)

// Errors returned by Registry operations. They are sentinel values so the
// HTTP layer can map them to statuses (409, 404, 507-ish 429) with
// errors.Is.
var (
	// ErrExists means Put found the ID already registered.
	ErrExists = errors.New("registry: scenario already exists")
	// ErrNotFound means the ID names no registered scenario.
	ErrNotFound = errors.New("registry: scenario not found")
	// ErrFull means the registry is at its MaxEntries cap.
	ErrFull = errors.New("registry: scenario limit reached")
)

// MaxIDLength bounds scenario IDs; IDs double as file names in the file
// store and path segments in /v1/scenarios/{id}/..., so they are kept
// short and conservative.
const MaxIDLength = 64

// ValidateID checks that id is usable as a scenario name: 1 to
// MaxIDLength characters from [a-zA-Z0-9._-], not starting with a dot
// (no hidden files, no "..") — safe in a URL path segment and as a file
// name on every supported platform.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("registry: empty scenario ID")
	}
	if len(id) > MaxIDLength {
		return fmt.Errorf("registry: scenario ID longer than %d bytes", MaxIDLength)
	}
	if id[0] == '.' {
		return fmt.Errorf("registry: scenario ID %q may not start with a dot", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("registry: scenario ID %q contains %q (want [a-zA-Z0-9._-])", id, c)
		}
	}
	return nil
}

// numShards is the lock-striping factor. 16 shards keep contention
// negligible for hundreds of tenants while the per-registry footprint
// stays trivial.
const numShards = 16

// shard is one lock stripe of the registry.
type shard[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// Registry is a sharded map of scenario ID → tenant payload. All methods
// are safe for concurrent use; operations on different shards never
// contend, and reads on the same shard share an RWMutex read lock.
// Create with New.
type Registry[T any] struct {
	shards [numShards]shard[T]
	seed   maphash.Seed
	max    int

	lenMu sync.Mutex
	len   int
}

// New creates a registry holding at most maxEntries scenarios;
// maxEntries ≤ 0 means unbounded.
func New[T any](maxEntries int) *Registry[T] {
	r := &Registry[T]{seed: maphash.MakeSeed(), max: maxEntries}
	for i := range r.shards {
		r.shards[i].m = make(map[string]T)
	}
	return r
}

// shardFor hashes the ID onto its lock stripe.
func (r *Registry[T]) shardFor(id string) *shard[T] {
	return &r.shards[maphash.String(r.seed, id)%numShards]
}

// Put registers v under id. It fails with ErrExists if the ID is taken,
// ErrFull at the cap, or a validation error for a malformed ID.
func (r *Registry[T]) Put(id string, v T) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	// The length gate is taken before the shard lock (lock ordering:
	// lenMu → shard.mu is never held together with another shard's lock,
	// so there is no deadlock) and rolled back if the insert loses the
	// existence race.
	r.lenMu.Lock()
	if r.max > 0 && r.len >= r.max {
		r.lenMu.Unlock()
		return fmt.Errorf("%w (max %d)", ErrFull, r.max)
	}
	r.len++
	r.lenMu.Unlock()

	s := r.shardFor(id)
	s.mu.Lock()
	_, exists := s.m[id]
	if !exists {
		s.m[id] = v
	}
	s.mu.Unlock()
	if exists {
		r.lenMu.Lock()
		r.len--
		r.lenMu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	return nil
}

// Swap replaces the payload registered under id and returns the
// previous one. It never creates an entry: if id is not registered the
// swap fails with ErrNotFound and the registry is unchanged. The
// replacement is atomic under the shard lock, so concurrent Get calls
// observe either the old or the new payload, never an absent one, and
// the registry's length is unaffected.
func (r *Registry[T]) Swap(id string, v T) (T, error) {
	s := r.shardFor(id)
	s.mu.Lock()
	old, ok := s.m[id]
	if ok {
		s.m[id] = v
	}
	s.mu.Unlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return old, nil
}

// Get returns the payload registered under id.
func (r *Registry[T]) Get(id string) (T, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

// Delete removes and returns the payload registered under id.
func (r *Registry[T]) Delete(id string) (T, bool) {
	s := r.shardFor(id)
	s.mu.Lock()
	v, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if ok {
		r.lenMu.Lock()
		r.len--
		r.lenMu.Unlock()
	}
	return v, ok
}

// Len returns the number of registered scenarios.
func (r *Registry[T]) Len() int {
	r.lenMu.Lock()
	defer r.lenMu.Unlock()
	return r.len
}

// IDs returns every registered scenario ID, sorted.
func (r *Registry[T]) IDs() []string {
	var ids []string
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id := range s.m {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Range calls fn for every registered scenario until fn returns false.
// The shard lock is not held during fn, so fn may call back into the
// registry; entries added or removed concurrently may or may not be
// visited, as with sync.Map.
func (r *Registry[T]) Range(fn func(id string, v T) bool) {
	for _, id := range r.IDs() {
		v, ok := r.Get(id)
		if !ok {
			continue // deleted between snapshot and visit
		}
		if !fn(id, v) {
			return
		}
	}
}
