package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/placemonclient"
)

// Config parameterizes a Runner. Only BaseURL is required; every other
// field has a sensible smoke-test default.
type Config struct {
	// BaseURL locates the placemond instance under test.
	BaseURL string
	// RPS is the target aggregate request rate (default 100).
	RPS float64
	// Duration is the load phase length (default 10s).
	Duration time.Duration
	// Scenarios is how many isolated scenarios the run creates and drives
	// (default 4). Arrivals are dealt round-robin across them.
	Scenarios int
	// Clients is the number of concurrent simulated clients draining the
	// arrival queue (default 4·Scenarios). More clients than scenarios is
	// deliberate: several clients report into one scenario, as real
	// vantage points would.
	Clients int
	// Seed drives the arrival jitter and every scenario's failure
	// sampling (default 1). Two runs with equal (RPS, Duration, Seed)
	// fire at identical offsets.
	Seed int64
	// DiagnosisEvery makes every Nth arrival a diagnosis read instead of
	// an ingest (default 10; ≤ -1 disables reads).
	DiagnosisEvery int
	// Workload declares the scenario document and failure model.
	Workload WorkloadConfig
	// SLO grades the finished run (zero value: DefaultSLO).
	SLO SLO
	// ScenarioPrefix namespaces the created scenario IDs
	// ("<prefix>-0" … ; default "loadgen").
	ScenarioPrefix string
	// KeepScenarios leaves the scenarios on the daemon after the run
	// instead of deleting them.
	KeepScenarios bool
	// SkipCrossCheck disables the post-run /metrics and /debug/traces
	// reconciliation (used against daemons with those endpoints disabled).
	SkipCrossCheck bool
	// Client overrides the placemonclient knobs (retries, breaker,
	// timeouts). BaseURL and Seed are filled from this Config.
	Client placemonclient.Config
}

func (cfg *Config) fillDefaults() error {
	if cfg.BaseURL == "" {
		return fmt.Errorf("loadgen: Config.BaseURL is required")
	}
	if cfg.RPS == 0 {
		cfg.RPS = 100
	}
	if cfg.RPS < 0 {
		return fmt.Errorf("loadgen: RPS must be positive, got %g", cfg.RPS)
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Duration < 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Scenarios == 0 {
		cfg.Scenarios = 4
	}
	if cfg.Scenarios < 0 {
		return fmt.Errorf("loadgen: Scenarios must be positive, got %d", cfg.Scenarios)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4 * cfg.Scenarios
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	switch {
	case cfg.DiagnosisEvery == 0:
		cfg.DiagnosisEvery = 10
	case cfg.DiagnosisEvery < 0:
		cfg.DiagnosisEvery = 0 // disabled
	}
	if cfg.SLO == (SLO{}) {
		cfg.SLO = DefaultSLO()
	}
	if cfg.ScenarioPrefix == "" {
		cfg.ScenarioPrefix = "loadgen"
	}
	return nil
}

// Runner drives one open-loop load run against a placemond. Create with
// New; a Runner is single-use (one Run call).
type Runner struct {
	cfg    Config
	sched  Schedule
	wl     *Workload
	client *placemonclient.Client

	ids     []string
	sources []*BatchSource

	mu        sync.Mutex
	routes    map[string]*routeAgg
	scenarios map[string]*scenarioAgg
	overall   *Hist
	errsTotal uint64
	diagReads uint64
	diagStale uint64
}

type routeAgg struct {
	hist   *Hist
	errors uint64
}

type scenarioAgg struct {
	hist      *Hist
	errors    uint64
	confirmed uint64
	replayed  uint64
}

// New validates cfg, builds the workload and the arrival schedule, and
// connects the client. Nothing touches the daemon until Run.
func New(cfg Config) (*Runner, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	sched, err := BuildSchedule(cfg.RPS, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Workload.Seed == 0 {
		cfg.Workload.Seed = cfg.Seed
	}
	wl, err := BuildWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	ccfg := cfg.Client
	ccfg.BaseURL = cfg.BaseURL
	if ccfg.Seed == 0 {
		ccfg.Seed = cfg.Seed
	}
	client, err := placemonclient.New(ccfg)
	if err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:       cfg,
		sched:     sched,
		wl:        wl,
		client:    client,
		routes:    map[string]*routeAgg{},
		scenarios: map[string]*scenarioAgg{},
		overall:   NewHist(),
	}
	for i := 0; i < cfg.Scenarios; i++ {
		id := fmt.Sprintf("%s-%d", cfg.ScenarioPrefix, i)
		r.ids = append(r.ids, id)
		// Offset the per-scenario failure streams so tenants do not fail
		// in lockstep.
		r.sources = append(r.sources, wl.NewBatchSource(cfg.Seed+int64(i)+1))
		r.scenarios[id] = &scenarioAgg{hist: NewHist()}
	}
	return r, nil
}

// Schedule exposes the precomputed arrival plan (for -print-schedule and
// determinism tests).
func (r *Runner) Schedule() Schedule { return r.sched }

// ScenarioIDs returns the scenario IDs the run creates, in order.
func (r *Runner) ScenarioIDs() []string { return append([]string(nil), r.ids...) }

// Run executes the full load run: create the scenarios, fire the
// schedule, cross-check against the server, grade the SLO, and (unless
// KeepScenarios) delete the scenarios again. The returned Report is
// non-nil whenever the load phase ran, even if the SLO failed — callers
// decide the exit code from Report.Passed.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if err := r.client.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("loadgen: target %s not healthy: %w", r.cfg.BaseURL, err)
	}
	for _, id := range r.ids {
		if _, err := r.client.CreateScenario(ctx, id, r.wl.Spec); err != nil {
			return nil, fmt.Errorf("loadgen: create scenario %s: %w", id, err)
		}
	}
	if !r.cfg.KeepScenarios {
		defer func() {
			// Best-effort teardown on a fresh context: the run's ctx may
			// already be canceled.
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for _, id := range r.ids {
				r.client.DeleteScenario(dctx, id)
			}
		}()
	}

	r.fire(ctx)

	rep := r.buildReport()
	if !r.cfg.SkipCrossCheck {
		r.crossCheck(ctx, rep)
	}
	rep.SLOViolations = r.cfg.SLO.Check(rep)
	return rep, nil
}

type arrival struct {
	idx int
	due time.Time
}

// fire replays the schedule: a dispatcher releases arrivals at their due
// times into a deep buffered channel (it never blocks on slow workers —
// that is what keeps the loop open), and Clients workers drain it.
func (r *Runner) fire(ctx context.Context) {
	queue := make(chan arrival, len(r.sched.Offsets))
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range queue {
				r.serve(ctx, a, start)
			}
		}()
	}

	for i, off := range r.sched.Offsets {
		if ctx.Err() != nil {
			break
		}
		if wait := time.Until(start.Add(off)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		queue <- arrival{idx: i, due: start.Add(off)}
	}
	close(queue)
	wg.Wait()
}

// serve performs one scheduled request and records its outcome. Latency
// is measured from the scheduled due time: if the queue backed up, the
// wait is part of what the simulated client experienced.
func (r *Runner) serve(ctx context.Context, a arrival, start time.Time) {
	scIdx := a.idx % len(r.ids)
	id := r.ids[scIdx]
	sc := r.client.Scenario(id)

	isDiag := r.cfg.DiagnosisEvery > 0 && a.idx%r.cfg.DiagnosisEvery == r.cfg.DiagnosisEvery-1
	if isDiag {
		d, err := sc.Diagnosis(ctx)
		lat := time.Since(a.due).Seconds()
		r.record("diagnosis", id, lat, err, 0, false)
		r.mu.Lock()
		r.diagReads++
		if err == nil && d.Stale {
			r.diagStale++
		}
		r.mu.Unlock()
		return
	}

	batch := r.sources[scIdx].Next(a.due.Sub(start).Seconds())
	res, err := sc.ReportObservations(ctx, batch)
	lat := time.Since(a.due).Seconds()
	confirmed := 0
	replayed := false
	if err == nil {
		// Replayed or not, the server applied this batch exactly once.
		confirmed = len(batch.Reports)
		replayed = res.Replayed
	}
	r.record("observations", id, lat, err, confirmed, replayed)
}

func (r *Runner) record(route, scenario string, lat float64, err error, confirmed int, replayed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ra, ok := r.routes[route]
	if !ok {
		ra = &routeAgg{hist: NewHist()}
		r.routes[route] = ra
	}
	sa := r.scenarios[scenario]
	ra.hist.Observe(lat)
	sa.hist.Observe(lat)
	r.overall.Observe(lat)
	if err != nil {
		ra.errors++
		sa.errors++
		r.errsTotal++
		return
	}
	sa.confirmed += uint64(confirmed)
	if replayed {
		sa.replayed++
	}
}

// buildReport snapshots the aggregates into a Report.
func (r *Runner) buildReport() *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Target:              r.cfg.BaseURL,
		RPS:                 r.cfg.RPS,
		Duration:            r.cfg.Duration,
		DurationSeconds:     r.cfg.Duration.Seconds(),
		Seed:                r.cfg.Seed,
		ScheduleFingerprint: r.sched.Fingerprint(),
		Arrivals:            r.sched.Len(),
		Overall:             statsOf(r.overall, r.errsTotal),
		DiagnosisReads:      r.diagReads,
		StaleDiagnoses:      r.diagStale,
	}
	for route, ra := range r.routes {
		rep.Routes = append(rep.Routes, RouteStats{Route: route, LatencyStats: statsOf(ra.hist, ra.errors)})
	}
	for id, sa := range r.scenarios {
		rep.Scenarios = append(rep.Scenarios, ScenarioStats{
			Scenario:         id,
			LatencyStats:     statsOf(sa.hist, sa.errors),
			ConfirmedReports: sa.confirmed,
			ReplayedBatches:  sa.replayed,
			TracesSeen:       -1,
		})
	}
	sortRoutes(rep.Routes)
	sortScenarios(rep.Scenarios)
	return rep
}

// serverRoutes maps loadgen route names to the daemon's route labels.
var serverRoutes = map[string]string{
	"observations": "/v1/scenarios/{id}/observations",
	"diagnosis":    "/v1/scenarios/{id}/diagnosis",
}

// crossCheck reconciles the client-side report with the daemon's own
// telemetry: per-route latency quantiles against the
// placemond_http_request_duration_seconds histograms, and per-scenario
// presence in the (bounded) /debug/traces ring. Failures are recorded on
// the report, never fatal — a daemon with tracing disabled still gets a
// client-side report.
func (r *Runner) crossCheck(ctx context.Context, rep *Report) {
	text, err := r.client.MetricsText(ctx)
	if err != nil {
		rep.CrossCheckError = err.Error()
		return
	}
	hists, err := ParseHistograms(bytes.NewReader(text), "placemond_http_request_duration_seconds", "route")
	if err != nil {
		rep.CrossCheckError = err.Error()
		return
	}
	for _, rt := range rep.Routes {
		snap, ok := hists[serverRoutes[rt.Route]]
		if !ok {
			continue
		}
		for _, q := range []struct {
			name   string
			q      float64
			client float64
		}{
			{"p50", 0.50, rt.P50},
			{"p95", 0.95, rt.P95},
			{"p99", 0.99, rt.P99},
		} {
			server := snap.Quantile(q.q)
			rep.Reconciliation = append(rep.Reconciliation, ReconcileRow{
				Route:    rt.Route,
				Quantile: q.name,
				Client:   q.client,
				Server:   server,
				Within:   reconcileTolerance(q.client, server),
			})
		}
	}

	// The trace ring is bounded, so this is a liveness probe, not an
	// accounting check: the newest traces must mention our scenarios.
	for i := range rep.Scenarios {
		recs, err := r.client.Traces(ctx, placemonclient.TraceQuery{Scenario: rep.Scenarios[i].Scenario})
		if err != nil {
			var apiErr *placemonclient.APIError
			if errors.As(err, &apiErr) && apiErr.Status == 404 {
				rep.CrossCheckError = "trace ring disabled on the daemon"
				return
			}
			rep.CrossCheckError = err.Error()
			return
		}
		rep.Scenarios[i].TracesSeen = countOurs(recs, rep.Scenarios[i].Scenario)
	}
}

// countOurs counts trace records belonging to the scenario (defensive:
// the server already filtered).
func countOurs(recs []trace.Record, scenario string) int {
	n := 0
	for _, rec := range recs {
		if rec.Tenant == scenario {
			n++
		}
	}
	return n
}

// String renders the run parameters for logs.
func (r *Runner) String() string {
	return fmt.Sprintf("loadgen{target=%s rps=%g duration=%s scenarios=%d clients=%d seed=%d}",
		r.cfg.BaseURL, r.cfg.RPS, r.cfg.Duration, r.cfg.Scenarios, r.cfg.Clients, r.cfg.Seed)
}
