package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO([]byte(`{"max_p99_seconds": 0.5, "max_error_rate": 0.02}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxP99Seconds != 0.5 || s.MaxErrorRate != 0.02 || s.MaxStaleFraction != 0 {
		t.Fatalf("parsed %+v", s)
	}
	for name, raw := range map[string]string{
		"unknown field": `{"max_p99": 1}`,
		"bad rate":      `{"max_error_rate": 1.5}`,
		"negative p99":  `{"max_p99_seconds": -1}`,
		"not json":      `max_p99_seconds: 1`,
	} {
		if _, err := ParseSLO([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", name, raw)
		}
	}
}

func TestLoadSLOFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(path, []byte(`{"max_p99_seconds": 1.25}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSLO(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxP99Seconds != 1.25 {
		t.Fatalf("loaded %+v", s)
	}
	if _, err := LoadSLO(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSLOCheck(t *testing.T) {
	rep := &Report{
		Overall:        LatencyStats{Count: 1000, Errors: 30, P99: 0.8},
		DiagnosisReads: 100,
		StaleDiagnoses: 10,
	}
	// All three bounds violated.
	tight := SLO{MaxP99Seconds: 0.5, MaxErrorRate: 0.01, MaxStaleFraction: 0.05}
	v := tight.Check(rep)
	if len(v) != 3 {
		t.Fatalf("violations = %v, want 3", v)
	}
	for _, want := range []string{"p99", "error rate", "stale"} {
		found := false
		for _, msg := range v {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions %q: %v", want, v)
		}
	}
	// Zero-valued bounds do not gate.
	if v := (SLO{}).Check(rep); len(v) != 0 {
		t.Fatalf("empty SLO produced violations: %v", v)
	}
	// Generous bounds pass.
	loose := SLO{MaxP99Seconds: 2, MaxErrorRate: 0.5, MaxStaleFraction: 0.5}
	if v := loose.Check(rep); len(v) != 0 {
		t.Fatalf("loose SLO produced violations: %v", v)
	}
}
