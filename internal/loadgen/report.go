package loadgen

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// LatencyStats summarizes one histogram: counts plus interpolated
// quantiles in seconds.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50    float64 `json:"p50_seconds"`
	P95    float64 `json:"p95_seconds"`
	P99    float64 `json:"p99_seconds"`
	P999   float64 `json:"p999_seconds"`
	Max    float64 `json:"max_seconds"`
}

// RouteStats is the per-route latency breakdown ("observations",
// "diagnosis").
type RouteStats struct {
	Route string `json:"route"`
	LatencyStats
}

// ScenarioStats is the per-scenario breakdown, including the ingest
// accounting the drain-race test audits against the server's counters.
type ScenarioStats struct {
	Scenario string `json:"scenario"`
	LatencyStats
	// ConfirmedReports is the number of connection reports the server
	// acknowledged applying for this scenario: the sum of batch sizes over
	// successful ingest calls. A batch whose first delivery's answer was
	// lost and whose retry was replayed from the dedup window counts once
	// — exactly as the server counted it.
	ConfirmedReports uint64 `json:"confirmed_reports"`
	// ReplayedBatches counts successful ingests answered from the dedup
	// window (a retry after a lost answer).
	ReplayedBatches uint64 `json:"replayed_batches"`
	// TracesSeen is how many of this scenario's requests were found in
	// the server's (bounded) /debug/traces ring during cross-check; -1
	// when the cross-check did not run.
	TracesSeen int `json:"traces_seen"`
}

// ReconcileRow compares one client-side quantile against the server's
// histogram for the same route.
type ReconcileRow struct {
	Route    string  `json:"route"`
	Quantile string  `json:"quantile"`
	Client   float64 `json:"client_seconds"`
	Server   float64 `json:"server_seconds"`
	// Within reports whether the pair is consistent: the server's view
	// may never exceed the client's by more than the tolerance (the
	// client measures a superset: queue wait + network + handler), and
	// the client may not exceed the server beyond tolerance either.
	Within bool `json:"within_tolerance"`
}

// Report is the outcome of one load run.
type Report struct {
	Target              string          `json:"target"`
	RPS                 float64         `json:"rps"`
	Duration            time.Duration   `json:"-"`
	DurationSeconds     float64         `json:"duration_seconds"`
	Seed                int64           `json:"seed"`
	ScheduleFingerprint string          `json:"schedule_fingerprint"`
	Arrivals            int             `json:"arrivals"`
	Overall             LatencyStats    `json:"overall"`
	Routes              []RouteStats    `json:"routes"`
	Scenarios           []ScenarioStats `json:"scenarios"`
	DiagnosisReads      uint64          `json:"diagnosis_reads"`
	StaleDiagnoses      uint64          `json:"stale_diagnoses"`
	Reconciliation      []ReconcileRow  `json:"reconciliation,omitempty"`
	// CrossCheckError records why the server-side cross-check was skipped
	// (endpoint disabled, parse failure); empty when it ran.
	CrossCheckError string   `json:"cross_check_error,omitempty"`
	SLOViolations   []string `json:"slo_violations,omitempty"`
}

// ErrorRate returns failed calls / total calls (0 when nothing ran).
func (r *Report) ErrorRate() float64 {
	if r.Overall.Count == 0 {
		return 0
	}
	return float64(r.Overall.Errors) / float64(r.Overall.Count)
}

// StaleFraction returns stale diagnosis answers / diagnosis reads.
func (r *Report) StaleFraction() float64 {
	if r.DiagnosisReads == 0 {
		return 0
	}
	return float64(r.StaleDiagnoses) / float64(r.DiagnosisReads)
}

// Passed reports whether the run met its SLO.
func (r *Report) Passed() bool { return len(r.SLOViolations) == 0 }

// ReconciliationOK reports whether every reconciled quantile was within
// tolerance (vacuously true when the cross-check did not run).
func (r *Report) ReconciliationOK() bool {
	for _, row := range r.Reconciliation {
		if !row.Within {
			return false
		}
	}
	return true
}

// statsOf summarizes one histogram.
func statsOf(h *Hist, errors uint64) LatencyStats {
	return LatencyStats{
		Count:  h.Count(),
		Errors: errors,
		P50:    h.Quantile(0.50),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		Max:    h.Max(),
	}
}

// WriteText renders the human-readable run report.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %s  rps=%g  duration=%s  seed=%d  schedule=%s\n",
		r.Target, r.RPS, r.Duration, r.Seed, r.ScheduleFingerprint)
	fmt.Fprintf(w, "arrivals=%d  errors=%d (rate %.4f)  diagnosis reads=%d  stale=%d (fraction %.4f)\n",
		r.Arrivals, r.Overall.Errors, r.ErrorRate(), r.DiagnosisReads, r.StaleDiagnoses, r.StaleFraction())

	fmt.Fprintf(w, "\n%-24s %8s %7s %9s %9s %9s %9s %9s\n",
		"route", "count", "errors", "p50", "p95", "p99", "p999", "max")
	row := func(name string, s LatencyStats) {
		fmt.Fprintf(w, "%-24s %8d %7d %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
			name, s.Count, s.Errors,
			s.P50*1e3, s.P95*1e3, s.P99*1e3, s.P999*1e3, s.Max*1e3)
	}
	for _, rt := range r.Routes {
		row(rt.Route, rt.LatencyStats)
	}
	row("overall", r.Overall)

	fmt.Fprintf(w, "\n%-24s %8s %7s %9s %9s  %9s %8s %7s\n",
		"scenario", "count", "errors", "p50", "p99", "confirmed", "replayed", "traces")
	for _, sc := range r.Scenarios {
		traces := fmt.Sprintf("%d", sc.TracesSeen)
		if sc.TracesSeen < 0 {
			traces = "-"
		}
		fmt.Fprintf(w, "%-24s %8d %7d %8.1fms %8.1fms  %9d %8d %7s\n",
			sc.Scenario, sc.Count, sc.Errors, sc.P50*1e3, sc.P99*1e3,
			sc.ConfirmedReports, sc.ReplayedBatches, traces)
	}

	if r.CrossCheckError != "" {
		fmt.Fprintf(w, "\nserver cross-check skipped: %s\n", r.CrossCheckError)
	} else if len(r.Reconciliation) > 0 {
		fmt.Fprintf(w, "\nserver reconciliation (client vs placemond histograms):\n")
		for _, rec := range r.Reconciliation {
			verdict := "ok"
			if !rec.Within {
				verdict = "DIVERGED"
			}
			fmt.Fprintf(w, "  %-24s %-5s client %8.1fms  server %8.1fms  %s\n",
				rec.Route, rec.Quantile, rec.Client*1e3, rec.Server*1e3, verdict)
		}
	}

	if len(r.SLOViolations) == 0 {
		fmt.Fprintf(w, "\nSLO: PASS\n")
	} else {
		fmt.Fprintf(w, "\nSLO: FAIL\n")
		for _, v := range r.SLOViolations {
			fmt.Fprintf(w, "  - %s\n", v)
		}
	}
}

// sortRoutes orders route rows by name for deterministic output.
func sortRoutes(rows []RouteStats) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Route < rows[j].Route })
}

// sortScenarios orders scenario rows by ID for deterministic output.
func sortScenarios(rows []ScenarioStats) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Scenario < rows[j].Scenario })
}
