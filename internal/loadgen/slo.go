package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SLO is the pass/fail contract a load run is graded against, the
// document slo.json carries. Zero-valued fields mean "no bound", so a
// file can declare only the dimensions it cares about.
type SLO struct {
	// MaxP99Seconds bounds the overall client-side p99 latency.
	MaxP99Seconds float64 `json:"max_p99_seconds,omitempty"`
	// MaxErrorRate bounds failed calls / total calls, in [0, 1].
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxStaleFraction bounds stale diagnosis answers / diagnosis reads,
	// in [0, 1].
	MaxStaleFraction float64 `json:"max_stale_fraction,omitempty"`
}

// DefaultSLO is the contract used when no slo.json is given: generous
// enough that a healthy daemon on developer hardware passes, tight
// enough that a hung or thrashing one does not.
func DefaultSLO() SLO {
	return SLO{
		MaxP99Seconds:    2.5,
		MaxErrorRate:     0.01,
		MaxStaleFraction: 0.05,
	}
}

// LoadSLO reads and validates an slo.json file. Unknown fields are
// rejected so a typoed knob fails loudly instead of silently not
// gating anything.
func LoadSLO(path string) (SLO, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return SLO{}, fmt.Errorf("loadgen: read SLO: %w", err)
	}
	return ParseSLO(raw)
}

// ParseSLO decodes and validates an SLO document.
func ParseSLO(raw []byte) (SLO, error) {
	var s SLO
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SLO{}, fmt.Errorf("loadgen: decode SLO: %w", err)
	}
	if s.MaxP99Seconds < 0 {
		return SLO{}, fmt.Errorf("loadgen: SLO max_p99_seconds must be ≥ 0, got %g", s.MaxP99Seconds)
	}
	for name, v := range map[string]float64{
		"max_error_rate":     s.MaxErrorRate,
		"max_stale_fraction": s.MaxStaleFraction,
	} {
		if v < 0 || v > 1 {
			return SLO{}, fmt.Errorf("loadgen: SLO %s must be in [0, 1], got %g", name, v)
		}
	}
	return s, nil
}

// Check grades a finished run: each violated bound yields one
// human-readable violation string; an empty slice means the run passed.
func (s SLO) Check(rep *Report) []string {
	var violations []string
	if s.MaxP99Seconds > 0 && rep.Overall.P99 > s.MaxP99Seconds {
		violations = append(violations, fmt.Sprintf(
			"p99 latency %.4fs exceeds SLO max_p99_seconds %.4fs", rep.Overall.P99, s.MaxP99Seconds))
	}
	if s.MaxErrorRate > 0 && rep.ErrorRate() > s.MaxErrorRate {
		violations = append(violations, fmt.Sprintf(
			"error rate %.4f (%d/%d calls) exceeds SLO max_error_rate %.4f",
			rep.ErrorRate(), rep.Overall.Errors, rep.Overall.Count, s.MaxErrorRate))
	}
	if s.MaxStaleFraction > 0 && rep.StaleFraction() > s.MaxStaleFraction {
		violations = append(violations, fmt.Sprintf(
			"stale diagnosis fraction %.4f (%d/%d reads) exceeds SLO max_stale_fraction %.4f",
			rep.StaleFraction(), rep.StaleDiagnoses, rep.DiagnosisReads, s.MaxStaleFraction))
	}
	return violations
}
