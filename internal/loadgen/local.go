package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	placemon "repro"
)

// LocalDaemon is an in-process multi-tenant placemond on a loopback
// listener: the target `placemon loadgen` and `make soak-smoke` fall
// back to when no -target is given, and what the drain-race test drives.
type LocalDaemon struct {
	// URL is the daemon's base URL ("http://127.0.0.1:<port>").
	URL string
	// Server is the underlying facade server, exposed so tests can read
	// metrics without a scrape (WriteMetrics) or remove scenarios
	// mid-flight (RemoveScenario).
	Server *placemon.Server

	cancel context.CancelFunc
	done   chan error
}

// StartLocalDaemon boots a scenario server on an ephemeral loopback port
// and serves until Close.
func StartLocalDaemon(cfg placemon.ServerConfig) (*LocalDaemon, error) {
	srv, err := placemon.NewScenarioServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("loadgen: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &LocalDaemon{
		URL:    "http://" + ln.Addr().String(),
		Server: srv,
		cancel: cancel,
		done:   make(chan error, 1),
	}
	go func() { d.done <- srv.Serve(ctx, ln) }()
	return d, nil
}

// WriteMetrics renders the daemon's metrics without an HTTP scrape.
func (d *LocalDaemon) WriteMetrics(w io.Writer) error { return d.Server.WriteMetrics(w) }

// Close drains the daemon gracefully: in-flight requests complete
// (bounded by the server's DrainTimeout) before it returns.
func (d *LocalDaemon) Close() error {
	d.cancel()
	select {
	case err := <-d.done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("loadgen: daemon did not drain within 30s")
	}
}
