package loadgen

import (
	"context"
	"testing"
	"time"

	placemon "repro"
	"repro/placemonclient"
)

func testRunnerConfig(url string) Config {
	return Config{
		BaseURL:   url,
		RPS:       200,
		Duration:  time.Second,
		Scenarios: 3,
		Seed:      5,
		Workload:  WorkloadConfig{Topology: "Abovenet", Services: 2, K: 1},
	}
}

// TestRunnerEndToEnd is the subsystem's acceptance test: a full run
// against an in-process daemon must serve every scheduled arrival,
// reconcile with the server's histograms and trace ring, pass the
// default SLO, fail a tightened one, and clean its scenarios up.
func TestRunnerEndToEnd(t *testing.T) {
	d, err := StartLocalDaemon(placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	r, err := New(testRunnerConfig(d.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Arrivals != 200 {
		t.Fatalf("arrivals = %d, want 200", rep.Arrivals)
	}
	if rep.Overall.Count != 200 {
		t.Fatalf("served %d of 200 arrivals", rep.Overall.Count)
	}
	if rep.Overall.Errors != 0 {
		t.Fatalf("%d errors against a healthy local daemon", rep.Overall.Errors)
	}
	if len(rep.Routes) != 2 {
		t.Fatalf("routes = %+v, want observations and diagnosis", rep.Routes)
	}
	if rep.DiagnosisReads != 20 { // every 10th of 200 arrivals
		t.Fatalf("diagnosis reads = %d, want 20", rep.DiagnosisReads)
	}
	var confirmed uint64
	for _, sc := range rep.Scenarios {
		confirmed += sc.ConfirmedReports
		if sc.TracesSeen <= 0 {
			t.Errorf("scenario %s: traces seen = %d, want > 0", sc.Scenario, sc.TracesSeen)
		}
	}
	wantReports := uint64(180 * len(r.wl.Paths)) // 180 ingests, full state each
	if confirmed != wantReports {
		t.Fatalf("confirmed reports = %d, want %d", confirmed, wantReports)
	}

	if rep.CrossCheckError != "" {
		t.Fatalf("cross-check failed: %s", rep.CrossCheckError)
	}
	if len(rep.Reconciliation) == 0 {
		t.Fatal("no reconciliation rows")
	}
	if !rep.ReconciliationOK() {
		t.Fatalf("client/server histograms diverged: %+v", rep.Reconciliation)
	}

	if !rep.Passed() {
		t.Fatalf("default SLO failed: %v", rep.SLOViolations)
	}
	// Tightening the SLO below the observed p99 must flip the verdict.
	tight := SLO{MaxP99Seconds: rep.Overall.P99 / 2}
	if rep.Overall.P99 > 0 {
		if v := tight.Check(rep); len(v) == 0 {
			t.Fatalf("SLO tightened below observed p99 %v still passed", rep.Overall.P99)
		}
	}

	// Scenarios are torn down after the run.
	c, err := placemonclient.New(placemonclient.Config{BaseURL: d.URL})
	if err != nil {
		t.Fatal(err)
	}
	infos, err := c.ListScenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("scenarios left behind: %+v", infos)
	}
}

// TestRunnerSchedulesReproducible: equal configs plan identical arrival
// schedules; a different seed diverges.
func TestRunnerSchedulesReproducible(t *testing.T) {
	cfg := testRunnerConfig("http://127.0.0.1:1") // never dialed
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule().Fingerprint() != b.Schedule().Fingerprint() {
		t.Fatal("equal configs planned different schedules")
	}
	cfg.Seed = 6
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Schedule().Fingerprint() == a.Schedule().Fingerprint() {
		t.Fatal("different seeds planned the same schedule")
	}
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no target":     {},
		"negative rps":  {BaseURL: "http://x", RPS: -1},
		"bad topology":  {BaseURL: "http://x", Workload: WorkloadConfig{Topology: "nosuch"}},
		"bad scenarios": {BaseURL: "http://x", Scenarios: -2},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
