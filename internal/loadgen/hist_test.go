package loadgen

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistBoundsShape(t *testing.T) {
	if len(histBounds) == 0 {
		t.Fatal("no bounds")
	}
	for i := 1; i < len(histBounds); i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, histBounds[i])
		}
	}
	if histBounds[0] > 1e-3 {
		t.Fatalf("first bound %v too coarse for fast requests", histBounds[0])
	}
	if last := histBounds[len(histBounds)-1]; last < 100 {
		t.Fatalf("last bound %v cannot hold a hung request", last)
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Uniform latencies in [0, 1s): every quantile is known analytically;
	// the log-bucketed estimate must land within one bucket's growth
	// factor (30%) of the truth.
	h := NewHist()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Float64())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.5}, {0.95, 0.95}, {0.99, 0.99},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want)/tc.want > 0.31 {
			t.Errorf("q%.2f = %v, want within 31%% of %v", tc.q, got, tc.want)
		}
	}
}

func TestHistOverflowAndMax(t *testing.T) {
	h := NewHist()
	h.Observe(0.001)
	h.Observe(1e6) // past the last bound
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(1); got != 1e6 {
		t.Fatalf("p100 = %v, want the recorded max", got)
	}
	if h.Max() != 1e6 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 100; i++ {
		a.Observe(0.010)
		b.Observe(0.100)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	p50 := a.Quantile(0.5)
	if p50 < 0.005 || p50 > 0.015 {
		t.Fatalf("merged p50 = %v, want ≈10ms", p50)
	}
	p99 := a.Quantile(0.99)
	if p99 < 0.07 || p99 > 0.14 {
		t.Fatalf("merged p99 = %v, want ≈100ms", p99)
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 {
		t.Fatalf("empty quantile = %v, want 0", h.Quantile(0.99))
	}
	h.Observe(-5) // clamps to 0
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative observation not clamped: sum=%v count=%d", h.Sum(), h.Count())
	}
}

// TestHistBoundaryBucket pins the bucket edge semantics: an observation
// exactly equal to a bound lands in that bound's bucket (Prometheus `le`
// semantics), deterministically, and the next representable value above
// it lands in the following bucket. A flapping edge would make merged
// histograms from different workers disagree on identical inputs.
func TestHistBoundaryBucket(t *testing.T) {
	for _, i := range []int{0, 5, len(histBounds) / 2, len(histBounds) - 1} {
		h := NewHist()
		b := histBounds[i]
		h.Observe(b)
		if h.counts[i] != 1 {
			t.Errorf("bound %d (%v): observation on the edge missed its bucket (counts=%v over=%d)",
				i, b, h.counts[i], h.over)
		}
		above := math.Nextafter(b, math.Inf(1))
		h.Observe(above)
		switch {
		case i == len(histBounds)-1:
			if h.over != 1 {
				t.Errorf("bound %d: next-above the last bound should overflow, over=%d", i, h.over)
			}
		default:
			if h.counts[i+1] != 1 {
				t.Errorf("bound %d: next-above landed in bucket counts=%v, want bucket %d",
					i, h.counts, i+1)
			}
		}
	}
}

// TestHistSingletonQuantiles pins the one-observation edge: every
// quantile of a singleton histogram is the observation itself — never a
// panic, never a false 0, never the covering bucket's upper bound.
func TestHistSingletonQuantiles(t *testing.T) {
	for _, v := range []float64{0, 100e-6, 0.0123, 1.7, 500 /* past the last bound */} {
		h := NewHist()
		h.Observe(v)
		for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			if got != v {
				t.Errorf("singleton %v: q%v = %v, want the observation", v, q, got)
			}
		}
	}
	// Two observations: p999's rank covers the larger one, and the
	// recorded max caps interpolation so the answer is exact.
	h := NewHist()
	h.Observe(0.010)
	h.Observe(0.020)
	if got := h.Quantile(0.999); got != 0.020 {
		t.Errorf("two-point p999 = %v, want 0.020", got)
	}
}
