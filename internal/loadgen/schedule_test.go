package loadgen

import (
	"testing"
	"time"
)

func TestBuildScheduleDeterministic(t *testing.T) {
	a, err := BuildSchedule(500, 2*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(500, 2*time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1000 || b.Len() != 1000 {
		t.Fatalf("lens = %d, %d, want 1000", a.Len(), b.Len())
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("offset %d differs: %s vs %s", i, a.Offsets[i], b.Offsets[i])
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := BuildSchedule(500, 2*time.Second, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatalf("different seeds produced the same schedule")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	s, err := BuildSchedule(100, time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	interval := 10 * time.Millisecond
	for i, off := range s.Offsets {
		lo := time.Duration(i) * interval
		if off < lo || off >= lo+interval {
			t.Fatalf("offset %d = %s outside slot [%s, %s)", i, off, lo, lo+interval)
		}
		if i > 0 && off <= s.Offsets[i-1]-interval {
			t.Fatalf("offsets wildly out of order at %d", i)
		}
	}
}

func TestBuildScheduleRejectsBadInputs(t *testing.T) {
	for name, run := range map[string]func() (Schedule, error){
		"zero rps":      func() (Schedule, error) { return BuildSchedule(0, time.Second, 1) },
		"neg rps":       func() (Schedule, error) { return BuildSchedule(-5, time.Second, 1) },
		"zero duration": func() (Schedule, error) { return BuildSchedule(10, 0, 1) },
		"empty plan":    func() (Schedule, error) { return BuildSchedule(0.1, time.Second, 1) },
	} {
		if _, err := run(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
