package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Schedule is a precomputed open-loop arrival plan: monotonically
// increasing offsets from the run's start time.
type Schedule struct {
	// Offsets holds one entry per planned request, sorted ascending.
	Offsets []time.Duration
}

// BuildSchedule plans floor(rps·duration) arrivals across the run: each
// request i is due at i/rps plus a uniform jitter within its own slot,
// drawn from a PRNG seeded with seed. The same (rps, duration, seed)
// triple always yields the same schedule, byte for byte — reproducible
// runs are the whole point.
func BuildSchedule(rps float64, duration time.Duration, seed int64) (Schedule, error) {
	if rps <= 0 {
		return Schedule{}, fmt.Errorf("loadgen: rps must be positive, got %g", rps)
	}
	if duration <= 0 {
		return Schedule{}, fmt.Errorf("loadgen: duration must be positive, got %s", duration)
	}
	n := int(rps * duration.Seconds())
	if n < 1 {
		return Schedule{}, fmt.Errorf("loadgen: rps %g over %s plans zero requests", rps, duration)
	}
	interval := time.Duration(float64(time.Second) / rps)
	rng := rand.New(rand.NewSource(seed))
	offsets := make([]time.Duration, n)
	for i := range offsets {
		jitter := time.Duration(rng.Int63n(int64(interval)))
		offsets[i] = time.Duration(i)*interval + jitter
	}
	return Schedule{Offsets: offsets}, nil
}

// Len returns the number of planned arrivals.
func (s Schedule) Len() int { return len(s.Offsets) }

// Fingerprint hashes the full arrival plan to a short hex string, so two
// runs can assert schedule identity without diffing thousands of offsets.
func (s Schedule) Fingerprint() string {
	h := fnv.New64a()
	var b [8]byte
	for _, off := range s.Offsets {
		v := uint64(off)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
