package loadgen

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP placemond_http_request_duration_seconds Per-route latency.
# TYPE placemond_http_request_duration_seconds histogram
placemond_http_request_duration_seconds_bucket{le="0.01",route="/v1/diagnosis"} 50
placemond_http_request_duration_seconds_bucket{le="0.1",route="/v1/diagnosis"} 90
placemond_http_request_duration_seconds_bucket{le="1",route="/v1/diagnosis"} 100
placemond_http_request_duration_seconds_bucket{le="+Inf",route="/v1/diagnosis"} 100
placemond_http_request_duration_seconds_sum{route="/v1/diagnosis"} 3.5
placemond_http_request_duration_seconds_count{route="/v1/diagnosis"} 100
placemond_http_requests_total{code="200",route="/v1/diagnosis"} 100
placemond_request_duration_seconds_bucket{le="0.5"} 7
placemond_request_duration_seconds_bucket{le="+Inf"} 9
placemond_request_duration_seconds_sum 2
placemond_request_duration_seconds_count 9
`

func TestParseHistogramsPerRoute(t *testing.T) {
	hists, err := ParseHistograms(strings.NewReader(sampleExposition),
		"placemond_http_request_duration_seconds", "route")
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := hists["/v1/diagnosis"]
	if !ok {
		t.Fatalf("route series missing: %v", hists)
	}
	if snap.Count != 100 || snap.Sum != 3.5 {
		t.Fatalf("count=%d sum=%v", snap.Count, snap.Sum)
	}
	if len(snap.Bounds) != 3 || snap.Bounds[2] != 1 || snap.Cum[1] != 90 {
		t.Fatalf("bounds=%v cum=%v", snap.Bounds, snap.Cum)
	}
	// p50 falls in the first bucket (50 of 100 ≤ 10ms): interpolated
	// toward its upper bound.
	if p50 := snap.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want in (0, 0.01]", p50)
	}
	// p95 falls in (0.1, 1].
	if p95 := snap.Quantile(0.95); p95 <= 0.1 || p95 > 1 {
		t.Fatalf("p95 = %v, want in (0.1, 1]", p95)
	}
}

func TestParseHistogramsUnlabeled(t *testing.T) {
	hists, err := ParseHistograms(strings.NewReader(sampleExposition),
		"placemond_request_duration_seconds", "route")
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := hists[""]
	if !ok {
		t.Fatalf("unlabeled series missing: %v", hists)
	}
	if snap.Count != 9 || len(snap.Bounds) != 1 || snap.Cum[0] != 7 {
		t.Fatalf("snap = %+v", snap)
	}
	// Rank past the last finite bound: answer clamps to the bound.
	if q := snap.Quantile(0.99); q != 0.5 {
		t.Fatalf("p99 = %v, want clamp to 0.5", q)
	}
}

func TestParseHistogramsPrefixIsolation(t *testing.T) {
	// placemond_request_duration_seconds shares a prefix with nothing
	// here, but the per-route family must not absorb the counter line
	// (placemond_http_requests_total) or the shorter family.
	hists, err := ParseHistograms(strings.NewReader(sampleExposition),
		"placemond_http_request_duration_seconds", "route")
	if err != nil {
		t.Fatal(err)
	}
	if len(hists) != 1 {
		t.Fatalf("families bled together: %v", hists)
	}
}

func TestReconcileTolerance(t *testing.T) {
	cases := []struct {
		client, server float64
		want           bool
	}{
		{0.010, 0.010, true},
		{0.020, 0.010, true},  // client above server: expected shape
		{0.500, 0.010, false}, // client way above: generator-side latency
		{0.010, 0.200, false}, // server above client: impossible
		{0.001, 0.002, true},  // sub-slack noise
	}
	for _, tc := range cases {
		if got := reconcileTolerance(tc.client, tc.server); got != tc.want {
			t.Errorf("reconcileTolerance(%v, %v) = %v, want %v", tc.client, tc.server, got, tc.want)
		}
	}
}
