package loadgen

import (
	"math"
	"sync"
)

// histBounds are the latency histogram's bucket upper bounds in seconds:
// log-spaced from 100µs to ~2 minutes in ×1.3 steps, fine enough that an
// interpolated p99/p999 is within a bucket's width (≤ 30%) of the truth.
var histBounds = buildLogBounds(100e-6, 130, 1.3)

// buildLogBounds generates ascending bounds lo, lo·growth, lo·growth², …
// up to and including the first bound ≥ hi.
func buildLogBounds(lo, hi, growth float64) []float64 {
	var out []float64
	for b := lo; ; b *= growth {
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}

// Hist is a log-bucketed latency histogram with interpolated quantiles.
// Safe for concurrent use. The zero value is not usable; create with
// NewHist.
type Hist struct {
	mu     sync.Mutex
	counts []uint64 // per bucket of histBounds, non-cumulative
	over   uint64   // observations past the last bound
	count  uint64
	sum    float64
	max    float64
}

// NewHist creates an empty histogram over the package's log bounds.
func NewHist() *Hist {
	return &Hist{counts: make([]uint64, len(histBounds))}
}

// Observe records one latency in seconds; negative values clamp to 0.
func (h *Hist) Observe(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
	for i, b := range histBounds {
		if seconds <= b {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations in seconds.
func (h *Hist) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation in seconds.
func (h *Hist) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	other.mu.Lock()
	counts := append([]uint64(nil), other.counts...)
	over, count, sum, max := other.over, other.count, other.sum, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.over += over
	h.count += count
	h.sum += sum
	if max > h.max {
		h.max = max
	}
}

// Quantile returns the q-quantile (0 < q ≤ 1) in seconds, linearly
// interpolated within the covering bucket; 0 when empty. Observations
// beyond the last bound answer the recorded maximum.
func (h *Hist) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	cum := make([]uint64, len(h.counts))
	total := uint64(0)
	for i, c := range h.counts {
		total += c
		cum[i] = total
	}
	v := quantileFromCum(histBounds, cum, h.count, q)
	if math.IsInf(v, 1) || v > h.max {
		return h.max
	}
	return v
}

// quantileFromCum estimates the q-quantile from cumulative bucket counts
// over ascending finite bounds — the shared core of Hist.Quantile and the
// server-side Prometheus snapshot (HistSnapshot.Quantile). count is the
// total including any observations beyond the last bound; when the rank
// falls past the last bound the answer is +Inf and the caller substitutes
// whatever cap it knows (recorded max, or the last bound).
func quantileFromCum(bounds []float64, cum []uint64, count uint64, q float64) float64 {
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(count)))
	for i, c := range cum {
		if c >= rank {
			lower := 0.0
			prev := uint64(0)
			if i > 0 {
				lower = bounds[i-1]
				prev = cum[i-1]
			}
			width := bounds[i] - lower
			inBucket := c - prev
			if inBucket == 0 {
				return bounds[i]
			}
			frac := float64(rank-prev) / float64(inBucket)
			return lower + width*frac
		}
	}
	return math.Inf(1)
}
