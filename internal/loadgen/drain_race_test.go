package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	placemon "repro"
	"repro/placemonclient"
)

// tenantIngestCounters scrapes placemond_tenant_observations_ingested_total
// per tenant from a metrics exposition.
func tenantIngestCounters(t *testing.T, text []byte) map[string]uint64 {
	t.Helper()
	const name = "placemond_tenant_observations_ingested_total"
	out := map[string]uint64{}
	sc := bufio.NewScanner(bytes.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		labels, value, err := splitSeries(line[len(name):])
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		out[labels["tenant"]] = uint64(value)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunnerDrainRace deletes and recreates scenarios while the Runner is
// mid-flight, then drains the daemon and audits the books: every
// connection report the client got an acknowledgement for must appear in
// the server's per-tenant ingest counters — exactly once, no lost and no
// double-counted batches — even though the tenants were torn down and
// rebuilt under load and the final metrics snapshot raced the last
// in-flight ingests. Run under -race this also exercises the registry
// and tenant lifecycles for data races.
func TestRunnerDrainRace(t *testing.T) {
	d, err := StartLocalDaemon(placemon.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	wcfg := WorkloadConfig{Topology: "Abovenet", Services: 2, K: 1}
	r, err := New(Config{
		BaseURL:        d.URL,
		RPS:            300,
		Duration:       2 * time.Second,
		Scenarios:      4,
		Seed:           3,
		DiagnosisEvery: -1, // ingest-only: the audit is about batches
		SkipCrossCheck: true,
		Workload:       wcfg,
		// Chaos makes real 404s; keep them cheap and keep the breaker out
		// of the way so one dead tenant cannot poison the others' calls.
		Client: placemonclient.Config{MaxAttempts: 2, BreakerThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The chaos goroutine recreates scenarios from the same document the
	// Runner installs.
	wl, err := BuildWorkload(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := placemon.ParseScenarioSpec(wl.Spec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Hold chaos until the Runner has created all its scenarios.
	ready := func() bool { return len(d.Server.Scenarios()) >= 4 }

	stop := make(chan struct{})
	chaosDone := make(chan int)
	go func() {
		cycles := 0
		defer func() { chaosDone <- cycles }()
		for !ready() {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		ids := r.ScenarioIDs()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			id := ids[i%len(ids)]
			if err := d.Server.RemoveScenario(ctx, id); err != nil {
				continue // already gone (teardown race): nothing deleted
			}
			cycles++
			select {
			case <-stop:
			case <-time.After(40 * time.Millisecond):
			}
			// Recreate so the tenant keeps taking (and counting) traffic;
			// errors mean the Runner's teardown already won, which is fine.
			_ = d.Server.AddScenario(id, spec)
		}
	}()

	rep, err := r.Run(ctx)
	close(stop)
	cycles := <-chaosDone
	if err != nil {
		t.Fatal(err)
	}

	// Graceful drain: every in-flight ingest completes (and is counted)
	// before the metrics snapshot below.
	if err := d.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var buf bytes.Buffer
	if err := d.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	counters := tenantIngestCounters(t, buf.Bytes())

	if cycles == 0 {
		t.Fatal("chaos goroutine never deleted a live scenario")
	}
	if rep.Overall.Errors == 0 {
		t.Fatal("no client errors despite scenarios being deleted under load")
	}
	for _, sc := range rep.Scenarios {
		if got := counters[sc.Scenario]; got != sc.ConfirmedReports {
			t.Errorf("scenario %s: server counted %d reports, client confirmed %d",
				sc.Scenario, got, sc.ConfirmedReports)
		}
	}
}
