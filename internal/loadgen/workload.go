package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"

	placemon "repro"
	"repro/placemonclient"
)

// WorkloadConfig declares the monitoring scenario every simulated tenant
// runs: a built-in topology, a placement computed over it, and a failure
// budget for the synthesized outages.
type WorkloadConfig struct {
	// Topology names a built-in topology (default "Abovenet").
	Topology string
	// Services is the number of services to place (default 4); the
	// topology's suggested clients are dealt round-robin across them.
	Services int
	// Alpha is the QoS slack the placement is computed under (default 1).
	Alpha float64
	// K is the failure budget: synthesized failure sets have 0..K nodes,
	// and the scenario diagnoses under the same budget (default 1).
	K int
	// Seed drives the placement algorithm's tie-breaking.
	Seed int64
}

// Workload is a fully built scenario document plus the routing facts
// needed to synthesize observations for it offline: the routed node set
// of every monitored connection, in the server's connection order. One
// Workload is shared by all scenarios of a run (they host identical
// documents under different IDs) — per-scenario state lives in
// BatchSource.
type Workload struct {
	// Spec is the scenario document to PUT, as the daemon accepts it.
	Spec json.RawMessage
	// NumNodes is the scenario network's node count.
	NumNodes int
	// K is the failure budget batches are synthesized under.
	K int
	// Paths[i] lists the routed nodes (endpoints included) of connection
	// i, indexed exactly as the server indexes the scenario's connections.
	Paths [][]int
}

// BuildWorkload places cfg.Services services on the named topology and
// packages the result as a scenario document. The connection order
// matches the daemon's: services in placement order, each service's
// clients in declaration order — so Report indices line up between the
// generator and the server.
func BuildWorkload(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Topology == "" {
		cfg.Topology = "Abovenet"
	}
	if cfg.Services <= 0 {
		cfg.Services = 4
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.K <= 0 {
		cfg.K = 1
	}
	nw, err := placemon.BuildTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	clients := nw.SuggestedClients()
	if len(clients) == 0 {
		return nil, fmt.Errorf("loadgen: topology %s suggests no client nodes", cfg.Topology)
	}
	if cfg.Services > len(clients) {
		cfg.Services = len(clients)
	}
	services := make([]placemon.Service, cfg.Services)
	for i := range services {
		services[i].Name = fmt.Sprintf("svc-%d", i)
	}
	for i, c := range clients {
		s := i % cfg.Services
		services[s].Clients = append(services[s].Clients, c)
	}
	res, err := nw.Place(services, placemon.PlaceConfig{
		Alpha: cfg.Alpha,
		K:     cfg.K,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var paths [][]int
	for s, h := range res.Hosts {
		if h < 0 {
			return nil, fmt.Errorf("loadgen: service %d unplaced under alpha %g", s, cfg.Alpha)
		}
		for _, c := range services[s].Clients {
			paths = append(paths, nw.PathNodes(c, h))
		}
	}
	spec := placemon.ScenarioSpec{
		Topology:  cfg.Topology,
		K:         cfg.K,
		Placement: placemon.NewPlacementFile(cfg.Topology, cfg.Alpha, services, res.Hosts),
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: encode scenario spec: %w", err)
	}
	return &Workload{
		Spec:     raw,
		NumNodes: nw.NumNodes(),
		K:        cfg.K,
		Paths:    paths,
	}, nil
}

// BatchSource synthesizes one scenario's observation batches: each batch
// samples a fresh failure set of 0..K nodes (uniform size, then uniform
// distinct nodes — the failsim sampling model) and reports the full state
// of every connection, down iff its routed path traverses a failed node
// (the paper's measurement model, eq. 1). Deterministic per seed and
// safe for concurrent use.
type BatchSource struct {
	mu     sync.Mutex
	rng    *rand.Rand
	w      *Workload
	failed []bool // scratch, indexed by node
}

// NewBatchSource creates a batch generator over w seeded with seed.
func (w *Workload) NewBatchSource(seed int64) *BatchSource {
	return &BatchSource{
		rng:    rand.New(rand.NewSource(seed)),
		w:      w,
		failed: make([]bool, w.NumNodes),
	}
}

// Next synthesizes the batch due at scenario time t (seconds). The
// returned batch has no BatchID; the client mints the idempotency key.
func (b *BatchSource) Next(t float64) placemonclient.ObservationBatch {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.failed {
		b.failed[i] = false
	}
	// Sample |F| uniform in 0..K, then F itself by rejection — K is tiny
	// relative to the network, so collisions are rare.
	for n := b.rng.Intn(b.w.K + 1); n > 0; {
		v := b.rng.Intn(b.w.NumNodes)
		if !b.failed[v] {
			b.failed[v] = true
			n--
		}
	}
	reports := make([]placemonclient.Report, len(b.w.Paths))
	for i, path := range b.w.Paths {
		up := true
		for _, v := range path {
			if b.failed[v] {
				up = false
				break
			}
		}
		reports[i] = placemonclient.Report{Connection: i, Up: up}
	}
	return placemonclient.ObservationBatch{Time: t, Reports: reports}
}
