package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HistSnapshot is one histogram series scraped from a Prometheus text
// exposition: ascending finite bounds with cumulative counts, plus the
// total count and sum. It is the server-side counterpart of Hist, used
// to reconcile the generator's view of latency with the daemon's.
type HistSnapshot struct {
	Bounds []float64
	Cum    []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile in seconds by linear interpolation
// within the covering bucket; observations past the last finite bound
// answer the last bound (the snapshot does not know the true maximum).
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	v := quantileFromCum(h.Bounds, h.Cum, h.Count, q)
	if math.IsInf(v, 1) {
		if n := len(h.Bounds); n > 0 {
			return h.Bounds[n-1]
		}
		return 0
	}
	return v
}

// ParseHistograms scrapes every series of the named histogram family from
// a Prometheus text exposition, keyed by the value of keyLabel (series
// without that label key under ""). It understands exactly the subset of
// the format internal/metrics writes — `name_bucket{...le="..."} N`,
// `name_sum`, `name_count` — which is all the daemon emits.
func ParseHistograms(r io.Reader, name, keyLabel string) (map[string]HistSnapshot, error) {
	type accum struct {
		bounds []float64
		cum    []uint64
		count  uint64
		sum    float64
	}
	series := map[string]*accum{}
	get := func(key string) *accum {
		a, ok := series[key]
		if !ok {
			a = &accum{}
			series[key] = a
		}
		return a
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		var suffix string
		switch {
		case strings.HasPrefix(rest, "_bucket"):
			suffix, rest = "bucket", rest[len("_bucket"):]
		case strings.HasPrefix(rest, "_sum"):
			suffix, rest = "sum", rest[len("_sum"):]
		case strings.HasPrefix(rest, "_count"):
			suffix, rest = "count", rest[len("_count"):]
		default:
			continue // another family sharing the prefix
		}
		labels, value, err := splitSeries(rest)
		if err != nil {
			return nil, fmt.Errorf("loadgen: parse %s series %q: %w", name, line, err)
		}
		a := get(labels[keyLabel])
		switch suffix {
		case "bucket":
			le := labels["le"]
			if le == "+Inf" {
				continue // implicit: equals _count
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: bad le %q in %q", le, line)
			}
			a.bounds = append(a.bounds, bound)
			a.cum = append(a.cum, uint64(value))
		case "sum":
			a.sum = value
		case "count":
			a.count = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: scan metrics: %w", err)
	}

	out := make(map[string]HistSnapshot, len(series))
	for key, a := range series {
		// The writer emits buckets in ascending order, but sort defensively:
		// reconciliation must not silently misread a reordered exposition.
		idx := make([]int, len(a.bounds))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return a.bounds[idx[i]] < a.bounds[idx[j]] })
		snap := HistSnapshot{
			Bounds: make([]float64, len(idx)),
			Cum:    make([]uint64, len(idx)),
			Count:  a.count,
			Sum:    a.sum,
		}
		for i, j := range idx {
			snap.Bounds[i] = a.bounds[j]
			snap.Cum[i] = a.cum[j]
		}
		out[key] = snap
	}
	return out, nil
}

// splitSeries parses `{k="v",...} value` or ` value` into a label map and
// the sample value.
func splitSeries(s string) (map[string]string, float64, error) {
	labels := map[string]string{}
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") {
		// The closing brace must be found outside quotes: label values
		// legitimately contain braces (route="/v1/scenarios/{id}").
		end := -1
		quoted := false
		for i := 1; i < len(s) && end < 0; i++ {
			switch s[i] {
			case '\\':
				if quoted {
					i++
				}
			case '"':
				quoted = !quoted
			case '}':
				if !quoted {
					end = i
				}
			}
		}
		if end < 0 {
			return nil, 0, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabelPairs(s[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return nil, 0, fmt.Errorf("bad label pair %q", pair)
			}
			val, err := strconv.Unquote(strings.TrimSpace(pair[eq+1:]))
			if err != nil {
				return nil, 0, fmt.Errorf("bad label value in %q: %w", pair, err)
			}
			labels[strings.TrimSpace(pair[:eq])] = val
		}
		s = strings.TrimSpace(s[end+1:])
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad sample value %q", s)
	}
	return labels, v, nil
}

// splitLabelPairs splits `k="v",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// reconcileTolerance decides whether a (client, server) quantile pair is
// consistent. The client measures a strict superset of the server's
// handler time — scheduled-arrival queue wait, connection setup, retries
// — so the client may legitimately read higher; it may not read *lower*
// than the server beyond bucket-resolution noise, and it may not exceed
// the server by more than the slack either (that would mean the
// generator, not the daemon, was the bottleneck).
func reconcileTolerance(client, server float64) bool {
	// Bucket interpolation on both sides is worth ~30% each; 50ms of
	// absolute slack absorbs scheduling noise on loaded CI machines.
	const abs = 0.05
	if server > client*1.5+abs {
		// The daemon claims slower handling than the client saw
		// end-to-end — impossible beyond bucket noise.
		return false
	}
	if client > server*4+abs {
		// Latency was made outside the handler (open-loop queue wait,
		// retries): the generator or the transport is the bottleneck.
		return false
	}
	return true
}
