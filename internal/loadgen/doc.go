// Package loadgen is an open-loop load generator for placemond: it fires
// observation batches and diagnosis reads at a live daemon on a
// precomputed arrival schedule (target RPS with seeded jitter), records
// client-side latency into log-bucketed histograms, cross-checks them
// against the server's own /metrics histograms and /debug/traces ring,
// and grades the run against a declared SLO. The entry point is Runner;
// the `placemon loadgen` subcommand and `make soak-smoke` are thin
// wrappers around it.
//
// The workload shape comes from the paper's monitoring model: each
// ingest request is one batch of end-to-end path observations (the
// binary up/down vector of Section II-B), and each read is a Section
// III-B localization answer. The generator therefore measures the cost
// of the paper's runtime loop — observe, diagnose — at a controlled
// arrival rate, which is what the streaming-ingest benchmarks in
// EXPERIMENTS.md scale up.
//
// Open-loop means arrival times are fixed up front and never wait for
// responses: when the server slows down, requests queue and their
// measured latency grows, instead of the generator silently backing off
// (the coordinated-omission trap of closed-loop "send, wait, repeat"
// drivers). Latency is therefore measured from the scheduled arrival
// time, not from when a worker got around to sending.
package loadgen
