package loadgen

import (
	"testing"

	placemon "repro"
)

func TestBuildWorkload(t *testing.T) {
	wl, err := BuildWorkload(WorkloadConfig{Topology: "AT&T", Services: 3, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wl.K != 2 || wl.NumNodes <= 0 || len(wl.Paths) == 0 {
		t.Fatalf("workload = %+v", wl)
	}
	// The spec must be a document the daemon would accept.
	spec, err := placemon.ParseScenarioSpec(wl.Spec)
	if err != nil {
		t.Fatalf("spec does not round-trip: %v", err)
	}
	if spec.Topology != "AT&T" || spec.K != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	// One connection per (service, client) pair, in document order.
	want := 0
	for _, s := range spec.Placement.Services {
		want += len(s.Clients)
	}
	if len(wl.Paths) != want {
		t.Fatalf("%d paths for %d connections", len(wl.Paths), want)
	}
	for i, p := range wl.Paths {
		if len(p) == 0 {
			t.Fatalf("connection %d has an empty path", i)
		}
	}
}

func TestBatchSourceDeterministicAndConsistent(t *testing.T) {
	wl, err := BuildWorkload(WorkloadConfig{Topology: "Abovenet", K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := wl.NewBatchSource(7), wl.NewBatchSource(7)
	sawDown := false
	for i := 0; i < 50; i++ {
		ba, bb := a.Next(float64(i)), b.Next(float64(i))
		if len(ba.Reports) != len(wl.Paths) {
			t.Fatalf("batch %d has %d reports, want full state %d", i, len(ba.Reports), len(wl.Paths))
		}
		for j := range ba.Reports {
			if ba.Reports[j] != bb.Reports[j] {
				t.Fatalf("batch %d diverges at report %d under equal seeds", i, j)
			}
			if !ba.Reports[j].Up {
				sawDown = true
			}
			if ba.Reports[j].Connection != j {
				t.Fatalf("batch %d report %d has connection %d", i, j, ba.Reports[j].Connection)
			}
		}
	}
	if !sawDown {
		t.Fatal("50 batches under K=2 synthesized no outage at all")
	}
	// A different seed must diverge somewhere.
	c := wl.NewBatchSource(8)
	diverged := false
	d := wl.NewBatchSource(7)
	for i := 0; i < 50 && !diverged; i++ {
		bc, bd := c.Next(float64(i)), d.Next(float64(i))
		for j := range bc.Reports {
			if bc.Reports[j] != bd.Reports[j] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 synthesized identical failure streams")
	}
}
