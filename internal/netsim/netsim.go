package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Outcome describes one completed service request.
type Outcome struct {
	Client, Host graph.NodeID
	// Start and End are virtual times; End is when the response returned
	// to the client or the request died.
	Start, End float64
	// Success reports whether the round trip completed.
	Success bool
	// FailedAt is the node that dropped the request, or -1 on success.
	FailedAt graph.NodeID
}

// Simulator is a single-run discrete-event engine. Create with New,
// schedule failures/recoveries/requests, then Run. A Simulator is not safe
// for concurrent use.
type Simulator struct {
	router      *routing.Router
	perHopDelay float64
	now         float64
	seq         int
	queue       eventHeap
	down        []bool
	outcomes    []Outcome
	ran         bool
}

// New creates a simulator over a routed graph. perHopDelay is the virtual
// time to traverse one hop; it must be positive.
func New(r *routing.Router, perHopDelay float64) (*Simulator, error) {
	if r == nil {
		return nil, fmt.Errorf("netsim: nil router")
	}
	if perHopDelay <= 0 || math.IsNaN(perHopDelay) || math.IsInf(perHopDelay, 0) {
		return nil, fmt.Errorf("netsim: perHopDelay must be positive and finite, got %v", perHopDelay)
	}
	return &Simulator{
		router:      r,
		perHopDelay: perHopDelay,
		down:        make([]bool, r.NumNodes()),
	}, nil
}

// event is a scheduled action. Kind-specific fields are overloaded.
type event struct {
	time float64
	seq  int // insertion order for deterministic same-time ordering
	kind eventKind

	node graph.NodeID // FailNode / RecoverNode

	// request traversal state:
	client, host graph.NodeID
	path         []graph.NodeID
	idx          int // current position on path (outbound 0→len-1, inbound back)
	inbound      bool
	start        float64
}

type eventKind int

const (
	kindFail eventKind = iota + 1
	kindRecover
	kindHop
)

// FailAt schedules node v to go down at time t.
func (s *Simulator) FailAt(t float64, v graph.NodeID) error {
	if err := s.checkSchedule(t, v); err != nil {
		return err
	}
	s.push(&event{time: t, kind: kindFail, node: v})
	return nil
}

// RecoverAt schedules node v to come back up at time t.
func (s *Simulator) RecoverAt(t float64, v graph.NodeID) error {
	if err := s.checkSchedule(t, v); err != nil {
		return err
	}
	s.push(&event{time: t, kind: kindRecover, node: v})
	return nil
}

// RequestAt schedules a service request from client to host departing at
// time t. The request follows the routed path outbound and retraces it
// inbound; it dies at the first down node it touches (endpoints included,
// matching the paper's node-set path semantics).
func (s *Simulator) RequestAt(t float64, client, host graph.NodeID) error {
	if err := s.checkSchedule(t, client); err != nil {
		return err
	}
	if host < 0 || host >= s.router.NumNodes() {
		return fmt.Errorf("netsim: host %d out of range", host)
	}
	path := s.router.PathNodes(client, host)
	if path == nil {
		return fmt.Errorf("netsim: no route from %d to %d", client, host)
	}
	s.push(&event{
		time: t, kind: kindHop,
		client: client, host: host,
		path: path, idx: 0, inbound: false, start: t,
	})
	return nil
}

// ProbeAllAt schedules one request per (client, host) pair at time t —
// the periodic service-layer measurement round.
func (s *Simulator) ProbeAllAt(t float64, clients []graph.NodeID, host graph.NodeID) error {
	for _, c := range clients {
		if err := s.RequestAt(t, c, host); err != nil {
			return err
		}
	}
	return nil
}

// Run processes all scheduled events and returns the request outcomes
// sorted by (start time, client, host). Run can be called once.
func (s *Simulator) Run() ([]Outcome, error) {
	if s.ran {
		return nil, fmt.Errorf("netsim: Run already called")
	}
	s.ran = true
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.time < s.now {
			return nil, fmt.Errorf("netsim: time went backwards (%v < %v)", ev.time, s.now)
		}
		s.now = ev.time
		switch ev.kind {
		case kindFail:
			s.down[ev.node] = true
		case kindRecover:
			s.down[ev.node] = false
		case kindHop:
			s.hop(ev)
		}
	}
	out := append([]Outcome(nil), s.outcomes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Host < out[j].Host
	})
	return out, nil
}

// hop advances a request one node. The request is at path[idx] now.
func (s *Simulator) hop(ev *event) {
	at := ev.path[ev.idx]
	if s.down[at] {
		s.outcomes = append(s.outcomes, Outcome{
			Client: ev.client, Host: ev.host,
			Start: ev.start, End: s.now,
			Success: false, FailedAt: at,
		})
		return
	}
	if !ev.inbound {
		if ev.idx == len(ev.path)-1 {
			// Reached the host; turn around (degenerate single-node paths
			// turn around immediately).
			ev.inbound = true
		}
	}
	if ev.inbound && ev.idx == 0 {
		s.outcomes = append(s.outcomes, Outcome{
			Client: ev.client, Host: ev.host,
			Start: ev.start, End: s.now,
			Success: true, FailedAt: -1,
		})
		return
	}
	if ev.inbound {
		ev.idx--
	} else {
		ev.idx++
	}
	ev.time = s.now + s.perHopDelay
	s.push(ev)
}

func (s *Simulator) push(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

func (s *Simulator) checkSchedule(t float64, v graph.NodeID) error {
	if s.ran {
		return fmt.Errorf("netsim: cannot schedule after Run")
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("netsim: bad time %v", t)
	}
	if v < 0 || v >= s.router.NumNodes() {
		return fmt.Errorf("netsim: node %d out of range", v)
	}
	return nil
}

// eventHeap orders events by (time, seq).
type eventHeap struct {
	events []*event
}

func (h *eventHeap) Len() int { return len(h.events) }

func (h *eventHeap) Less(i, j int) bool {
	if h.events[i].time != h.events[j].time {
		return h.events[i].time < h.events[j].time
	}
	return h.events[i].seq < h.events[j].seq
}

func (h *eventHeap) Swap(i, j int) { h.events[i], h.events[j] = h.events[j], h.events[i] }

func (h *eventHeap) Push(x any) { h.events = append(h.events, x.(*event)) }

func (h *eventHeap) Pop() any {
	last := len(h.events) - 1
	e := h.events[last]
	h.events = h.events[:last]
	return e
}
