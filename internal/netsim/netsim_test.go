package netsim

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

func lineRouter(t testing.TB, n int) *routing.Router {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := lineRouter(t, 3)
	if _, err := New(nil, 1); err == nil {
		t.Fatal("nil router should error")
	}
	if _, err := New(r, 0); err == nil {
		t.Fatal("zero delay should error")
	}
	if _, err := New(r, -1); err == nil {
		t.Fatal("negative delay should error")
	}
}

func TestHealthyRoundTrip(t *testing.T) {
	r := lineRouter(t, 4)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("outcomes = %v", out)
	}
	o := out[0]
	if !o.Success || o.FailedAt != -1 {
		t.Fatalf("expected success, got %+v", o)
	}
	// Round trip over 3 hops each way = 6 hop delays.
	if o.End-o.Start != 6 {
		t.Fatalf("RTT = %v, want 6", o.End-o.Start)
	}
}

func TestDegenerateSelfRequest(t *testing.T) {
	r := lineRouter(t, 2)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(5, 1, 1); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Success || out[0].End != 5 {
		t.Fatalf("self request outcome = %+v", out[0])
	}
}

func TestFailedNodeDropsRequest(t *testing.T) {
	r := lineRouter(t, 4)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	o := out[0]
	if o.Success {
		t.Fatalf("expected failure, got %+v", o)
	}
	if o.FailedAt != 2 {
		t.Fatalf("FailedAt = %d, want 2", o.FailedAt)
	}
}

func TestFailedEndpointDropsRequest(t *testing.T) {
	// Failure of the client itself counts (paper: client nodes are access
	// points whose state matters).
	r := lineRouter(t, 3)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Success || out[0].FailedAt != 0 {
		t.Fatalf("outcome = %+v", out[0])
	}
}

func TestRecoveryRestoresService(t *testing.T) {
	r := lineRouter(t, 3)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.RecoverAt(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(1, 0, 2); err != nil { // during outage
		t.Fatal(err)
	}
	if err := s.RequestAt(20, 0, 2); err != nil { // after recovery
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Success {
		t.Fatal("request during outage should fail")
	}
	if !out[1].Success {
		t.Fatal("request after recovery should succeed")
	}
}

func TestMidFlightFailure(t *testing.T) {
	// Node 2 fails at t=2.5; a request leaving at t=0 passes node 2
	// outbound at t=2 but hits it inbound at t=4 → fails inbound.
	r := lineRouter(t, 4)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(2.5, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequestAt(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Success || out[0].FailedAt != 2 {
		t.Fatalf("outcome = %+v", out[0])
	}
	if out[0].End != 4 {
		t.Fatalf("failure time = %v, want 4 (inbound pass)", out[0].End)
	}
}

func TestSchedulingValidation(t *testing.T) {
	r := lineRouter(t, 3)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(-1, 0); err == nil {
		t.Fatal("negative time should error")
	}
	if err := s.FailAt(0, 9); err == nil {
		t.Fatal("bad node should error")
	}
	if err := s.RequestAt(0, 0, 9); err == nil {
		t.Fatal("bad host should error")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run should error")
	}
	if err := s.RequestAt(0, 0, 1); err == nil {
		t.Fatal("scheduling after Run should error")
	}
}

func TestProbeAllAt(t *testing.T) {
	r := lineRouter(t, 5)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ProbeAllAt(0, []graph.NodeID{0, 4}, 2); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(out))
	}
}

func TestConnectionStatesLatestWins(t *testing.T) {
	outcomes := []Outcome{
		{Client: 0, Host: 2, Start: 0, Success: false},
		{Client: 0, Host: 2, Start: 10, Success: true},
	}
	states := ConnectionStates(outcomes)
	if !states[Pair{Client: 0, Host: 2}] {
		t.Fatal("latest outcome should win")
	}
}

func TestBuildObservationEndToEnd(t *testing.T) {
	// Line 0-1-2-3-4, host at 2, clients 0 and 4, node 1 down: the pair
	// (0,2) fails, (4,2) succeeds. Tomography should prove 2, 3, 4 healthy
	// and narrow the failure to {0, 1}.
	r := lineRouter(t, 5)
	s, err := New(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailAt(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.ProbeAllAt(1, []graph.NodeID{0, 4}, 2); err != nil {
		t.Fatal(err)
	}
	out, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	obs, err := BuildObservation(r, ConnectionStates(out))
	if err != nil {
		t.Fatal(err)
	}
	if !obs.AnyFailure() {
		t.Fatal("expected a failed connection")
	}
	diag, err := localize(t, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(diag, [][]int{{0}, {1}}) {
		t.Fatalf("consistent sets = %v, want [[0] [1]]", diag)
	}
}

func TestBuildObservationNilRouter(t *testing.T) {
	if _, err := BuildObservation(nil, nil); err == nil {
		t.Fatal("nil router should error")
	}
}
