package netsim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/routing"
	"repro/internal/tomography"
)

// Pair identifies a client-host connection.
type Pair struct {
	Client, Host graph.NodeID
}

// ConnectionStates folds request outcomes into per-connection binary
// states, keeping the latest outcome per (client, host) pair — the view a
// service-layer monitor accumulates from ongoing traffic.
func ConnectionStates(outcomes []Outcome) map[Pair]bool {
	states := make(map[Pair]bool, len(outcomes))
	for _, o := range outcomes { // outcomes are start-time sorted by Run
		states[Pair{Client: o.Client, Host: o.Host}] = o.Success
	}
	return states
}

// BuildObservation turns per-connection states into a tomography
// observation: each connection contributes its routed path with state
// failed = !success. The pairs are processed in deterministic
// (client, host) order.
func BuildObservation(r *routing.Router, states map[Pair]bool) (*tomography.Observation, error) {
	if r == nil {
		return nil, fmt.Errorf("netsim: nil router")
	}
	pairs := make([]Pair, 0, len(states))
	for p := range states {
		pairs = append(pairs, p)
	}
	sortPairs(pairs)

	ps := monitor.NewPathSet(r.NumNodes())
	failed := make([]bool, 0, len(pairs))
	for _, p := range pairs {
		path, err := r.Path(p.Client, p.Host)
		if err != nil {
			return nil, fmt.Errorf("netsim: pair (%d,%d): %w", p.Client, p.Host, err)
		}
		if err := ps.Add(path); err != nil {
			return nil, err
		}
		failed = append(failed, !states[p])
	}
	return tomography.NewObservation(ps, failed)
}

func sortPairs(pairs []Pair) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && less(pairs[j], pairs[j-1]); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

func less(a, b Pair) bool {
	if a.Client != b.Client {
		return a.Client < b.Client
	}
	return a.Host < b.Host
}
