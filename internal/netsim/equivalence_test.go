package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/monitor"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Under static failures (no transitions during probing), the event
// simulator's connection states must agree exactly with the analytic
// path-state model the monitoring theory uses: a connection fails iff its
// routed path intersects the failure set. This is the contract that makes
// the simulator a faithful observation generator.
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	topo := topology.MustBuild(topology.Abovenet)
	router, err := routing.New(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.Graph.NumNodes()

	for trial := 0; trial < 20; trial++ {
		// Random static failure set.
		failed := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Intn(6) == 0 {
				failed.Add(v)
			}
		}
		// Random client-host pairs avoiding failed endpoints is NOT
		// required — endpoint failures must be observed too.
		var pairs []Pair
		for i := 0; i < 6; i++ {
			pairs = append(pairs, Pair{Client: rng.Intn(n), Host: rng.Intn(n)})
		}

		sim, err := New(router, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		failed.ForEach(func(v int) bool {
			if err := sim.FailAt(0, v); err != nil {
				t.Fatal(err)
			}
			return true
		})
		seen := map[Pair]bool{}
		for _, p := range pairs {
			if seen[p] {
				continue
			}
			seen[p] = true
			if err := sim.RequestAt(1, p.Client, p.Host); err != nil {
				t.Fatal(err)
			}
		}
		outcomes, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}

		// Analytic states.
		ps := monitor.NewPathSet(n)
		var want []bool
		order := make([]Pair, 0, len(seen))
		for _, p := range pairs {
			if len(order) > 0 && contains(order, p) {
				continue
			}
			order = append(order, p)
			path, err := router.Path(p.Client, p.Host)
			if err != nil {
				t.Fatal(err)
			}
			if err := ps.Add(path); err != nil {
				t.Fatal(err)
			}
			want = append(want, path.Intersects(failed))
		}

		got := ConnectionStates(outcomes)
		for i, p := range order {
			simFailed := !got[p]
			if simFailed != want[i] {
				t.Fatalf("trial %d pair %+v: simulator failed=%v, analytic=%v (failure set %v)",
					trial, p, simFailed, want[i], failed)
			}
		}
	}
}

func contains(pairs []Pair, p Pair) bool {
	for _, q := range pairs {
		if q == p {
			return true
		}
	}
	return false
}
