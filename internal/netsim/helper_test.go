package netsim

import (
	"testing"

	"repro/internal/tomography"
)

// localize runs tomography at k = 1 and returns the consistent sets.
func localize(t testing.TB, obs *tomography.Observation) ([][]int, error) {
	t.Helper()
	d, err := tomography.Localize(obs, 1)
	if err != nil {
		return nil, err
	}
	return d.Consistent, nil
}
