// Package netsim is a deterministic discrete-event simulator of the
// service network. It produces the paper's raw input — binary end-to-end
// connection states between clients and servers (the path states of
// Section II-A, Definition 1) — by actually delivering request/response
// traffic hop by hop over routed paths while nodes fail and recover on a
// schedule.
//
// The point of simulating at the packet level rather than evaluating the
// analytic model directly is falsifiability: the paper's model says a
// monitoring path is down iff some node on it is failed, and the
// simulator reproduces that equivalence (or would expose a divergence)
// from first principles — a request times out exactly when a hop on the
// routed path, or an endpoint, is failed at traversal time. Node
// failures cover link failures too via the link-node splitting
// transformation of Section II-A.
//
// A Simulator schedules requests and failure/recovery events in virtual
// time; Outcome records whether each request completed. ConnectionStates
// folds outcomes into the latest per-connection up/down map, and
// BuildObservation converts that map into the tomography.Observation the
// offline localization (Section III-B) consumes — the same shape a
// production probe fleet would report, so the monitoring stack cannot
// tell simulation from deployment. No wall-clock time is involved, so
// runs are reproducible; oploop and the `placemon simulate` subcommand
// are the main consumers.
package netsim
