package experiments

import (
	"strings"
	"testing"
)

func TestWriteFig4CSV(t *testing.T) {
	p := prepare(t, "Abovenet")
	rows, err := Fig4(p, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteFig4CSV(&buf, "Abovenet", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "topology,alpha,min,q1,median,q3,max\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "Abovenet,0,") || !strings.Contains(out, "Abovenet,1,") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("lines = %d, want 3", lines)
	}
}

func TestWriteFig8CSV(t *testing.T) {
	p := prepare(t, "Abovenet")
	dists, err := Fig8(p, Fig8Config{Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteFig8CSV(&buf, "Abovenet", dists); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Abovenet,GD,") || !strings.Contains(out, "Abovenet,QoS,") {
		t.Fatalf("rows missing:\n%s", out)
	}
	// Algorithms must come out sorted for reproducible diffs.
	gcIdx := strings.Index(out, ",GC,")
	rdIdx := strings.Index(out, ",RD,")
	if gcIdx < 0 || rdIdx < 0 || gcIdx > rdIdx {
		t.Fatalf("algorithms not sorted:\n%s", out)
	}
}

func TestWriteK2CSV(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := K2Sweep(p, K2Config{Alphas: []float64{0.5}, RDSeeds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteK2CSV(&buf, "Abovenet", curves); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Abovenet,GD,0.5,", "Abovenet,QoS,0.5,", "Abovenet,RD,0.5,"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWriteOpLoopCSV(t *testing.T) {
	rows := []OpLoopRow{
		{Algo: AlgoGD, ProbePeriod: 5, Covered: 20, Episodes: 10, Detection: 0.5, Pinpoint: 0.2, MeanDelay: 2.5},
	}
	var buf strings.Builder
	if err := WriteOpLoopCSV(&buf, "Tiscali", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Tiscali,GD,5,20,10,0.5,0.2,2.5") {
		t.Fatalf("row malformed:\n%s", buf.String())
	}
}
