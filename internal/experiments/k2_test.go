package experiments

import (
	"strings"
	"testing"
)

func TestK2Sweep(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := K2Sweep(p, K2Config{Alphas: []float64{0, 1}, RDSeeds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoGD, AlgoQoS, AlgoRD} {
		series := curves[algo]
		if len(series) != 2 {
			t.Fatalf("%s series = %d points", algo, len(series))
		}
		for _, pt := range series {
			if pt.D2 <= 0 {
				t.Fatalf("%s D2 = %d at α=%v", algo, pt.D2, pt.Alpha)
			}
			if pt.IdentifiableSets < 1 {
				t.Fatalf("%s uniquely localizable sets = %d", algo, pt.IdentifiableSets)
			}
		}
	}
	// GD's own objective dominates QoS at relaxed α.
	last := 1
	if curves[AlgoGD][last].D2 < curves[AlgoQoS][last].D2 {
		t.Fatalf("GD D2 %d below QoS %d at α=1",
			curves[AlgoGD][last].D2, curves[AlgoQoS][last].D2)
	}
	text := RenderK2("Abovenet", curves)
	if !strings.Contains(text, "k=2") || !strings.Contains(text, "GD D2") {
		t.Fatalf("render:\n%s", text)
	}
}

func TestK2SweepDefaults(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := K2Sweep(p, K2Config{Alphas: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves[AlgoGD]) != 1 {
		t.Fatal("single-α sweep broken")
	}
}

func TestRenderK2Empty(t *testing.T) {
	if text := RenderK2("x", K2Curves{}); !strings.Contains(text, "k=2") {
		t.Fatal("empty render should still emit a header")
	}
}
