package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// This file is the declarative face of the evaluation: a GridSpec
// (usually parsed from a repo-root experiments.json) names every
// placement run to execute — topology × objective kind × failure budget
// × repeats — plus the loadgen profiles to drive against a daemon
// afterwards, and ValidateCSV checks the regenerated CSVs against the
// golden figures archived in results/. `make paper-runs` executes one
// spec end to end into a timestamped paper_runs/<ts>/ tree.

// GridDefaults are spec-wide knobs a run inherits unless it overrides
// them.
type GridDefaults struct {
	// Seed drives every randomized series (RD placements, failure traces).
	Seed int64 `json:"seed"`
	// RDSeeds is the number of random placements averaged per α.
	RDSeeds int `json:"rdseeds"`
	// Lazy routes the greedy series through the lazy-greedy (CELF) engine.
	Lazy bool `json:"lazy"`
}

// PlacementRun is one cell of the placement grid. Kind selects the
// objective pipeline (and thereby the failure budget k):
//
//	fig4    candidate-set size distribution vs α       (k: n/a)
//	curves  coverage/S1/D1 vs α, Figs. 5-7 pipeline    (k = 1)
//	k2      D2/S2/identifiable-sets sweep              (k = 2)
//	fig8    localization-degree distribution at one α  (k = 1)
//	oploop  operational loop: detection/pinpoint/delay (k = 1)
type PlacementRun struct {
	// Name labels the run; its CSV lands in csv/<name>.csv.
	Name string `json:"name"`
	// Kind is one of fig4, curves, k2, fig8, oploop.
	Kind string `json:"kind"`
	// Topology is a built-in topology name (Abovenet, Tiscali, AT&T).
	Topology string `json:"topology"`
	// Alphas overrides the α grid (fig4, curves, k2).
	Alphas []float64 `json:"alphas,omitempty"`
	// Alpha is the single α of fig8/oploop runs.
	Alpha float64 `json:"alpha,omitempty"`
	// BruteForce adds the BF reference series (curves only; expensive,
	// Abovenet-sized topologies only in practice).
	BruteForce bool `json:"brute_force,omitempty"`
	// Repeats re-executes the run this many times (default 1) and fails
	// unless every repeat reproduces the first byte for byte.
	Repeats int `json:"repeats,omitempty"`
	// Seed/RDSeeds override the spec defaults when non-zero.
	Seed    int64 `json:"seed,omitempty"`
	RDSeeds int   `json:"rdseeds,omitempty"`
	// ProbePeriods/Horizon/MTBF/MTTR tune oploop runs (zero = paper
	// defaults: 2/5/20 probe periods, 5000 horizon, 500 MTBF, 90 MTTR).
	ProbePeriods []float64 `json:"probe_periods,omitempty"`
	Horizon      float64   `json:"horizon,omitempty"`
	MTBF         float64   `json:"mtbf,omitempty"`
	MTTR         float64   `json:"mttr,omitempty"`
	// Golden names a file under the goldens directory (results/) to
	// validate the produced CSV against; empty skips validation.
	Golden string `json:"golden,omitempty"`
}

// LoadgenProfile declares one loadgen run of the grid. The experiments
// package only carries the data; cmd/experiments translates it into an
// internal/loadgen configuration and executes it against an in-process
// daemon.
type LoadgenProfile struct {
	Name      string  `json:"name"`
	RPS       float64 `json:"rps"`
	Duration  string  `json:"duration"`
	Scenarios int     `json:"scenarios,omitempty"`
	Clients   int     `json:"clients,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Topology  string  `json:"topology,omitempty"`
	Services  int     `json:"services,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	K         int     `json:"k,omitempty"`
	// SLO is an inline slo.json document (max_p99_seconds, ...); empty
	// grades against the built-in default SLO.
	SLO json.RawMessage `json:"slo,omitempty"`
}

// GridSpec is the parsed experiments.json.
type GridSpec struct {
	Defaults   GridDefaults     `json:"defaults"`
	Placements []PlacementRun   `json:"placements"`
	Loadgen    []LoadgenProfile `json:"loadgen,omitempty"`
}

var gridKinds = map[string]bool{
	"fig4": true, "curves": true, "k2": true, "fig8": true, "oploop": true,
}

// LoadGridSpec reads and validates an experiments.json file.
func LoadGridSpec(path string) (GridSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return GridSpec{}, err
	}
	spec, err := ParseGridSpec(raw)
	if err != nil {
		return GridSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// ParseGridSpec decodes a grid spec strictly (unknown keys are errors —
// a typoed knob must not silently fall back to a default) and validates
// it.
func ParseGridSpec(raw []byte) (GridSpec, error) {
	var spec GridSpec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return GridSpec{}, fmt.Errorf("experiments: parse grid spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return GridSpec{}, err
	}
	return spec, nil
}

// Validate checks the spec for contradictions before any work starts.
func (g GridSpec) Validate() error {
	if len(g.Placements) == 0 && len(g.Loadgen) == 0 {
		return fmt.Errorf("experiments: grid spec declares no placements and no loadgen profiles")
	}
	seen := map[string]bool{}
	for i, run := range g.Placements {
		if run.Name == "" {
			return fmt.Errorf("experiments: placements[%d]: missing name", i)
		}
		if seen[run.Name] {
			return fmt.Errorf("experiments: duplicate placement run name %q", run.Name)
		}
		seen[run.Name] = true
		if !gridKinds[run.Kind] {
			return fmt.Errorf("experiments: run %q: unknown kind %q (want fig4, curves, k2, fig8, or oploop)", run.Name, run.Kind)
		}
		if _, err := WorkloadByName(run.Topology); err != nil {
			return fmt.Errorf("experiments: run %q: %w", run.Name, err)
		}
		if run.Repeats < 0 {
			return fmt.Errorf("experiments: run %q: negative repeats %d", run.Name, run.Repeats)
		}
		if strings.ContainsAny(run.Name, "/\\") {
			return fmt.Errorf("experiments: run %q: name must be a plain file stem", run.Name)
		}
	}
	seen = map[string]bool{}
	for i, lp := range g.Loadgen {
		if lp.Name == "" {
			return fmt.Errorf("experiments: loadgen[%d]: missing name", i)
		}
		if seen[lp.Name] {
			return fmt.Errorf("experiments: duplicate loadgen profile name %q", lp.Name)
		}
		seen[lp.Name] = true
		if lp.RPS <= 0 {
			return fmt.Errorf("experiments: loadgen %q: rps must be positive", lp.Name)
		}
		if lp.Duration == "" {
			return fmt.Errorf("experiments: loadgen %q: missing duration", lp.Name)
		}
	}
	return nil
}

// seedOf resolves a run's effective seed / RD-seed count.
func (g GridSpec) seedOf(run PlacementRun) (int64, int) {
	seed, rd := g.Defaults.Seed, g.Defaults.RDSeeds
	if run.Seed != 0 {
		seed = run.Seed
	}
	if run.RDSeeds != 0 {
		rd = run.RDSeeds
	}
	if rd < 1 {
		rd = 5
	}
	return seed, rd
}

// ExecutePlacement runs one grid cell and returns its CSV bytes plus the
// rendered text tables (for the per-run log). With Repeats > 1 the run
// re-executes from a fresh Prepared each time and errors unless every
// repeat reproduces the first CSV byte for byte — the reproducibility
// guarantee the golden validation rests on.
func (g GridSpec) ExecutePlacement(run PlacementRun) (csv []byte, text string, err error) {
	repeats := run.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for i := 0; i < repeats; i++ {
		c, tx, err := g.executeOnce(run)
		if err != nil {
			return nil, "", fmt.Errorf("run %s (repeat %d/%d): %w", run.Name, i+1, repeats, err)
		}
		if i == 0 {
			csv, text = c, tx
			continue
		}
		if !bytes.Equal(csv, c) {
			return nil, "", fmt.Errorf("run %s: repeat %d/%d diverged from the first execution", run.Name, i+1, repeats)
		}
	}
	return csv, text, nil
}

func (g GridSpec) executeOnce(run PlacementRun) ([]byte, string, error) {
	w, err := WorkloadByName(run.Topology)
	if err != nil {
		return nil, "", err
	}
	p, err := Prepare(w)
	if err != nil {
		return nil, "", err
	}
	seed, rdSeeds := g.seedOf(run)
	var buf bytes.Buffer
	var text strings.Builder

	switch run.Kind {
	case "fig4":
		alphas := run.Alphas
		if len(alphas) == 0 {
			alphas = DefaultAlphas()
		}
		rows, err := Fig4(p, alphas)
		if err != nil {
			return nil, "", err
		}
		text.WriteString(RenderFig4(run.Topology, rows))
		err = WriteFig4CSV(&buf, run.Topology, rows)
		return buf.Bytes(), text.String(), err

	case "curves":
		curves, err := MonitoringCurves(p, CurvesConfig{
			Alphas:    run.Alphas,
			IncludeBF: run.BruteForce,
			RDSeeds:   rdSeeds,
			Seed:      seed,
			Lazy:      g.Defaults.Lazy,
		})
		if err != nil {
			return nil, "", err
		}
		for _, m := range Measures() {
			text.WriteString(RenderCurves(run.Name, run.Topology, curves, m))
			text.WriteByte('\n')
		}
		err = WriteCurvesCSV(&buf, run.Topology, curves)
		return buf.Bytes(), text.String(), err

	case "k2":
		alphas := run.Alphas
		if len(alphas) == 0 {
			alphas = []float64{0, 0.25, 0.5, 0.75, 1}
		}
		curves, err := K2Sweep(p, K2Config{Alphas: alphas, RDSeeds: rdSeeds, Seed: seed})
		if err != nil {
			return nil, "", err
		}
		text.WriteString(RenderK2(run.Topology, curves))
		err = WriteK2CSV(&buf, run.Topology, curves)
		return buf.Bytes(), text.String(), err

	case "fig8":
		dists, err := Fig8(p, Fig8Config{Alpha: run.Alpha, Seed: seed})
		if err != nil {
			return nil, "", err
		}
		text.WriteString(RenderFig8(run.Topology, run.Alpha, dists))
		err = WriteFig8CSV(&buf, run.Topology, dists)
		return buf.Bytes(), text.String(), err

	case "oploop":
		probes := run.ProbePeriods
		if len(probes) == 0 {
			probes = []float64{2, 5, 20}
		}
		horizon := run.Horizon
		if horizon == 0 {
			horizon = 5000
		}
		mtbf, mttr := run.MTBF, run.MTTR
		if mtbf == 0 {
			mtbf = 500
		}
		if mttr == 0 {
			mttr = 90
		}
		rows, err := OpLoopSweep(p, OpLoopConfig{
			Alpha:        run.Alpha,
			ProbePeriods: probes,
			Horizon:      horizon,
			MTBF:         mtbf,
			MTTR:         mttr,
			Seed:         seed,
		})
		if err != nil {
			return nil, "", err
		}
		text.WriteString(RenderOpLoop(run.Topology, run.Alpha, rows))
		err = WriteOpLoopCSV(&buf, run.Topology, rows)
		return buf.Bytes(), text.String(), err
	}
	return nil, "", fmt.Errorf("unknown kind %q", run.Kind)
}

// ValidateCSV compares a regenerated CSV against a golden file cell by
// cell. Headers must match exactly; numeric cells are compared with a
// small relative tolerance (float formatting, not physics, is the only
// legitimate source of drift); everything else must be string-equal. The
// error lists the first mismatches, not just the first, so a systematic
// drift reads as such.
func ValidateCSV(got, golden []byte) error {
	gotLines := splitCSVLines(got)
	goldLines := splitCSVLines(golden)
	var diffs []string
	if len(gotLines) != len(goldLines) {
		diffs = append(diffs, fmt.Sprintf("line count %d, golden has %d", len(gotLines), len(goldLines)))
	}
	n := len(gotLines)
	if len(goldLines) < n {
		n = len(goldLines)
	}
	for i := 0; i < n && len(diffs) < 6; i++ {
		if gotLines[i] == goldLines[i] {
			continue
		}
		if i == 0 {
			diffs = append(diffs, fmt.Sprintf("header %q, golden %q", gotLines[i], goldLines[i]))
			continue
		}
		gotCells := strings.Split(gotLines[i], ",")
		goldCells := strings.Split(goldLines[i], ",")
		if len(gotCells) != len(goldCells) {
			diffs = append(diffs, fmt.Sprintf("line %d: %d cells, golden has %d", i+1, len(gotCells), len(goldCells)))
			continue
		}
		for j := range gotCells {
			if cellsEqual(gotCells[j], goldCells[j]) {
				continue
			}
			diffs = append(diffs, fmt.Sprintf("line %d col %d: %q, golden %q", i+1, j+1, gotCells[j], goldCells[j]))
			break
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("csv drifted from golden: %s", strings.Join(diffs, "; "))
	}
	return nil
}

// splitCSVLines splits on newlines dropping a single trailing empty line.
func splitCSVLines(b []byte) []string {
	s := strings.ReplaceAll(string(b), "\r\n", "\n")
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// cellsEqual compares two CSV cells: numerically when both parse as
// floats (relative tolerance 1e-9), string-equal otherwise.
func cellsEqual(a, b string) bool {
	if a == b {
		return true
	}
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA != nil || errB != nil {
		return false
	}
	diff := math.Abs(fa - fb)
	scale := math.Max(math.Abs(fa), math.Abs(fb))
	return diff <= 1e-9+1e-9*scale
}

// RunOutcome is one placement run's row in the summary.md table.
type RunOutcome struct {
	Name     string
	Kind     string
	Topology string
	Repeats  int
	Golden   string
	// Status is "ok", "FAIL: ...", or "unvalidated".
	Status string
}

// LoadgenOutcome summarizes one executed loadgen profile.
type LoadgenOutcome struct {
	Name      string
	RPS       float64
	Duration  string
	Arrivals  int
	P50, P99  float64
	ErrorRate float64
	Status    string // "pass" or "FAIL: ..."
}

// WriteSummary writes the human entry point of a paper_runs tree.
func WriteSummary(w io.Writer, ts string, def GridDefaults, runs []RunOutcome, loads []LoadgenOutcome) error {
	fmt.Fprintf(w, "# Paper runs %s\n\n", ts)
	fmt.Fprintf(w, "Defaults: seed=%d rdseeds=%d lazy=%v\n\n", def.Seed, def.RDSeeds, def.Lazy)
	if len(runs) > 0 {
		fmt.Fprintln(w, "## Placement grid")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| run | kind | topology | repeats | golden | validation |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|")
		for _, r := range runs {
			golden := r.Golden
			if golden == "" {
				golden = "—"
			}
			fmt.Fprintf(w, "| %s | %s | %s | %d | %s | %s |\n",
				r.Name, r.Kind, r.Topology, r.Repeats, golden, r.Status)
		}
		fmt.Fprintln(w)
	}
	if len(loads) > 0 {
		fmt.Fprintln(w, "## Load profiles")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| profile | rps | duration | arrivals | p50 | p99 | error rate | SLO |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")
		for _, l := range loads {
			fmt.Fprintf(w, "| %s | %g | %s | %d | %.1fms | %.1fms | %.2f%% | %s |\n",
				l.Name, l.RPS, l.Duration, l.Arrivals, l.P50*1e3, l.P99*1e3, l.ErrorRate*100, l.Status)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Artifacts: csv/ (regenerated figures), logs/ (per-run text tables and loadgen reports), analysis/ (validation.csv, loadgen_*.json).")
	return nil
}
