package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
)

func prepare(t testing.TB, name string) *Prepared {
	t.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPaperWorkloads(t *testing.T) {
	ws := PaperWorkloads()
	if len(ws) != 3 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if ws[2].Topo.Name != "AT&T" || ws[2].NumServices != 7 {
		t.Fatalf("AT&T workload = %+v", ws[2])
	}
	for _, w := range ws {
		if w.ClientsPerService != 3 {
			t.Fatalf("clients per service = %d, want 3", w.ClientsPerService)
		}
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestPrepareRoundRobinClients(t *testing.T) {
	p := prepare(t, "Tiscali")
	if len(p.Services) != 3 {
		t.Fatalf("services = %d", len(p.Services))
	}
	pool := p.Topo.CandidateClients
	// Round-robin: service 0 gets pool[0..2], service 1 pool[3..5], etc.
	for s, svc := range p.Services {
		if len(svc.Clients) != 3 {
			t.Fatalf("service %d has %d clients", s, len(svc.Clients))
		}
		for i, c := range svc.Clients {
			if want := pool[(s*3+i)%len(pool)]; c != want {
				t.Fatalf("service %d client %d = %d, want %d", s, i, c, want)
			}
		}
	}
}

func TestPrepareValidation(t *testing.T) {
	if _, err := Prepare(Workload{Topo: topology.Abovenet, NumServices: 0, ClientsPerService: 3}); err == nil {
		t.Fatal("zero services should error")
	}
	if _, err := Prepare(Workload{Topo: topology.Abovenet, NumServices: 1, ClientsPerService: 0}); err == nil {
		t.Fatal("zero clients should error")
	}
	// More clients per service than the pool offers.
	if _, err := Prepare(Workload{Topo: topology.Abovenet, NumServices: 1, ClientsPerService: 99}); err == nil {
		t.Fatal("oversubscribed clients should error")
	}
}

func TestTableIRender(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	text := RenderTableI(rows)
	for _, want := range []string{"Abovenet", "Tiscali", "AT&T", "108"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table I missing %q:\n%s", want, text)
		}
	}
}

func TestFig4MonotoneMedians(t *testing.T) {
	p := prepare(t, "Abovenet")
	rows, err := Fig4(p, DefaultAlphas())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Summary.Median < rows[i-1].Summary.Median {
			t.Fatalf("median decreased at α=%v", rows[i].Alpha)
		}
	}
	// α = 1 admits every node.
	last := rows[len(rows)-1].Summary
	if last.Min != float64(p.Topo.Graph.NumNodes()) {
		t.Fatalf("α=1 candidate count = %v, want %d", last.Min, p.Topo.Graph.NumNodes())
	}
	if !strings.Contains(RenderFig4("Abovenet", rows), "median") {
		t.Fatal("render missing header")
	}
}

func TestMonitoringCurvesAbovenetWithBF(t *testing.T) {
	p := prepare(t, "Abovenet")
	alphas := []float64{0, 0.5, 1}
	curves, err := MonitoringCurves(p, CurvesConfig{
		Alphas:    alphas,
		IncludeBF: true,
		RDSeeds:   3,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoBF, AlgoGC, AlgoGI, AlgoGD, AlgoQoS, AlgoRD} {
		series, ok := curves[algo]
		if !ok {
			t.Fatalf("missing series %s", algo)
		}
		if len(series) != len(alphas) {
			t.Fatalf("%s series has %d points", algo, len(series))
		}
	}
	for i := range alphas {
		bf, gc, gi, gd := curves[AlgoBF][i], curves[AlgoGC][i], curves[AlgoGI][i], curves[AlgoGD][i]
		// BF dominates each greedy in its own measure.
		if gc.Coverage > bf.Coverage {
			t.Fatalf("α=%v: GC coverage %v beats BF %v", alphas[i], gc.Coverage, bf.Coverage)
		}
		if gi.S1 > bf.S1 {
			t.Fatalf("α=%v: GI S1 %v beats BF %v", alphas[i], gi.S1, bf.S1)
		}
		if gd.D1 > bf.D1 {
			t.Fatalf("α=%v: GD D1 %v beats BF %v", alphas[i], gd.D1, bf.D1)
		}
		// Theorem 11: greedy within half of optimum for the submodular two.
		if gc.Coverage < bf.Coverage/2 {
			t.Fatalf("α=%v: GC below 1/2 BF", alphas[i])
		}
		if gd.D1 < bf.D1/2 {
			t.Fatalf("α=%v: GD below 1/2 BF", alphas[i])
		}
	}
	// The paper's headline: at relaxed QoS, GD beats QoS in
	// distinguishability.
	last := len(alphas) - 1
	if curves[AlgoGD][last].D1 <= curves[AlgoQoS][last].D1 {
		t.Fatalf("GD D1 %v should exceed QoS D1 %v at α=1",
			curves[AlgoGD][last].D1, curves[AlgoQoS][last].D1)
	}
}

func TestMonitoringCurvesDefaults(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := MonitoringCurves(p, CurvesConfig{Alphas: []float64{0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := curves[AlgoBF]; ok {
		t.Fatal("BF should be absent by default")
	}
	if len(curves[AlgoGD]) != 1 {
		t.Fatal("single-α sweep broken")
	}
}

// TestMonitoringCurvesLazyIdentical pins the CELF wiring: routing the
// greedy series through GreedyLazy must reproduce the exact curves of
// the eager engine (the lazy evaluator only skips redundant marginal
// evaluations; it never changes the selected placement).
func TestMonitoringCurvesLazyIdentical(t *testing.T) {
	p := prepare(t, "Abovenet")
	cfg := CurvesConfig{Alphas: []float64{0, 0.5, 1}, RDSeeds: 1, Seed: 1}
	eager, err := MonitoringCurves(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Lazy = true
	lazy, err := MonitoringCurves(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eager, lazy) {
		t.Fatalf("lazy curves differ from eager:\nlazy:  %+v\neager: %+v", lazy, eager)
	}
}

func TestRenderCurvesAndCSV(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := MonitoringCurves(p, CurvesConfig{Alphas: []float64{0, 1}, RDSeeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := RenderCurves("Fig. 5", "Abovenet", curves, MeasureD1)
	if !strings.Contains(text, "GD") || !strings.Contains(text, "distinguishability") {
		t.Fatalf("render output:\n%s", text)
	}
	var csv strings.Builder
	if err := WriteCurvesCSV(&csv, "Abovenet", curves); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "Abovenet,GD,0,") {
		t.Fatalf("csv output:\n%s", csv.String())
	}
	if len(Measures()) != 3 {
		t.Fatal("Measures should list 3 panels")
	}
}

func TestFig8Distributions(t *testing.T) {
	p := prepare(t, "Abovenet")
	dists, err := Fig8(p, Fig8Config{Alpha: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoGC, AlgoGI, AlgoGD, AlgoQoS, AlgoRD} {
		d, ok := dists[algo]
		if !ok {
			t.Fatalf("missing distribution for %s", algo)
		}
		sum := 0.0
		for _, f := range d.Frac {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s distribution does not sum to 1: %v", algo, sum)
		}
		// N + 1 nodes of Q (v0 included).
		if d.N != p.Topo.Graph.NumNodes()+1 {
			t.Fatalf("%s distribution over %d samples, want %d", algo, d.N, p.Topo.Graph.NumNodes()+1)
		}
	}
	text := RenderFig8("Abovenet", 0.6, dists)
	if !strings.Contains(text, "degree") {
		t.Fatalf("Fig8 render:\n%s", text)
	}
}
