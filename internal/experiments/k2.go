package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/monitor"
	"repro/internal/placement"
)

// This file is the k = 2 extension experiment (DESIGN.md's general-k
// coverage): the paper evaluates at k = 1 but defines every measure for
// arbitrary k; here we rerun the α sweep on the smallest topology with
// exact |D_2| / |S_2| enumeration, plus the generalized failure-set
// identifiability of the remark after Theorem 19.

// K2Point is one (α, algorithm) cell of the k = 2 sweep.
type K2Point struct {
	Alpha float64
	// D2 is |D_2(P)| and S2 is |S_2(P)|, both exact.
	D2 int64
	S2 int
	// IdentifiableSets counts failure sets F ∈ F_2 whose path-state
	// signature is unique (uniquely localizable failures).
	IdentifiableSets int64
}

// K2Curves maps algorithms to their α-series.
type K2Curves map[Algo][]K2Point

// K2Config tunes the sweep. Only GD (driven by the k = 2 objective), QoS,
// and RD are compared: BF over the exact k = 2 objective is prohibitively
// slow and GI at k = 2 adds nothing beyond the identifiability column.
type K2Config struct {
	Alphas  []float64
	RDSeeds int
	Seed    int64
}

// K2Sweep runs the k = 2 experiment on a prepared workload (use Abovenet;
// the enumeration is Θ(|N|² |P|) per evaluation).
func K2Sweep(p *Prepared, cfg K2Config) (K2Curves, error) {
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = []float64{0, 0.5, 1}
	}
	if cfg.RDSeeds < 1 {
		cfg.RDSeeds = 3
	}
	dist2, err := placement.NewDistinguishability(2)
	if err != nil {
		return nil, err
	}
	curves := K2Curves{AlgoGD: nil, AlgoQoS: nil, AlgoRD: nil}

	for _, alpha := range cfg.Alphas {
		inst, err := p.Instance(alpha)
		if err != nil {
			return nil, err
		}
		point := func(pl placement.Placement) (K2Point, error) {
			ps, err := inst.PathSet(pl)
			if err != nil {
				return K2Point{}, err
			}
			return K2Point{
				Alpha:            alpha,
				D2:               monitor.DistinguishabilityK(ps, 2),
				S2:               monitor.IdentifiabilityK(ps, 2),
				IdentifiableSets: monitor.IdentifiableFailureSetsK(ps, 2),
			}, nil
		}

		gd, err := placement.Greedy(inst, dist2)
		if err != nil {
			return nil, fmt.Errorf("experiments: k2 GD at α=%g: %w", alpha, err)
		}
		pt, err := point(gd.Placement)
		if err != nil {
			return nil, err
		}
		curves[AlgoGD] = append(curves[AlgoGD], pt)

		qres, err := placement.QoS(inst, dist2)
		if err != nil {
			return nil, err
		}
		pt, err = point(qres.Placement)
		if err != nil {
			return nil, err
		}
		curves[AlgoQoS] = append(curves[AlgoQoS], pt)

		var acc K2Point
		acc.Alpha = alpha
		for seed := 0; seed < cfg.RDSeeds; seed++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(seed)))
			rres, err := placement.Random(inst, dist2, rng)
			if err != nil {
				return nil, err
			}
			rpt, err := point(rres.Placement)
			if err != nil {
				return nil, err
			}
			acc.D2 += rpt.D2
			acc.S2 += rpt.S2
			acc.IdentifiableSets += rpt.IdentifiableSets
		}
		acc.D2 /= int64(cfg.RDSeeds)
		acc.S2 /= cfg.RDSeeds
		acc.IdentifiableSets /= int64(cfg.RDSeeds)
		curves[AlgoRD] = append(curves[AlgoRD], acc)
	}
	return curves, nil
}

// RenderK2 renders the k = 2 sweep.
func RenderK2(name string, curves K2Curves) string {
	out := fmt.Sprintf("Extension (k=2, %s): exact |D_2|, |S_2|, and uniquely localizable failure sets\n", name)
	out += fmt.Sprintf("%6s", "α")
	algos := []Algo{AlgoGD, AlgoQoS, AlgoRD}
	for _, a := range algos {
		out += fmt.Sprintf(" | %8s %8s %8s", a+" D2", a+" S2", a+" uniq")
	}
	out += "\n"
	if len(curves[AlgoGD]) == 0 {
		return out
	}
	for i := range curves[AlgoGD] {
		out += fmt.Sprintf("%6.2f", curves[AlgoGD][i].Alpha)
		for _, a := range algos {
			pt := curves[a][i]
			out += fmt.Sprintf(" | %8d %8d %8d", pt.D2, pt.S2, pt.IdentifiableSets)
		}
		out += "\n"
	}
	return out
}
