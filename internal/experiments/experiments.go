// Package experiments reproduces the paper's evaluation (Section VI):
// Table I and Figures 4 through 8. Each driver returns typed rows so the
// CLI, the benchmarks, and EXPERIMENTS.md generation all share one
// implementation; render helpers produce aligned text tables and CSV.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Workload is one evaluation configuration of Section VI-A: a topology
// plus the service population.
type Workload struct {
	Topo              topology.Spec
	NumServices       int
	ClientsPerService int
}

// PaperWorkloads returns the three evaluation workloads. Clients per
// service is fixed at 3; Tiscali gets 3 services and AT&T 7 as in the
// paper. Abovenet's count is garbled in the available text; we use 3 so
// the BF reference stays tractable (see DESIGN.md substitutions).
func PaperWorkloads() []Workload {
	return []Workload{
		{Topo: topology.Abovenet, NumServices: 3, ClientsPerService: 3},
		{Topo: topology.Tiscali, NumServices: 3, ClientsPerService: 3},
		{Topo: topology.ATT, NumServices: 7, ClientsPerService: 3},
	}
}

// WorkloadByName returns the paper workload for a topology name.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range PaperWorkloads() {
		if w.Topo.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("experiments: no workload for topology %q", name)
}

// DefaultAlphas is the α grid of the evaluation figures.
func DefaultAlphas() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// Prepared bundles everything derived from a workload that does not
// depend on α: the built topology and its router.
type Prepared struct {
	Workload Workload
	Topo     *topology.Topology
	Router   *routing.Router
	Services []placement.Service

	// mu guards instances, the per-α instance cache. Instances are
	// immutable once constructed, so sharing them across figures (and
	// benchmark iterations) is safe.
	mu        sync.Mutex
	instances map[float64]*placement.Instance
}

// Prepare builds the topology, router, and the round-robin service/client
// assignment of Section VI-A: clients for each service are selected in a
// round-robin fashion among candidate clients.
func Prepare(w Workload) (*Prepared, error) {
	if w.NumServices < 1 || w.ClientsPerService < 1 {
		return nil, fmt.Errorf("experiments: bad workload %+v", w)
	}
	topo, err := topology.Build(w.Topo)
	if err != nil {
		return nil, err
	}
	r, err := routing.New(topo.Graph)
	if err != nil {
		return nil, err
	}
	services := make([]placement.Service, w.NumServices)
	next := 0
	pool := topo.CandidateClients
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: topology %s has no candidate clients", w.Topo.Name)
	}
	for s := range services {
		clientSet := make([]graph.NodeID, 0, w.ClientsPerService)
		seen := map[graph.NodeID]bool{}
		for len(clientSet) < w.ClientsPerService {
			c := pool[next%len(pool)]
			next++
			if !seen[c] {
				seen[c] = true
				clientSet = append(clientSet, c)
			}
			if len(seen) == len(pool) && len(clientSet) < w.ClientsPerService {
				return nil, fmt.Errorf("experiments: only %d distinct clients available, need %d",
					len(pool), w.ClientsPerService)
			}
		}
		services[s] = placement.Service{
			Name:    fmt.Sprintf("%s-s%d", w.Topo.Name, s),
			Clients: clientSet,
		}
	}
	return &Prepared{Workload: w, Topo: topo, Router: r, Services: services}, nil
}

// Instance returns the placement instance for one α, building it on
// first use and caching it after: every figure of a sweep (and every
// benchmark iteration) shares the same immutable instance, so the α-grid
// is routed and candidate-profiled exactly once.
func (p *Prepared) Instance(alpha float64) (*placement.Instance, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if inst, ok := p.instances[alpha]; ok {
		return inst, nil
	}
	inst, err := placement.NewInstance(p.Router, p.Services, alpha)
	if err != nil {
		return nil, err
	}
	if p.instances == nil {
		p.instances = make(map[float64]*placement.Instance)
	}
	p.instances[alpha] = inst
	return inst, nil
}

// ---- Table I -----------------------------------------------------------

// TableI recomputes the Table I characteristics from the built graphs.
func TableI() ([]topology.TableIRow, error) { return topology.TableI() }

// ---- Fig. 4: candidate-set size box plots -------------------------------

// Fig4Row is one α-point of the Fig. 4 box plot: the distribution of
// per-service candidate-host counts.
type Fig4Row struct {
	Alpha   float64
	Summary stats.FiveNumber
}

// Fig4 sweeps α and summarizes |H_s| across services.
func Fig4(p *Prepared, alphas []float64) ([]Fig4Row, error) {
	rows := make([]Fig4Row, 0, len(alphas))
	for _, alpha := range alphas {
		inst, err := p.Instance(alpha)
		if err != nil {
			return nil, err
		}
		counts := make([]float64, inst.NumServices())
		for s := range counts {
			counts[s] = float64(len(inst.Candidates(s)))
		}
		summary, err := stats.Summarize(counts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{Alpha: alpha, Summary: summary})
	}
	return rows, nil
}

// ---- Figs. 5-7: monitoring performance vs α ------------------------------

// Algo identifies an algorithm series in the figures.
type Algo string

// The algorithm series of Figs. 5-7.
const (
	AlgoBF  Algo = "BF"  // brute-force optimum (per measure)
	AlgoGC  Algo = "GC"  // greedy coverage maximization
	AlgoGI  Algo = "GI"  // greedy identifiability maximization
	AlgoGD  Algo = "GD"  // greedy distinguishability maximization
	AlgoQoS Algo = "QoS" // best-QoS placement
	AlgoRD  Algo = "RD"  // random placement within candidates
)

// CurvePoint is one (α, algorithm) cell of Figs. 5-7, holding all three
// measures of the algorithm's placement. For BF each measure is the
// optimum of that measure (computed separately, per the paper's footnote).
type CurvePoint struct {
	Alpha    float64
	Coverage float64
	S1       float64
	D1       float64
}

// Curves maps each algorithm to its α-indexed series.
type Curves map[Algo][]CurvePoint

// CurvesConfig tunes the Figs. 5-7 sweep.
type CurvesConfig struct {
	Alphas []float64
	// IncludeBF adds the brute-force series (Abovenet only in the paper).
	IncludeBF bool
	// BFBudget caps the brute-force search space (0 = package default).
	BFBudget int64
	// RDSeeds is the number of random placements averaged per α (≥ 1).
	RDSeeds int
	// Seed drives the RD series.
	Seed int64
	// Lazy routes the greedy series (GC, GI, GD) through the lazy-greedy
	// (CELF) engine. The curves are identical — the engine is bit-for-bit
	// equivalent for submodular objectives and falls back to exact greedy
	// for identifiability — only the evaluation count drops.
	Lazy bool
}

// MonitoringCurves reproduces the data behind Figs. 5 (Abovenet, with BF),
// 6 (Tiscali), and 7 (AT&T).
func MonitoringCurves(p *Prepared, cfg CurvesConfig) (Curves, error) {
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = DefaultAlphas()
	}
	if cfg.RDSeeds < 1 {
		cfg.RDSeeds = 5
	}
	coverage := placement.NewCoverage()
	ident, err := placement.NewIdentifiability(1)
	if err != nil {
		return nil, err
	}
	dist, err := placement.NewDistinguishability(1)
	if err != nil {
		return nil, err
	}

	curves := Curves{}
	algos := []Algo{AlgoGC, AlgoGI, AlgoGD, AlgoQoS, AlgoRD}
	if cfg.IncludeBF {
		algos = append([]Algo{AlgoBF}, algos...)
	}
	for _, a := range algos {
		curves[a] = make([]CurvePoint, 0, len(cfg.Alphas))
	}

	for _, alpha := range cfg.Alphas {
		inst, err := p.Instance(alpha)
		if err != nil {
			return nil, err
		}
		evalMetrics := func(pl placement.Placement) (CurvePoint, error) {
			m, err := inst.Evaluate(pl)
			if err != nil {
				return CurvePoint{}, err
			}
			return CurvePoint{
				Alpha:    alpha,
				Coverage: float64(m.Coverage),
				S1:       float64(m.S1),
				D1:       float64(m.D1),
			}, nil
		}

		if cfg.IncludeBF {
			pt := CurvePoint{Alpha: alpha}
			for _, spec := range []struct {
				obj placement.Objective
				set func(*CurvePoint, float64)
			}{
				{coverage, func(c *CurvePoint, v float64) { c.Coverage = v }},
				{ident, func(c *CurvePoint, v float64) { c.S1 = v }},
				{dist, func(c *CurvePoint, v float64) { c.D1 = v }},
			} {
				res, err := placement.BruteForce(inst, spec.obj, cfg.BFBudget)
				if err != nil {
					return nil, fmt.Errorf("experiments: BF at α=%g: %w", alpha, err)
				}
				spec.set(&pt, res.Value)
			}
			curves[AlgoBF] = append(curves[AlgoBF], pt)
		}

		for _, run := range []struct {
			algo Algo
			obj  placement.Objective
		}{
			{AlgoGC, coverage},
			{AlgoGI, ident},
			{AlgoGD, dist},
		} {
			greedy := placement.Greedy
			if cfg.Lazy {
				greedy = placement.GreedyLazy
			}
			res, err := greedy(inst, run.obj)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at α=%g: %w", run.algo, alpha, err)
			}
			pt, err := evalMetrics(res.Placement)
			if err != nil {
				return nil, err
			}
			curves[run.algo] = append(curves[run.algo], pt)
		}

		qres, err := placement.QoS(inst, coverage)
		if err != nil {
			return nil, fmt.Errorf("experiments: QoS at α=%g: %w", alpha, err)
		}
		pt, err := evalMetrics(qres.Placement)
		if err != nil {
			return nil, err
		}
		curves[AlgoQoS] = append(curves[AlgoQoS], pt)

		// RD: average the three measures over seeds.
		var acc CurvePoint
		acc.Alpha = alpha
		for seed := 0; seed < cfg.RDSeeds; seed++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(seed)))
			rres, err := placement.Random(inst, coverage, rng)
			if err != nil {
				return nil, fmt.Errorf("experiments: RD at α=%g: %w", alpha, err)
			}
			rpt, err := evalMetrics(rres.Placement)
			if err != nil {
				return nil, err
			}
			acc.Coverage += rpt.Coverage
			acc.S1 += rpt.S1
			acc.D1 += rpt.D1
		}
		acc.Coverage /= float64(cfg.RDSeeds)
		acc.S1 /= float64(cfg.RDSeeds)
		acc.D1 /= float64(cfg.RDSeeds)
		curves[AlgoRD] = append(curves[AlgoRD], acc)
	}
	return curves, nil
}

// ---- Fig. 8: degree-of-uncertainty distribution --------------------------

// Fig8Config tunes the Fig. 8 experiment.
type Fig8Config struct {
	Alpha float64
	Seed  int64 // RD seed
}

// Fig8 computes, for each algorithm's placement at the given α, the
// distribution of the degree of uncertainty over all nodes of the
// equivalence graph Q (v0 included), reproducing Fig. 8 (AT&T, α = 0.6 in
// the paper).
func Fig8(p *Prepared, cfg Fig8Config) (map[Algo]stats.Distribution, error) {
	inst, err := p.Instance(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	coverage := placement.NewCoverage()
	ident, err := placement.NewIdentifiability(1)
	if err != nil {
		return nil, err
	}
	dist, err := placement.NewDistinguishability(1)
	if err != nil {
		return nil, err
	}

	placements := map[Algo]placement.Placement{}
	for _, run := range []struct {
		algo Algo
		obj  placement.Objective
	}{
		{AlgoGC, coverage},
		{AlgoGI, ident},
		{AlgoGD, dist},
	} {
		res, err := placement.Greedy(inst, run.obj)
		if err != nil {
			return nil, err
		}
		placements[run.algo] = res.Placement
	}
	qres, err := placement.QoS(inst, coverage)
	if err != nil {
		return nil, err
	}
	placements[AlgoQoS] = qres.Placement
	rres, err := placement.Random(inst, coverage, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	placements[AlgoRD] = rres.Placement

	out := make(map[Algo]stats.Distribution, len(placements))
	for algo, pl := range placements {
		d, err := degreeDistribution(inst, pl)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig8 %s: %w", algo, err)
		}
		out[algo] = d
	}
	return out, nil
}

func degreeDistribution(inst *placement.Instance, pl placement.Placement) (stats.Distribution, error) {
	ps, err := inst.PathSet(pl)
	if err != nil {
		return stats.Distribution{}, err
	}
	pt := newPartition(ps)
	degrees := pt.Degrees()
	counts := make([]int, inst.NumNodes()+1)
	for _, d := range degrees {
		counts[d]++
	}
	return stats.NewDistribution(counts)
}
