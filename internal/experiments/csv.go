package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// CSV writers for the remaining artifacts, so every figure has a
// machine-readable form next to its rendered table.

// WriteFig4CSV writes topology,alpha,min,q1,median,q3,max rows.
func WriteFig4CSV(w io.Writer, name string, rows []Fig4Row) error {
	if _, err := fmt.Fprintln(w, "topology,alpha,min,q1,median,q3,max"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g,%g\n",
			name, r.Alpha, r.Summary.Min, r.Summary.Q1, r.Summary.Median, r.Summary.Q3, r.Summary.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig8CSV writes topology,algorithm,degree,fraction rows for the
// union of supports, sorted by (algorithm, degree).
func WriteFig8CSV(w io.Writer, name string, dists map[Algo]stats.Distribution) error {
	if _, err := fmt.Fprintln(w, "topology,algorithm,degree,fraction"); err != nil {
		return err
	}
	var algos []string
	for a := range dists {
		algos = append(algos, string(a))
	}
	sort.Strings(algos)
	for _, a := range algos {
		d := dists[Algo(a)]
		for _, deg := range d.Support() {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g\n", name, a, deg, d.Frac[deg]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteK2CSV writes topology,algorithm,alpha,d2,s2,identifiable_sets rows.
func WriteK2CSV(w io.Writer, name string, curves K2Curves) error {
	if _, err := fmt.Fprintln(w, "topology,algorithm,alpha,d2,s2,identifiable_sets"); err != nil {
		return err
	}
	for _, a := range []Algo{AlgoGD, AlgoQoS, AlgoRD} {
		for _, pt := range curves[a] {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%d,%d,%d\n",
				name, a, pt.Alpha, pt.D2, pt.S2, pt.IdentifiableSets); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteOpLoopCSV writes topology,algorithm,probe_period,covered,episodes,
// detection,pinpoint,mean_delay rows.
func WriteOpLoopCSV(w io.Writer, name string, rows []OpLoopRow) error {
	if _, err := fmt.Fprintln(w, "topology,algorithm,probe_period,covered,episodes,detection,pinpoint,mean_delay"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%d,%d,%g,%g,%g\n",
			name, r.Algo, r.ProbePeriod, r.Covered, r.Episodes, r.Detection, r.Pinpoint, r.MeanDelay); err != nil {
			return err
		}
	}
	return nil
}
