package experiments

import (
	"strings"
	"testing"
)

func TestParseGridSpecRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"empty spec", `{}`, "no placements"},
		{"unknown key", `{"placements":[{"name":"a","kind":"fig4","topology":"Abovenet","bogus":1}]}`, "bogus"},
		{"unknown kind", `{"placements":[{"name":"a","kind":"fig9","topology":"Abovenet"}]}`, "unknown kind"},
		{"unknown topology", `{"placements":[{"name":"a","kind":"fig4","topology":"nosuch"}]}`, "no workload"},
		{"missing name", `{"placements":[{"kind":"fig4","topology":"Abovenet"}]}`, "missing name"},
		{"duplicate name", `{"placements":[{"name":"a","kind":"fig4","topology":"Abovenet"},{"name":"a","kind":"fig4","topology":"Tiscali"}]}`, "duplicate"},
		{"path in name", `{"placements":[{"name":"../a","kind":"fig4","topology":"Abovenet"}]}`, "file stem"},
		{"negative repeats", `{"placements":[{"name":"a","kind":"fig4","topology":"Abovenet","repeats":-1}]}`, "negative repeats"},
		{"loadgen no rps", `{"loadgen":[{"name":"l","duration":"1s"}]}`, "rps"},
		{"loadgen no duration", `{"loadgen":[{"name":"l","rps":10}]}`, "duration"},
		{"loadgen dup", `{"loadgen":[{"name":"l","rps":10,"duration":"1s"},{"name":"l","rps":10,"duration":"1s"}]}`, "duplicate"},
	}
	for _, tc := range cases {
		_, err := ParseGridSpec([]byte(tc.raw))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseGridSpecValid(t *testing.T) {
	raw := `{
		"defaults": {"seed": 7, "rdseeds": 3, "lazy": true},
		"placements": [
			{"name": "a", "kind": "fig4", "topology": "Abovenet", "golden": "fig4_abovenet.csv"},
			{"name": "b", "kind": "curves", "topology": "Tiscali", "repeats": 2}
		],
		"loadgen": [
			{"name": "smoke", "rps": 100, "duration": "2s", "slo": {"max_p99_seconds": 1}}
		]
	}`
	spec, err := ParseGridSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Defaults.Seed != 7 || spec.Defaults.RDSeeds != 3 || !spec.Defaults.Lazy {
		t.Fatalf("defaults misparsed: %+v", spec.Defaults)
	}
	if len(spec.Placements) != 2 || len(spec.Loadgen) != 1 {
		t.Fatalf("wrong counts: %+v", spec)
	}
	seed, rd := spec.seedOf(spec.Placements[0])
	if seed != 7 || rd != 3 {
		t.Fatalf("seedOf = (%d, %d), want (7, 3)", seed, rd)
	}
}

// TestExecutePlacementReproducible: the repeats machinery accepts a
// deterministic run, and the produced CSV carries the expected header.
func TestExecutePlacementReproducible(t *testing.T) {
	spec := GridSpec{Defaults: GridDefaults{Seed: 1, RDSeeds: 2, Lazy: true}}
	run := PlacementRun{Name: "fig4", Kind: "fig4", Topology: "Abovenet", Repeats: 3}
	csv, text, err := spec.ExecutePlacement(run)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "topology,alpha,min,") {
		t.Fatalf("unexpected csv header:\n%s", csv)
	}
	if !strings.Contains(text, "Abovenet") {
		t.Fatalf("rendered text missing topology:\n%s", text)
	}

	// A second independent execution matches the first byte for byte.
	csv2, _, err := spec.ExecutePlacement(run)
	if err != nil {
		t.Fatal(err)
	}
	if string(csv) != string(csv2) {
		t.Fatal("two executions of the same run differ")
	}
}

// TestExecutePlacementKinds smoke-runs every remaining kind on the
// smallest topology that supports it.
func TestExecutePlacementKinds(t *testing.T) {
	spec := GridSpec{Defaults: GridDefaults{Seed: 1, RDSeeds: 1, Lazy: true}}
	runs := []PlacementRun{
		{Name: "c", Kind: "curves", Topology: "Abovenet", Alphas: []float64{0, 1}},
		{Name: "k", Kind: "k2", Topology: "Abovenet", Alphas: []float64{0, 1}},
		{Name: "f8", Kind: "fig8", Topology: "Abovenet", Alpha: 0.6},
		{Name: "op", Kind: "oploop", Topology: "Abovenet", Alpha: 0.6,
			ProbePeriods: []float64{5}, Horizon: 500},
	}
	for _, run := range runs {
		csv, _, err := spec.ExecutePlacement(run)
		if err != nil {
			t.Fatalf("%s: %v", run.Name, err)
		}
		if len(splitCSVLines(csv)) < 2 {
			t.Fatalf("%s: csv has no data rows:\n%s", run.Name, csv)
		}
	}
}

func TestValidateCSV(t *testing.T) {
	golden := []byte("topology,alpha,x\nAbovenet,0,1.5\nAbovenet,1,2\n")
	if err := ValidateCSV([]byte("topology,alpha,x\nAbovenet,0,1.5\nAbovenet,1,2\n"), golden); err != nil {
		t.Fatalf("identical csv rejected: %v", err)
	}
	// Numeric cells tolerate formatting-level drift...
	if err := ValidateCSV([]byte("topology,alpha,x\nAbovenet,0,1.5000000000001\nAbovenet,1,2.0\n"), golden); err != nil {
		t.Fatalf("tolerated drift rejected: %v", err)
	}
	// ...but not value-level drift.
	if err := ValidateCSV([]byte("topology,alpha,x\nAbovenet,0,1.6\nAbovenet,1,2\n"), golden); err == nil {
		t.Fatal("numeric drift accepted")
	} else if !strings.Contains(err.Error(), "line 2 col 3") {
		t.Fatalf("drift not located: %v", err)
	}
	// Headers are compared exactly, even when numeric-ish.
	if err := ValidateCSV([]byte("topology,alpha,y\nAbovenet,0,1.5\nAbovenet,1,2\n"), golden); err == nil {
		t.Fatal("header drift accepted")
	}
	// String cells are exact.
	if err := ValidateCSV([]byte("topology,alpha,x\nTiscali,0,1.5\nAbovenet,1,2\n"), golden); err == nil {
		t.Fatal("string drift accepted")
	}
	// Row count must match.
	if err := ValidateCSV([]byte("topology,alpha,x\nAbovenet,0,1.5\n"), golden); err == nil {
		t.Fatal("missing row accepted")
	} else if !strings.Contains(err.Error(), "line count") {
		t.Fatalf("row count not reported: %v", err)
	}
}
