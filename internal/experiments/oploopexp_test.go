package experiments

import (
	"strings"
	"testing"
)

func TestOpLoopSweep(t *testing.T) {
	p := prepare(t, "Tiscali")
	rows, err := OpLoopSweep(p, OpLoopConfig{
		Alpha:        0.6,
		ProbePeriods: []float64{5, 20},
		Horizon:      2500,
		MTBF:         500,
		MTTR:         90,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 algorithms × 2 periods
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]OpLoopRow{}
	for _, r := range rows {
		byKey[string(r.Algo)+"/"+itoa(r.ProbePeriod)] = r
		if r.Episodes == 0 {
			t.Fatalf("%s p=%v: no episodes", r.Algo, r.ProbePeriod)
		}
		if r.Detection < 0 || r.Detection > 1 || r.Pinpoint > r.Detection {
			t.Fatalf("inconsistent rates: %+v", r)
		}
	}
	// Same placement, faster probing → no worse detection delay.
	gdFast, gdSlow := byKey["GD/5"], byKey["GD/20"]
	if gdFast.MeanDelay >= 0 && gdSlow.MeanDelay >= 0 && gdFast.MeanDelay > gdSlow.MeanDelay {
		t.Fatalf("faster probing should not increase delay: %v vs %v",
			gdFast.MeanDelay, gdSlow.MeanDelay)
	}
	// GD covers at least as many nodes as QoS and detects at least as
	// many episodes under the identical trace.
	if gdFast.Covered < byKey["QoS/5"].Covered {
		t.Fatalf("GD coverage %d below QoS %d", gdFast.Covered, byKey["QoS/5"].Covered)
	}
	if gdFast.Detection < byKey["QoS/5"].Detection {
		t.Fatalf("GD detection %v below QoS %v", gdFast.Detection, byKey["QoS/5"].Detection)
	}

	text := RenderOpLoop("Tiscali", 0.6, rows)
	for _, want := range []string{"GD", "QoS", "pinpoint", "mean-delay"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestOpLoopSweepDefaults(t *testing.T) {
	p := prepare(t, "Abovenet")
	rows, err := OpLoopSweep(p, OpLoopConfig{Alpha: 0.5, Seed: 1, Horizon: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func itoa(f float64) string {
	switch f {
	case 5:
		return "5"
	case 20:
		return "20"
	default:
		return "?"
	}
}
