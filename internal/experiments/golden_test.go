package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden tests pin the exact rendered output of the evaluation
// pipelines at the committed seeds. Any change to the topology
// generators, routing tie-breaks, candidate-set math, or placement
// algorithms shows up as a diff here — run with -update to bless an
// intentional change:
//
//	go test ./internal/experiments -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("output drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTableI(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", RenderTableI(rows))
}

func TestGoldenFig4Abovenet(t *testing.T) {
	p := prepare(t, "Abovenet")
	rows, err := Fig4(p, DefaultAlphas())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4_abovenet.golden", RenderFig4("Abovenet", rows))
}

func TestGoldenFig5Distinguishability(t *testing.T) {
	p := prepare(t, "Abovenet")
	curves, err := MonitoringCurves(p, CurvesConfig{
		Alphas:    []float64{0, 0.5, 1},
		IncludeBF: true,
		RDSeeds:   5,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5_d1.golden", RenderCurves("Fig. 5", "Abovenet", curves, MeasureD1))
}

func TestGoldenFig8(t *testing.T) {
	p := prepare(t, "AT&T")
	dists, err := Fig8(p, Fig8Config{Alpha: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8_att.golden", RenderFig8("AT&T", 0.6, dists))
}
