package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
	"repro/internal/oploop"
	"repro/internal/placement"
)

// This file is experiment X7 quantified: the operational loop (failure
// trace → event simulation → online daemon) scored per placement
// algorithm and probe period — turning the paper's abstract measures into
// detection rate, pinpoint rate, and detection latency.

// OpLoopRow is one (algorithm, probe period) cell.
type OpLoopRow struct {
	Algo        Algo
	ProbePeriod float64
	Covered     int
	Episodes    int
	Detection   float64
	Pinpoint    float64
	MeanDelay   float64
}

// OpLoopConfig tunes the sweep.
type OpLoopConfig struct {
	Alpha        float64
	ProbePeriods []float64
	Horizon      float64
	MTBF, MTTR   float64
	Seed         int64
}

// OpLoopSweep runs the operational loop for the GD and QoS placements of
// a prepared workload across probe periods. The failure trace is
// identical across cells (same seed, same node universe), so differences
// come only from the placement and the probing cadence.
func OpLoopSweep(p *Prepared, cfg OpLoopConfig) ([]OpLoopRow, error) {
	if len(cfg.ProbePeriods) == 0 {
		cfg.ProbePeriods = []float64{5, 20}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3000
	}
	if cfg.MTBF == 0 {
		cfg.MTBF = 600
	}
	if cfg.MTTR == 0 {
		cfg.MTTR = 80
	}

	inst, err := p.Instance(cfg.Alpha)
	if err != nil {
		return nil, err
	}
	dist, err := placement.NewDistinguishability(1)
	if err != nil {
		return nil, err
	}
	placements := map[Algo]placement.Placement{}
	gd, err := placement.Greedy(inst, dist)
	if err != nil {
		return nil, err
	}
	placements[AlgoGD] = gd.Placement
	qos, err := placement.QoS(inst, dist)
	if err != nil {
		return nil, err
	}
	placements[AlgoQoS] = qos.Placement

	var rows []OpLoopRow
	for _, algo := range []Algo{AlgoGD, AlgoQoS} {
		conns := connections(p, placements[algo])
		for _, period := range cfg.ProbePeriods {
			out, err := oploop.Run(p.Router, conns, oploop.Config{
				ProbePeriod: period,
				Horizon:     cfg.Horizon,
				MTBF:        cfg.MTBF,
				MTTR:        cfg.MTTR,
				Seed:        cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: oploop %s p=%g: %w", algo, period, err)
			}
			rows = append(rows, OpLoopRow{
				Algo:        algo,
				ProbePeriod: period,
				Covered:     out.Covered,
				Episodes:    len(out.Episodes),
				Detection:   out.DetectionRate(),
				Pinpoint:    out.PinpointRate(),
				MeanDelay:   out.MeanDetectionDelay(),
			})
		}
	}
	return rows, nil
}

// connections extracts the unique (client, host) pairs of a placement.
func connections(p *Prepared, pl placement.Placement) []netsim.Pair {
	seen := map[netsim.Pair]bool{}
	var conns []netsim.Pair
	for s, h := range pl.Hosts {
		if h == placement.Unplaced {
			continue
		}
		for _, c := range p.Services[s].Clients {
			pair := netsim.Pair{Client: c, Host: h}
			if !seen[pair] {
				seen[pair] = true
				conns = append(conns, pair)
			}
		}
	}
	return conns
}

// RenderOpLoop renders the sweep.
func RenderOpLoop(name string, alpha float64, rows []OpLoopRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Operational loop (%s, α=%g): detection and localization vs probe period\n", name, alpha)
	fmt.Fprintf(&b, "%-5s %8s %8s %9s %9s %9s %10s\n",
		"algo", "probe", "covered", "episodes", "detect", "pinpoint", "mean-delay")
	for _, r := range rows {
		delay := "-"
		if r.MeanDelay >= 0 {
			delay = fmt.Sprintf("%.2f", r.MeanDelay)
		}
		fmt.Fprintf(&b, "%-5s %8.1f %8d %9d %8.1f%% %8.1f%% %10s\n",
			r.Algo, r.ProbePeriod, r.Covered, r.Episodes,
			100*r.Detection, 100*r.Pinpoint, delay)
	}
	return b.String()
}
