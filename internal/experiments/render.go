package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/monitor"
	"repro/internal/stats"
	"repro/internal/topology"
)

// newPartition is a tiny indirection so the render/driver files share one
// construction point for the k = 1 refinement structure.
func newPartition(ps *monitor.PathSet) *monitor.Partition {
	return monitor.NewPartitionFromPaths(ps)
}

// RenderTableI renders Table I as an aligned text table.
func RenderTableI(rows []topology.TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I: Characteristics of the networks\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %10s\n", "ISP", "#nodes", "#links", "#dangling")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %10d\n", r.ISP, r.Nodes, r.Links, r.Dangling)
	}
	return b.String()
}

// RenderFig4 renders the Fig. 4 box-plot data for one topology.
func RenderFig4(name string, rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 (%s): number of candidate hosts vs α (five-number summaries)\n", name)
	fmt.Fprintf(&b, "%6s %8s %8s %8s %8s %8s\n", "α", "min", "q1", "median", "q3", "max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			r.Alpha, r.Summary.Min, r.Summary.Q1, r.Summary.Median, r.Summary.Q3, r.Summary.Max)
	}
	return b.String()
}

// Measure selects which panel of Figs. 5-7 to render.
type Measure string

// The three panels of each evaluation figure.
const (
	MeasureCoverage Measure = "coverage"
	MeasureS1       Measure = "identifiability"
	MeasureD1       Measure = "distinguishability"
)

// Measures returns the panels in paper order (a), (b), (c).
func Measures() []Measure { return []Measure{MeasureCoverage, MeasureS1, MeasureD1} }

func (m Measure) pick(pt CurvePoint) float64 {
	switch m {
	case MeasureCoverage:
		return pt.Coverage
	case MeasureS1:
		return pt.S1
	default:
		return pt.D1
	}
}

// algoOrder returns the present algorithms in paper legend order.
func algoOrder(c Curves) []Algo {
	order := []Algo{AlgoBF, AlgoGC, AlgoGI, AlgoGD, AlgoQoS, AlgoRD}
	var out []Algo
	for _, a := range order {
		if _, ok := c[a]; ok {
			out = append(out, a)
		}
	}
	return out
}

// RenderCurves renders one panel (figure sub-plot) as a series-per-column
// table.
func RenderCurves(figure, name string, c Curves, m Measure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %s vs α\n", figure, name, m)
	algos := algoOrder(c)
	fmt.Fprintf(&b, "%6s", "α")
	for _, a := range algos {
		fmt.Fprintf(&b, " %10s", a)
	}
	b.WriteByte('\n')
	if len(algos) == 0 {
		return b.String()
	}
	for i, pt := range c[algos[0]] {
		fmt.Fprintf(&b, "%6.2f", pt.Alpha)
		for _, a := range algos {
			fmt.Fprintf(&b, " %10.1f", m.pick(c[a][i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCurvesCSV writes all three measures of a curve set as CSV rows:
// topology,algorithm,alpha,coverage,identifiability,distinguishability.
func WriteCurvesCSV(w io.Writer, name string, c Curves) error {
	if _, err := fmt.Fprintln(w, "topology,algorithm,alpha,coverage,identifiability,distinguishability"); err != nil {
		return err
	}
	for _, a := range algoOrder(c) {
		for _, pt := range c[a] {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g\n",
				name, a, pt.Alpha, pt.Coverage, pt.S1, pt.D1); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderFig8 renders the degree-of-uncertainty distributions: one column
// per algorithm, one row per degree with non-zero mass anywhere.
func RenderFig8(name string, alpha float64, dists map[Algo]stats.Distribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 (%s, α=%.2f): fraction of nodes per degree of uncertainty\n", name, alpha)
	var algos []Algo
	for _, a := range []Algo{AlgoGC, AlgoGI, AlgoGD, AlgoQoS, AlgoRD} {
		if _, ok := dists[a]; ok {
			algos = append(algos, a)
		}
	}
	support := map[int]bool{}
	for _, d := range dists {
		for _, v := range d.Support() {
			support[v] = true
		}
	}
	var degrees []int
	for v := range support {
		degrees = append(degrees, v)
	}
	sort.Ints(degrees)

	fmt.Fprintf(&b, "%8s", "degree")
	for _, a := range algos {
		fmt.Fprintf(&b, " %8s", a)
	}
	b.WriteByte('\n')
	for _, deg := range degrees {
		fmt.Fprintf(&b, "%8d", deg)
		for _, a := range algos {
			frac := 0.0
			if deg < len(dists[a].Frac) {
				frac = dists[a].Frac[deg]
			}
			fmt.Fprintf(&b, " %8.3f", frac)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
