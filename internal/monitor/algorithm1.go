package monitor

import (
	"repro/internal/combinat"
)

// EquivalenceGraph is the graph Q of the paper's Section III-B1 and
// Algorithm 1: an undirected graph on N ∪ {v0} (v0 a virtual node standing
// for "no failure") with an edge between v and w iff the single-node
// failure sets {v} and {w} are indistinguishable (P_v = P_w), and an edge
// (v, v0) iff v is traversed by no path.
//
// This type is the *literal* Algorithm 1 implementation: an adjacency
// matrix from which edges are removed as paths arrive. It is quadratic in
// |N| and serves as the reference implementation; Partition provides the
// equivalent refinement structure used in the greedy inner loop (ablation
// A1 in DESIGN.md benchmarks the two against each other).
type EquivalenceGraph struct {
	n   int      // number of real nodes; v0 has index n
	adj [][]bool // (n+1) × (n+1) symmetric, no self loops
}

// NewEquivalenceGraph runs Algorithm 1: it starts from the complete graph
// on {v0} ∪ N (line 1) and removes, for each path p and node v ∈ p, the
// edge (v, v0) (line 4) and every edge (v, w) for w ∉ p (line 6).
func NewEquivalenceGraph(ps *PathSet) *EquivalenceGraph {
	n := ps.NumNodes()
	q := &EquivalenceGraph{n: n, adj: make([][]bool, n+1)}
	for i := range q.adj {
		q.adj[i] = make([]bool, n+1)
		for j := range q.adj[i] {
			q.adj[i][j] = i != j
		}
	}
	for i := 0; i < ps.Len(); i++ {
		q.AddPath(ps, i)
	}
	return q
}

// AddPath applies lines 3–6 of Algorithm 1 for path index i of ps,
// removing every edge the path distinguishes. Q can thus be maintained
// incrementally as placements add measurement paths (Section V-D1).
func (q *EquivalenceGraph) AddPath(ps *PathSet, i int) {
	p := ps.Path(i)
	p.ForEach(func(v int) bool {
		// Line 4: v is covered, hence distinguishable from "no failure".
		q.removeEdge(v, q.n)
		// Line 6: v is distinguishable from every node not on p.
		for w := 0; w < q.n; w++ {
			if w != v && !p.Contains(w) {
				q.removeEdge(v, w)
			}
		}
		return true
	})
}

// NumRealNodes returns |N| (excluding v0).
func (q *EquivalenceGraph) NumRealNodes() int { return q.n }

// HasEdge reports whether (v, w) remains in Q, i.e. {v} and {w} are
// indistinguishable. Index n denotes v0.
func (q *EquivalenceGraph) HasEdge(v, w int) bool {
	return v != w && q.adj[v][w]
}

// Degree returns the degree of node v in Q — the paper's "degree of
// uncertainty" (Section VI-B, Fig. 8): the number of other failure
// hypotheses observationally identical to {v}. Index n denotes v0.
func (q *EquivalenceGraph) Degree(v int) int {
	d := 0
	for w := range q.adj[v] {
		if q.adj[v][w] {
			d++
		}
	}
	return d
}

// S1 returns |S_1(P)|: the number of real nodes isolated in Q (excluding
// v0), i.e. 1-identifiable nodes.
func (q *EquivalenceGraph) S1() int {
	count := 0
	for v := 0; v < q.n; v++ {
		if q.Degree(v) == 0 {
			count++
		}
	}
	return count
}

// D1 returns |D_1(P)|: the number of links in the complement of Q — the
// distinguishable pairs among the |N|+1 failure hypotheses of F_1.
func (q *EquivalenceGraph) D1() int64 {
	links := int64(0)
	for v := 0; v <= q.n; v++ {
		for w := v + 1; w <= q.n; w++ {
			if q.adj[v][w] {
				links++
			}
		}
	}
	return combinat.Pairs(int64(q.n)+1) - links
}

// DegreeDistribution returns how many nodes of Q (v0 included) have each
// degree of uncertainty; the slice index is the degree. This is the Fig. 8
// statistic.
func (q *EquivalenceGraph) DegreeDistribution() []int {
	dist := make([]int, q.n+1)
	for v := 0; v <= q.n; v++ {
		dist[q.Degree(v)]++
	}
	return dist
}

func (q *EquivalenceGraph) removeEdge(v, w int) {
	q.adj[v][w] = false
	q.adj[w][v] = false
}
