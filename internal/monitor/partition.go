package monitor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/combinat"
)

// Partition is the efficient incremental counterpart of the equivalence
// graph Q (Section V-D1). Instead of an adjacency matrix it keeps the
// equivalence classes of single-node failure hypotheses: two nodes are in
// the same group iff they are traversed by exactly the same set of paths
// added so far. Adding measurement paths can only split groups ("once
// distinguishable, always distinguishable"), so refinement is monotone and
// cheap: O(|N| · new paths) per update rather than O(|N|² · |P|).
//
// The virtual no-failure node v0 is implicit: it always belongs with the
// uncovered nodes (empty signature). The uncovered nodes, when any exist,
// form exactly one group because an empty signature is equal only to
// another empty signature.
type Partition struct {
	numNodes int
	covered  *bitset.Set
	groups   [][]int
}

// NewPartition returns the partition of an empty path set: every node is
// uncovered and mutually indistinguishable.
func NewPartition(numNodes int) *Partition {
	pt := &Partition{
		numNodes: numNodes,
		covered:  bitset.New(numNodes),
	}
	if numNodes > 0 {
		all := make([]int, numNodes)
		for i := range all {
			all[i] = i
		}
		pt.groups = [][]int{all}
	}
	return pt
}

// NewPartitionFromPaths builds the partition for an existing path set.
func NewPartitionFromPaths(ps *PathSet) *Partition {
	pt := NewPartition(ps.NumNodes())
	paths := make([]*bitset.Set, ps.Len())
	for i := range paths {
		paths[i] = ps.Path(i)
	}
	pt.Refine(paths)
	return pt
}

// NumNodes returns |N|.
func (pt *Partition) NumNodes() int { return pt.numNodes }

// NumGroups returns the current number of equivalence classes over real
// nodes (v0 not counted as a separate group).
func (pt *Partition) NumGroups() int { return len(pt.groups) }

// pathMembership is the read side the refinement needs from a path;
// both the dense bitset.Set and the sparse bitset.Sparse satisfy it, so
// Refine and RefineSparse share one splitting implementation.
type pathMembership interface {
	Contains(v int) bool
	Cap() int
}

// Refine splits the partition according to the node membership of the new
// paths and marks their nodes covered. Paths must use the node universe.
func (pt *Partition) Refine(paths []*bitset.Set) {
	refinePartition(pt, paths)
	for _, p := range paths {
		pt.covered.UnionWith(p)
	}
}

// RefineSparse is Refine over sparse paths — the representation the
// placement engines store at 10k+ nodes. The resulting partition is
// identical to Refine over the equivalent dense paths.
func (pt *Partition) RefineSparse(paths []*bitset.Sparse) {
	refinePartition(pt, paths)
	for _, p := range paths {
		p.UnionInto(pt.covered)
	}
}

// refinePartition performs the group-splitting half of a refinement
// (coverage marking differs per representation and stays with the
// caller). Generic methods are not a thing in Go, hence the free
// function.
func refinePartition[P pathMembership](pt *Partition, paths []P) {
	if len(paths) == 0 {
		return
	}
	for _, p := range paths {
		if p.Cap() != pt.numNodes {
			panic(fmt.Sprintf("monitor: path universe %d != %d", p.Cap(), pt.numNodes))
		}
	}
	var next [][]int
	for _, group := range pt.groups {
		if len(group) == 1 {
			next = append(next, group)
			continue
		}
		next = append(next, splitGroup(group, paths)...)
	}
	pt.groups = next
}

// splitGroup partitions a node group by membership pattern across paths.
// Patterns are uint64 bitmasks for ≤64 paths (the common case: one
// placement contributes |C_s| paths) and string keys beyond that.
func splitGroup[P pathMembership](group []int, paths []P) [][]int {
	if len(paths) <= 64 {
		buckets := map[uint64][]int{}
		var order []uint64
		for _, v := range group {
			var pat uint64
			for i, p := range paths {
				if p.Contains(v) {
					pat |= 1 << uint(i)
				}
			}
			if _, ok := buckets[pat]; !ok {
				order = append(order, pat)
			}
			buckets[pat] = append(buckets[pat], v)
		}
		out := make([][]int, 0, len(order))
		for _, pat := range order {
			out = append(out, buckets[pat])
		}
		return out
	}
	buckets := map[string][]int{}
	var order []string
	var b strings.Builder
	for _, v := range group {
		b.Reset()
		for _, p := range paths {
			if p.Contains(v) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		key := b.String()
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], v)
	}
	out := make([][]int, 0, len(order))
	for _, key := range order {
		out = append(out, buckets[key])
	}
	return out
}

// Clone returns an independent copy.
func (pt *Partition) Clone() *Partition {
	c := &Partition{
		numNodes: pt.numNodes,
		covered:  pt.covered.Clone(),
		groups:   make([][]int, len(pt.groups)),
	}
	for i, g := range pt.groups {
		c.groups[i] = append([]int(nil), g...)
	}
	return c
}

// Coverage returns |C(P)| for the paths refined so far.
func (pt *Partition) Coverage() int { return pt.covered.Count() }

// Covered reports whether node v lies on at least one refined path.
func (pt *Partition) Covered(v int) bool { return pt.covered.Contains(v) }

// isUncovered reports whether a group holds uncovered nodes. Groups are
// homogeneous: equal signatures are either all empty or all non-empty.
func (pt *Partition) isUncovered(group []int) bool {
	return !pt.covered.Contains(group[0])
}

// S1 returns |S_1(P)|: covered nodes alone in their class.
func (pt *Partition) S1() int {
	count := 0
	for _, g := range pt.groups {
		if len(g) == 1 && !pt.isUncovered(g) {
			count++
		}
	}
	return count
}

// D1 returns |D_1(P)|: total hypothesis pairs C(|N|+1, 2) minus the
// indistinguishable pairs inside each class, counting v0 with the
// uncovered class.
func (pt *Partition) D1() int64 {
	total := combinat.Pairs(int64(pt.numNodes) + 1)
	for _, g := range pt.groups {
		size := int64(len(g))
		if pt.isUncovered(g) {
			size++ // v0 shares the empty signature
		}
		total -= combinat.Pairs(size)
	}
	return total
}

// Degrees returns the degree of uncertainty for every node of Q, with
// index numNodes holding v0's degree (Fig. 8's statistic). A node's degree
// is the number of other hypotheses with an identical signature.
func (pt *Partition) Degrees() []int {
	deg := make([]int, pt.numNodes+1)
	v0Degree := 0
	for _, g := range pt.groups {
		uncovered := pt.isUncovered(g)
		d := len(g) - 1
		if uncovered {
			d++ // also adjacent to v0
			v0Degree = len(g)
		}
		for _, v := range g {
			deg[v] = d
		}
	}
	deg[pt.numNodes] = v0Degree
	return deg
}

// Groups returns the equivalence classes, each sorted ascending, ordered
// by smallest member. The uncovered class, if any, does not include v0;
// use Degrees for v0-aware statistics.
func (pt *Partition) Groups() [][]int {
	out := make([][]int, len(pt.groups))
	for i, g := range pt.groups {
		cp := append([]int(nil), g...)
		sort.Ints(cp)
		out[i] = cp
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// String summarizes the partition for debugging.
func (pt *Partition) String() string {
	var b strings.Builder
	b.WriteString("partition{")
	for i, g := range pt.Groups() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j, v := range g {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}
