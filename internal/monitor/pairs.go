package monitor

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combinat"
)

// This file provides the pairwise queries behind Definition 1: direct
// distinguishability tests between concrete failure sets, and the
// materialized indistinguishability class I_k(F; P) whose size the
// general-k counters summarize.

// Distinguishable reports whether failure sets F1 and F2 are
// distinguishable wrt the path set (Definition 1): some path fails under
// exactly one of them. Out-of-range nodes are rejected.
func Distinguishable(ps *PathSet, f1, f2 []int) (bool, error) {
	for _, f := range [][]int{f1, f2} {
		for _, v := range f {
			if v < 0 || v >= ps.NumNodes() {
				return false, fmt.Errorf("monitor: node %d out of range", v)
			}
		}
	}
	sigs := ps.Signatures()
	s1 := FailureSignature(sigs, f1, ps.Len())
	s2 := FailureSignature(sigs, f2, ps.Len())
	return !s1.Equal(s2), nil
}

// IndistinguishableSets returns every failure set F' ∈ F_k \ {F} with
// P_{F'} = P_F — the materialized I_k(F; P) (Section II-B3) — each sorted
// ascending, ordered by size then lexicographically. |F| may exceed k;
// only the returned alternatives are budget-limited.
func IndistinguishableSets(ps *PathSet, k int, f []int) ([][]int, error) {
	if k < 0 {
		return nil, fmt.Errorf("monitor: negative k")
	}
	n := ps.NumNodes()
	target := bitset.FromIndices(n, f...)
	for _, v := range f {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("monitor: node %d out of range", v)
		}
	}
	sigs := ps.Signatures()
	targetSig := FailureSignature(sigs, f, ps.Len())

	var out [][]int
	sig := bitset.New(ps.Len())
	combinat.SubsetsUpTo(n, k, func(candidate []int) bool {
		sig.Clear()
		for _, v := range candidate {
			sig.UnionWith(sigs[v])
		}
		if !sig.Equal(targetSig) {
			return true
		}
		if len(candidate) == target.Count() {
			same := true
			for _, v := range candidate {
				if !target.Contains(v) {
					same = false
					break
				}
			}
			if same {
				return true // skip F itself
			}
		}
		out = append(out, append([]int(nil), candidate...))
		return true
	})
	return out, nil
}

// ConfusionSet returns, for a single node v, the set of nodes w whose
// lone failure is indistinguishable from v's — v's neighborhood in the
// equivalence graph Q, excluding v0. A node with an empty confusion set
// and non-empty signature is 1-identifiable.
func ConfusionSet(ps *PathSet, v int) (*bitset.Set, error) {
	n := ps.NumNodes()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("monitor: node %d out of range", v)
	}
	sigs := ps.Signatures()
	out := bitset.New(n)
	for w := 0; w < n; w++ {
		if w != v && sigs[w].Equal(sigs[v]) {
			out.Add(w)
		}
	}
	return out, nil
}
