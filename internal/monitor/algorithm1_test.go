package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

func TestEquivalenceGraphNoPaths(t *testing.T) {
	ps := NewPathSet(3)
	q := NewEquivalenceGraph(ps)
	// Complete graph on 4 vertices (3 real + v0): every pair
	// indistinguishable, so S1 = 0 and D1 = 0.
	if got := q.S1(); got != 0 {
		t.Fatalf("S1 = %d, want 0", got)
	}
	if got := q.D1(); got != 0 {
		t.Fatalf("D1 = %d, want 0", got)
	}
	if !q.HasEdge(0, 3) {
		t.Fatal("edge to v0 should exist with no paths")
	}
}

func TestEquivalenceGraphSinglePath(t *testing.T) {
	// One path {0, 1} over 3 nodes: {0} and {1} remain indistinguishable;
	// both are distinguishable from {2} and from no-failure; {2} and v0
	// remain indistinguishable.
	ps := mkPathSet(t, 3, []int{0, 1})
	q := NewEquivalenceGraph(ps)
	if !q.HasEdge(0, 1) {
		t.Fatal("{0},{1} should be indistinguishable")
	}
	if q.HasEdge(0, 2) || q.HasEdge(1, 2) {
		t.Fatal("{0},{2} should be distinguishable")
	}
	if q.HasEdge(0, 3) || q.HasEdge(1, 3) {
		t.Fatal("covered nodes should be distinguishable from v0")
	}
	if !q.HasEdge(2, 3) {
		t.Fatal("uncovered node should be indistinguishable from v0")
	}
	if got := q.S1(); got != 0 {
		t.Fatalf("S1 = %d, want 0", got)
	}
	// Hypotheses: {0},{1},{2},∅. Classes: {{0},{1}}, {{2},∅}.
	// D1 = C(4,2) − 1 − 1 = 4.
	if got := q.D1(); got != 4 {
		t.Fatalf("D1 = %d, want 4", got)
	}
}

func TestEquivalenceGraphFullyIdentifying(t *testing.T) {
	// Paths {0}, {1}, {2}: every node covered by a unique path.
	ps := mkPathSet(t, 3, []int{0}, []int{1}, []int{2})
	q := NewEquivalenceGraph(ps)
	if got := q.S1(); got != 3 {
		t.Fatalf("S1 = %d, want 3", got)
	}
	if got := q.D1(); got != 6 {
		t.Fatalf("D1 = %d, want C(4,2) = 6", got)
	}
	for v := 0; v < 4; v++ {
		if got := q.Degree(v); got != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", v, got)
		}
	}
}

func TestEquivalenceGraphDegreeDistribution(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1})
	q := NewEquivalenceGraph(ps)
	// Classes: {0,1} (degree 1 each), {2,3,v0} (degree 2 each).
	dist := q.DegreeDistribution()
	if dist[1] != 2 || dist[2] != 3 {
		t.Fatalf("DegreeDistribution = %v", dist)
	}
}

func TestEquivalenceGraphIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		ps := randomPathSet(rng, n, 1+rng.Intn(6), 4)
		batch := NewEquivalenceGraph(ps)

		// Incremental: start empty, add one path at a time.
		empty := NewPathSet(n)
		inc := NewEquivalenceGraph(empty)
		for i := 0; i < ps.Len(); i++ {
			inc.AddPath(ps, i)
		}
		if batch.S1() != inc.S1() || batch.D1() != inc.D1() {
			t.Fatalf("trial %d: batch (S1=%d D1=%d) != incremental (S1=%d D1=%d)",
				trial, batch.S1(), batch.D1(), inc.S1(), inc.D1())
		}
	}
}

func TestFig1ExampleMetrics(t *testing.T) {
	// The paper's Fig. 1 example with all five services on host a
	// (node IDs: r=0, a..d=1..4, e..h=5..8): paths {e,a,r},{f,b,r} — wait,
	// the QoS placement puts all services on r's neighbors? The paper's
	// QoS-optimal placement yields paths {e,a,r},{f,b,r},{g,c,r},{h,d,r}:
	// every client reaches the co-located service through its own branch.
	// Those paths cover all nodes but identify only r.
	ps := mkPathSet(t, 9,
		[]int{5, 1, 0}, // e-a-r
		[]int{6, 2, 0}, // f-b-r
		[]int{7, 3, 0}, // g-c-r
		[]int{8, 4, 0}, // h-d-r
	)
	if got := ps.Coverage(); got != 9 {
		t.Fatalf("Coverage = %d, want 9", got)
	}
	q := NewEquivalenceGraph(ps)
	if got := q.S1(); got != 1 {
		t.Fatalf("S1 = %d, want 1 (only r identifiable)", got)
	}
	// The failures of e and a (same branch) are indistinguishable.
	if !q.HasEdge(5, 1) {
		t.Fatal("{e},{a} should be indistinguishable")
	}

	// Spreading one service per candidate host adds the 16 cross paths and
	// makes every node identifiable.
	full := mkPathSet(t, 9,
		[]int{5, 1, 0}, []int{6, 2, 0}, []int{7, 3, 0}, []int{8, 4, 0},
	)
	for _, h := range []int{1, 2, 3, 4} {
		for _, c := range []int{5, 6, 7, 8} {
			if c == h+4 {
				continue // own-branch path already present
			}
			// Path c — (c's access host) — r — h.
			if err := full.Add(mkCrossPath(c, h)); err != nil {
				t.Fatal(err)
			}
		}
	}
	q2 := NewEquivalenceGraph(full)
	if got := q2.S1(); got != 9 {
		t.Fatalf("S1 with spread placement = %d, want 9", got)
	}
}

// mkCrossPath builds the Fig. 1 path from client c (5..8) to host h (1..4)
// through the client's own access node (c-4) and the root 0.
func mkCrossPath(c, h int) *bitset.Set {
	return bitset.FromIndices(9, c, c-4, 0, h)
}
