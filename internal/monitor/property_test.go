package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/combinat"
)

// Structural property tests pinning invariants the algorithms rely on.

func TestPartitionRefinementIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		ps := randomPathSet(rng, n, 1+rng.Intn(5), 4)
		once := NewPartitionFromPaths(ps)
		twice := NewPartitionFromPaths(ps)
		for i := 0; i < ps.Len(); i++ {
			twice.Refine([]*bitset.Set{ps.Path(i)}) // replay every path
		}
		if once.S1() != twice.S1() || once.D1() != twice.D1() || once.Coverage() != twice.Coverage() {
			t.Fatalf("trial %d: refinement is not idempotent", trial)
		}
	}
}

func TestDuplicatePathsDoNotChangeMeasures(t *testing.T) {
	// Measuring the same connection twice adds no information: all
	// measures are invariant under path duplication.
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		ps := randomPathSet(rng, n, 1+rng.Intn(4), 3)
		dup := ps.Clone()
		for i := 0; i < ps.Len(); i++ {
			if err := dup.Add(ps.Path(i)); err != nil {
				t.Fatal(err)
			}
		}
		if ps.Coverage() != dup.Coverage() {
			t.Fatal("coverage changed under duplication")
		}
		a, b := NewPartitionFromPaths(ps), NewPartitionFromPaths(dup)
		if a.S1() != b.S1() || a.D1() != b.D1() {
			t.Fatalf("trial %d: k=1 measures changed under duplication", trial)
		}
		for k := 1; k <= 2; k++ {
			if DistinguishabilityK(ps, k) != DistinguishabilityK(dup, k) {
				t.Fatalf("trial %d: D_%d changed under duplication", trial, k)
			}
			if IdentifiabilityK(ps, k) != IdentifiabilityK(dup, k) {
				t.Fatalf("trial %d: S_%d changed under duplication", trial, k)
			}
		}
	}
}

func TestMeasureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		ps := randomPathSet(rng, n, rng.Intn(6), 4)
		pt := NewPartitionFromPaths(ps)

		// S1 counts covered nodes only.
		if pt.S1() > pt.Coverage() {
			t.Fatalf("trial %d: S1 %d > coverage %d", trial, pt.S1(), pt.Coverage())
		}
		// D1 is bounded by all hypothesis pairs.
		if maxPairs := combinat.Pairs(int64(n) + 1); pt.D1() > maxPairs {
			t.Fatalf("trial %d: D1 %d > C(n+1,2) %d", trial, pt.D1(), maxPairs)
		}
		// Full identifiability ⇔ full distinguishability at k=1.
		fullD := pt.D1() == combinat.Pairs(int64(n)+1)
		fullS := pt.S1() == n
		if fullD != fullS {
			t.Fatalf("trial %d: full D1 (%v) must coincide with full S1 (%v)", trial, fullD, fullS)
		}
	}
}

func TestMeasuresMonotoneUnderRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		full := randomPathSet(rng, n, 1+rng.Intn(6), 4)
		pt := NewPartition(n)
		prevS1, prevD1, prevCov := 0, int64(0), 0
		for i := 0; i < full.Len(); i++ {
			pt.Refine([]*bitset.Set{full.Path(i)})
			if pt.S1() < prevS1 {
				t.Fatalf("trial %d: S1 decreased", trial)
			}
			if pt.D1() < prevD1 {
				t.Fatalf("trial %d: D1 decreased", trial)
			}
			if pt.Coverage() < prevCov {
				t.Fatalf("trial %d: coverage decreased", trial)
			}
			prevS1, prevD1, prevCov = pt.S1(), pt.D1(), pt.Coverage()
		}
	}
}

func TestGroupsPartitionNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		ps := randomPathSet(rng, n, rng.Intn(6), 4)
		pt := NewPartitionFromPaths(ps)
		seen := make([]bool, n)
		for _, g := range pt.Groups() {
			for _, v := range g {
				if seen[v] {
					t.Fatalf("trial %d: node %d appears in two groups", trial, v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: node %d missing from partition", trial, v)
			}
		}
	}
}
