package monitor

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestDistinguishable(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0, 1})
	cases := []struct {
		f1, f2 []int
		want   bool
	}{
		{[]int{0}, []int{1}, false}, // same path set affected
		{[]int{0}, []int{2}, true},  // path fails only under {0}
		{nil, []int{2}, false},      // both affect no path
		{nil, []int{0}, true},       // ∅ vs covered node
		{[]int{0}, []int{0, 1}, false},
	}
	for _, c := range cases {
		got, err := Distinguishable(ps, c.f1, c.f2)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Distinguishable(%v, %v) = %v, want %v", c.f1, c.f2, got, c.want)
		}
	}
	if _, err := Distinguishable(ps, []int{9}, nil); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestDistinguishableConsistentWithDK(t *testing.T) {
	// Summing pairwise Distinguishable over all F_k pairs must equal D_k.
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		ps := randomPathSet(rng, n, 1+rng.Intn(4), 3)
		k := 1 + rng.Intn(2)

		var all [][]int
		collect := func(f []int) bool {
			all = append(all, append([]int(nil), f...))
			return true
		}
		enumerateSubsets(n, k, collect)

		var count int64
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				d, err := Distinguishable(ps, all[i], all[j])
				if err != nil {
					t.Fatal(err)
				}
				if d {
					count++
				}
			}
		}
		if want := DistinguishabilityK(ps, k); count != want {
			t.Fatalf("trial %d: pairwise count %d != D_%d %d", trial, count, k, want)
		}
	}
}

// enumerateSubsets is a tiny local mirror of combinat.SubsetsUpTo to keep
// this test independent of enumeration order details.
func enumerateSubsets(n, k int, fn func([]int) bool) {
	var rec func(start int, cur []int)
	var bySize [][][]int = make([][][]int, k+1)
	rec = func(start int, cur []int) {
		if len(cur) <= k {
			cp := append([]int(nil), cur...)
			bySize[len(cur)] = append(bySize[len(cur)], cp)
		}
		if len(cur) == k {
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(cur, v))
		}
	}
	rec(0, nil)
	for _, group := range bySize {
		for _, s := range group {
			if !fn(s) {
				return
			}
		}
	}
}

func TestIndistinguishableSets(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0, 1})
	// I_1({0}): only {1} shares the signature.
	sets, err := IndistinguishableSets(ps, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets, [][]int{{1}}) {
		t.Fatalf("I_1({0}) = %v", sets)
	}
	// I_1(∅): the uncovered node {2}.
	sets, err = IndistinguishableSets(ps, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sets, [][]int{{2}}) {
		t.Fatalf("I_1(∅) = %v", sets)
	}
	if _, err := IndistinguishableSets(ps, -1, nil); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := IndistinguishableSets(ps, 1, []int{7}); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestIndistinguishableSetsSizeMatchesUncertainty(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		ps := randomPathSet(rng, n, 1+rng.Intn(4), 3)
		k := 1 + rng.Intn(2)
		f := []int{rng.Intn(n)}
		sets, err := IndistinguishableSets(ps, k, f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := UncertaintyK(ps, k, f)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(sets)) != want {
			t.Fatalf("trial %d: |I_k| = %d, want %d", trial, len(sets), want)
		}
	}
}

func TestConfusionSet(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1})
	c, err := ConfusionSet(ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Indices(), []int{1}) {
		t.Fatalf("ConfusionSet(0) = %v", c.Indices())
	}
	// Uncovered nodes are mutually confusable.
	c, err = ConfusionSet(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Indices(), []int{3}) {
		t.Fatalf("ConfusionSet(2) = %v", c.Indices())
	}
	if _, err := ConfusionSet(ps, 9); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestConfusionSetMatchesPartitionDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		ps := randomPathSet(rng, n, rng.Intn(5), 4)
		pt := NewPartitionFromPaths(ps)
		deg := pt.Degrees()
		for v := 0; v < n; v++ {
			c, err := ConfusionSet(ps, v)
			if err != nil {
				t.Fatal(err)
			}
			// Partition degree counts v0 for uncovered nodes; ConfusionSet
			// counts real nodes only.
			want := deg[v]
			if !pt.Covered(v) {
				want--
			}
			if c.Count() != want {
				t.Fatalf("trial %d node %d: confusion %d != degree-derived %d",
					trial, v, c.Count(), want)
			}
		}
	}
}
