package monitor

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/combinat"
)

// This file evaluates the general-k measures by exact enumeration of the
// failure-set collection F_k = {F ⊆ N : |F| ≤ k} (Section III-B). The
// complexity is Θ(|F_k|·k) signature unions, so callers should keep
// |N| choose k modest — the paper's evaluation uses k = 1, where the
// Partition type is preferred; enumeration exists for validation, small
// deployments, and the k > 1 extension experiments.

// signatureClasses groups every failure set in F_k by its path-state
// signature P_F. For each class it records the number of member sets and,
// to support identifiability, which nodes are in all members (and) and in
// any member (or).
type signatureClass struct {
	count int64
	and   *bitset.Set // nodes present in every member failure set
	or    *bitset.Set // nodes present in some member failure set
}

func classify(ps *PathSet, k int) map[string]*signatureClass {
	n := ps.NumNodes()
	sigs := ps.Signatures()
	classes := map[string]*signatureClass{}
	sig := bitset.New(ps.Len())
	combinat.SubsetsUpTo(n, k, func(f []int) bool {
		sig.Clear()
		for _, v := range f {
			sig.UnionWith(sigs[v])
		}
		key := sig.Key()
		cl, ok := classes[key]
		member := bitset.FromIndices(n, f...)
		if !ok {
			cl = &signatureClass{and: member.Clone(), or: member}
			classes[key] = cl
		} else {
			cl.and.IntersectWith(member)
			cl.or.UnionWith(member)
		}
		cl.count++
		return true
	})
	return classes
}

// DistinguishabilityK returns |D_k(P)| by exact enumeration: the total
// number of unordered failure-set pairs minus the pairs sharing a
// signature.
func DistinguishabilityK(ps *PathSet, k int) int64 {
	if k < 0 {
		return 0
	}
	total := combinat.Pairs(combinat.NumFailureSets(ps.NumNodes(), k))
	for _, cl := range classify(ps, k) {
		total -= combinat.Pairs(cl.count)
	}
	return total
}

// IdentifiableNodesK returns S_k(P) by exact enumeration. A node v is
// k-identifiable iff every signature class is homogeneous at v: either all
// member failure sets contain v or none do (otherwise two failure sets
// differing in v collide, violating Definition 2).
func IdentifiableNodesK(ps *PathSet, k int) *bitset.Set {
	n := ps.NumNodes()
	identifiable := bitset.New(n)
	for v := 0; v < n; v++ {
		identifiable.Add(v)
	}
	for _, cl := range classify(ps, k) {
		// Nodes where or=1 but and=0 are ambiguous within this class.
		ambiguous := cl.or.Difference(cl.and)
		identifiable.DifferenceWith(ambiguous)
	}
	return identifiable
}

// IdentifiabilityK returns |S_k(P)|.
func IdentifiabilityK(ps *PathSet, k int) int {
	return IdentifiableNodesK(ps, k).Count()
}

// UncertaintyK returns |I_k(F; P)|: the number of failure sets in F_k,
// other than F itself, indistinguishable from F (Section II-B3). F must
// have at most k nodes.
func UncertaintyK(ps *PathSet, k int, f []int) (int64, error) {
	if len(f) > k {
		return 0, fmt.Errorf("monitor: |F| = %d exceeds k = %d", len(f), k)
	}
	for _, v := range f {
		if v < 0 || v >= ps.NumNodes() {
			return 0, fmt.Errorf("monitor: failure node %d out of range", v)
		}
	}
	sigs := ps.Signatures()
	target := FailureSignature(sigs, f, ps.Len())
	key := target.Key()
	classes := classify(ps, k)
	cl, ok := classes[key]
	if !ok {
		return 0, fmt.Errorf("monitor: internal: failure set not enumerated")
	}
	return cl.count - 1, nil
}

// AverageUncertaintyK returns the expected localization uncertainty
// (1/|F_k|) Σ_{F ∈ F_k} |I_k(F; P)|, computed directly from the class
// sizes. Lemma 3 states this equals (2/|F_k|)(C(|F_k|, 2) − |D_k(P)|);
// tests verify the identity.
func AverageUncertaintyK(ps *PathSet, k int) float64 {
	m := combinat.NumFailureSets(ps.NumNodes(), k)
	if m == 0 {
		return 0
	}
	var sum int64
	for _, cl := range classify(ps, k) {
		// Each of the cl.count members has cl.count-1 indistinguishable peers.
		sum += cl.count * (cl.count - 1)
	}
	return float64(sum) / float64(m)
}

// IdentifiableFailureSetsK returns the number of failure sets F ∈ F_k
// whose signature is unique in F_k — the generalized k-identifiability of
// the remark after Theorem 19 ("the failures can be uniquely localized").
func IdentifiableFailureSetsK(ps *PathSet, k int) int64 {
	var count int64
	for _, cl := range classify(ps, k) {
		if cl.count == 1 {
			count++
		}
	}
	return count
}
