package monitor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
)

// mkPathSet builds a PathSet over n nodes from node index lists.
func mkPathSet(t testing.TB, n int, paths ...[]int) *PathSet {
	t.Helper()
	ps := NewPathSet(n)
	for _, p := range paths {
		if err := ps.Add(bitset.FromIndices(n, p...)); err != nil {
			t.Fatal(err)
		}
	}
	return ps
}

// randomPathSet builds a random path set of contiguous "routes" over n
// nodes for property tests.
func randomPathSet(rng *rand.Rand, n, numPaths, maxLen int) *PathSet {
	ps := NewPathSet(n)
	for i := 0; i < numPaths; i++ {
		start := rng.Intn(n)
		length := 1 + rng.Intn(maxLen)
		p := bitset.New(n)
		for j := 0; j < length && start+j < n; j++ {
			p.Add(start + j)
		}
		if err := ps.Add(p); err != nil {
			panic(err)
		}
	}
	return ps
}

func TestPathSetAddErrors(t *testing.T) {
	ps := NewPathSet(4)
	if err := ps.Add(nil); err == nil {
		t.Fatal("nil path should error")
	}
	if err := ps.Add(bitset.New(5)); err == nil {
		t.Fatal("wrong universe should error")
	}
	if err := ps.Add(bitset.New(4)); err == nil {
		t.Fatal("empty path should error")
	}
	if ps.Len() != 0 {
		t.Fatal("failed adds must not change the set")
	}
}

func TestPathSetAddCopies(t *testing.T) {
	ps := NewPathSet(4)
	p := bitset.FromIndices(4, 0, 1)
	if err := ps.Add(p); err != nil {
		t.Fatal(err)
	}
	p.Add(3)
	if ps.Path(0).Contains(3) {
		t.Fatal("Add must copy the path")
	}
}

func TestAddAll(t *testing.T) {
	ps := NewPathSet(4)
	err := ps.AddAll([]*bitset.Set{
		bitset.FromIndices(4, 0),
		bitset.New(4), // invalid: empty
	})
	if err == nil {
		t.Fatal("AddAll should propagate errors")
	}
	if ps.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (stop at first error)", ps.Len())
	}
}

func TestCoverage(t *testing.T) {
	ps := mkPathSet(t, 6, []int{0, 1, 2}, []int{2, 3})
	if got := ps.Coverage(); got != 4 {
		t.Fatalf("Coverage = %d, want 4", got)
	}
	if got := ps.CoveredNodes().Indices(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("CoveredNodes = %v", got)
	}
}

func TestSignatures(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{1, 2})
	sigs := ps.Signatures()
	if got := sigs[0].Indices(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("sig(0) = %v", got)
	}
	if got := sigs[1].Indices(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("sig(1) = %v", got)
	}
	if !sigs[3].Empty() {
		t.Fatal("uncovered node should have empty signature")
	}
}

func TestFailureSignature(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{1, 2}, []int{3})
	sigs := ps.Signatures()
	got := FailureSignature(sigs, []int{0, 3}, ps.Len())
	if !reflect.DeepEqual(got.Indices(), []int{0, 2}) {
		t.Fatalf("FailureSignature = %v", got)
	}
	empty := FailureSignature(sigs, nil, ps.Len())
	if !empty.Empty() {
		t.Fatal("empty failure set should produce empty signature")
	}
}

func TestPathStates(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1}, []int{2, 3})
	states := ps.PathStates(bitset.FromIndices(4, 1))
	if !reflect.DeepEqual(states, []bool{true, false}) {
		t.Fatalf("states = %v", states)
	}
	none := ps.PathStates(bitset.New(4))
	if none[0] || none[1] {
		t.Fatal("no failures should fail no paths")
	}
}

func TestCloneIndependent(t *testing.T) {
	ps := mkPathSet(t, 4, []int{0, 1})
	c := ps.Clone()
	if err := c.Add(bitset.FromIndices(4, 2)); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 1 {
		t.Fatal("clone must not alias")
	}
}
