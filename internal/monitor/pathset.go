// Package monitor implements the failure-monitoring performance measures
// of the paper's Sections II-B and III-B:
//
//   - coverage |C(P)| — nodes traversed by at least one measurement path;
//   - identifiability |S_k(P)| — nodes whose up/down state is uniquely
//     determined whenever at most k nodes fail (Definition 2);
//   - distinguishability |D_k(P)| — pairs of failure sets of size ≤ k that
//     produce different path states (Definition 1), which by Lemma 3 is an
//     affine transform of the expected localization uncertainty;
//   - the equivalence graph Q of Algorithm 1 and its incremental refinement
//     (Section V-D1);
//   - the minimum-set-cover bounds of Theorem 4 / Corollary 5 / eq. (4).
//
// The central representation is the node signature: for node v, sig(v) is
// the set of paths traversing v. Failure set F produces path states P_F =
// ∪_{v∈F} sig(v), so distinguishability of failure sets is equality of
// signature unions, and every measure above reduces to grouping equal
// signatures.
package monitor

import (
	"fmt"

	"repro/internal/bitset"
)

// PathSet is an ordered collection of measurement paths over a fixed node
// universe. Each path is the set of nodes it traverses (endpoints
// included), matching Section II-A. PathSet is append-only.
type PathSet struct {
	numNodes int
	paths    []*bitset.Set
}

// NewPathSet returns an empty path set over numNodes nodes.
func NewPathSet(numNodes int) *PathSet {
	if numNodes < 0 {
		numNodes = 0
	}
	return &PathSet{numNodes: numNodes}
}

// Add appends a path. The path's universe must match the node count, and a
// path must be non-empty (a path traverses at least its endpoint).
func (ps *PathSet) Add(p *bitset.Set) error {
	if p == nil {
		return fmt.Errorf("monitor: nil path")
	}
	if p.Cap() != ps.numNodes {
		return fmt.Errorf("monitor: path universe %d != node count %d", p.Cap(), ps.numNodes)
	}
	if p.Empty() {
		return fmt.Errorf("monitor: empty path")
	}
	ps.paths = append(ps.paths, p.Clone())
	return nil
}

// AddAll appends every path in order, stopping at the first error.
func (ps *PathSet) AddAll(paths []*bitset.Set) error {
	for i, p := range paths {
		if err := ps.Add(p); err != nil {
			return fmt.Errorf("monitor: path %d: %w", i, err)
		}
	}
	return nil
}

// Len returns |P|.
func (ps *PathSet) Len() int { return len(ps.paths) }

// NumNodes returns |N|.
func (ps *PathSet) NumNodes() int { return ps.numNodes }

// Path returns the i-th path (the stored copy; callers must not mutate).
func (ps *PathSet) Path(i int) *bitset.Set { return ps.paths[i] }

// Clone returns a deep copy.
func (ps *PathSet) Clone() *PathSet {
	c := &PathSet{
		numNodes: ps.numNodes,
		paths:    make([]*bitset.Set, len(ps.paths)),
	}
	for i, p := range ps.paths {
		c.paths[i] = p.Clone()
	}
	return c
}

// CoveredNodes returns C(P) = ∪_{p∈P} p as a node set.
func (ps *PathSet) CoveredNodes() *bitset.Set {
	c := bitset.New(ps.numNodes)
	for _, p := range ps.paths {
		c.UnionWith(p)
	}
	return c
}

// Coverage returns |C(P)|, the coverage objective of Section II-B1.
func (ps *PathSet) Coverage() int { return ps.CoveredNodes().Count() }

// Signatures returns, for every node v, the set of path indices traversing
// v (the sets P_v of Section II-A, indexed over P). The result is freshly
// computed on each call.
func (ps *PathSet) Signatures() []*bitset.Set {
	sigs := make([]*bitset.Set, ps.numNodes)
	for v := range sigs {
		sigs[v] = bitset.New(len(ps.paths))
	}
	for i, p := range ps.paths {
		p.ForEach(func(v int) bool {
			sigs[v].Add(i)
			return true
		})
	}
	return sigs
}

// FailureSignature returns P_F for the failure set F: the set of path
// indices disrupted when exactly the nodes of F fail. sigs must come from
// Signatures of this path set.
func FailureSignature(sigs []*bitset.Set, f []int, numPaths int) *bitset.Set {
	out := bitset.New(numPaths)
	for _, v := range f {
		out.UnionWith(sigs[v])
	}
	return out
}

// PathStates returns the observed binary path states under failure set F:
// states[i] is true iff path i is disrupted (traverses a failed node).
func (ps *PathSet) PathStates(failed *bitset.Set) []bool {
	states := make([]bool, len(ps.paths))
	for i, p := range ps.paths {
		states[i] = p.Intersects(failed)
	}
	return states
}
