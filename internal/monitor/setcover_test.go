package monitor

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedySetCoverUncoveredNode(t *testing.T) {
	ps := mkPathSet(t, 3, []int{0, 1})
	if got := GreedySetCover(ps, 2); got != 0 {
		t.Fatalf("GSC(uncovered) = %d, want 0", got)
	}
	if got := MinimumSetCover(ps, 2); got != 0 {
		t.Fatalf("MSC(uncovered) = %d, want 0", got)
	}
}

func TestSetCoverUncoverable(t *testing.T) {
	// Path {0} traverses only node 0: no other node can disrupt it.
	ps := mkPathSet(t, 3, []int{0})
	if got := GreedySetCover(ps, 0); got != Uncoverable {
		t.Fatalf("GSC = %d, want Uncoverable", got)
	}
	if got := MinimumSetCover(ps, 0); got != Uncoverable {
		t.Fatalf("MSC = %d, want Uncoverable", got)
	}
}

func TestSetCoverSimple(t *testing.T) {
	// Paths through node 0: {0,1}, {0,2}. Node 1 covers the first, node 2
	// the second → MSC(0) = 2. Or one node covering both? None. So 2.
	ps := mkPathSet(t, 3, []int{0, 1}, []int{0, 2})
	if got := MinimumSetCover(ps, 0); got != 2 {
		t.Fatalf("MSC = %d, want 2", got)
	}
	if got := GreedySetCover(ps, 0); got != 2 {
		t.Fatalf("GSC = %d, want 2", got)
	}
}

func TestSetCoverSingleCoveringNode(t *testing.T) {
	// Paths {0,1}, {0,1,2}: node 1 lies on both → MSC(0) = 1.
	ps := mkPathSet(t, 3, []int{0, 1}, []int{0, 1, 2})
	if got := MinimumSetCover(ps, 0); got != 1 {
		t.Fatalf("MSC = %d, want 1", got)
	}
	if got := GreedySetCover(ps, 0); got != 1 {
		t.Fatalf("GSC = %d, want 1", got)
	}
}

func TestGSCUpperBoundsMSC(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		ps := randomPathSet(rng, n, 1+rng.Intn(6), 4)
		sigs := ps.Signatures()
		for v := 0; v < n; v++ {
			msc := MinimumSetCover(ps, v)
			gsc := GreedySetCover(ps, v)
			if (msc == Uncoverable) != (gsc == Uncoverable) {
				t.Fatalf("trial %d node %d: coverability disagrees (msc=%d gsc=%d)", trial, v, msc, gsc)
			}
			if msc == Uncoverable {
				continue
			}
			if gsc < msc {
				t.Fatalf("trial %d node %d: GSC %d < MSC %d", trial, v, gsc, msc)
			}
			// Approximation guarantee: GSC ≤ (ln|P_v| + 1)·MSC.
			pv := sigs[v].Count()
			if pv > 0 && float64(gsc) > (math.Log(float64(pv))+1)*float64(msc)+1e-9 {
				t.Fatalf("trial %d node %d: GSC %d exceeds ratio bound (|P_v|=%d, MSC=%d)",
					trial, v, gsc, pv, msc)
			}
		}
	}
}

// Corollary 5: |{MSC ≥ k+1}| ≤ |S_k| ≤ |{MSC ≥ k}| on random instances,
// with S_k computed by exact enumeration.
func TestCorollary5Sandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		ps := randomPathSet(rng, n, 1+rng.Intn(6), 4)
		for k := 1; k <= 2; k++ {
			sk := IdentifiabilityK(ps, k)
			b := IdentifiabilityBoundsExact(ps, k)
			if b.Lower > sk || sk > b.Upper {
				t.Fatalf("trial %d k=%d: bounds [%d, %d] miss S_k = %d\npaths=%v",
					trial, k, b.Lower, b.Upper, sk, dumpPaths(ps))
			}
		}
	}
}

// eq. (4): the relaxed greedy bounds also sandwich S_k.
func TestEquation4Sandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		ps := randomPathSet(rng, n, 1+rng.Intn(6), 4)
		for k := 1; k <= 2; k++ {
			sk := IdentifiabilityK(ps, k)
			b := IdentifiabilityBoundsGreedy(ps, k)
			if b.Lower > sk || sk > b.Upper {
				t.Fatalf("trial %d k=%d: greedy bounds [%d, %d] miss S_k = %d\npaths=%v",
					trial, k, b.Lower, b.Upper, sk, dumpPaths(ps))
			}
			// The greedy bounds are relaxations of the exact ones.
			exact := IdentifiabilityBoundsExact(ps, k)
			if b.Lower > exact.Lower || b.Upper < exact.Upper {
				t.Fatalf("trial %d k=%d: greedy bounds [%d, %d] tighter than exact [%d, %d]",
					trial, k, b.Lower, b.Upper, exact.Lower, exact.Upper)
			}
		}
	}
}

func TestBoundsK0(t *testing.T) {
	// Every node is vacuously 0-identifiable: F_0 = {∅} only.
	ps := mkPathSet(t, 4, []int{0, 1})
	if got := IdentifiabilityK(ps, 0); got != 4 {
		t.Fatalf("S_0 = %d, want 4", got)
	}
	b := IdentifiabilityBoundsExact(ps, 0)
	if b.Lower > 4 || b.Upper < 4 {
		t.Fatalf("k=0 exact bounds [%d, %d] should include 4", b.Lower, b.Upper)
	}
	bg := IdentifiabilityBoundsGreedy(ps, 0)
	if bg.Upper < 4 {
		t.Fatalf("k=0 greedy upper %d should include 4", bg.Upper)
	}
}
