package monitor

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/combinat"
)

// This file implements the minimum-set-cover machinery of Section III-B:
// MSC(v; P) is the minimum number of nodes other than v whose joint
// failure disrupts every path through v. Theorem 4 sandwiches
// k-identifiability between MSC ≥ k+1 (sufficient) and MSC ≥ k
// (necessary); Corollary 5 and eq. (4) turn that into countable bounds on
// |S_k(P)|, with the greedy cover GSC standing in for the NP-hard MSC.

// Uncoverable marks an MSC/GSC value of +∞: some path through v traverses
// no other node, so no set of other nodes can disrupt all of P_v. Such a
// node is k-identifiable for every k.
const Uncoverable = math.MaxInt

// GreedySetCover returns GSC(v; P): the size of the greedy cover of P_v by
// {P_w : w ≠ v} (footnote 1 of the paper — repeatedly pick the node
// covering the most uncovered paths of P_v). It returns 0 when v is
// uncovered and Uncoverable when no cover exists.
func GreedySetCover(ps *PathSet, v int) int {
	sigs := ps.Signatures()
	return greedySetCover(sigs, v)
}

func greedySetCover(sigs []*bitset.Set, v int) int {
	uncovered := sigs[v].Clone()
	if uncovered.Empty() {
		return 0
	}
	size := 0
	for !uncovered.Empty() {
		best, bestGain := -1, 0
		for w := range sigs {
			if w == v {
				continue
			}
			if gain := uncovered.IntersectionCount(sigs[w]); gain > bestGain {
				best, bestGain = w, gain
			}
		}
		if best < 0 {
			return Uncoverable
		}
		uncovered.DifferenceWith(sigs[best])
		size++
	}
	return size
}

// MinimumSetCover returns the exact MSC(v; P) by exhaustive search over
// cover sizes (exponential; intended for validation on small instances).
// It returns 0 for uncovered v and Uncoverable when no cover exists.
func MinimumSetCover(ps *PathSet, v int) int {
	sigs := ps.Signatures()
	target := sigs[v]
	if target.Empty() {
		return 0
	}
	// Candidate nodes: those covering at least one path of P_v.
	var candidates []int
	for w := range sigs {
		if w != v && sigs[w].Intersects(target) {
			candidates = append(candidates, w)
		}
	}
	// Quick infeasibility check: even all candidates together may miss.
	all := bitset.New(ps.Len())
	for _, w := range candidates {
		all.UnionWith(sigs[w])
	}
	if !target.IsSubsetOf(all) {
		return Uncoverable
	}
	cover := bitset.New(ps.Len())
	for size := 1; size <= len(candidates); size++ {
		found := false
		combinat.Combinations(len(candidates), size, func(idx []int) bool {
			cover.Clear()
			for _, i := range idx {
				cover.UnionWith(sigs[candidates[i]])
			}
			if target.IsSubsetOf(cover) {
				found = true
				return false
			}
			return true
		})
		if found {
			return size
		}
	}
	return Uncoverable
}

// SetCoverBounds holds the identifiability bounds derived from set covers.
type SetCoverBounds struct {
	// Lower ≤ |S_k(P)| ≤ Upper.
	Lower, Upper int
}

// IdentifiabilityBoundsExact applies Corollary 5 with the exact MSC:
// |{v : MSC ≥ k+1}| ≤ |S_k(P)| ≤ |{v : MSC ≥ k}|. Exponential in the worst
// case; use IdentifiabilityBoundsGreedy on real networks.
func IdentifiabilityBoundsExact(ps *PathSet, k int) SetCoverBounds {
	var b SetCoverBounds
	for v := 0; v < ps.NumNodes(); v++ {
		msc := MinimumSetCover(ps, v)
		if msc == 0 {
			// Uncovered node (P_v = ∅): not identifiable for k ≥ 1.
			if k <= 0 {
				b.Lower++
				b.Upper++
			}
			continue
		}
		if msc >= k+1 {
			b.Lower++
		}
		if msc >= k {
			b.Upper++
		}
	}
	return b
}

// IdentifiabilityBoundsGreedy applies eq. (4): using GSC with the
// H-number approximation ratio,
//
//	|{v : GSC/(ln|P_v|+1) ≥ k+1}| ≤ |S_k(P)| ≤ |{v : GSC ≥ k}|.
//
// Uncovered nodes are excluded for k ≥ 1 (their state is never
// observable).
func IdentifiabilityBoundsGreedy(ps *PathSet, k int) SetCoverBounds {
	sigs := ps.Signatures()
	var b SetCoverBounds
	for v := 0; v < ps.NumNodes(); v++ {
		pv := sigs[v].Count()
		if pv == 0 {
			if k <= 0 {
				b.Lower++
				b.Upper++
			}
			continue
		}
		gsc := greedySetCover(sigs, v)
		if gsc == Uncoverable {
			b.Lower++
			b.Upper++
			continue
		}
		ratio := math.Log(float64(pv)) + 1
		if float64(gsc)/ratio >= float64(k+1) {
			b.Lower++
		}
		if gsc >= k {
			b.Upper++
		}
	}
	return b
}
