package monitor

import "math"

// This file implements the *maximum identifiability* measure of the
// paper's reference [5] (Ma et al.), which the paper's Section II-B
// generalizes: the largest failure budget k such that a node (or every
// node) remains k-identifiable. It rounds out the measure family — where
// |S_k(P)| fixes k and counts nodes, maximum identifiability fixes the
// node set and maximizes k — and provides the per-node localization
// guarantee an operator can quote ("this placement localizes any ≤k
// failures touching v").

// MaxIdentifiability returns, for node v, the largest k ≥ 0 such that v
// is k-identifiable wrt the path set, computed by exact enumeration (cost
// grows with |F_k|; small networks only). Every node is 0-identifiable.
// If v is k-identifiable for every k up to the node count, the node count
// is returned (the maximum meaningful budget).
func MaxIdentifiability(ps *PathSet, v int) int {
	n := ps.NumNodes()
	if v < 0 || v >= n {
		return 0
	}
	// k-identifiability is monotone decreasing in k, so scan upward until
	// the first failure.
	for k := 1; k <= n; k++ {
		if !IdentifiableNodesK(ps, k).Contains(v) {
			return k - 1
		}
	}
	return n
}

// NetworkMaxIdentifiability returns the largest k such that *every*
// covered node is k-identifiable — [5]'s network-wide measure restricted
// to observable nodes (uncovered nodes are never 1-identifiable, so
// including them would pin the measure at 0 whenever coverage is
// partial). It returns 0 when some covered node is not even
// 1-identifiable, and 0 for path sets covering nothing.
func NetworkMaxIdentifiability(ps *PathSet) int {
	covered := ps.CoveredNodes()
	if covered.Empty() {
		return 0
	}
	n := ps.NumNodes()
	for k := 1; k <= n; k++ {
		identifiable := IdentifiableNodesK(ps, k)
		if !covered.IsSubsetOf(identifiable) {
			return k - 1
		}
	}
	return n
}

// MaxIdentifiabilityBounds sandwiches MaxIdentifiability(v) using the
// greedy set cover (Theorem 4): GSC is an upper bound on nothing directly,
// but MSC ∈ [GSC/(ln|P_v|+1), GSC] and v is k-identifiable for all
// k ≤ MSC−1 and for no k > MSC. The returned bounds satisfy
// Lower ≤ MaxIdentifiability(v) ≤ Upper and cost one greedy cover instead
// of an exponential enumeration.
func MaxIdentifiabilityBounds(ps *PathSet, v int) (lower, upper int) {
	sigs := ps.Signatures()
	if v < 0 || v >= len(sigs) || sigs[v].Empty() {
		return 0, 0
	}
	gsc := greedySetCover(sigs, v)
	if gsc == Uncoverable {
		n := ps.NumNodes()
		return n, n
	}
	// MSC ≥ ceil(GSC / (ln|P_v|+1)); v is (MSC−1)-identifiable
	// (sufficiency) and not MSC-identifiable... only "not (MSC)-identifiable
	// is not guaranteed"; the necessary condition gives: v k-identifiable ⇒
	// MSC ≥ k, so MaxIdent ≤ MSC ≤ GSC.
	ratio := math.Log(float64(sigs[v].Count())) + 1
	mscLower := int(math.Ceil(float64(gsc) / ratio))
	if mscLower < 1 {
		mscLower = 1
	}
	lower = mscLower - 1
	upper = gsc
	return lower, upper
}
