package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// benchPaths builds a reproducible path set of the given dimensions.
func benchPaths(n, numPaths, pathLen int) *PathSet {
	rng := rand.New(rand.NewSource(5))
	ps := NewPathSet(n)
	for i := 0; i < numPaths; i++ {
		p := bitset.New(n)
		start := rng.Intn(n)
		for j := 0; j < pathLen; j++ {
			p.Add((start + j) % n)
		}
		if err := ps.Add(p); err != nil {
			panic(err)
		}
	}
	return ps
}

func BenchmarkPartitionRefine(b *testing.B) {
	ps := benchPaths(108, 21, 6)
	paths := make([]*bitset.Set, ps.Len())
	for i := range paths {
		paths[i] = ps.Path(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := NewPartition(108)
		pt.Refine(paths)
		_ = pt.D1()
	}
}

func BenchmarkEquivalenceGraphBuild(b *testing.B) {
	ps := benchPaths(108, 21, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := NewEquivalenceGraph(ps)
		_ = q.D1()
	}
}

func BenchmarkSignatures(b *testing.B) {
	ps := benchPaths(108, 21, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps.Signatures()
	}
}

func BenchmarkDistinguishabilityK2(b *testing.B) {
	ps := benchPaths(22, 9, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DistinguishabilityK(ps, 2)
	}
}

func BenchmarkIdentifiabilityK2(b *testing.B) {
	ps := benchPaths(22, 9, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IdentifiabilityK(ps, 2)
	}
}

func BenchmarkGreedySetCover(b *testing.B) {
	ps := benchPaths(108, 21, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GreedySetCover(ps, i%108)
	}
}
